// E11 — the paper's grid reduction, validated (section 2, first paragraph).
//
// Paper claim: "Each agent has a bounded field of view of say eps > 0,
// hence, for simplicity, we can assume that the agents are actually walking
// on the integer two-dimensional infinite grid." That is a modeling step,
// not a theorem — so we check it: run the SAME algorithms on the continuous
// plane (unit speed, sight radius eps = 1, Archimedean sweeps) and on the
// grid, same D and k, and compare.
//
// Table: known-k and harmonic, D x k sweep — the plane/grid mean-time ratio
// must stay inside a fixed constant band across the sweep (no drift with D
// or k), which is exactly what "reduction up to constants" means.
//
// Runs on the scenario subsystem: each (D, k) is ONE two-strategy spec
// pairing the grid strategy with its plane-level registry twin
// (plane-known-k / plane-harmonic), so both substrates face the same trial
// seeds and the ratio column is a paired comparison.
#include <cmath>
#include <cstdio>
#include <exception>

#include "exp_common.h"

namespace ants::bench {
namespace {

int run(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const ExpOptions opt = parse_common(cli, 80);
  cli.finish();

  banner("E11: continuous plane vs grid — the section 2 reduction",
         "expect: plane/grid mean-time ratio constant across D and k for "
         "the same algorithm (reduction exact up to constants)");

  util::Table table({"algorithm", "D", "k", "grid mean T", "plane mean T",
                     "ratio", "grid success", "plane success"});

  const std::vector<std::int64_t> ds =
      opt.full ? std::vector<std::int64_t>{16, 32, 64, 128}
               : std::vector<std::int64_t>{16, 32, 64};
  const std::vector<std::int64_t> ks{4, 32};

  // One paired (grid, plane) spec per cell; the cap follows the cell's own
  // optimum, so it is per-spec.
  const auto run_pair = [&](const std::string& grid_strategy,
                            const std::string& plane_strategy,
                            std::int64_t d, std::int64_t k, double cap,
                            std::uint64_t seed) {
    scenario::ScenarioSpec pair_spec = spec(opt, "e11-plane");
    pair_spec.strategies = {grid_strategy, plane_strategy};
    pair_spec.ks = {k};
    pair_spec.distances = {d};
    pair_spec.seed = seed;
    pair_spec.time_cap = static_cast<sim::Time>(cap);
    return scenario::run_sweep(pair_spec);
  };

  for (const std::int64_t d : ds) {
    for (const std::int64_t k : ks) {
      const double dd = static_cast<double>(d);
      const double cap = 256 * (dd + dd * dd / static_cast<double>(k));
      const auto results = run_pair(
          "known-k", "plane-known-k", d, k, cap,
          rng::mix_seed(opt.seed, static_cast<std::uint64_t>(d * 1000 + k)));
      const sim::RunStats& grid = results[0].stats;
      const sim::RunStats& pl = results[1].stats;

      table.add_row({"known-k", fmt0(dd), fmt0(double(k)),
                     fmt0(grid.time.mean), fmt0(pl.time.mean),
                     fmt2(pl.time.mean / grid.time.mean),
                     fmt3(grid.success_rate), fmt3(pl.success_rate)});
    }
  }

  // Harmonic at fixed delta on both substrates.
  const double delta = 0.5;
  const std::string delta_text = util::fmt_exact(delta);
  for (const std::int64_t d : ds) {
    const auto k = static_cast<std::int64_t>(
        8 * std::ceil(std::pow(static_cast<double>(d), delta)));
    const double dd = static_cast<double>(d);
    const double cap =
        64 * (dd + std::pow(dd, 2.0 + delta) / static_cast<double>(k));
    const auto results = run_pair(
        "harmonic(delta=" + delta_text + ")",
        "plane-harmonic(delta=" + delta_text + ")", d, k, cap,
        rng::mix_seed(opt.seed, static_cast<std::uint64_t>(d * 7 + 1)));
    const sim::RunStats& grid = results[0].stats;
    const sim::RunStats& pl = results[1].stats;

    table.add_row({"harmonic(" + fmt1(delta) + ")", fmt0(dd),
                   fmt0(double(k)),
                   fmt0(grid.time.mean), fmt0(pl.time.mean),
                   fmt2(pl.time.mean / grid.time.mean),
                   fmt3(grid.success_rate), fmt3(pl.success_rate)});
  }

  emit(table, opt);
  std::cout << "\nreading: the ratio column sits in a narrow constant band "
            << "for each algorithm family with no trend in D or k — the "
            << "continuous model and its grid discretization are the same "
            << "theory up to the constants the paper absorbs into O(.). "
            << "(Constants differ between families: Euclidean vs L1 metric, "
            << "pi r^2 vs 2r^2 ball sizes, spiral pitch vs lattice coils.)\n";
  return 0;
}

}  // namespace
}  // namespace ants::bench

int main(int argc, char** argv) try {
  return ants::bench::run(argc, argv);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
