// E11 — the paper's grid reduction, validated (section 2, first paragraph).
//
// Paper claim: "Each agent has a bounded field of view of say eps > 0,
// hence, for simplicity, we can assume that the agents are actually walking
// on the integer two-dimensional infinite grid." That is a modeling step,
// not a theorem — so we check it: run the SAME algorithms on the continuous
// plane (unit speed, sight radius eps = 1, Archimedean sweeps) and on the
// grid, same D and k, and compare.
//
// Table: known-k and harmonic, D x k sweep — the plane/grid mean-time ratio
// must stay inside a fixed constant band across the sweep (no drift with D
// or k), which is exactly what "reduction up to constants" means.
#include <cmath>
#include <exception>

#include "core/harmonic.h"
#include "core/known_k.h"
#include "exp_common.h"
#include "plane/engine.h"
#include "plane/strategies.h"

namespace ants::bench {
namespace {

struct PlaneStats {
  double mean = 0;
  double success = 0;
};

PlaneStats run_plane(const plane::PlaneStrategy& strategy, int k, double d,
                     std::int64_t trials, std::uint64_t seed, double cap) {
  double sum = 0;
  int found = 0;
  for (std::int64_t t = 0; t < trials; ++t) {
    const rng::Rng trial(rng::mix_seed(seed, static_cast<std::uint64_t>(t)));
    rng::Rng placement = trial.child(0xFACADE);
    const plane::Vec2 treasure = plane::unit(placement.angle()) * d;
    plane::PlaneEngineConfig config;
    config.time_cap = cap;
    const auto r = plane::run_plane_search(strategy, k, treasure, trial,
                                           config);
    sum += r.time;
    found += r.found;
  }
  return {sum / static_cast<double>(trials),
          static_cast<double>(found) / static_cast<double>(trials)};
}

int run(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const ExpOptions opt = parse_common(cli, 80);
  cli.finish();

  banner("E11: continuous plane vs grid — the section 2 reduction",
         "expect: plane/grid mean-time ratio constant across D and k for "
         "the same algorithm (reduction exact up to constants)");

  util::Table table({"algorithm", "D", "k", "grid mean T", "plane mean T",
                     "ratio", "grid success", "plane success"});

  const std::vector<std::int64_t> ds =
      opt.full ? std::vector<std::int64_t>{16, 32, 64, 128}
               : std::vector<std::int64_t>{16, 32, 64};
  const std::vector<std::int64_t> ks{4, 32};

  for (const std::int64_t d : ds) {
    for (const std::int64_t k : ks) {
      sim::RunConfig config;
      config.trials = opt.trials;
      config.seed = rng::mix_seed(
          opt.seed, static_cast<std::uint64_t>(d * 1000 + k));
      const double dd = static_cast<double>(d);
      const double cap = 256 * (dd + dd * dd / static_cast<double>(k));
      config.time_cap = static_cast<sim::Time>(cap);

      const core::KnownKStrategy grid_strategy(k);
      const sim::RunStats grid = sim::run_trials(
          grid_strategy, static_cast<int>(k), d, opt.placement, config);

      const plane::PlaneKnownKStrategy plane_strategy(k);
      const PlaneStats pl = run_plane(plane_strategy, static_cast<int>(k),
                                      dd, opt.trials, config.seed, cap);

      table.add_row({"known-k", fmt0(dd), fmt0(double(k)),
                     fmt0(grid.time.mean), fmt0(pl.mean),
                     fmt2(pl.mean / grid.time.mean), fmt3(grid.success_rate),
                     fmt3(pl.success)});
    }
  }

  // Harmonic at fixed delta on both substrates.
  const double delta = 0.5;
  for (const std::int64_t d : ds) {
    const auto k = static_cast<std::int64_t>(
        8 * std::ceil(std::pow(static_cast<double>(d), delta)));
    sim::RunConfig config;
    config.trials = opt.trials;
    config.seed = rng::mix_seed(opt.seed,
                                static_cast<std::uint64_t>(d * 7 + 1));
    const double dd = static_cast<double>(d);
    const double cap =
        64 * (dd + std::pow(dd, 2.0 + delta) / static_cast<double>(k));
    config.time_cap = static_cast<sim::Time>(cap);

    const core::HarmonicStrategy grid_strategy(delta);
    const sim::RunStats grid = sim::run_trials(
        grid_strategy, static_cast<int>(k), d, opt.placement, config);

    const plane::PlaneHarmonicStrategy plane_strategy(delta);
    const PlaneStats pl = run_plane(plane_strategy, static_cast<int>(k), dd,
                                    opt.trials, config.seed, cap);

    table.add_row({"harmonic(0.5)", fmt0(dd), fmt0(double(k)),
                   fmt0(grid.time.mean), fmt0(pl.mean),
                   fmt2(pl.mean / grid.time.mean), fmt3(grid.success_rate),
                   fmt3(pl.success)});
  }

  emit(table, opt);
  std::cout << "\nreading: the ratio column sits in a narrow constant band "
            << "for each algorithm family with no trend in D or k — the "
            << "continuous model and its grid discretization are the same "
            << "theory up to the constants the paper absorbs into O(.). "
            << "(Constants differ between families: Euclidean vs L1 metric, "
            << "pi r^2 vs 2r^2 ball sizes, spiral pitch vs lattice coils.)\n";
  return 0;
}

}  // namespace
}  // namespace ants::bench

int main(int argc, char** argv) try {
  return ants::bench::run(argc, argv);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
