// Shared scaffolding for the experiment harnesses (bench/exp_*).
//
// Each experiment binary prints the table(s) EXPERIMENTS.md records for its
// paper claim. Flags common to all: --trials, --seed, --full (bigger
// sweeps), --csv=path (machine-readable copy of the main table),
// --placement=axis|diagonal|ring|ring-fraction(f=...).
//
// Every harness runs its Monte-Carlo trials through the scenario subsystem
// (scenario::run_sweep): the experiment is a declarative spec, the tables
// are formatting on top of CellResults. `spec()` seeds a ScenarioSpec with
// the common flags so a harness only fills in strategies and grids.
#pragma once

#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "scenario/sweep.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/format.h"
#include "util/table.h"

namespace ants::bench {

struct ExpOptions {
  std::int64_t trials = 0;
  std::uint64_t seed = 0;
  bool full = false;
  std::string csv_path;
  std::string placement_name;
};

/// Parses the common flags; `default_trials` applies to the quick (default)
/// mode, 4x that in --full mode unless --trials overrides.
inline ExpOptions parse_common(util::Cli& cli, std::int64_t default_trials) {
  ExpOptions opt;
  opt.full = cli.get_bool("full", false);
  opt.trials = cli.get_int("trials", opt.full ? 4 * default_trials
                                              : default_trials);
  opt.seed = static_cast<std::uint64_t>(cli.get_int("seed", 0xA27553ACULL));
  opt.csv_path = cli.get_string("csv", "");
  opt.placement_name = cli.get_string("placement", "ring");
  return opt;
}

/// A ScenarioSpec pre-filled from the common flags; the harness sets
/// strategies, grids, and (when the claim needs one) the time cap.
inline scenario::ScenarioSpec spec(const ExpOptions& opt, std::string name) {
  scenario::ScenarioSpec s;
  s.name = std::move(name);
  s.trials = opt.trials;
  s.seed = opt.seed;
  s.placements = {opt.placement_name};
  return s;
}

/// Prints the table and optionally mirrors it to --csv.
inline void emit(const util::Table& table, const ExpOptions& opt) {
  table.print(std::cout);
  if (!opt.csv_path.empty()) {
    util::CsvWriter csv(opt.csv_path, table.header());
    for (std::size_t i = 0; i < table.rows(); ++i) csv.add_row(table.row(i));
    std::cout << "(csv written to " << opt.csv_path << ")\n";
  }
}

inline std::string fmt0(double v) { return util::fmt_fixed(v, 0); }
inline std::string fmt1(double v) { return util::fmt_fixed(v, 1); }
inline std::string fmt2(double v) { return util::fmt_fixed(v, 2); }
inline std::string fmt3(double v) { return util::fmt_fixed(v, 3); }

inline void banner(const std::string& title, const std::string& claim) {
  std::cout << "==================================================\n"
            << title << "\n" << claim << "\n"
            << "==================================================\n\n";
}

}  // namespace ants::bench
