// Microbenchmarks for the continuous-plane primitives (src/plane).
//
// The plane engine's viability rests on first_sighting staying cheap: the
// line test is one quadratic, and the spiral test must stay sub-10us in
// both its regimes (dense near-center scan, per-coil ternary in the deep
// regime) for E11's plane-vs-grid sweeps to finish in seconds.
#include <benchmark/benchmark.h>

#include "plane/engine.h"
#include "plane/segment.h"
#include "plane/strategies.h"
#include "rng/rng.h"

namespace {

using ants::plane::LineMove;
using ants::plane::Move;
using ants::plane::SpiralMove;
using ants::plane::Vec2;

void BM_LineSighting(benchmark::State& state) {
  ants::rng::Rng rng(1);
  std::vector<Vec2> targets;
  for (int i = 0; i < 1024; ++i) {
    targets.push_back({rng.uniform_real(-50, 50), rng.uniform_real(-50, 50)});
  }
  const Move move{LineMove{{-40, -3}, {40, 7}}};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ants::plane::first_sighting(move, targets[i++ & 1023], 1.0));
  }
}
BENCHMARK(BM_LineSighting);

void BM_SpiralSightingMiss(benchmark::State& state) {
  // Radial rejection: the target is outside the swept annulus — the common
  // case in a trial, must be O(1).
  const Move move{SpiralMove{{0, 0}, 1.0, 10000.0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ants::plane::first_sighting(move, Vec2{500, 0}, 1.0));
  }
}
BENCHMARK(BM_SpiralSightingMiss);

void BM_SpiralSightingNearCenter(benchmark::State& state) {
  ants::rng::Rng rng(2);
  std::vector<Vec2> targets;
  for (int i = 0; i < 256; ++i) {
    targets.push_back(ants::plane::unit(rng.angle()) *
                      rng.uniform_real(2.0, 12.0));
  }
  const Move move{SpiralMove{{0, 0}, 1.0, 2000.0}};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ants::plane::first_sighting(move, targets[i++ & 255], 1.0));
  }
}
BENCHMARK(BM_SpiralSightingNearCenter);

void BM_SpiralSightingDeep(benchmark::State& state) {
  ants::rng::Rng rng(3);
  std::vector<Vec2> targets;
  for (int i = 0; i < 256; ++i) {
    targets.push_back(ants::plane::unit(rng.angle()) *
                      rng.uniform_real(60.0, 90.0));
  }
  const Move move{SpiralMove{{0, 0}, 1.0, 60000.0}};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ants::plane::first_sighting(move, targets[i++ & 255], 1.0));
  }
}
BENCHMARK(BM_SpiralSightingDeep);

void BM_SpiralThetaForArc(benchmark::State& state) {
  double s = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ants::plane::spiral_theta_for_arc(0.159, s));
    s = s < 1e12 ? s * 1.37 : 1.0;
  }
}
BENCHMARK(BM_SpiralThetaForArc);

void BM_PlaneTrialHarmonic(benchmark::State& state) {
  // One full collaborative plane trial: k = 16, D = 24.
  const ants::plane::PlaneHarmonicStrategy strategy(0.5);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const ants::rng::Rng trial(seed++);
    ants::plane::PlaneEngineConfig config;
    config.time_cap = 1e6;
    benchmark::DoNotOptimize(ants::plane::run_plane_search(
        strategy, 16, Vec2{17, 17}, trial, config));
  }
}
BENCHMARK(BM_PlaneTrialHarmonic);

}  // namespace

BENCHMARK_MAIN();
