// Microbenchmarks for the sweep I/O fast paths: binary columnar shard
// artifacts vs the JSONL interchange format, and the packed cell-cache
// index vs per-hash cache files.
//
// The perf contract this harness makes gateable (tools/bench_compare.py
// --pair-gate, run by the CI benchmark job):
//
//   merge throughput   BM_MergeJsonlShards / BM_MergeBinaryShards >= 3x
//   warm-cache sweep   BM_WarmCacheFilesSweep / BM_WarmCachePackedSweep >= 2x
//
// both over a 10,000-cell synthetic spec — the scale where a campaign's
// merge and warm-resume costs stop being noise. The aggregate values are
// synthesized (bit-patterned through the shared field table), not computed:
// these benchmarks time serialization, parsing, and lookup, never trials.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "scenario/agg_fields.h"
#include "scenario/artifact.h"
#include "scenario/cache_pack.h"
#include "scenario/plan.h"
#include "scenario/sink.h"
#include "scenario/sweep.h"

namespace {

namespace sc = ants::scenario;

/// Scratch directory shared by every benchmark in this process; removed by
/// the OS temp policy, unique per pid so concurrent runs never collide.
const std::string& bench_dir() {
  static const std::string dir = [] {
    const std::string d =
        (std::filesystem::temp_directory_path() /
         ("ants_micro_io_" + std::to_string(::getpid())))
            .string();
    std::filesystem::create_directories(d);
    return d;
  }();
  return dir;
}

/// The 10k-cell synthetic spec: 100 ks x 100 distances of one strategy.
/// Nothing here ever runs a trial — the spec exists to give the plan layer
/// a realistically sized cell grid with realistic hashes.
const sc::SweepPlan& io_plan() {
  static const sc::SweepPlan plan = [] {
    sc::ScenarioSpec spec;
    spec.name = "io-bench";
    spec.strategies = {"known-k"};
    for (std::int64_t k = 1; k <= 100; ++k) spec.ks.push_back(k);
    for (std::int64_t d = 1; d <= 100; ++d) spec.distances.push_back(d);
    spec.trials = 1;
    spec.seed = 7;
    return sc::make_plan(spec);
  }();
  return plan;
}

/// Deterministic synthetic aggregates, bit-patterned per (cell, field) so
/// every column carries distinct non-trivial doubles.
sc::CellResult synth_result(std::size_t cell_index) {
  sc::CellResult result;
  const ants::scenario::detail::AggField* fields =
      ants::scenario::detail::agg_fields();
  const std::size_t n = ants::scenario::detail::agg_field_count();
  for (std::size_t f = 0; f < n; ++f) {
    fields[f].set(result, 0.0625 + static_cast<double>(cell_index * n + f) *
                              1.0009765625);
  }
  return result;
}

std::vector<sc::ShardEntry> synth_entries(
    const std::vector<std::size_t>& indices) {
  std::vector<sc::ShardEntry> entries(indices.size());
  for (std::size_t j = 0; j < indices.size(); ++j) {
    entries[j].cell_index = indices[j];
    entries[j].result = synth_result(indices[j]);
  }
  return entries;
}

sc::ShardHeader shard_header(std::size_t shard, std::size_t n_shards) {
  const sc::SweepPlan& plan = io_plan();
  sc::ShardHeader header;
  header.format_version = sc::cell_format_version();
  header.spec_hash = plan.spec_hash;
  header.spec_text = plan.spec.canonical();
  header.shard = shard;
  header.n_shards = n_shards;
  header.n_cells_total = plan.cells.size();
  return header;
}

constexpr std::size_t kShards = 3;

/// Writes the 3-shard artifact set once per format; returns the paths.
const std::vector<std::string>& shard_paths(sc::ArtifactFormat format) {
  static const auto make = [](sc::ArtifactFormat fmt) {
    const sc::SweepPlan& plan = io_plan();
    const char* ext = fmt == sc::ArtifactFormat::kBinary ? ".bin" : ".jsonl";
    std::vector<std::string> paths;
    for (std::size_t s = 1; s <= kShards; ++s) {
      const std::string path =
          bench_dir() + "/shard_" + std::to_string(s) + ext;
      const std::vector<sc::ShardEntry> entries =
          synth_entries(sc::shard_cell_indices(plan, s, kShards));
      if (fmt == sc::ArtifactFormat::kBinary) {
        sc::write_binary_artifact(path, shard_header(s, kShards), entries);
      } else {
        sc::write_shard_artifact(path, shard_header(s, kShards), entries);
      }
      paths.push_back(path);
    }
    return paths;
  };
  static const std::vector<std::string> jsonl =
      make(sc::ArtifactFormat::kJsonl);
  static const std::vector<std::string> binary =
      make(sc::ArtifactFormat::kBinary);
  return format == sc::ArtifactFormat::kBinary ? binary : jsonl;
}

// --- artifact write / read -------------------------------------------------

void BM_ArtifactWriteJsonl(benchmark::State& state) {
  const sc::SweepPlan& plan = io_plan();
  const std::vector<sc::ShardEntry> entries =
      synth_entries(sc::shard_cell_indices(plan, 1, 1));
  const sc::ShardHeader header = shard_header(1, 1);
  const std::string path = bench_dir() + "/write_bench.jsonl";
  for (auto _ : state) {
    sc::write_shard_artifact(path, header, entries);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(entries.size()));
}
BENCHMARK(BM_ArtifactWriteJsonl)->Unit(benchmark::kMillisecond);

void BM_ArtifactWriteBinary(benchmark::State& state) {
  const sc::SweepPlan& plan = io_plan();
  const std::vector<sc::ShardEntry> entries =
      synth_entries(sc::shard_cell_indices(plan, 1, 1));
  const sc::ShardHeader header = shard_header(1, 1);
  const std::string path = bench_dir() + "/write_bench.bin";
  for (auto _ : state) {
    sc::write_binary_artifact(path, header, entries);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(entries.size()));
}
BENCHMARK(BM_ArtifactWriteBinary)->Unit(benchmark::kMillisecond);

void BM_ArtifactReadJsonl(benchmark::State& state) {
  const std::string& path = shard_paths(sc::ArtifactFormat::kJsonl).front();
  for (auto _ : state) {
    std::vector<sc::ShardEntry> entries;
    const sc::ShardHeader header = sc::read_any_artifact(path, &entries);
    benchmark::DoNotOptimize(header.spec_hash);
    benchmark::DoNotOptimize(entries.data());
  }
}
BENCHMARK(BM_ArtifactReadJsonl)->Unit(benchmark::kMillisecond);

void BM_ArtifactReadBinary(benchmark::State& state) {
  const std::string& path = shard_paths(sc::ArtifactFormat::kBinary).front();
  for (auto _ : state) {
    std::vector<sc::ShardEntry> entries;
    const sc::ShardHeader header = sc::read_any_artifact(path, &entries);
    benchmark::DoNotOptimize(header.spec_hash);
    benchmark::DoNotOptimize(entries.data());
  }
}
BENCHMARK(BM_ArtifactReadBinary)->Unit(benchmark::kMillisecond);

// --- full merge: the pair-gated >= 3x contract -----------------------------

void BM_MergeJsonlShards(benchmark::State& state) {
  const sc::SweepPlan& plan = io_plan();
  const std::vector<std::string>& paths =
      shard_paths(sc::ArtifactFormat::kJsonl);
  for (auto _ : state) {
    const std::vector<sc::CellResult> merged = sc::merge_shards(plan, paths);
    benchmark::DoNotOptimize(merged.data());
  }
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(plan.cells.size()));
}
BENCHMARK(BM_MergeJsonlShards)->Unit(benchmark::kMillisecond);

void BM_MergeBinaryShards(benchmark::State& state) {
  const sc::SweepPlan& plan = io_plan();
  const std::vector<std::string>& paths =
      shard_paths(sc::ArtifactFormat::kBinary);
  for (auto _ : state) {
    const std::vector<sc::CellResult> merged = sc::merge_shards(plan, paths);
    benchmark::DoNotOptimize(merged.data());
  }
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(plan.cells.size()));
}
BENCHMARK(BM_MergeBinaryShards)->Unit(benchmark::kMillisecond);

// --- warm-cache sweep: the pair-gated >= 2x contract -----------------------

/// Seeds a cache_dir with every plan cell's synthetic aggregates via the
/// public store path, once per process.
const std::string& seeded_cache_dir(bool packed) {
  static const auto seed = [](const std::string& name) {
    const std::string dir = bench_dir() + "/" + name;
    const sc::SweepPlan& plan = io_plan();
    for (std::size_t i = 0; i < plan.cells.size(); ++i) {
      sc::cache_store(dir, plan.cells[i].hash, synth_result(i));
    }
    return dir;
  };
  static const std::string files_dir = seed("cache_files");
  static const std::string packed_dir = [&] {
    const std::string dir = seed("cache_packed");
    sc::pack_cache_dir(dir);
    return dir;
  }();
  return packed ? packed_dir : files_dir;
}

/// One warm sweep pass: every cell hits the cache, zero trials execute —
/// the iteration measures the cache front end (and result assembly) alone.
void warm_sweep(benchmark::State& state, bool packed) {
  const sc::SweepPlan& plan = io_plan();
  sc::SweepOptions opt;
  opt.threads = 1;
  opt.cache_dir = seeded_cache_dir(packed);
  for (auto _ : state) {
    const std::vector<sc::CellResult> results =
        sc::run_shard(plan, 1, 1, opt);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(plan.cells.size()));
}

void BM_WarmCacheFilesSweep(benchmark::State& state) {
  warm_sweep(state, /*packed=*/false);
}
BENCHMARK(BM_WarmCacheFilesSweep)->Unit(benchmark::kMillisecond);

void BM_WarmCachePackedSweep(benchmark::State& state) {
  warm_sweep(state, /*packed=*/true);
}
BENCHMARK(BM_WarmCachePackedSweep)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
