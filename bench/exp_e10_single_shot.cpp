// E10 — section 5's "constant probability" remark, measured.
//
// Paper claim: demanding only constant success probability (instead of a
// bounded EXPECTED time) lets each algorithm drop one loop. The single-sweep
// variants run every phase once; a missed phase is gone forever.
//
// Table 1: success probability within budget c*(D + D^2/k) as c grows —
//          both variants find the treasure with constant probability once c
//          clears the algorithm's competitiveness constant; the sweep gets
//          there at SMALLER c (no budget re-spent on covered scales) and
//          both converge to 1, the sweep via ever-pricier late phases.
// Table 2: time quantiles — the sweep's conditional times are fine, but its
//          tail (p95 and the censored mean) is much heavier than A_k's:
//          dropping the loop trades the bounded expectation away.
//
// Runs on the scenario subsystem: each budget multiplier c is one
// two-strategy spec (full vs sweep variant, paired instances), with the
// budget as the spec's time_cap.
#include <exception>
#include <utility>

#include "exp_common.h"

namespace ants::bench {
namespace {

int run(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const ExpOptions opt = parse_common(cli, 400);
  const std::int64_t d = cli.get_int("distance", opt.full ? 96 : 48);
  const std::int64_t k = cli.get_int("agents", 16);
  cli.finish();

  banner("E10: single-sweep constant-probability variants (section 5 remark)",
         "expect: success within c*(D + D^2/k) is a constant < 1 for small "
         "c; the full algorithms' repetition buys certainty; sweep tails are "
         "heavier");

  const double optimal = static_cast<double>(d) +
                         static_cast<double>(d) * static_cast<double>(d) /
                             static_cast<double>(k);

  const std::string full_k = "known-k";
  const std::string sweep_k = "sweep-known-k";
  const std::string full_u = "uniform(eps=0.5)";
  const std::string sweep_u = "sweep-uniform(eps=0.5)";

  // --- Table 1: success probability vs budget multiplier -------------------
  {
    util::Table table({"strategy", "c (budget = c*(D+D^2/k))", "success rate",
                       "mean T | found"});
    // The uniform family pays an extra polylog(k) factor on top of the
    // optimal budget, so probe it at proportionally larger multipliers.
    const std::vector<double> cs_known{4, 8, 16, 32, 64};
    const std::vector<double> cs_uniform{16, 64, 128, 256, 512};
    const std::vector<std::pair<std::vector<std::string>,
                                const std::vector<double>*>>
        plan{{{full_k, sweep_k}, &cs_known},
             {{full_u, sweep_u}, &cs_uniform}};

    // Row order matches the original harness: strategy-major, then c — so
    // collect per-strategy rows first.
    std::vector<std::pair<std::string, std::vector<std::vector<std::string>>>>
        by_strategy;
    for (const auto& [pair_strategies, cs] : plan) {
      std::vector<std::vector<std::string>> rows_full, rows_sweep;
      for (const double c : *cs) {
        scenario::ScenarioSpec budget_spec = spec(opt, "e10-budget");
        budget_spec.strategies = pair_strategies;
        budget_spec.ks = {k};
        budget_spec.distances = {d};
        budget_spec.seed =
            rng::mix_seed(opt.seed, static_cast<std::uint64_t>(c));
        budget_spec.time_cap = static_cast<sim::Time>(c * optimal);
        const std::vector<scenario::CellResult> results =
            scenario::run_sweep(budget_spec);
        for (std::size_t si = 0; si < results.size(); ++si) {
          const sim::RunStats& rs = results[si].stats;
          // Mean over the found trials only (censoring-free).
          double found_sum = 0;
          std::int64_t found_n = 0;
          for (const double t : rs.times) {
            if (t < static_cast<double>(budget_spec.time_cap)) {
              found_sum += t;
              ++found_n;
            }
          }
          std::vector<std::string> row = {
              results[si].cell.strategy_name, fmt0(c),
              fmt3(rs.success_rate),
              found_n > 0
                  ? fmt0(found_sum / static_cast<double>(found_n))
                  : "-"};
          (si == 0 ? rows_full : rows_sweep).push_back(std::move(row));
        }
      }
      by_strategy.emplace_back(pair_strategies[0], std::move(rows_full));
      by_strategy.emplace_back(pair_strategies[1], std::move(rows_sweep));
    }
    for (const auto& [name, rows] : by_strategy) {
      for (const auto& row : rows) table.add_row(row);
    }
    emit(table, opt);
    std::cout << "\nreading: the sweeps reach constant success probability "
              << "at SMALLER budgets than their full counterparts — dropping "
              << "the outer loop means no budget is spent re-running scales "
              << "already covered — exactly the section 5 trade: constant "
              << "probability, one loop cheaper. Both families converge to 1 "
              << "as c grows; the uniform pair needs c inflated by its "
              << "polylog(k) competitiveness, which is why its column uses "
              << "larger multipliers.\n\n";
  }

  // --- Table 2: tail comparison under a generous cap ------------------------
  {
    util::Table table({"strategy", "median T", "q75 T", "q95 T",
                       "censored mean", "success rate"});
    scenario::ScenarioSpec tail_spec = spec(opt, "e10-tails");
    tail_spec.strategies = {full_k, sweep_k};
    tail_spec.ks = {k};
    tail_spec.distances = {d};
    tail_spec.seed = rng::mix_seed(opt.seed, 0x7A11);
    tail_spec.time_cap = static_cast<sim::Time>(512 * optimal);
    for (const scenario::CellResult& r : scenario::run_sweep(tail_spec)) {
      const sim::RunStats& rs = r.stats;
      table.add_row({r.cell.strategy_name, fmt0(rs.time.median),
                     fmt0(rs.time.q75), fmt0(rs.time.q95),
                     fmt0(rs.time.mean), fmt3(rs.success_rate)});
    }
    emit(table, opt);
    std::cout << "\nreading: the sweep's median is BETTER (it reaches the "
              << "treasure's scale in one pass), but its q95 crosses above "
              << "the full algorithm's: a missed phase can only be retried "
              << "at 4x the cost, so the tail thickens toward a divergent "
              << "expectation. The full A_k buys its bounded E[T] precisely "
              << "by re-running cheap early phases — the loop the sweep "
              << "dropped.\n";
  }
  return 0;
}

}  // namespace
}  // namespace ants::bench

int main(int argc, char** argv) try {
  return ants::bench::run(argc, argv);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
