// Ablation — section 6's memory remark: what do coin-flip registers cost?
//
// Paper claim: "going in a straight line for a distance of d = 2^l can be
// implemented using O(log log d) memory bits, by employing a randomized
// counting technique" — i.e. the algorithms survive replacing every exact
// distance/budget register with a consecutive-heads randomized counter, at
// a constant-factor price.
//
// Table 1: uniform algorithm, exact registers vs counters, phi across k —
//          the lowmem column must stay a CONSTANT multiple of the exact
//          column (not grow with k), or the memory claim would be hollow.
// Table 2: harmonic algorithm, exact power-law draw vs dyadic coin-flip
//          power law — success probability within the theorem budget.
// Runs on the scenario subsystem: exact and lowmem variants share each spec
// (paired instances), and Table 1's whole k-sweep is one scheduler pass.
#include <cmath>
#include <exception>

#include "exp_common.h"

namespace ants::bench {
namespace {

int run(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const ExpOptions opt = parse_common(cli, 150);
  const std::int64_t d = cli.get_int("distance", opt.full ? 64 : 32);
  cli.finish();

  banner("ABL: low-memory (coin-flip) registers vs exact arithmetic "
         "(section 6 remark)",
         "expect: lowmem phi / exact phi is a bounded constant across k; "
         "success probabilities match within noise");

  // --- Table 1: uniform algorithm ------------------------------------------
  {
    util::Table table({"k", "exact phi (median)", "lowmem phi (median)",
                       "ratio", "exact success", "lowmem success"});
    const std::vector<std::int64_t> ks =
        opt.full ? std::vector<std::int64_t>{2, 8, 32, 128, 512}
                 : std::vector<std::int64_t>{2, 8, 32, 128};
    // The cap is k-independent, so the whole k-sweep is ONE spec: all
    // (variant, k) cells overlap in the scheduler, paired per k.
    scenario::ScenarioSpec sweep = spec(opt, "abl-lowmem-uniform");
    sweep.strategies = {"uniform(eps=0.5)", "lowmem-uniform(eps=0.5)"};
    sweep.ks = ks;
    sweep.distances = {d};
    sweep.time_cap = 1 << 22;
    const std::vector<scenario::CellResult> results =
        scenario::run_sweep(sweep);
    // Flatten order: strategy-major, then k.
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      const sim::RunStats& rs_exact = results[ki].stats;
      const sim::RunStats& rs_low = results[ks.size() + ki].stats;
      table.add_row({fmt0(double(ks[ki])),
                     fmt2(rs_exact.median_competitiveness),
                     fmt2(rs_low.median_competitiveness),
                     fmt2(rs_low.median_competitiveness /
                          rs_exact.median_competitiveness),
                     fmt3(rs_exact.success_rate), fmt3(rs_low.success_rate)});
    }
    emit(table, opt);
    std::cout << "\nreading: the ratio column stays bounded (in fact <= 1: "
              << "the counter's geometric spread smears each trip across "
              << "neighboring octaves, a mild free hedge that diversifies "
              << "the collective search the way the harmonic algorithm's "
              << "spread does). The section 6 claim is confirmed with room "
              << "to spare: O(log log) bits of working memory per register "
              << "do not cost the uniform algorithm its competitiveness "
              << "class.\n\n";
  }

  // --- Table 2: harmonic algorithm -----------------------------------------
  {
    util::Table table({"delta", "k", "exact success", "lowmem success",
                       "exact median T", "lowmem median T"});
    const std::vector<double> deltas{0.3, 0.5, 0.8};
    for (const double delta : deltas) {
      const std::int64_t k = 4 * static_cast<std::int64_t>(
          std::ceil(std::pow(static_cast<double>(d), delta)));
      const double budget =
          static_cast<double>(d) +
          std::pow(static_cast<double>(d), 2.0 + delta) /
              static_cast<double>(k);
      const std::string delta_text = util::fmt_param(delta);
      scenario::ScenarioSpec pair_spec = spec(opt, "abl-lowmem-harmonic");
      pair_spec.strategies = {"harmonic(delta=" + delta_text + ")",
                              "lowmem-harmonic(delta=" + delta_text + ")"};
      pair_spec.ks = {k};
      pair_spec.distances = {d};
      pair_spec.seed = rng::mix_seed(opt.seed,
                                     static_cast<std::uint64_t>(delta * 100));
      pair_spec.time_cap = static_cast<sim::Time>(32 * budget);
      const std::vector<scenario::CellResult> results =
          scenario::run_sweep(pair_spec);
      const sim::RunStats& rs_exact = results[0].stats;
      const sim::RunStats& rs_low = results[1].stats;
      table.add_row({delta_text, fmt0(double(k)),
                     fmt3(rs_exact.success_rate), fmt3(rs_low.success_rate),
                     fmt0(rs_exact.time.median), fmt0(rs_low.time.median)});
    }
    emit(table, opt);
    std::cout << "\nreading: the dyadic coin-flip power law is a drop-in "
              << "replacement for the exact d^-(2+delta) draw — success "
              << "stays high and medians stay within a small factor. An ant "
              << "needs a compass, a coin, and a five-bit run counter to "
              << "execute Algorithm 2.\n";
  }
  return 0;
}

}  // namespace
}  // namespace ants::bench

int main(int argc, char** argv) try {
  return ants::bench::run(argc, argv);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
