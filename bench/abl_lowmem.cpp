// Ablation — section 6's memory remark: what do coin-flip registers cost?
//
// Paper claim: "going in a straight line for a distance of d = 2^l can be
// implemented using O(log log d) memory bits, by employing a randomized
// counting technique" — i.e. the algorithms survive replacing every exact
// distance/budget register with a consecutive-heads randomized counter, at
// a constant-factor price.
//
// Table 1: uniform algorithm, exact registers vs counters, phi across k —
//          the lowmem column must stay a CONSTANT multiple of the exact
//          column (not grow with k), or the memory claim would be hollow.
// Table 2: harmonic algorithm, exact power-law draw vs dyadic coin-flip
//          power law — success probability within the theorem budget.
#include <exception>

#include "core/harmonic.h"
#include "core/lowmem.h"
#include "core/uniform.h"
#include "exp_common.h"

namespace ants::bench {
namespace {

int run(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const ExpOptions opt = parse_common(cli, 150);
  const std::int64_t d = cli.get_int("distance", opt.full ? 64 : 32);
  cli.finish();

  banner("ABL: low-memory (coin-flip) registers vs exact arithmetic "
         "(section 6 remark)",
         "expect: lowmem phi / exact phi is a bounded constant across k; "
         "success probabilities match within noise");

  // --- Table 1: uniform algorithm ------------------------------------------
  {
    util::Table table({"k", "exact phi (median)", "lowmem phi (median)",
                       "ratio", "exact success", "lowmem success"});
    const std::vector<std::int64_t> ks =
        opt.full ? std::vector<std::int64_t>{2, 8, 32, 128, 512}
                 : std::vector<std::int64_t>{2, 8, 32, 128};
    const core::UniformStrategy exact(0.5);
    const core::LowMemUniformStrategy lowmem(0.5);
    for (const std::int64_t k : ks) {
      sim::RunConfig config;
      config.trials = opt.trials;
      config.seed = rng::mix_seed(opt.seed, static_cast<std::uint64_t>(k));
      config.time_cap = 1 << 22;
      const sim::RunStats rs_exact = sim::run_trials(
          exact, static_cast<int>(k), d, opt.placement, config);
      const sim::RunStats rs_low = sim::run_trials(
          lowmem, static_cast<int>(k), d, opt.placement, config);
      table.add_row({fmt0(double(k)), fmt2(rs_exact.median_competitiveness),
                     fmt2(rs_low.median_competitiveness),
                     fmt2(rs_low.median_competitiveness /
                          rs_exact.median_competitiveness),
                     fmt3(rs_exact.success_rate), fmt3(rs_low.success_rate)});
    }
    emit(table, opt);
    std::cout << "\nreading: the ratio column stays bounded (in fact <= 1: "
              << "the counter's geometric spread smears each trip across "
              << "neighboring octaves, a mild free hedge that diversifies "
              << "the collective search the way the harmonic algorithm's "
              << "spread does). The section 6 claim is confirmed with room "
              << "to spare: O(log log) bits of working memory per register "
              << "do not cost the uniform algorithm its competitiveness "
              << "class.\n\n";
  }

  // --- Table 2: harmonic algorithm -----------------------------------------
  {
    util::Table table({"delta", "k", "exact success", "lowmem success",
                       "exact median T", "lowmem median T"});
    const std::vector<double> deltas{0.3, 0.5, 0.8};
    for (const double delta : deltas) {
      const core::HarmonicStrategy exact(delta);
      const core::LowMemHarmonicStrategy lowmem(delta);
      const std::int64_t k = 4 * static_cast<std::int64_t>(
          std::ceil(std::pow(static_cast<double>(d), delta)));
      sim::RunConfig config;
      config.trials = opt.trials;
      config.seed = rng::mix_seed(opt.seed,
                                  static_cast<std::uint64_t>(delta * 100));
      const double budget =
          static_cast<double>(d) +
          std::pow(static_cast<double>(d), 2.0 + delta) /
              static_cast<double>(k);
      config.time_cap = static_cast<sim::Time>(32 * budget);
      const sim::RunStats rs_exact = sim::run_trials(
          exact, static_cast<int>(k), d, opt.placement, config);
      const sim::RunStats rs_low = sim::run_trials(
          lowmem, static_cast<int>(k), d, opt.placement, config);
      table.add_row({util::fmt_param(delta), fmt0(double(k)),
                     fmt3(rs_exact.success_rate), fmt3(rs_low.success_rate),
                     fmt0(rs_exact.time.median), fmt0(rs_low.time.median)});
    }
    emit(table, opt);
    std::cout << "\nreading: the dyadic coin-flip power law is a drop-in "
              << "replacement for the exact d^-(2+delta) draw — success "
              << "stays high and medians stay within a small factor. An ant "
              << "needs a compass, a coin, and a five-bit run counter to "
              << "execute Algorithm 2.\n";
  }
  return 0;
}

}  // namespace
}  // namespace ants::bench

int main(int argc, char** argv) try {
  return ants::bench::run(argc, argv);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
