// E5 — Theorem 4.2: with a one-sided k^eps-approximation of k, the
// competitiveness is Omega(eps(k) * log k), and this is tight.
//
// Setting: each agent receives k~ with k~^(1-eps) <= k <= k~. The theorem's
// regime has the treasure far away (k <= D — the D^2/k term dominates), so
// the sweep uses D = 4*k~. True k is pinned at the pessimistic end
// k = k~^(1-eps). Two algorithms:
//
//   naive   trust the estimate and run A_{k~}: every phase's spiral budget
//           is a factor k~^eps too small, so each phase hits with
//           probability ~k/k~ instead of a constant and the schedule
//           escalates through exponentially-growing stages before it
//           recovers — the measured (median) phi blows up super-
//           logarithmically in k~;
//   hedged  cycle over the Theta(eps log k~) candidate octaves in the
//           uncertainty window (core/hedged.h): phi tracks eps*log2(k~),
//           matching the paper's lower bound up to constants.
//
// Medians are reported (the naive schedule's recovery time is heavy-tailed;
// means are dominated by rare many-stage trials). Together the two rows
// bracket Theorem 4.2: no algorithm beats Omega(eps log k), and hedging
// achieves that order.
#include <cmath>
#include <cstdio>
#include <exception>

#include "exp_common.h"
#include "sim/metrics.h"

namespace ants::bench {
namespace {

int run(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const ExpOptions opt = parse_common(cli, 80);
  const std::vector<double> epss = cli.get_double_list("eps", {0.25, 0.5, 1.0});
  cli.finish();

  banner("E5: the price of approximate knowledge (Theorem 4.2)",
         "expect: naive trust of k~ blows up super-logarithmically; hedging "
         "over the uncertainty window costs Theta(eps * log k~) — the lower "
         "bound's order, showing tightness");

  const std::vector<std::int64_t> kts =
      opt.full ? std::vector<std::int64_t>{16, 32, 64, 128, 256}
               : std::vector<std::int64_t>{16, 32, 64, 128};

  util::Table table({"eps", "k~", "true k", "D", "phi~ naive(A_k~)",
                     "phi~ hedged", "eps*log2(k~)", "hedged/(eps*log2 k~)"});

  for (const double eps : epss) {
    for (const std::int64_t kt : kts) {
      const auto true_k = static_cast<std::int64_t>(std::max(
          1.0, std::pow(static_cast<double>(kt), 1.0 - eps)));
      const std::int64_t d = 4 * kt;  // theorem regime: k <= D

      // Both algorithms in one two-strategy scenario: paired instances via
      // the strategy-independent cell seed. The naive row is A_{k~} run
      // blind (k_belief pinned at the estimate, not the true k).
      scenario::ScenarioSpec cell = spec(opt, "e5-approx-lower");
      cell.strategies = {
          "known-k(k_belief=" + std::to_string(kt) + ")",
          "hedged(k_estimate=" + std::to_string(kt) +
              ", eps=" + util::fmt_exact(eps) + ")"};
      cell.ks = {true_k};
      cell.distances = {d};
      cell.seed = rng::mix_seed(
          opt.seed, static_cast<std::uint64_t>(kt * 100 + eps * 17));
      // Cap far above anything the hedged strategy needs, so only the naive
      // schedule's pathological trials censor (reported via medians anyway).
      cell.time_cap = sim::Time{1} << 36;
      const std::vector<scenario::CellResult> results =
          scenario::run_sweep(cell);
      const sim::RunStats& rs_naive = results[0].stats;
      const sim::RunStats& rs_hedged = results[1].stats;

      const double target =
          std::max(1.0, eps * std::log2(static_cast<double>(kt)));
      table.add_row({fmt2(eps), fmt0(double(kt)), fmt0(double(true_k)),
                     fmt0(double(d)), fmt2(rs_naive.median_competitiveness),
                     fmt2(rs_hedged.median_competitiveness), fmt2(target),
                     fmt2(rs_hedged.median_competitiveness / target)});
    }
  }
  emit(table, opt);

  std::cout << "\nreading: phi~ is the median-based competitiveness "
            << "T_median/(D + D^2/k). Trusting the estimate starves every "
            << "spiral budget by k~^eps; the schedule recovers only after "
            << "~sqrt(k~^eps) extra doubling stages, so the naive penalty "
            << "is ~4^sqrt(k~^eps): negligible while k~^eps is small (the "
            << "eps<=0.5 rows) and catastrophic once it is not (the eps=1 "
            << "column explodes). The hedged column instead stays "
            << "proportional to eps*log2(k~) for every eps — matching "
            << "Theorem 4.2's Omega(eps log k) lower bound and certifying "
            << "Theta(eps log k) for the one-sided-estimate regime.\n";
  return 0;
}

}  // namespace
}  // namespace ants::bench

int main(int argc, char** argv) try {
  return ants::bench::run(argc, argv);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
