// Ablation — what do the return-to-source legs cost?
//
// Atomic procedure (4) of the paper sends every agent home after every
// trip. Biologically this is free navigation state (path integration home
// resets the odometer); algorithmically it looks like pure overhead — each
// phase i pays an extra Theta(2^i) walk. This ablation drops the return
// leg (trips launch from wherever the previous spiral ended) and measures
// the difference.
//
// Table: A_k vs A_k-without-returns across D x k. Expectation: both stay
// O(1)-competitive — the return legs are the same order as the outbound
// walks they replace, so only constants move; with trips launched from
// off-center positions the uniform-ball targeting drifts, which can even
// HURT (the schedule's per-phase hit analysis assumes trips start at the
// source). The point of the ablation is that "return home" is not what the
// algorithm's optimality hinges on.
// Runs on the scenario subsystem: each (D, k) is one paired two-strategy
// spec, so both variants face identical treasure placements.
#include <exception>

#include "exp_common.h"

namespace ants::bench {
namespace {

int run(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const ExpOptions opt = parse_common(cli, 150);
  cli.finish();

  banner("ABL: return-to-source vs continue-in-place (A_k trips)",
         "expect: both O(1)-competitive; dropping returns moves constants "
         "only");

  util::Table table({"D", "k", "with-return phi", "no-return phi", "ratio",
                     "with success", "no-ret success"});

  struct Cell {
    std::int64_t d;
    std::int64_t k;
  };
  const std::vector<Cell> cells =
      opt.full ? std::vector<Cell>{{16, 4}, {32, 8}, {64, 16}, {128, 32},
                                   {128, 128}}
               : std::vector<Cell>{{16, 4}, {32, 8}, {64, 16}, {128, 32}};

  for (const auto& [d, k] : cells) {
    scenario::ScenarioSpec pair_spec = spec(opt, "abl-return-policy");
    pair_spec.strategies = {"known-k", "known-k-no-return"};
    pair_spec.ks = {k};
    pair_spec.distances = {d};
    pair_spec.seed = rng::mix_seed(opt.seed,
                                   static_cast<std::uint64_t>(d * 31 + k));
    pair_spec.time_cap = 512 * (d + d * d / k);
    const std::vector<scenario::CellResult> results =
        scenario::run_sweep(pair_spec);
    const sim::RunStats& rs_with = results[0].stats;
    const sim::RunStats& rs_without = results[1].stats;

    table.add_row({fmt0(double(d)), fmt0(double(k)),
                   fmt2(rs_with.median_competitiveness),
                   fmt2(rs_without.median_competitiveness),
                   fmt2(rs_without.median_competitiveness /
                        rs_with.median_competitiveness),
                   fmt3(rs_with.success_rate), fmt3(rs_without.success_rate)});
  }
  emit(table, opt);

  std::cout << "\nreading: the ratio column stays near 1 across the sweep — "
            << "the return legs are the same Theta(2^i) order as the "
            << "outbound walks, so keeping them costs only a constant. The "
            << "paper's choice buys bounded navigation memory (procedure 4 "
            << "is a path-integration reset) for a constant-factor price: "
            << "a trade any ant should take.\n";
  return 0;
}

}  // namespace
}  // namespace ants::bench

int main(int argc, char** argv) try {
  return ants::bench::run(argc, argv);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
