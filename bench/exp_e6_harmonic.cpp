// E6 — Theorem 5.1: the harmonic algorithm.
//
// Paper claim: for delta in (0, 0.8] and any eps > 0 there is alpha such
// that k > alpha * D^delta implies the search finishes in
// O(D + D^(2+delta)/k) time with probability >= 1 - eps.
//
// Reproduction, per delta:
//   (a) threshold table — success probability within budget
//       c*(D + D^(2+delta)/k) as k sweeps through alpha*D^delta: expect a
//       sharp rise to ~1 once k clears the threshold;
//   (b) time table — median and 95th-percentile times in the
//       "enough agents" regime, compared to the theorem's budget (means are
//       meaningless: single-trip costs are heavy-tailed with infinite
//       expectation, see DESIGN.md 3.4).
#include <cmath>
#include <cstdio>
#include <exception>

#include "exp_common.h"
#include "sim/metrics.h"

namespace ants::bench {
namespace {

int run(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const ExpOptions opt = parse_common(cli, 200);
  const std::int64_t d = cli.get_int("distance", opt.full ? 128 : 64);
  const double budget_factor = cli.get_double("budget-factor", 8.0);
  const std::vector<double> deltas =
      cli.get_double_list("delta", {0.2, 0.5, 0.8});
  cli.finish();

  banner("E6: the harmonic algorithm (Theorem 5.1)",
         "expect: success prob within c*(D + D^(2+delta)/k) jumps to ~1 "
         "once k > alpha*D^delta; quantile times track the budget");

  util::Table table({"delta", "k", "k/D^delta", "budget", "success",
                     "median T", "q95 T"});

  for (const double delta : deltas) {
    const std::string delta_text = util::fmt_exact(delta);
    const double d_delta = std::pow(static_cast<double>(d), delta);
    for (double mult = 0.25; mult <= 16.0; mult *= 4.0) {
      const int k = std::max(1, static_cast<int>(mult * d_delta));
      const double budget =
          budget_factor *
          (static_cast<double>(d) +
           std::pow(static_cast<double>(d), 2.0 + delta) / k);
      // One cell per (delta, mult): the theorem ties the censoring budget
      // to the cell's own (k, D), so the cap is per-spec.
      scenario::ScenarioSpec cell = spec(opt, "e6-harmonic");
      cell.strategies = {"harmonic(delta=" + delta_text + ")"};
      cell.ks = {k};
      cell.distances = {d};
      cell.seed = rng::mix_seed(
          opt.seed, static_cast<std::uint64_t>(k * 37 + delta * 1001));
      cell.time_cap = static_cast<sim::Time>(budget);
      const sim::RunStats rs = scenario::run_sweep(cell)[0].stats;
      table.add_row({fmt2(delta), fmt0(double(k)), fmt2(mult),
                     fmt0(budget), fmt2(rs.success_rate),
                     fmt0(rs.time.median), fmt0(rs.time.q95)});
    }
  }
  emit(table, opt);

  std::cout << "\nreading: within each delta block, success probability "
            << "climbs toward 1 as k/D^delta passes a constant alpha, and "
            << "median times sit well inside the theorem's "
            << "O(D + D^(2+delta)/k) budget — an extremely simple strategy "
            << "(one power-law draw, one spiral, go home) is near-optimal "
            << "once the colony is large enough.\n";
  return 0;
}

}  // namespace
}  // namespace ants::bench

int main(int argc, char** argv) try {
  return ants::bench::run(argc, argv);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
