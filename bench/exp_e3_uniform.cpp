// E3 — Theorem 3.3: the uniform algorithm is O(log^(1+eps) k)-competitive.
//
// Paper claim: for every eps > 0, A_uniform(eps) achieves
// phi(k) = O(log^(1+eps) k) with NO information about k.
//
// Reproduction: sweep k for several eps at fixed D; report phi(k), the
// normalized column phi / log2(k)^(1+eps) (expected bounded), and fit the
// exponent p in phi ~ (log k)^p (expected <= 1 + eps).
//
// Runs on the scenario subsystem: one spec lists every uniform(eps=...)
// variant, and the sweep scheduler runs all (eps, k) cells concurrently —
// with paired instances per k, since cell seeds do not depend on the
// strategy.
#include <cstdio>
#include <exception>

#include "core/competitive.h"
#include "exp_common.h"
#include "scenario/sweep.h"
#include "sim/metrics.h"

namespace ants::bench {
namespace {

int run(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const ExpOptions opt = parse_common(cli, 120);
  const std::int64_t d = cli.get_int("distance", opt.full ? 128 : 64);
  const std::vector<double> epss =
      cli.get_double_list("eps", {0.1, 0.3, 0.6, 1.0});
  cli.finish();

  banner("E3: uniform search (Theorem 3.3)",
         "expect: phi(k) grows like log^(1+eps) k — the normalized column "
         "stays bounded and the fitted exponent is ~<= 1+eps");

  const std::vector<std::int64_t> ks =
      opt.full ? std::vector<std::int64_t>{1, 4, 16, 64, 256, 1024, 4096}
               : std::vector<std::int64_t>{1, 4, 16, 64, 256, 1024};

  scenario::ScenarioSpec spec;
  spec.name = "e3-uniform";
  for (const double eps : epss) {
    // Exact round-trip, so the strategy runs with the same eps the
    // normalization/fit columns use (%g would truncate).
    spec.strategies.push_back("uniform(eps=" + util::fmt_exact(eps) + ")");
  }
  spec.ks = ks;
  spec.distances = {d};
  spec.trials = opt.trials;
  spec.seed = opt.seed;
  spec.placements = {opt.placement_name};
  const std::vector<scenario::CellResult> results = scenario::run_sweep(spec);
  // Cell (ei, ki) of the single-distance sweep.
  const auto cell = [&](std::size_t ei, std::size_t ki) -> const sim::RunStats& {
    return results[ei * ks.size() + ki].stats;
  };

  util::Table table({"eps", "k", "mean T", "phi",
                     "phi/log2(k)^(1+eps)", "fitted exponent"});

  for (std::size_t ei = 0; ei < epss.size(); ++ei) {
    const double eps = epss[ei];
    std::vector<core::CompetitivePoint> curve;
    std::vector<std::vector<std::string>> rows;
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      const std::int64_t k = ks[ki];
      const sim::RunStats& rs = cell(ei, ki);
      const double phi = rs.mean_competitiveness;
      curve.push_back({k, phi});
      rows.push_back({fmt2(eps), fmt0(double(k)), fmt0(rs.time.mean),
                      fmt2(phi),
                      fmt2(core::ratio_to_log_power(phi, k, 1.0 + eps)), ""});
    }
    const auto fit = core::fit_log_exponent(curve);
    rows.back().back() = fmt2(fit.slope);
    for (auto& row : rows) table.add_row(std::move(row));
  }
  emit(table, opt);

  std::cout << "\nreading: for each eps the normalized column settles to a "
            << "constant — phi(k) = Theta(log^(1+eps) k) as Theorem 3.3 "
            << "promises, with no knowledge of k at all.\n";
  return 0;
}

}  // namespace
}  // namespace ants::bench

int main(int argc, char** argv) try {
  return ants::bench::run(argc, argv);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
