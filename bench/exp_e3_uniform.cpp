// E3 — Theorem 3.3: the uniform algorithm is O(log^(1+eps) k)-competitive.
//
// Paper claim: for every eps > 0, A_uniform(eps) achieves
// phi(k) = O(log^(1+eps) k) with NO information about k.
//
// Reproduction: sweep k for several eps at fixed D; report phi(k), the
// normalized column phi / log2(k)^(1+eps) (expected bounded), and fit the
// exponent p in phi ~ (log k)^p (expected <= 1 + eps).
#include <exception>

#include "core/competitive.h"
#include "core/uniform.h"
#include "exp_common.h"
#include "sim/metrics.h"

namespace ants::bench {
namespace {

int run(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const ExpOptions opt = parse_common(cli, 120);
  const std::int64_t d = cli.get_int("distance", opt.full ? 128 : 64);
  const std::vector<double> epss =
      cli.get_double_list("eps", {0.1, 0.3, 0.6, 1.0});
  cli.finish();

  banner("E3: uniform search (Theorem 3.3)",
         "expect: phi(k) grows like log^(1+eps) k — the normalized column "
         "stays bounded and the fitted exponent is ~<= 1+eps");

  const std::vector<std::int64_t> ks =
      opt.full ? std::vector<std::int64_t>{1, 4, 16, 64, 256, 1024, 4096}
               : std::vector<std::int64_t>{1, 4, 16, 64, 256, 1024};

  util::Table table({"eps", "k", "mean T", "phi",
                     "phi/log2(k)^(1+eps)", "fitted exponent"});

  for (const double eps : epss) {
    const core::UniformStrategy strategy(eps);
    std::vector<core::CompetitivePoint> curve;
    std::vector<std::vector<std::string>> rows;
    for (const std::int64_t k : ks) {
      sim::RunConfig config;
      config.trials = opt.trials;
      config.seed = rng::mix_seed(
          opt.seed, static_cast<std::uint64_t>(k * 31 + eps * 1000));
      const sim::RunStats rs = sim::run_trials(
          strategy, static_cast<int>(k), d, opt.placement, config);
      const double phi = rs.mean_competitiveness;
      curve.push_back({k, phi});
      rows.push_back({fmt2(eps), fmt0(double(k)), fmt0(rs.time.mean),
                      fmt2(phi),
                      fmt2(core::ratio_to_log_power(phi, k, 1.0 + eps)), ""});
    }
    const auto fit = core::fit_log_exponent(curve);
    rows.back().back() = fmt2(fit.slope);
    for (auto& row : rows) table.add_row(std::move(row));
  }
  emit(table, opt);

  std::cout << "\nreading: for each eps the normalized column settles to a "
            << "constant — phi(k) = Theta(log^(1+eps) k) as Theorem 3.3 "
            << "promises, with no knowledge of k at all.\n";
  return 0;
}

}  // namespace
}  // namespace ants::bench

int main(int argc, char** argv) try {
  return ants::bench::run(argc, argv);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
