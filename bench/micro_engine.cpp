// Microbenchmarks for the simulation engine: cost of a full collaborative
// trial at experiment scale. The headline number — a D=256, k=64 known-k
// trial in microseconds — is what makes the E1-E8 sweeps laptop-scale
// (stepping the same trial would cost ~D^2/k * k = 65536+ node visits).
//
// The BM_Unified* group covers the environment-aware executor
// (sim::run_trial): its sync path must stay at parity with the historical
// run_search numbers (it IS the same sweep), and the environment draw,
// async, multi-target, and lock-step costs get their own counters.
// bench/baseline_engine.json pins a reference run of this harness;
// tools/bench_compare.py diffs a fresh run against it (the CI
// benchmark-smoke job does both).
#include <benchmark/benchmark.h>

#include "baselines/random_walk.h"
#include "baselines/sector_sweep.h"
#include "core/harmonic.h"
#include "core/known_k.h"
#include "core/uniform.h"
#include "plane/strategies.h"
#include "scenario/sweep.h"
#include "sim/batch/batch.h"
#include "sim/engine.h"
#include "sim/placement.h"
#include "sim/trial.h"
#include "telemetry/run_telemetry.h"

namespace {

void BM_TrialKnownK(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const std::int64_t d = state.range(1);
  const ants::core::KnownKStrategy strategy(k);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ants::rng::Rng trial(++seed);
    const auto r = ants::sim::run_search(strategy, k, {d, 0}, trial);
    benchmark::DoNotOptimize(r.time);
  }
}
BENCHMARK(BM_TrialKnownK)
    ->Args({1, 64})
    ->Args({16, 64})
    ->Args({64, 256})
    ->Args({256, 1024});

void BM_TrialUniform(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const ants::core::UniformStrategy strategy(0.5);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ants::rng::Rng trial(++seed);
    const auto r = ants::sim::run_search(strategy, k, {64, 0}, trial);
    benchmark::DoNotOptimize(r.time);
  }
}
BENCHMARK(BM_TrialUniform)->Arg(1)->Arg(16)->Arg(256);

void BM_TrialHarmonic(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const ants::core::HarmonicStrategy strategy(0.5);
  std::uint64_t seed = 0;
  ants::sim::EngineConfig config;
  config.time_cap = ants::sim::Time{1} << 32;  // censor heavy-tail stragglers
  for (auto _ : state) {
    ants::rng::Rng trial(++seed);
    const auto r = ants::sim::run_search(strategy, k, {64, 0}, trial, config);
    benchmark::DoNotOptimize(r.time);
  }
}
BENCHMARK(BM_TrialHarmonic)->Arg(16)->Arg(256);

void BM_TrialSectorSweep(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const ants::baselines::SectorSweepStrategy strategy;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ants::rng::Rng trial(++seed);
    const auto r = ants::sim::run_search(strategy, k, {128, 0}, trial);
    benchmark::DoNotOptimize(r.time);
  }
}
BENCHMARK(BM_TrialSectorSweep)->Arg(4)->Arg(64);

// --- the unified environment-aware executor --------------------------------

// Environment draw alone: two child streams + k delays + k lifetimes.
void BM_UnifiedDrawEnvironment(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const ants::sim::StaggeredStart schedule(4);
  const ants::sim::DoaCrash crashes(0.25);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ants::rng::Rng trial(++seed);
    const auto env = ants::sim::draw_environment(k, {{64, 0}}, schedule,
                                                 crashes, trial);
    benchmark::DoNotOptimize(env.starts.data());
  }
}
BENCHMARK(BM_UnifiedDrawEnvironment)->Arg(16)->Arg(256);

// Sync single-target trial through run_trial: must track BM_TrialKnownK
// (the wrapper indirection is the only difference).
void BM_UnifiedTrialSync(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const std::int64_t d = state.range(1);
  const ants::core::KnownKStrategy strategy(k);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ants::rng::Rng trial(++seed);
    const auto r = ants::sim::run_trial(
        strategy, k, ants::sim::single_target_environment({d, 0}), trial);
    benchmark::DoNotOptimize(r.time);
  }
}
BENCHMARK(BM_UnifiedTrialSync)->Args({16, 64})->Args({64, 256});

// Full async/crash trial: environment draw + segment backend with
// starts/lifetimes live.
void BM_UnifiedTrialAsync(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const std::int64_t d = state.range(1);
  const ants::core::KnownKStrategy strategy(k);
  const ants::sim::StaggeredStart schedule(4);
  const ants::sim::DoaCrash crashes(0.25);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ants::rng::Rng trial(++seed);
    const auto env = ants::sim::draw_environment(k, {{d, 0}}, schedule,
                                                 crashes, trial);
    const auto r = ants::sim::run_trial(strategy, k, env, trial);
    benchmark::DoNotOptimize(r.time);
  }
}
BENCHMARK(BM_UnifiedTrialAsync)->Args({16, 64})->Args({64, 256});

// Multi-target race: per-segment cost scales with the target count.
void BM_UnifiedTrialMultiTarget(benchmark::State& state) {
  const auto n_targets = state.range(0);
  const ants::core::KnownKStrategy strategy(16);
  ants::sim::TrialEnvironment env;
  for (std::int64_t i = 0; i < n_targets; ++i) {
    env.targets.push_back({64 - 2 * i, 2 * i});
  }
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ants::rng::Rng trial(++seed);
    const auto r = ants::sim::run_trial(strategy, 16, env, trial);
    benchmark::DoNotOptimize(r.time);
  }
}
BENCHMARK(BM_UnifiedTrialMultiTarget)->Arg(2)->Arg(8);

// Lock-step backend under an environment (the step-async capability).
void BM_UnifiedTrialStepAsync(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const ants::baselines::RandomWalkStrategy strategy;
  const ants::sim::StaggeredStart schedule(2);
  const ants::sim::FixedLifetime crashes(2000);
  ants::sim::EngineConfig config;
  config.time_cap = 4000;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ants::rng::Rng trial(++seed);
    const auto env = ants::sim::draw_environment(k, {{4, 0}}, schedule,
                                                 crashes, trial);
    const auto r = ants::sim::run_trial(strategy, k, env, trial, config);
    benchmark::DoNotOptimize(r.time);
  }
}
BENCHMARK(BM_UnifiedTrialStepAsync)->Arg(4)->Arg(16);

// Plane backend under the base model through run_trial: must stay at
// parity with the historical run_plane_search cost (it IS the same
// min-clock sweep; the dispatch + environment adaptation is the only
// difference).
void BM_UnifiedTrialPlaneSync(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const std::int64_t d = state.range(1);
  const ants::plane::PlaneKnownKStrategy strategy(k);
  ants::sim::EngineConfig config;
  config.time_cap = 1'000'000;
  ants::sim::TrialEnvironment env;
  env.plane_targets = {{static_cast<double>(d), 0.0}};
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ants::rng::Rng trial(++seed);
    const auto r = ants::sim::run_trial(strategy, k, env, trial, config);
    benchmark::DoNotOptimize(r.time);
  }
}
BENCHMARK(BM_UnifiedTrialPlaneSync)->Args({4, 16})->Args({16, 64});

// Plane backend under the full environment: schedule/crash draws + the
// continuous sweep with starts/lifetimes live and a near/far target pair.
void BM_UnifiedTrialPlaneAsync(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const std::int64_t d = state.range(1);
  const ants::plane::PlaneKnownKStrategy strategy(k);
  const ants::sim::StaggeredStart schedule(2);
  const ants::sim::DoaCrash crashes(0.25);
  ants::sim::EngineConfig config;
  config.time_cap = 1'000'000;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ants::rng::Rng trial(++seed);
    ants::sim::TrialEnvironment env;
    env.plane_targets = {{static_cast<double>(d) / 4.0, 0.0},
                         {static_cast<double>(d), 0.0}};
    env = ants::sim::draw_environment(k, std::move(env), schedule, crashes,
                                      trial);
    const auto r = ants::sim::run_trial(strategy, k, env, trial, config);
    benchmark::DoNotOptimize(r.time);
  }
}
BENCHMARK(BM_UnifiedTrialPlaneAsync)->Args({4, 16})->Args({16, 64});

// --- the batch executor -----------------------------------------------------

// BM_Batched* mirror the BM_Unified* bodies exactly — same strategies, same
// per-iteration environment draws, same seeds — with the run_trial call
// replaced by a persistent BatchRunner (as the sweep and runner drivers use
// it). The per-pair speedup is the tentpole's scoreboard:
// tools/bench_compare.py --batched-speedup gates the median ratio in CI.

void BM_BatchedTrialSync(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const std::int64_t d = state.range(1);
  const ants::core::KnownKStrategy strategy(k);
  ants::sim::TrialStrategy ts;
  ts.segment = &strategy;
  ants::sim::batch::BatchRunner runner(ts, k, {});
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ants::rng::Rng trial(++seed);
    const auto r =
        runner.run_one(ants::sim::single_target_environment({d, 0}), trial);
    benchmark::DoNotOptimize(r.time);
  }
}
BENCHMARK(BM_BatchedTrialSync)->Args({16, 64})->Args({64, 256});

void BM_BatchedTrialAsync(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const std::int64_t d = state.range(1);
  const ants::core::KnownKStrategy strategy(k);
  const ants::sim::StaggeredStart schedule(4);
  const ants::sim::DoaCrash crashes(0.25);
  ants::sim::TrialStrategy ts;
  ts.segment = &strategy;
  ants::sim::batch::BatchRunner runner(ts, k, {});
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ants::rng::Rng trial(++seed);
    const auto env = ants::sim::draw_environment(k, {{d, 0}}, schedule,
                                                 crashes, trial);
    const auto r = runner.run_one(env, trial);
    benchmark::DoNotOptimize(r.time);
  }
}
BENCHMARK(BM_BatchedTrialAsync)->Args({16, 64})->Args({64, 256});

void BM_BatchedTrialMultiTarget(benchmark::State& state) {
  const auto n_targets = state.range(0);
  const ants::core::KnownKStrategy strategy(16);
  ants::sim::TrialEnvironment env;
  for (std::int64_t i = 0; i < n_targets; ++i) {
    env.targets.push_back({64 - 2 * i, 2 * i});
  }
  ants::sim::TrialStrategy ts;
  ts.segment = &strategy;
  ants::sim::batch::BatchRunner runner(ts, 16, {});
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ants::rng::Rng trial(++seed);
    const auto r = runner.run_one(env, trial);
    benchmark::DoNotOptimize(r.time);
  }
}
BENCHMARK(BM_BatchedTrialMultiTarget)->Arg(2)->Arg(8);

void BM_BatchedTrialStepAsync(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const ants::baselines::RandomWalkStrategy strategy;
  const ants::sim::StaggeredStart schedule(2);
  const ants::sim::FixedLifetime crashes(2000);
  ants::sim::EngineConfig config;
  config.time_cap = 4000;
  ants::sim::TrialStrategy ts;
  ts.step = &strategy;
  ants::sim::batch::BatchRunner runner(ts, k, config);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ants::rng::Rng trial(++seed);
    const auto env = ants::sim::draw_environment(k, {{4, 0}}, schedule,
                                                 crashes, trial);
    const auto r = runner.run_one(env, trial);
    benchmark::DoNotOptimize(r.time);
  }
}
BENCHMARK(BM_BatchedTrialStepAsync)->Arg(4)->Arg(16);

void BM_BatchedTrialPlaneSync(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const std::int64_t d = state.range(1);
  const ants::plane::PlaneKnownKStrategy strategy(k);
  ants::sim::EngineConfig config;
  config.time_cap = 1'000'000;
  ants::sim::TrialEnvironment env;
  env.plane_targets = {{static_cast<double>(d), 0.0}};
  ants::sim::TrialStrategy ts;
  ts.plane = &strategy;
  ants::sim::batch::BatchRunner runner(ts, k, config);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ants::rng::Rng trial(++seed);
    const auto r = runner.run_one(env, trial);
    benchmark::DoNotOptimize(r.time);
  }
}
BENCHMARK(BM_BatchedTrialPlaneSync)->Args({4, 16})->Args({16, 64});

void BM_BatchedTrialPlaneAsync(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const std::int64_t d = state.range(1);
  const ants::plane::PlaneKnownKStrategy strategy(k);
  const ants::sim::StaggeredStart schedule(2);
  const ants::sim::DoaCrash crashes(0.25);
  ants::sim::EngineConfig config;
  config.time_cap = 1'000'000;
  ants::sim::TrialStrategy ts;
  ts.plane = &strategy;
  ants::sim::batch::BatchRunner runner(ts, k, config);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ants::rng::Rng trial(++seed);
    ants::sim::TrialEnvironment env;
    env.plane_targets = {{static_cast<double>(d) / 4.0, 0.0},
                         {static_cast<double>(d), 0.0}};
    env = ants::sim::draw_environment(k, std::move(env), schedule, crashes,
                                      trial);
    const auto r = runner.run_one(env, trial);
    benchmark::DoNotOptimize(r.time);
  }
}
BENCHMARK(BM_BatchedTrialPlaneAsync)->Args({4, 16})->Args({16, 64});

// --- dynamic target processes ------------------------------------------------

// Stochastic-target twins: Poisson arrival/lifetime windows with dwell
// capture, and a drifting target under collect-all. These are the
// environments the batch executor used to delegate wholesale to the scalar
// path; the pairs pin the native SoA dynamic loops' speedup (the per-tick
// liveness/drift hoisting is the win — the scalar loop recomputes both per
// agent per target per tick).

// Poisson windows + dwell on the lock-step backend.
void BM_UnifiedTrialStochasticDwell(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const ants::baselines::RandomWalkStrategy strategy;
  const ants::sim::TargetProcess process = ants::sim::poisson_targets(
      0.02, 400.0, ants::sim::uniform_ring_placement());
  ants::sim::EngineConfig config;
  config.time_cap = 2000;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ants::rng::Rng trial(++seed);
    ants::sim::TrialEnvironment env;
    {
      ants::rng::Rng realize(trial.seed());
      process.grid(realize, 8, config.time_cap, &env);
    }
    env.capture_dwell = 2;
    const auto r = ants::sim::run_trial(strategy, k, env, trial, config);
    benchmark::DoNotOptimize(r.time);
  }
}
BENCHMARK(BM_UnifiedTrialStochasticDwell)->Arg(4)->Arg(16);

void BM_BatchedTrialStochasticDwell(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const ants::baselines::RandomWalkStrategy strategy;
  const ants::sim::TargetProcess process = ants::sim::poisson_targets(
      0.02, 400.0, ants::sim::uniform_ring_placement());
  ants::sim::EngineConfig config;
  config.time_cap = 2000;
  ants::sim::TrialStrategy ts;
  ts.step = &strategy;
  ants::sim::batch::BatchRunner runner(ts, k, config);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ants::rng::Rng trial(++seed);
    ants::sim::TrialEnvironment env;
    {
      ants::rng::Rng realize(trial.seed());
      process.grid(realize, 8, config.time_cap, &env);
    }
    env.capture_dwell = 2;
    const auto r = runner.run_one(env, trial);
    benchmark::DoNotOptimize(r.time);
  }
}
BENCHMARK(BM_BatchedTrialStochasticDwell)->Arg(4)->Arg(16);

// Drifting target + collect-all on the lock-step backend.
void BM_UnifiedTrialStochasticCollect(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const ants::baselines::RandomWalkStrategy strategy;
  const ants::sim::TargetProcess process = ants::sim::drifting_target(
      0.5, 0.125, ants::sim::uniform_ring_placement());
  ants::sim::EngineConfig config;
  config.time_cap = 2000;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ants::rng::Rng trial(++seed);
    ants::sim::TrialEnvironment env;
    {
      ants::rng::Rng realize(trial.seed());
      process.grid(realize, 8, config.time_cap, &env);
    }
    env.collect_all = true;
    const auto r = ants::sim::run_trial(strategy, k, env, trial, config);
    benchmark::DoNotOptimize(r.time);
  }
}
BENCHMARK(BM_UnifiedTrialStochasticCollect)->Arg(4)->Arg(16);

void BM_BatchedTrialStochasticCollect(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const ants::baselines::RandomWalkStrategy strategy;
  const ants::sim::TargetProcess process = ants::sim::drifting_target(
      0.5, 0.125, ants::sim::uniform_ring_placement());
  ants::sim::EngineConfig config;
  config.time_cap = 2000;
  ants::sim::TrialStrategy ts;
  ts.step = &strategy;
  ants::sim::batch::BatchRunner runner(ts, k, config);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ants::rng::Rng trial(++seed);
    ants::sim::TrialEnvironment env;
    {
      ants::rng::Rng realize(trial.seed());
      process.grid(realize, 8, config.time_cap, &env);
    }
    env.collect_all = true;
    const auto r = runner.run_one(env, trial);
    benchmark::DoNotOptimize(r.time);
  }
}
BENCHMARK(BM_BatchedTrialStochasticCollect)->Arg(4)->Arg(16);

// --- sweep executor telemetry overhead --------------------------------------

// The telemetry hooks' zero-cost-when-disabled contract (telemetry/metrics.h)
// is pinned by this pair: Off runs the sweep executor with the null
// telemetry pointer every hot-path hook guards on, On runs the identical
// sweep with a live collector (metrics only — no event log or trace file,
// so the pair isolates the hook cost from I/O). Off regressing past the
// gate means disabled telemetry stopped being free; the two drifting far
// apart means a hook landed somewhere hotter than once per trial.
ants::scenario::ScenarioSpec sweep_bench_spec() {
  ants::scenario::ScenarioSpec spec;
  spec.name = "bench";
  spec.strategies = {"known-k"};
  spec.ks = {4};
  spec.distances = {16};
  spec.trials = 64;
  spec.seed = 7;
  return spec;
}

void BM_SweepTelemetryOff(benchmark::State& state) {
  const ants::scenario::ScenarioSpec spec = sweep_bench_spec();
  ants::scenario::SweepOptions opt;
  opt.threads = 1;  // inline execution: no thread-spawn noise
  for (auto _ : state) {
    const auto results = ants::scenario::run_sweep(spec, opt);
    benchmark::DoNotOptimize(results.data());
  }
}
BENCHMARK(BM_SweepTelemetryOff);

void BM_SweepTelemetryOn(benchmark::State& state) {
  const ants::scenario::ScenarioSpec spec = sweep_bench_spec();
  for (auto _ : state) {
    ants::telemetry::RunTelemetry tel;
    ants::scenario::SweepOptions opt;
    opt.threads = 1;
    opt.telemetry = &tel;
    const auto results = ants::scenario::run_sweep(spec, opt);
    tel.finish();
    benchmark::DoNotOptimize(results.data());
  }
}
BENCHMARK(BM_SweepTelemetryOn);

}  // namespace

BENCHMARK_MAIN();
