// Microbenchmarks for the simulation engine: cost of a full collaborative
// trial at experiment scale. The headline number — a D=256, k=64 known-k
// trial in microseconds — is what makes the E1-E8 sweeps laptop-scale
// (stepping the same trial would cost ~D^2/k * k = 65536+ node visits).
#include <benchmark/benchmark.h>

#include "baselines/sector_sweep.h"
#include "core/harmonic.h"
#include "core/known_k.h"
#include "core/uniform.h"
#include "sim/engine.h"

namespace {

void BM_TrialKnownK(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const std::int64_t d = state.range(1);
  const ants::core::KnownKStrategy strategy(k);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ants::rng::Rng trial(++seed);
    const auto r = ants::sim::run_search(strategy, k, {d, 0}, trial);
    benchmark::DoNotOptimize(r.time);
  }
}
BENCHMARK(BM_TrialKnownK)
    ->Args({1, 64})
    ->Args({16, 64})
    ->Args({64, 256})
    ->Args({256, 1024});

void BM_TrialUniform(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const ants::core::UniformStrategy strategy(0.5);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ants::rng::Rng trial(++seed);
    const auto r = ants::sim::run_search(strategy, k, {64, 0}, trial);
    benchmark::DoNotOptimize(r.time);
  }
}
BENCHMARK(BM_TrialUniform)->Arg(1)->Arg(16)->Arg(256);

void BM_TrialHarmonic(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const ants::core::HarmonicStrategy strategy(0.5);
  std::uint64_t seed = 0;
  ants::sim::EngineConfig config;
  config.time_cap = ants::sim::Time{1} << 32;  // censor heavy-tail stragglers
  for (auto _ : state) {
    ants::rng::Rng trial(++seed);
    const auto r = ants::sim::run_search(strategy, k, {64, 0}, trial, config);
    benchmark::DoNotOptimize(r.time);
  }
}
BENCHMARK(BM_TrialHarmonic)->Arg(16)->Arg(256);

void BM_TrialSectorSweep(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const ants::baselines::SectorSweepStrategy strategy;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ants::rng::Rng trial(++seed);
    const auto r = ants::sim::run_search(strategy, k, {128, 0}, trial);
    benchmark::DoNotOptimize(r.time);
  }
}
BENCHMARK(BM_TrialSectorSweep)->Arg(4)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
