// E4 — Theorem 4.1: no uniform search algorithm is O(log k)-competitive.
//
// The impossibility is asymptotic (the gap between log k and log^(1+eps) k
// opens at log log k speed, invisible at any simulable k), so this
// experiment reproduces the PROOF'S MECHANISM quantitatively:
//
// (a) Visitation accounting at the proof's radii. If a uniform algorithm
//     were phi-competitive, then for every i, running it with k_i = 2^i
//     agents must cover each node of B(D_i), D_i = sqrt(T k_i / phi(k_i)),
//     with probability 1/2 by time 2T; averaging over the k_i identical
//     agents, ONE agent must visit >= |S_i|/(2 k_i) ~ T/phi(k_i) distinct
//     nodes of the annulus S_i = B(D_i) \ B(D_{i-1}) by 2T. Crucially a
//     uniform agent's trajectory law does not depend on k, so ONE trajectory
//     must satisfy ALL the bounds simultaneously. We instrument
//     A_uniform(eps) at its own measured phi and print measured vs
//     predicted visits per annulus: ratios are flat-ish across annuli.
//
// (b) The budget contradiction. Summing (a): one agent must spend
//     Sum_i T/phi(2^i) distinct visits by time 2T, i.e.
//     Sum_{i<=log(T)/2} 1/phi(2^i) <= 2. For phi = C log2 k the left side
//     is ~ln(log2(T)/2)/C, which GROWS with T — so C must grow with T and
//     O(log k)-competitiveness is impossible. The table prints the budget
//     utilization for increasing T using the calibration constant C
//     measured from the algorithm itself, alongside the measured fraction
//     of the 2T budget the instrumented agent actually spends, and the
//     crossing horizon T* where a log-competitive algorithm would violate
//     its own budget.
#include <cmath>
#include <cstdio>
#include <exception>

#include "core/competitive.h"
#include "core/uniform.h"
#include "exp_common.h"
#include "sim/metrics.h"
#include "sim/visitation.h"

namespace ants::bench {
namespace {

int run(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const ExpOptions opt = parse_common(cli, 60);
  const double eps = cli.get_double("eps", 0.3);
  cli.finish();

  banner("E4: impossibility of O(log k)-competitive uniform search "
         "(Theorem 4.1)",
         "reproduces the proof: (a) one agent owes ~T/phi(k_i) distinct "
         "visits to EVERY annulus S_i simultaneously; (b) summing annuli "
         "overruns the 2T visit budget unless phi outgrows log k");

  // --- calibrate phi(k) = C * log2(k)^(1+eps) for this algorithm --------
  // One-cell scenario through the sweep engine (same path as E1/E3/E7).
  const core::UniformStrategy strategy(eps);
  double c0 = 0;
  {
    const std::int64_t d_cal = 32;
    const std::int64_t k_cal = 64;
    scenario::ScenarioSpec cal = spec(opt, "e4-calibration");
    cal.strategies = {"uniform(eps=" + util::fmt_exact(eps) + ")"};
    cal.ks = {k_cal};
    cal.distances = {d_cal};
    cal.trials = std::max<std::int64_t>(opt.trials / 2, 30);
    const auto rs = scenario::run_sweep(cal)[0].stats;
    c0 = rs.mean_competitiveness /
         std::pow(std::log2(static_cast<double>(k_cal)), 1.0 + eps);
  }
  const auto phi = [&](double k) {
    const double l = std::max(1.0, std::log2(k));
    return c0 * std::pow(l, 1.0 + eps);
  };
  std::cout << "calibration: A_uniform(eps=" << fmt2(eps)
            << ") measured phi(k) ~ " << fmt2(c0)
            << " * log2(k)^" << fmt2(1.0 + eps) << "\n\n";

  // --- part (a): per-annulus visitation at the proof's radii ------------
  const int log_t = opt.full ? 22 : 20;
  const auto t_horizon = static_cast<double>(sim::Time{1} << log_t);
  const sim::Time horizon = sim::Time{2} << log_t;  // 2T

  std::vector<std::int64_t> radii;
  std::vector<int> annulus_i;
  std::int64_t prev = 0;
  for (int i = 2; i <= log_t / 2; ++i) {
    const double k_i = std::pow(2.0, i);
    const auto d_i = static_cast<std::int64_t>(
        std::sqrt(t_horizon * k_i / phi(k_i)));
    if (d_i <= prev) continue;  // first couple of radii may invert; skip
    radii.push_back(d_i);
    annulus_i.push_back(i);
    prev = d_i;
  }

  const std::int64_t reps = std::max<std::int64_t>(4, opt.trials / 15);
  std::vector<double> measured(radii.size(), 0.0);
  double total_distinct = 0;
  for (std::int64_t rep = 0; rep < reps; ++rep) {
    rng::Rng rng(rng::mix_seed(opt.seed, 555 + static_cast<std::uint64_t>(rep)));
    const auto report = sim::record_visitation(
        strategy, sim::AgentContext{0, 1}, rng, horizon, radii);
    for (std::size_t a = 0; a < radii.size(); ++a) {
      measured[a] += static_cast<double>(report.distinct[a]) /
                     static_cast<double>(reps);
    }
    total_distinct += static_cast<double>(report.total_distinct) /
                      static_cast<double>(reps);
  }

  util::Table visits({"i", "k_i", "D_i", "annulus |S_i|/2k_i (predicted)",
                      "measured distinct visits", "measured/predicted"});
  for (std::size_t a = 1; a < radii.size(); ++a) {
    const double k_i = std::pow(2.0, annulus_i[a]);
    const double size_si =
        2.0 * (static_cast<double>(radii[a]) * static_cast<double>(radii[a]) -
               static_cast<double>(radii[a - 1]) *
                   static_cast<double>(radii[a - 1]));
    const double predicted = size_si / (2.0 * k_i);
    visits.add_row({fmt0(double(annulus_i[a])), fmt0(k_i),
                    fmt0(double(radii[a])), fmt0(predicted),
                    fmt0(measured[a]), fmt2(measured[a] / predicted)});
  }
  std::cout << "one agent, horizon 2T = " << horizon << ", averaged over "
            << reps << " runs, radii D_i = sqrt(T k_i / phi(k_i)):\n";
  emit(visits, opt);
  std::cout << "\nreading: measured visits per annulus stay within a "
            << "constant factor of the proof's T/phi(k_i) demand across "
            << "scales — one uniform trajectory really is paying every "
            << "annulus its share simultaneously.\n\n";

  // --- part (b): the budget contradiction -------------------------------
  // For an O(log k)-competitive algorithm (phi = C log2 k with C set by the
  // calibration point so it matches the measured algorithm where we can
  // see it), the proof demands Sum_{i=2}^{log2(T)/2} 1/(C i) <= 2 of every
  // agent's visit budget. That utilization grows like ln(log T); print it
  // with the measured budget use of the instrumented agent for scale.
  const double c_log = c0;  // C for the hypothetical phi = C log2 k
  util::Table budget({"horizon T", "required Sum T/phi(2^i) (phi=C log2 k)",
                      "fraction of 2T budget", "measured agent visits / 2T"});
  for (int lt = 14; lt <= 30; lt += 4) {
    const double t = std::pow(2.0, lt);
    double required = 0;
    for (int i = 2; i <= lt / 2; ++i) required += t / (c_log * i);
    const std::string meas =
        lt == log_t ? fmt2(total_distinct / (2.0 * t)) : "-";
    budget.add_row({"2^" + fmt0(lt), fmt0(required),
                    fmt2(required / (2.0 * t)), meas});
  }
  emit(budget, opt);
  // Where would phi = C log2 k first violate its own budget? Solve
  // ln(log2(T)/2) / (2C) = 1.
  const double crossing_log2_t = 2.0 * std::exp(2.0 * c_log);
  std::cout << "\ncrossing horizon: with C = " << fmt2(c_log)
            << ", the budget is first violated near T ~ 2^(" << fmt0(
                   crossing_log2_t)
            << ") — far beyond simulation, which is exactly why the paper "
            << "needs a proof (and why the empirical gap between log k and "
            << "log^(1+eps) k is invisible at feasible k).\n";
  std::cout << "\nreading: the required fraction of the 2T budget GROWS "
            << "without bound as T grows (column 3 ~ ln log T / C) — for "
            << "any constant C it eventually exceeds 1, the contradiction "
            << "at the heart of Theorem 4.1. A uniform algorithm escapes "
            << "only if phi outgrows C log k, e.g. the log^(1+eps) k of "
            << "Theorem 3.3 whose sum converges.\n";
  return 0;
}

}  // namespace
}  // namespace ants::bench

int main(int argc, char** argv) try {
  return ants::bench::run(argc, argv);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
