// E8 — the speed-up measure (paper section 1): T(1)/T(k) as k grows.
//
// The paper frames everything through speed-up: k agents should be ~k times
// faster than one. Expectations per strategy:
//
//   known-k        speed-up ~ k on the D^2/k term, flattening once the
//                  Omega(D) floor dominates;
//   uniform(eps)   speed-up ~ k / log^(1+eps) k — the price of uniformity;
//   harmonic       near-k speed-up once k >> D^delta (median-based: the
//                  trip-cost distribution is heavy-tailed);
//   sector sweep   ~k (coordination reference);
//   spiral         exactly 1 — identical deterministic agents cannot share
//                  work, the paper's case for randomization.
//
// Runs on the scenario subsystem: one five-strategy spec per k (known-k is
// re-tuned per k, as the paper's non-uniform model prescribes), with paired
// instances across strategies at every k.
#include <exception>

#include "exp_common.h"
#include "sim/metrics.h"

namespace ants::bench {
namespace {

int run(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const ExpOptions opt = parse_common(cli, 80);
  const std::int64_t d = cli.get_int("distance", opt.full ? 128 : 64);
  cli.finish();

  banner("E8: speed-up T(1)/T(k) (paper section 1's yardstick)",
         "expect: ~k for known-k and the coordinated sweep, k/log^(1+eps) k "
         "for uniform, 1 for identical deterministic spirals");

  const std::vector<std::int64_t> ks =
      opt.full ? std::vector<std::int64_t>{1, 2, 4, 8, 16, 32, 64, 128, 256}
               : std::vector<std::int64_t>{1, 4, 16, 64, 256};

  util::Table table({"k", "known-k", "uniform(0.5)", "harmonic(0.5)",
                     "sector-sweep", "spiral", "ideal k"});

  // Median-based speed-ups: robust to the harmonic algorithm's heavy tail.
  std::vector<double> base(5, 0.0);
  for (const std::int64_t k : ks) {
    scenario::ScenarioSpec sweep = spec(opt, "e8-speedup");
    sweep.strategies = {"known-k", "uniform(eps=0.5)", "harmonic(delta=0.5)",
                        "sector-sweep", "spiral"};
    sweep.ks = {k};
    sweep.distances = {d};
    sweep.seed = rng::mix_seed(opt.seed, static_cast<std::uint64_t>(k));
    sweep.time_cap = sim::Time{1} << 40;
    const std::vector<scenario::CellResult> results =
        scenario::run_sweep(sweep);

    std::vector<double> medians(results.size());
    for (std::size_t si = 0; si < results.size(); ++si) {
      medians[si] = results[si].stats.time.median;
    }
    if (k == 1) base = medians;
    table.add_row({fmt0(double(k)), fmt2(base[0] / medians[0]),
                   fmt2(base[1] / medians[1]), fmt2(base[2] / medians[2]),
                   fmt2(base[3] / medians[3]), fmt2(base[4] / medians[4]),
                   fmt0(double(k))});
  }
  emit(table, opt);

  std::cout << "\nreading: randomization alone (known-k, harmonic at large "
            << "k) buys near-linear speed-up WITHOUT communication; "
            << "uniformity costs the predicted polylog factor; identical "
            << "deterministic agents gain exactly nothing. The speed-up "
            << "saturates near k ~ D where the Omega(D) travel floor takes "
            << "over — visible in the largest-k rows.\n";
  return 0;
}

}  // namespace
}  // namespace ants::bench

int main(int argc, char** argv) try {
  return ants::bench::run(argc, argv);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
