// E8 — the speed-up measure (paper section 1): T(1)/T(k) as k grows.
//
// The paper frames everything through speed-up: k agents should be ~k times
// faster than one. Expectations per strategy:
//
//   known-k        speed-up ~ k on the D^2/k term, flattening once the
//                  Omega(D) floor dominates;
//   uniform(eps)   speed-up ~ k / log^(1+eps) k — the price of uniformity;
//   harmonic       near-k speed-up once k >> D^delta (median-based: the
//                  trip-cost distribution is heavy-tailed);
//   sector sweep   ~k (coordination reference);
//   spiral         exactly 1 — identical deterministic agents cannot share
//                  work, the paper's case for randomization.
#include <exception>

#include "baselines/sector_sweep.h"
#include "baselines/spiral_single.h"
#include "core/harmonic.h"
#include "core/known_k.h"
#include "core/uniform.h"
#include "exp_common.h"
#include "sim/metrics.h"

namespace ants::bench {
namespace {

struct Curve {
  std::string label;
  std::vector<double> value;  // per k, the measured time statistic
};

int run(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const ExpOptions opt = parse_common(cli, 80);
  const std::int64_t d = cli.get_int("distance", opt.full ? 128 : 64);
  cli.finish();

  banner("E8: speed-up T(1)/T(k) (paper section 1's yardstick)",
         "expect: ~k for known-k and the coordinated sweep, k/log^(1+eps) k "
         "for uniform, 1 for identical deterministic spirals");

  const std::vector<std::int64_t> ks =
      opt.full ? std::vector<std::int64_t>{1, 2, 4, 8, 16, 32, 64, 128, 256}
               : std::vector<std::int64_t>{1, 4, 16, 64, 256};

  util::Table table({"k", "known-k", "uniform(0.5)", "harmonic(0.5)",
                     "sector-sweep", "spiral", "ideal k"});

  // Median-based speed-ups: robust to the harmonic algorithm's heavy tail.
  const core::UniformStrategy uniform(0.5);
  const core::HarmonicStrategy harmonic(0.5);
  const baselines::SectorSweepStrategy sweep;
  const baselines::SpiralSingleStrategy spiral;

  std::vector<double> base(5, 0.0);
  for (const std::int64_t k : ks) {
    sim::RunConfig config;
    config.trials = opt.trials;
    config.seed = rng::mix_seed(opt.seed, static_cast<std::uint64_t>(k));
    config.time_cap = sim::Time{1} << 40;

    const core::KnownKStrategy known(k);  // re-tuned per k, as the paper's
                                          // non-uniform model prescribes
    const auto run_one = [&](const sim::Strategy& s) {
      return sim::run_trials(s, static_cast<int>(k), d, opt.placement, config)
          .time.median;
    };
    const double t_known = run_one(known);
    const double t_uniform = run_one(uniform);
    const double t_harmonic = run_one(harmonic);
    const double t_sweep = run_one(sweep);
    const double t_spiral = run_one(spiral);

    if (k == 1) base = {t_known, t_uniform, t_harmonic, t_sweep, t_spiral};
    table.add_row({fmt0(double(k)), fmt2(base[0] / t_known),
                   fmt2(base[1] / t_uniform), fmt2(base[2] / t_harmonic),
                   fmt2(base[3] / t_sweep), fmt2(base[4] / t_spiral),
                   fmt0(double(k))});
  }
  emit(table, opt);

  std::cout << "\nreading: randomization alone (known-k, harmonic at large "
            << "k) buys near-linear speed-up WITHOUT communication; "
            << "uniformity costs the predicted polylog factor; identical "
            << "deterministic agents gain exactly nothing. The speed-up "
            << "saturates near k ~ D where the Omega(D) travel floor takes "
            << "over — visible in the largest-k rows.\n";
  return 0;
}

}  // namespace
}  // namespace ants::bench

int main(int argc, char** argv) try {
  return ants::bench::run(argc, argv);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
