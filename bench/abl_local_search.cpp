// Ablation — why the local search must be SYSTEMATIC.
//
// The paper dismisses random walks globally (infinite expected hitting time
// on Z^2) but its algorithms also rely on the local search primitive being
// a spiral: a t-step spiral visits Theta(t) distinct nodes and covers the
// full ball of radius sqrt(t)/2, while a t-step random walk visits only
// Theta(t/log t) distinct nodes spread over a radius-sqrt(t) blob it
// revisits constantly.
//
// Table: A_k vs A_k-with-random-walk-local-search, same schedule, same
// budgets, D x k sweep — the per-phase hit probability collapse shows up
// as a large multiplicative inflation of phi that GROWS with scale
// (log-factor coverage loss compounding with the wasted retries).
// Runs on the scenario subsystem: each (D, k) is one paired two-strategy
// spec, so both variants face identical treasure placements.
#include <exception>

#include "exp_common.h"

namespace ants::bench {
namespace {

int run(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const ExpOptions opt = parse_common(cli, 120);
  cli.finish();

  banner("ABL: spiral vs random-walk local search (same budgets)",
         "expect: replacing the spiral with an equal-budget random walk "
         "inflates phi by a factor that grows with scale");

  util::Table table({"D", "k", "spiral phi", "rw-local phi", "inflation",
                     "spiral success", "rw success"});

  struct Cell {
    std::int64_t d;
    std::int64_t k;
  };
  const std::vector<Cell> cells =
      opt.full ? std::vector<Cell>{{16, 4}, {32, 4}, {32, 16}, {64, 16},
                                   {64, 64}, {128, 64}}
               : std::vector<Cell>{{16, 4}, {32, 4}, {32, 16}, {64, 16}};

  for (const auto& [d, k] : cells) {
    scenario::ScenarioSpec pair_spec = spec(opt, "abl-local-search");
    pair_spec.strategies = {"known-k", "known-k-rw-local"};
    pair_spec.ks = {k};
    pair_spec.distances = {d};
    pair_spec.seed = rng::mix_seed(opt.seed,
                                   static_cast<std::uint64_t>(d * 1000 + k));
    pair_spec.time_cap = 512 * (d + d * d / k);
    const std::vector<scenario::CellResult> results =
        scenario::run_sweep(pair_spec);
    const sim::RunStats& rs_spiral = results[0].stats;
    const sim::RunStats& rs_rw = results[1].stats;

    table.add_row({fmt0(double(d)), fmt0(double(k)),
                   fmt2(rs_spiral.median_competitiveness),
                   fmt2(rs_rw.median_competitiveness),
                   fmt2(rs_rw.median_competitiveness /
                        rs_spiral.median_competitiveness),
                   fmt3(rs_spiral.success_rate), fmt3(rs_rw.success_rate)});
  }
  emit(table, opt);

  std::cout << "\nreading: same trip schedule, same step budgets, only the "
            << "local-search pattern differs — and the random-walk variant "
            << "pays a multiplicative penalty that widens as D grows. "
            << "Systematic coverage is not an implementation detail: the "
            << "paper's O(D + D^2/k) depends on phase budgets translating "
            << "1:1 into covered area, which only a space-filling pattern "
            << "like the spiral delivers.\n";
  return 0;
}

}  // namespace
}  // namespace ants::bench

int main(int argc, char** argv) try {
  return ants::bench::run(argc, argv);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
