// E7 — the related-work landscape the paper argues from (sections 1-2):
//
//   * k random walkers: expected hitting time on Z^2 is INFINITE — censored
//     means explode super-quadratically with D and success collapses;
//   * biased/correlated walk (Harkness-Maroudas ant model [24]): better
//     than the pure walk, still far from optimal;
//   * Levy flights (Reynolds [46]): mu near 1-2 helps cooperative foragers,
//     but without a central-place schedule they still trail the paper's
//     algorithms at this task;
//   * the paper's algorithms + the coordinated sweep for reference.
//
// All strategies run on identical instances (same placements, same seeds)
// with the same censoring cap — guaranteed structurally by the scenario
// subsystem, whose cell seeds depend on (k, D) but never on the strategy.
// The whole landscape is ONE declarative spec; the sweep scheduler overlaps
// the slow step-level walkers with the fast segment-level algorithms.
#include <exception>

#include "exp_common.h"
#include "scenario/sweep.h"
#include "sim/metrics.h"

namespace ants::bench {
namespace {

int run(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const ExpOptions opt = parse_common(cli, 40);
  const int k = static_cast<int>(cli.get_int("k", 4));
  cli.finish();

  banner("E7: baseline landscape (paper sections 1-2 related work)",
         "expect: random-walk times blow up with D (infinite expectation "
         "in the limit); Levy and biased walks help but the paper's "
         "spiral-schedule algorithms dominate at every distance");

  const std::vector<std::int64_t> ds =
      opt.full ? std::vector<std::int64_t>{2, 4, 8, 16, 32}
               : std::vector<std::int64_t>{2, 4, 8, 16};
  const sim::Time walk_cap = opt.full ? 400000 : 120000;

  scenario::ScenarioSpec spec;
  spec.name = "e7-baselines";
  spec.strategies = {
      "random-walk",
      "biased-walk(bias=0.3, persistence=0.8)",
      "levy(mu=1.5, loop=false)",
      "levy(mu=2, loop=true, scan=32)",
      "harmonic(delta=0.5)",
      "uniform(eps=0.5)",
      "known-k",      // k_belief defaults to the true k
      "sector-sweep",
  };
  spec.ks = {k};
  spec.distances = ds;
  spec.trials = opt.trials;
  spec.seed = opt.seed;
  spec.placements = {opt.placement_name};
  spec.time_cap = walk_cap;  // same cap for fairness

  util::Table table({"strategy", "D", "success", "median T", "mean T",
                     "T/(D+D^2/k)"});
  // Flatten order is strategy-major then D — exactly the table's row order.
  for (const scenario::CellResult& r : scenario::run_sweep(spec)) {
    table.add_row({r.cell.strategy_name, fmt0(double(r.cell.distance)),
                   fmt2(r.stats.success_rate), fmt0(r.stats.time.median),
                   fmt0(r.stats.time.mean),
                   fmt2(r.stats.mean_competitiveness)});
  }
  emit(table, opt);

  std::cout << "\nreading: the random walk's censored mean grows much "
            << "faster than D^2 and its success rate decays (the expected "
            << "hitting time on the infinite grid is infinite — the paper's "
            << "reason to dismiss it). Straight-line Levy flights close "
            << "most of the gap; the paper's schedules and the coordinated "
            << "sweep stay within a constant of D + D^2/k.\n";
  return 0;
}

}  // namespace
}  // namespace ants::bench

int main(int argc, char** argv) try {
  return ants::bench::run(argc, argv);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
