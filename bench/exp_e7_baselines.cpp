// E7 — the related-work landscape the paper argues from (sections 1-2):
//
//   * k random walkers: expected hitting time on Z^2 is INFINITE — censored
//     means explode super-quadratically with D and success collapses;
//   * biased/correlated walk (Harkness-Maroudas ant model [24]): better
//     than the pure walk, still far from optimal;
//   * Levy flights (Reynolds [46]): mu near 1-2 helps cooperative foragers,
//     but without a central-place schedule they still trail the paper's
//     algorithms at this task;
//   * the paper's algorithms + the coordinated sweep for reference.
//
// All strategies run on identical instances (same placements, same seeds)
// with the same censoring cap.
#include <exception>
#include <memory>

#include "baselines/biased_walk.h"
#include "baselines/levy.h"
#include "baselines/random_walk.h"
#include "baselines/sector_sweep.h"
#include "core/harmonic.h"
#include "core/known_k.h"
#include "core/uniform.h"
#include "exp_common.h"
#include "sim/metrics.h"

namespace ants::bench {
namespace {

int run(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const ExpOptions opt = parse_common(cli, 40);
  const int k = static_cast<int>(cli.get_int("k", 4));
  cli.finish();

  banner("E7: baseline landscape (paper sections 1-2 related work)",
         "expect: random-walk times blow up with D (infinite expectation "
         "in the limit); Levy and biased walks help but the paper's "
         "spiral-schedule algorithms dominate at every distance");

  const std::vector<std::int64_t> ds =
      opt.full ? std::vector<std::int64_t>{2, 4, 8, 16, 32}
               : std::vector<std::int64_t>{2, 4, 8, 16};
  const sim::Time walk_cap = opt.full ? 400000 : 120000;

  util::Table table({"strategy", "D", "success", "median T", "mean T",
                     "T/(D+D^2/k)"});

  const auto add_segment = [&](const sim::Strategy& s, std::int64_t d) {
    sim::RunConfig config;
    config.trials = opt.trials;
    config.seed = rng::mix_seed(opt.seed, static_cast<std::uint64_t>(d));
    config.time_cap = walk_cap;  // same cap for fairness
    const sim::RunStats rs =
        sim::run_trials(s, k, d, opt.placement, config);
    table.add_row({s.name(), fmt0(double(d)), fmt2(rs.success_rate),
                   fmt0(rs.time.median), fmt0(rs.time.mean),
                   fmt2(rs.mean_competitiveness)});
  };
  const auto add_step = [&](const sim::StepStrategy& s, std::int64_t d) {
    sim::RunConfig config;
    config.trials = opt.trials;
    config.seed = rng::mix_seed(opt.seed, static_cast<std::uint64_t>(d));
    config.time_cap = walk_cap;
    const sim::RunStats rs =
        sim::run_step_trials(s, k, d, opt.placement, config);
    table.add_row({s.name(), fmt0(double(d)), fmt2(rs.success_rate),
                   fmt0(rs.time.median), fmt0(rs.time.mean),
                   fmt2(rs.mean_competitiveness)});
  };

  const baselines::RandomWalkStrategy random_walk;
  const baselines::BiasedWalkStrategy biased(0.3, 0.8);
  const baselines::LevyStrategy levy_free(1.5, /*loop=*/false);
  const baselines::LevyStrategy levy_loop(2.0, /*loop=*/true, /*scan=*/32);
  const core::HarmonicStrategy harmonic(0.5);
  const core::UniformStrategy uniform(0.5);
  const core::KnownKStrategy known(k);
  const baselines::SectorSweepStrategy sweep;

  for (const std::int64_t d : ds) add_step(random_walk, d);
  for (const std::int64_t d : ds) add_step(biased, d);
  for (const std::int64_t d : ds) add_segment(levy_free, d);
  for (const std::int64_t d : ds) add_segment(levy_loop, d);
  for (const std::int64_t d : ds) add_segment(harmonic, d);
  for (const std::int64_t d : ds) add_segment(uniform, d);
  for (const std::int64_t d : ds) add_segment(known, d);
  for (const std::int64_t d : ds) add_segment(sweep, d);

  emit(table, opt);

  std::cout << "\nreading: the random walk's censored mean grows much "
            << "faster than D^2 and its success rate decays (the expected "
            << "hitting time on the infinite grid is infinite — the paper's "
            << "reason to dismiss it). Straight-line Levy flights close "
            << "most of the gap; the paper's schedules and the coordinated "
            << "sweep stay within a constant of D + D^2/k.\n";
  return 0;
}

}  // namespace
}  // namespace ants::bench

int main(int argc, char** argv) try {
  return ants::bench::run(argc, argv);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
