// E2 — Corollary 3.2: constant-factor knowledge of k suffices.
//
// Paper claim: if every agent holds an estimate k_a with
// k/rho <= k_a <= k*rho, running A_{k_a/rho} is O(1)-competitive — the
// penalty is at most rho^2.
//
// Reproduction: sweep rho in {1, 2, 4, 8} with worst-case (under) estimates
// across a k sweep at fixed D. Expect each rho-row's phi to be flat in k
// (still O(1)-competitive) and the penalty ratio phi(rho)/phi(1) to grow no
// faster than ~rho^2.
//
// Runs on the scenario subsystem: ONE spec lists known-k plus every
// approx-k(rho) variant, so all (rho, k) cells share paired instances (cell
// seeds are strategy-independent) and the penalty column compares each rho
// against the exact-knowledge run on the very same treasures.
#include <exception>

#include "exp_common.h"

namespace ants::bench {
namespace {

int run(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const ExpOptions opt = parse_common(cli, 150);
  const std::int64_t d = cli.get_int("distance", opt.full ? 128 : 64);
  cli.finish();

  banner("E2: approximate knowledge of k (Corollary 3.2)",
         "expect: phi flat in k for each rho; penalty(rho) <= ~rho^2");

  const std::vector<std::int64_t> ks =
      opt.full ? std::vector<std::int64_t>{4, 16, 64, 256, 1024}
               : std::vector<std::int64_t>{4, 16, 64, 256};
  const std::vector<double> rhos{1.0, 2.0, 4.0, 8.0};

  // Strategy 0 is the exact-knowledge baseline; strategy 1+i is rho[1+i].
  // rho = 1 degenerates to exact knowledge, so it reuses strategy 0's rows.
  scenario::ScenarioSpec sweep = spec(opt, "e2-approx-k");
  sweep.strategies = {"known-k"};
  for (std::size_t ri = 1; ri < rhos.size(); ++ri) {
    sweep.strategies.push_back("approx-k(rho=" + fmt0(rhos[ri]) +
                               ", mode=under)");
  }
  sweep.ks = ks;
  sweep.distances = {d};
  const std::vector<scenario::CellResult> results =
      scenario::run_sweep(sweep);
  // Flatten order: strategy-major, then k (single distance, single
  // placement).
  const auto phi = [&](std::size_t si, std::size_t ki) {
    return results[si * ks.size() + ki].stats.mean_competitiveness;
  };
  const auto mean_t = [&](std::size_t si, std::size_t ki) {
    return results[si * ks.size() + ki].stats.time.mean;
  };

  util::Table table({"rho", "k", "mean T", "phi", "penalty vs rho=1",
                     "rho^2 bound"});
  for (std::size_t ri = 0; ri < rhos.size(); ++ri) {
    const double rho = rhos[ri];
    // Strategy index ri: index 0 (known-k) doubles as the rho=1 row.
    const std::size_t si = ri;
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      table.add_row({fmt0(rho), fmt0(double(ks[ki])), fmt0(mean_t(si, ki)),
                     fmt2(phi(si, ki)), fmt2(phi(si, ki) / phi(0, ki)),
                     fmt0(rho * rho)});
    }
  }
  emit(table, opt);

  std::cout << "\nreading: each rho block stays flat as k grows "
            << "(O(1)-competitive), and the penalty column stays within the "
            << "rho^2 bound predicted by Corollary 3.2.\n";
  return 0;
}

}  // namespace
}  // namespace ants::bench

int main(int argc, char** argv) try {
  return ants::bench::run(argc, argv);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
