// E2 — Corollary 3.2: constant-factor knowledge of k suffices.
//
// Paper claim: if every agent holds an estimate k_a with
// k/rho <= k_a <= k*rho, running A_{k_a/rho} is O(1)-competitive — the
// penalty is at most rho^2.
//
// Reproduction: sweep rho in {1, 2, 4, 8} with worst-case (under) estimates
// across a k sweep at fixed D. Expect each rho-row's phi to be flat in k
// (still O(1)-competitive) and the penalty ratio phi(rho)/phi(1) to grow no
// faster than ~rho^2.
#include <exception>

#include "core/approx_k.h"
#include "core/known_k.h"
#include "exp_common.h"

namespace ants::bench {
namespace {

int run(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const ExpOptions opt = parse_common(cli, 150);
  const std::int64_t d = cli.get_int("distance", opt.full ? 128 : 64);
  cli.finish();

  banner("E2: approximate knowledge of k (Corollary 3.2)",
         "expect: phi flat in k for each rho; penalty(rho) <= ~rho^2");

  const std::vector<std::int64_t> ks =
      opt.full ? std::vector<std::int64_t>{4, 16, 64, 256, 1024}
               : std::vector<std::int64_t>{4, 16, 64, 256};
  const std::vector<double> rhos{1.0, 2.0, 4.0, 8.0};

  util::Table table({"rho", "k", "mean T", "phi", "penalty vs rho=1",
                     "rho^2 bound"});

  for (const double rho : rhos) {
    double phi_rho1_at_k = 0;
    for (const std::int64_t k : ks) {
      sim::RunConfig config;
      config.trials = opt.trials;
      config.seed = rng::mix_seed(
          opt.seed, static_cast<std::uint64_t>(k * 1000 + rho * 10));

      // rho = 1 degenerates to exact knowledge.
      std::unique_ptr<sim::Strategy> strategy;
      if (rho == 1.0) {
        strategy = std::make_unique<core::KnownKStrategy>(k);
      } else {
        strategy = std::make_unique<core::ApproxKStrategy>(
            k, rho, core::ApproxMode::kUnder);
      }
      const sim::RunStats rs = sim::run_trials(
          *strategy, static_cast<int>(k), d, opt.placement, config);

      // Compare against the exact-knowledge run with the SAME seed.
      const core::KnownKStrategy exact(k);
      const sim::RunStats rs_exact = sim::run_trials(
          exact, static_cast<int>(k), d, opt.placement, config);
      phi_rho1_at_k = rs_exact.mean_competitiveness;

      table.add_row({fmt0(rho), fmt0(double(k)), fmt0(rs.time.mean),
                     fmt2(rs.mean_competitiveness),
                     fmt2(rs.mean_competitiveness / phi_rho1_at_k),
                     fmt0(rho * rho)});
    }
  }
  emit(table, opt);

  std::cout << "\nreading: each rho block stays flat as k grows "
            << "(O(1)-competitive), and the penalty column stays within the "
            << "rho^2 bound predicted by Corollary 3.2.\n";
  return 0;
}

}  // namespace
}  // namespace ants::bench

int main(int argc, char** argv) try {
  return ants::bench::run(argc, argv);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
