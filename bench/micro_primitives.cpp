// Microbenchmarks for the geometric primitives the engine's O(1) hit
// detection rests on. These quantify the costs that make segment-level
// simulation ~10^6x cheaper than stepping: a spiral index lookup must stay
// in the low nanoseconds for the closed forms to beat enumeration.
#include <benchmark/benchmark.h>

#include "grid/ball.h"
#include "grid/spiral.h"
#include "grid/staircase_path.h"
#include "rng/power_law.h"
#include "rng/rng.h"

namespace {

void BM_SpiralPoint(benchmark::State& state) {
  std::int64_t n = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ants::grid::spiral_point(n));
    n = (n * 2862933555777941757LL + 3037000493LL) & ((1LL << 40) - 1);
  }
}
BENCHMARK(BM_SpiralPoint);

void BM_SpiralIndex(benchmark::State& state) {
  ants::rng::Rng rng(1);
  std::vector<ants::grid::Point> pts;
  for (int i = 0; i < 1024; ++i) {
    pts.push_back({rng.uniform_int(-100000, 100000),
                   rng.uniform_int(-100000, 100000)});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ants::grid::spiral_index(pts[i++ & 1023]));
  }
}
BENCHMARK(BM_SpiralIndex);

void BM_StaircaseMembership(benchmark::State& state) {
  const ants::grid::StaircasePath path({0, 0}, {1 << 20, (1 << 20) + 12345});
  ants::rng::Rng rng(2);
  std::vector<ants::grid::Point> probes;
  for (int i = 0; i < 1024; ++i) {
    const std::int64_t t = rng.uniform_int(0, path.length());
    probes.push_back(path.at(t));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(path.index_of(probes[i++ & 1023]));
  }
}
BENCHMARK(BM_StaircaseMembership);

void BM_UniformBallSample(benchmark::State& state) {
  ants::rng::Rng rng(3);
  const std::int64_t radius = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ants::grid::uniform_ball_point(rng, radius));
  }
}
BENCHMARK(BM_UniformBallSample)->Arg(16)->Arg(1024)->Arg(1 << 20);

void BM_PowerLawSample(benchmark::State& state) {
  ants::rng::Rng rng(4);
  const ants::rng::DiscretePowerLaw law(1.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(law.sample(rng));
  }
}
BENCHMARK(BM_PowerLawSample);

void BM_RngUniformU64(benchmark::State& state) {
  ants::rng::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform_u64(1000003));
  }
}
BENCHMARK(BM_RngUniformU64);

}  // namespace

BENCHMARK_MAIN();
