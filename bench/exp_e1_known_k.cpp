// E1 — Theorem 3.1 + the universal lower bound Omega(D + D^2/k).
//
// Paper claim: with k known, algorithm A_k runs in expected O(D + D^2/k);
// no algorithm can beat Omega(D + D^2/k).
//
// Reproduction: sweep D x k, measure mean search time, report the
// competitiveness phi = E[T]/(D + D^2/k). Theorem 3.1 predicts a bounded
// constant across the whole grid; the lower bound predicts phi >= c > 0 for
// every strategy (we also show the coordinated sector sweep cannot go below
// the same floor). A final log-log fit extracts the empirical exponents of
// T in D (at k=1) and in k (at the largest D): ~2 and ~-1.
//
// Runs on the scenario subsystem: the sweep is a declarative spec executed
// by scenario::run_sweep, which schedules trials across all (k, D) cells at
// once instead of serializing on per-cell barriers.
#include <exception>

#include "exp_common.h"
#include "scenario/sweep.h"
#include "sim/metrics.h"
#include "stats/regression.h"

namespace ants::bench {
namespace {

int run(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const ExpOptions opt = parse_common(cli, 150);
  cli.finish();

  banner("E1: known-k optimality (Theorem 3.1) + Omega(D + D^2/k)",
         "expect: phi(D,k) = E[T]/(D + D^2/k) bounded by a constant; "
         "T ~ D^2 at k=1 and T ~ 1/k at fixed D");

  const std::vector<std::int64_t> ds =
      opt.full ? std::vector<std::int64_t>{16, 32, 64, 128, 256, 512}
               : std::vector<std::int64_t>{16, 32, 64, 128};
  const std::vector<std::int64_t> ks =
      opt.full ? std::vector<std::int64_t>{1, 4, 16, 64, 256, 1024}
               : std::vector<std::int64_t>{1, 4, 16, 64, 256};

  scenario::ScenarioSpec spec;
  spec.name = "e1-known-k";
  spec.strategies = {"known-k"};  // k_belief defaults to the cell's true k
  spec.ks = ks;
  spec.distances = ds;
  spec.trials = opt.trials;
  spec.seed = opt.seed;
  spec.placements = {opt.placement_name};
  const std::vector<scenario::CellResult> results = scenario::run_sweep(spec);
  // Cell (ki, di) of the single-strategy sweep.
  const auto cell = [&](std::size_t ki, std::size_t di) -> const sim::RunStats& {
    return results[ki * ds.size() + di].stats;
  };

  util::Table table(
      {"D", "k", "mean T", "ci95", "median T", "D+D^2/k", "phi"});
  double phi_min = 1e300, phi_max = 0;
  std::vector<double> d_axis, t_vs_d;  // k = 1 scaling
  std::vector<double> k_axis, t_vs_k;  // largest D scaling

  for (std::size_t di = 0; di < ds.size(); ++di) {
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      const std::int64_t d = ds[di];
      const std::int64_t k = ks[ki];
      const sim::RunStats& rs = cell(ki, di);
      const double phi = rs.mean_competitiveness;
      phi_min = std::min(phi_min, phi);
      phi_max = std::max(phi_max, phi);
      table.add_row({fmt0(double(d)), fmt0(double(k)), fmt0(rs.time.mean),
                     fmt0(rs.time.ci95_half()), fmt0(rs.time.median),
                     fmt0(sim::optimal_time(d, k)), fmt2(phi)});
      if (k == 1) {
        d_axis.push_back(static_cast<double>(d));
        t_vs_d.push_back(rs.time.mean);
      }
      if (d == ds.back()) {
        k_axis.push_back(static_cast<double>(k));
        t_vs_k.push_back(rs.time.mean);
      }
    }
  }
  emit(table, opt);

  const auto fit_d = stats::fit_power_law(d_axis, t_vs_d);
  const auto fit_k = stats::fit_power_law(k_axis, t_vs_k);
  std::cout << "\nphi range over the sweep: [" << fmt2(phi_min) << ", "
            << fmt2(phi_max) << "]  (Theorem 3.1: bounded constant)\n";
  std::cout << "T ~ D^p at k=1: fitted p = " << fmt2(fit_d.slope)
            << " (expect ~2), r^2 = " << fmt3(fit_d.r_squared) << "\n";
  std::cout << "T ~ k^q at D=" << ds.back() << ": fitted q = "
            << fmt2(fit_k.slope) << " (expect ~-1 until the D term "
            << "dominates), r^2 = " << fmt3(fit_k.r_squared) << "\n";

  // Lower-bound side: even the fully coordinated deterministic baseline
  // obeys the same floor.
  scenario::ScenarioSpec floor_spec;
  floor_spec.name = "e1-floor";
  floor_spec.strategies = {"sector-sweep"};
  floor_spec.ks = {16};
  floor_spec.distances = {ds.back() / 2};
  floor_spec.trials = opt.trials;
  floor_spec.seed = opt.seed;
  floor_spec.placements = {opt.placement_name};
  const sim::RunStats floor_rs = scenario::run_sweep(floor_spec)[0].stats;
  std::cout << "\nlower-bound floor check (sector sweep, full coordination): "
            << "phi = " << fmt2(floor_rs.mean_competitiveness)
            << " at D=" << ds.back() / 2 << ", k=" << 16
            << "  (Omega(D + D^2/k): cannot drop below a positive constant)\n";
  return 0;
}

}  // namespace
}  // namespace ants::bench

int main(int argc, char** argv) try {
  return ants::bench::run(argc, argv);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
