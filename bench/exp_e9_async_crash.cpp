// E9 — the paper's removable assumptions, measured (section 2 remarks).
//
// Paper claims (each one sentence in section 2):
//   (a) synchronous starts: "can easily be removed by starting to count the
//       time after the last agent initiates the search" — so under any start
//       schedule, T measured from the LAST start should match the
//       synchronous T up to a constant (early starters can only help).
//   (b) the model silently assumes immortal agents; fail-stop robustness is
//       the natural extension the non-communicating design should inherit
//       for free. With dead-on-arrival rate p the survivors are a
//       Binomial(k, 1-p) party, so E[T] should track D + D^2/((1-p)k): the
//       known-k curve evaluated at the SURVIVOR count, not the nominal k.
//
// Table 1: start schedules x k — absolute T inflates by the last start,
//          T-from-last-start stays within a constant of the synchronous run.
// Table 2: DoA crash rate sweep — phi computed against the survivor count
//          stays flat while phi against nominal k inflates like 1/(1-p).
#include <exception>
#include <memory>

#include "core/harmonic.h"
#include "core/known_k.h"
#include "core/uniform.h"
#include "exp_common.h"
#include "sim/async_engine.h"

namespace ants::bench {
namespace {

int run(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const ExpOptions opt = parse_common(cli, 200);
  const std::int64_t d = cli.get_int("distance", opt.full ? 128 : 64);
  cli.finish();

  banner("E9: asynchronous starts + fail-stop crashes (section 2 remarks)",
         "expect: T from the last start matches the synchronous T; with DoA "
         "rate p, phi vs the survivor count (1-p)k stays flat");

  const std::vector<std::int64_t> ks =
      opt.full ? std::vector<std::int64_t>{8, 32, 128, 512}
               : std::vector<std::int64_t>{8, 32, 128};

  // --- Table 1: start schedules --------------------------------------------
  {
    util::Table table({"schedule", "k", "last start", "mean T (abs)",
                       "mean T from last", "sync mean T", "ratio"});
    const core::KnownKStrategy* dummy = nullptr;
    (void)dummy;
    for (const std::int64_t k : ks) {
      sim::RunConfig config;
      config.trials = opt.trials;
      config.seed = rng::mix_seed(opt.seed, static_cast<std::uint64_t>(k));

      const core::KnownKStrategy strategy(k);
      const sim::SyncStart sync;
      const sim::NoCrash immortal;
      const sim::AsyncRunStats sync_rs = sim::run_async_trials(
          strategy, static_cast<int>(k), d, opt.placement, sync, immortal,
          config);

      const std::vector<std::unique_ptr<sim::StartSchedule>> schedules = [&] {
        std::vector<std::unique_ptr<sim::StartSchedule>> v;
        v.push_back(std::make_unique<sim::StaggeredStart>(4));
        v.push_back(std::make_unique<sim::UniformRandomStart>(4 * d));
        return v;
      }();

      table.add_row({"sync", fmt0(double(k)), "0", fmt0(sync_rs.base.time.mean),
                     fmt0(sync_rs.from_last_start.mean),
                     fmt0(sync_rs.base.time.mean), "1.00"});
      for (const auto& sched : schedules) {
        const sim::AsyncRunStats rs = sim::run_async_trials(
            strategy, static_cast<int>(k), d, opt.placement, *sched, immortal,
            config);
        table.add_row(
            {sched->name(), fmt0(double(k)), fmt0(rs.mean_last_start),
             fmt0(rs.base.time.mean), fmt0(rs.from_last_start.mean),
             fmt0(sync_rs.base.time.mean),
             fmt2(rs.from_last_start.mean / sync_rs.base.time.mean)});
      }
    }
    emit(table, opt);
    std::cout << "\nreading: absolute time pays for late starters (roughly "
              << "the last start added on top), but measured from the last "
              << "start the ratio column stays O(1) — the paper's reduction "
              << "is quantitatively sound, and early starters often make the "
              << "ratio < 1 by pre-covering ground.\n\n";
  }

  // --- Table 2: dead-on-arrival crashes ------------------------------------
  {
    util::Table table({"strategy", "k", "p(DoA)", "survivors", "mean T",
                       "phi vs nominal k", "phi vs survivors"});
    const std::vector<double> ps{0.0, 0.25, 0.5, 0.75};
    for (const std::int64_t k : ks) {
      for (const double p : ps) {
        sim::RunConfig config;
        config.trials = opt.trials;
        config.seed = rng::mix_seed(
            opt.seed, static_cast<std::uint64_t>(k * 100 + p * 10 + 1));
        // Cap: DoA can kill everyone at small k; censor those trials.
        config.time_cap = 64 * (d + d * d);

        const core::KnownKStrategy strategy(k);
        const sim::SyncStart sync;
        const sim::DoaCrash doa(p);
        const sim::AsyncRunStats rs = sim::run_async_trials(
            strategy, static_cast<int>(k), d, opt.placement, sync, doa,
            config);

        const double survivors =
            static_cast<double>(k) - rs.mean_crashed;
        const double dd = static_cast<double>(d);
        const double phi_nominal =
            rs.base.time.mean / (dd + dd * dd / static_cast<double>(k));
        const double phi_survivors =
            survivors >= 1
                ? rs.base.time.mean / (dd + dd * dd / survivors)
                : 0.0;
        table.add_row({strategy.name(), fmt0(double(k)), fmt2(p),
                       fmt1(survivors), fmt0(rs.base.time.mean),
                       fmt2(phi_nominal), fmt2(phi_survivors)});
      }
    }
    emit(table, opt);
    std::cout << "\nreading: agents never re-plan around failures (they "
              << "cannot even see them), yet the design degrades gracefully: "
              << "phi against the SURVIVOR count stays in the same constant "
              << "band as the failure-free rows, i.e. T ~ D + D^2/((1-p)k). "
              << "Robustness comes for free from having no coordination to "
              << "break. (The smallest-k, highest-p rows inflate beyond the "
              << "band because a Binomial(k,1-p) party sometimes dies out "
              << "entirely — those censored trials and E[1/survivors] > "
              << "1/E[survivors] both push the mean up, which is the correct "
              << "physics, not an artifact.)\n";
  }
  return 0;
}

}  // namespace
}  // namespace ants::bench

int main(int argc, char** argv) try {
  return ants::bench::run(argc, argv);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
