// E9 — the paper's removable assumptions, measured (section 2 remarks).
//
// Paper claims (each one sentence in section 2):
//   (a) synchronous starts: "can easily be removed by starting to count the
//       time after the last agent initiates the search" — so under any start
//       schedule, T measured from the LAST start should match the
//       synchronous T up to a constant (early starters can only help).
//   (b) the model silently assumes immortal agents; fail-stop robustness is
//       the natural extension the non-communicating design should inherit
//       for free. With dead-on-arrival rate p the survivors are a
//       Binomial(k, 1-p) party, so E[T] should track D + D^2/((1-p)k): the
//       known-k curve evaluated at the SURVIVOR count, not the nominal k.
//
// Table 1: start schedules x k — absolute T inflates by the last start,
//          T-from-last-start stays within a constant of the synchronous run.
// Table 2: DoA crash rate sweep — phi computed against the survivor count
//          stays flat while phi against nominal k inflates like 1/(1-p).
//
// Runs on the scenario subsystem: each schedule/crash variant is the SAME
// declarative spec with a different `schedule=` / `crash=` field, and the
// sweep engine surfaces from-last-start times and crash counts as cell
// aggregates. Specs at the same k share their master seed, so every
// schedule faces identical treasure placements.
#include <exception>
#include <string>

#include "exp_common.h"
#include "util/format.h"

namespace ants::bench {
namespace {

int run(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const ExpOptions opt = parse_common(cli, 200);
  const std::int64_t d = cli.get_int("distance", opt.full ? 128 : 64);
  cli.finish();

  banner("E9: asynchronous starts + fail-stop crashes (section 2 remarks)",
         "expect: T from the last start matches the synchronous T; with DoA "
         "rate p, phi vs the survivor count (1-p)k stays flat");

  const std::vector<std::int64_t> ks =
      opt.full ? std::vector<std::int64_t>{8, 32, 128, 512}
               : std::vector<std::int64_t>{8, 32, 128};

  // One-cell known-k scenario at (k, d) under the given schedule/crash.
  const auto run_cell = [&](std::int64_t k, const std::string& schedule,
                            const std::string& crash, sim::Time time_cap,
                            std::uint64_t seed) {
    scenario::ScenarioSpec cell = spec(opt, "e9-async-crash");
    cell.strategies = {"known-k"};
    cell.ks = {k};
    cell.distances = {d};
    cell.schedule = schedule;
    cell.crash = crash;
    cell.time_cap = time_cap;
    cell.seed = seed;
    return scenario::run_sweep(cell)[0];
  };

  // --- Table 1: start schedules --------------------------------------------
  {
    util::Table table({"schedule", "k", "last start", "mean T (abs)",
                       "mean T from last", "sync mean T", "ratio"});
    for (const std::int64_t k : ks) {
      const std::uint64_t seed =
          rng::mix_seed(opt.seed, static_cast<std::uint64_t>(k));

      // Under sync starts the last start is t = 0, so T-from-last-start IS
      // the absolute T (and the cell runs the plain engine, whose times the
      // async path reproduces exactly — the conformance tests' contract).
      const scenario::CellResult sync_rs = run_cell(k, "sync", "none", 0,
                                                    seed);
      const std::vector<std::string> schedules = {
          "staggered(gap=4)",
          "uniform-start(max=" + std::to_string(4 * d) + ")"};

      table.add_row({"sync", fmt0(double(k)), "0",
                     fmt0(sync_rs.stats.time.mean),
                     fmt0(sync_rs.stats.time.mean),
                     fmt0(sync_rs.stats.time.mean), "1.00"});
      for (const std::string& sched : schedules) {
        const scenario::CellResult rs = run_cell(k, sched, "none", 0, seed);
        table.add_row(
            {sched, fmt0(double(k)), fmt0(rs.mean_last_start),
             fmt0(rs.stats.time.mean), fmt0(rs.from_last_start.mean),
             fmt0(sync_rs.stats.time.mean),
             fmt2(rs.from_last_start.mean / sync_rs.stats.time.mean)});
      }
    }
    emit(table, opt);
    std::cout << "\nreading: absolute time pays for late starters (roughly "
              << "the last start added on top), but measured from the last "
              << "start the ratio column stays O(1) — the paper's reduction "
              << "is quantitatively sound, and early starters often make the "
              << "ratio < 1 by pre-covering ground.\n\n";
  }

  // --- Table 2: dead-on-arrival crashes ------------------------------------
  {
    util::Table table({"strategy", "k", "p(DoA)", "survivors", "mean T",
                       "phi vs nominal k", "phi vs survivors"});
    const std::vector<double> ps{0.0, 0.25, 0.5, 0.75};
    for (const std::int64_t k : ks) {
      for (const double p : ps) {
        const std::uint64_t seed = rng::mix_seed(
            opt.seed, static_cast<std::uint64_t>(k * 100 + p * 10 + 1));
        // Cap: DoA can kill everyone at small k; censor those trials.
        const sim::Time cap = 64 * (d + d * d);
        const scenario::CellResult rs =
            run_cell(k, "sync", "doa(p=" + util::fmt_param(p) + ")", cap,
                     seed);

        const double survivors = static_cast<double>(k) - rs.mean_crashed;
        const double dd = static_cast<double>(d);
        const double phi_nominal =
            rs.stats.time.mean / (dd + dd * dd / static_cast<double>(k));
        const double phi_survivors =
            survivors >= 1
                ? rs.stats.time.mean / (dd + dd * dd / survivors)
                : 0.0;
        table.add_row({rs.cell.strategy_name, fmt0(double(k)), fmt2(p),
                       fmt1(survivors), fmt0(rs.stats.time.mean),
                       fmt2(phi_nominal), fmt2(phi_survivors)});
      }
    }
    emit(table, opt);
    std::cout << "\nreading: agents never re-plan around failures (they "
              << "cannot even see them), yet the design degrades gracefully: "
              << "phi against the SURVIVOR count stays in the same constant "
              << "band as the failure-free rows, i.e. T ~ D + D^2/((1-p)k). "
              << "Robustness comes for free from having no coordination to "
              << "break. (The smallest-k, highest-p rows inflate beyond the "
              << "band because a Binomial(k,1-p) party sometimes dies out "
              << "entirely — those censored trials and E[1/survivors] > "
              << "1/E[survivors] both push the mean up, which is the correct "
              << "physics, not an artifact.)\n";
  }
  return 0;
}

}  // namespace
}  // namespace ants::bench

int main(int argc, char** argv) try {
  return ants::bench::run(argc, argv);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
