// Central-place foraging scenario from the paper's introduction.
//
// A colony's surroundings contain several food patches at different
// distances. Central-place foraging theory (and the paper's cost measure)
// says nearby patches should be found first — the whole point of evaluating
// search time as a function of D. This example runs one strategy against a
// menu of patches and reports the expected discovery time and discovery
// order, demonstrating the "nearer is found sooner" property and how it
// sharpens as the colony grows.
//
//   ./ant_colony_foraging [--k=64] [--delta=0.5] [--trials=60]
#include <algorithm>
#include <cstdio>
#include <exception>
#include <iostream>
#include <vector>

#include "core/harmonic.h"
#include "sim/metrics.h"
#include "sim/runner.h"
#include "util/cli.h"
#include "util/format.h"
#include "util/table.h"

namespace {

struct Patch {
  const char* label;
  std::int64_t distance;
};

}  // namespace

int main(int argc, char** argv) try {
  ants::util::Cli cli(argc, argv);
  const int k = static_cast<int>(cli.get_int("k", 64));
  const double delta = cli.get_double("delta", 0.5);
  const std::int64_t trials = cli.get_int("trials", 60);
  cli.finish();

  const std::vector<Patch> patches{
      {"crumbs by the nest", 4},   {"seed pile", 12},
      {"fallen fig", 32},          {"dead beetle", 64},
      {"neighbor's picnic", 128},
  };

  const ants::core::HarmonicStrategy strategy(delta);
  std::printf("colony of %d ants, %s, %lld trials per patch\n\n", k,
              strategy.name().c_str(), static_cast<long long>(trials));

  ants::util::Table table({"patch", "distance D", "median time", "mean time",
                           "optimal D+D^2/k", "slowdown vs optimal"});

  std::vector<double> medians;
  for (const Patch& patch : patches) {
    ants::sim::RunConfig config;
    config.trials = trials;
    config.seed = 1000 + static_cast<std::uint64_t>(patch.distance);
    config.time_cap = 1 << 24;
    const ants::sim::RunStats rs = ants::sim::run_trials(
        strategy, k, patch.distance, ants::sim::uniform_ring_placement(),
        config);
    medians.push_back(rs.time.median);
    char buf[4][64];
    std::snprintf(buf[0], sizeof(buf[0]), "%lld",
                  static_cast<long long>(patch.distance));
    std::snprintf(buf[1], sizeof(buf[1]), "%.0f", rs.time.median);
    std::snprintf(buf[2], sizeof(buf[2]), "%.0f", rs.time.mean);
    std::snprintf(buf[3], sizeof(buf[3]), "%.0f",
                  ants::sim::optimal_time(patch.distance, k));
    table.add_row({patch.label, buf[0], buf[1], buf[2], buf[3],
                   ants::util::fmt_fixed(rs.median_competitiveness, 2)});
  }
  table.print(std::cout);

  const bool ordered = std::is_sorted(medians.begin(), medians.end());
  std::printf(
      "\ndiscovery order follows distance: %s — central-place foraging "
      "finds nearby food first.\n",
      ordered ? "YES" : "no (increase --trials; medians are noisy)");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
