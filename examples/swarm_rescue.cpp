// Search-and-rescue swarm with unreliable fleet size: why UNIFORM
// algorithms matter.
//
// A rescue coordinator launches a nominal fleet of drones from a base to
// find a casualty at unknown distance, but some fraction fails on launch.
// A strategy tuned to the nominal fleet size (the paper's A_k with k set to
// nominal) silently degrades when fewer drones actually fly, while the
// uniform algorithm (no knowledge of k) and the harmonic algorithm degrade
// gracefully — exactly the trade-off Theorems 3.1/3.3 quantify.
//
//   ./swarm_rescue [--nominal=64] [--distance=48] [--trials=60]
#include <cstdio>
#include <exception>
#include <iostream>
#include <vector>

#include "core/harmonic.h"
#include "core/known_k.h"
#include "core/uniform.h"
#include "sim/metrics.h"
#include "sim/runner.h"
#include "util/cli.h"
#include "util/format.h"
#include "util/table.h"

int main(int argc, char** argv) try {
  ants::util::Cli cli(argc, argv);
  const int nominal = static_cast<int>(cli.get_int("nominal", 64));
  const std::int64_t distance = cli.get_int("distance", 48);
  const std::int64_t trials = cli.get_int("trials", 60);
  cli.finish();

  // The known-k strategy is tuned to the NOMINAL fleet; the uniform and
  // harmonic strategies need no tuning at all.
  const ants::core::KnownKStrategy tuned(nominal);
  const ants::core::UniformStrategy uniform(0.5);
  const ants::core::HarmonicStrategy harmonic(0.5);

  std::printf(
      "rescue base: nominal fleet %d drones, casualty at distance %lld\n\n",
      nominal, static_cast<long long>(distance));

  ants::util::Table table({"surviving drones", "tuned-to-nominal (median)",
                           "uniform (median)", "harmonic (median)",
                           "optimal order"});

  for (const double survival : {1.0, 0.5, 0.25, 0.125}) {
    const int k = std::max(1, static_cast<int>(nominal * survival));
    ants::sim::RunConfig config;
    config.trials = trials;
    config.seed = 7 + static_cast<std::uint64_t>(k);
    config.time_cap = 1 << 24;

    const auto run = [&](const ants::sim::Strategy& s) {
      return ants::sim::run_trials(s, k, distance,
                                   ants::sim::uniform_ring_placement(),
                                   config);
    };
    const auto rs_tuned = run(tuned);
    const auto rs_uniform = run(uniform);
    const auto rs_harmonic = run(harmonic);

    char label[64];
    std::snprintf(label, sizeof(label), "%d of %d", k, nominal);
    table.add_row({label, ants::util::fmt_fixed(rs_tuned.time.median, 0),
                   ants::util::fmt_fixed(rs_uniform.time.median, 0),
                   ants::util::fmt_fixed(rs_harmonic.time.median, 0),
                   ants::util::fmt_fixed(
                       ants::sim::optimal_time(distance, k), 0)});
  }
  table.print(std::cout);

  std::printf(
      "\nreading: with the full fleet the tuned strategy wins (Theorem 3.1);"
      "\nas drones fail, its fixed spiral budgets under-search each phase,"
      "\nwhile the uniform strategy keeps its O(log^(1+eps) k) promise for"
      "\nwhatever k actually flies (Theorem 3.3).\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
