// Quickstart: the smallest end-to-end use of the library.
//
// A colony of k ants leaves the nest (the origin) with no way to
// communicate and no idea how many of them there are; a food source sits at
// an unknown location at distance D. Run the paper's harmonic algorithm and
// see how long the colony takes to find it.
//
//   ./quickstart [--k=64] [--distance=32] [--delta=0.5] [--trials=100]
#include <cstdio>
#include <exception>

#include "core/harmonic.h"
#include "sim/metrics.h"
#include "sim/runner.h"
#include "util/cli.h"

int main(int argc, char** argv) try {
  ants::util::Cli cli(argc, argv);
  const int k = static_cast<int>(cli.get_int("k", 64));
  const std::int64_t distance = cli.get_int("distance", 32);
  const double delta = cli.get_double("delta", 0.5);
  const std::int64_t trials = cli.get_int("trials", 100);
  cli.finish();

  // 1. Pick a strategy. The harmonic algorithm needs no knowledge of k.
  const ants::core::HarmonicStrategy strategy(delta);

  // 2. Configure the Monte-Carlo run: the adversary re-places the treasure
  //    uniformly on the distance-D ring every trial.
  ants::sim::RunConfig config;
  config.trials = trials;
  config.seed = 42;
  config.time_cap = 1 << 22;  // heavy-tailed trips: censor the stragglers

  // 3. Run and report.
  const ants::sim::RunStats rs = ants::sim::run_trials(
      strategy, k, distance, ants::sim::uniform_ring_placement(), config);

  std::printf("strategy          : %s\n", strategy.name().c_str());
  std::printf("agents (k)        : %d\n", k);
  std::printf("distance (D)      : %lld\n",
              static_cast<long long>(distance));
  std::printf("trials            : %lld\n", static_cast<long long>(trials));
  std::printf("success rate      : %.1f%%\n", 100.0 * rs.success_rate);
  std::printf("median search time: %.0f steps\n", rs.time.median);
  std::printf("mean search time  : %.0f steps (+- %.0f)\n", rs.time.mean,
              rs.time.ci95_half());
  std::printf("optimal order     : D + D^2/k = %.0f steps\n",
              ants::sim::optimal_time(distance, k));
  std::printf("competitiveness   : %.2f (median-based %.2f)\n",
              rs.mean_competitiveness, rs.median_competitiveness);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
