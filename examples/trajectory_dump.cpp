// Visualize single-agent trajectories as ASCII art (and optional CSV).
//
// The paper's section 6 notes desert-ant searches consist of "a long
// straight path in a given direction emanating from the nest and a second
// more tortuous path within a small confined area" — precisely the
// GoTo + spiral structure of the harmonic algorithm. Render and compare.
//
//   ./trajectory_dump [--strategy=harmonic|uniform|known-k|levy]
//                     [--horizon=400] [--extent=20] [--seed=7] [--csv=path]
#include <cstdio>
#include <exception>
#include <iostream>
#include <memory>
#include <string>

#include "baselines/levy.h"
#include "core/harmonic.h"
#include "core/known_k.h"
#include "core/uniform.h"
#include "sim/trajectory.h"
#include "util/cli.h"
#include "util/csv.h"

namespace {

std::unique_ptr<ants::sim::Strategy> make_strategy(const std::string& name) {
  if (name == "harmonic") {
    return std::make_unique<ants::core::HarmonicStrategy>(0.5);
  }
  if (name == "uniform") {
    return std::make_unique<ants::core::UniformStrategy>(0.5);
  }
  if (name == "known-k") {
    return std::make_unique<ants::core::KnownKStrategy>(4);
  }
  if (name == "levy") {
    return std::make_unique<ants::baselines::LevyStrategy>(2.0, true);
  }
  throw std::invalid_argument("unknown --strategy: " + name);
}

}  // namespace

int main(int argc, char** argv) try {
  ants::util::Cli cli(argc, argv);
  const std::string name = cli.get_string("strategy", "harmonic");
  const ants::sim::Time horizon = cli.get_int("horizon", 400);
  const std::int64_t extent = cli.get_int("extent", 20);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const std::string csv_path = cli.get_string("csv", "");
  cli.finish();

  const auto strategy = make_strategy(name);
  ants::rng::Rng rng(seed);
  const auto trace = ants::sim::trace_program(
      *strategy, ants::sim::AgentContext{0, 1}, rng, horizon);

  std::printf("%s, one agent, %lld steps (seed %llu)\n\n",
              strategy->name().c_str(), static_cast<long long>(horizon),
              static_cast<unsigned long long>(seed));
  std::cout << ants::sim::render_trace(trace, extent, {extent, 0});

  std::int64_t max_radius = 0;
  for (const auto& tp : trace) {
    max_radius = std::max(max_radius, ants::grid::l1_norm(tp.position));
  }
  std::printf("\nvisited %zu positions, max distance from nest %lld\n",
              trace.size(), static_cast<long long>(max_radius));

  if (!csv_path.empty()) {
    ants::util::CsvWriter csv(csv_path, {"t", "x", "y"});
    for (const auto& tp : trace) {
      csv.add_row_numeric({static_cast<double>(tp.time),
                           static_cast<double>(tp.position.x),
                           static_cast<double>(tp.position.y)});
    }
    std::printf("wrote %zu rows to %s\n", csv.rows(), csv_path.c_str());
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
