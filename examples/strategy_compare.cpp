// Side-by-side comparison of every search strategy in the library on one
// instance (k agents, treasure uniform on the distance-D ring).
//
//   ./strategy_compare [--k=16] [--distance=32] [--trials=60]
#include <cstdio>
#include <exception>
#include <iostream>
#include <memory>
#include <vector>

#include "baselines/biased_walk.h"
#include "baselines/levy.h"
#include "baselines/random_walk.h"
#include "baselines/sector_sweep.h"
#include "baselines/spiral_single.h"
#include "core/harmonic.h"
#include "core/known_k.h"
#include "core/uniform.h"
#include "sim/metrics.h"
#include "sim/runner.h"
#include "util/cli.h"
#include "util/format.h"
#include "util/table.h"

int main(int argc, char** argv) try {
  ants::util::Cli cli(argc, argv);
  const int k = static_cast<int>(cli.get_int("k", 16));
  const std::int64_t distance = cli.get_int("distance", 32);
  const std::int64_t trials = cli.get_int("trials", 60);
  cli.finish();

  ants::sim::RunConfig config;
  config.trials = trials;
  config.seed = 2024;
  config.time_cap = 1 << 22;

  std::printf("k = %d agents, D = %lld, %lld trials, cap %lld steps\n\n", k,
              static_cast<long long>(distance), static_cast<long long>(trials),
              static_cast<long long>(config.time_cap));

  ants::util::Table table({"strategy", "success", "median time", "mean time",
                           "competitiveness", "uses k?"});

  const auto add = [&](const ants::sim::RunStats& rs, const std::string& name,
                       const char* uses_k) {
    table.add_row({name, ants::util::fmt_fixed(100.0 * rs.success_rate, 0) + "%",
                   ants::util::fmt_fixed(rs.time.median, 0),
                   ants::util::fmt_fixed(rs.time.mean, 0),
                   ants::util::fmt_fixed(rs.mean_competitiveness, 2), uses_k});
  };

  const ants::sim::Placement placement = ants::sim::uniform_ring_placement();

  // Paper algorithms.
  const ants::core::KnownKStrategy known(k);
  add(ants::sim::run_trials(known, k, distance, placement, config),
      known.name(), "yes (exact)");
  const ants::core::UniformStrategy uniform(0.5);
  add(ants::sim::run_trials(uniform, k, distance, placement, config),
      uniform.name(), "no");
  const ants::core::HarmonicStrategy harmonic(0.5);
  add(ants::sim::run_trials(harmonic, k, distance, placement, config),
      harmonic.name(), "no");

  // Coordinated / deterministic baselines.
  const ants::baselines::SectorSweepStrategy sweep;
  add(ants::sim::run_trials(sweep, k, distance, placement, config),
      sweep.name(), "yes (+ids)");
  const ants::baselines::SpiralSingleStrategy spiral;
  add(ants::sim::run_trials(spiral, k, distance, placement, config),
      spiral.name(), "no (det.)");

  // Biologically-motivated baselines.
  const ants::baselines::LevyStrategy levy(2.0, /*loop=*/false);
  add(ants::sim::run_trials(levy, k, distance, placement, config),
      levy.name(), "no");

  // Step-level walks need a much smaller cap to finish; censoring applies.
  ants::sim::RunConfig walk_config = config;
  walk_config.time_cap = 200000;
  const ants::baselines::RandomWalkStrategy rw;
  add(ants::sim::run_step_trials(rw, k, distance, placement, walk_config),
      rw.name(), "no");
  const ants::baselines::BiasedWalkStrategy biased(0.3, 0.8);
  add(ants::sim::run_step_trials(biased, k, distance, placement, walk_config),
      biased.name(), "no");

  table.print(std::cout);
  std::printf(
      "\noptimal order for this instance: D + D^2/k = %.0f steps.\n"
      "walk baselines are censored at %lld steps; their success rates show "
      "the blow-up.\n",
      ants::sim::optimal_time(distance, k),
      static_cast<long long>(walk_config.time_cap));
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
