// Patchy foraging: the paper's central-place motivation on a realistic
// multi-patch landscape.
//
// The introduction argues that central place foragers hold "a strong
// preference to locate nearby food sources before those that are further
// away" (predation risk, retrieval rate, territory, navigation). This
// example places several food patches at different distances and angles
// around the nest, releases a non-communicating colony, and measures:
//
//   * which patch is discovered first (the foraging race), and
//   * the full discovery schedule (first-visit time of every patch).
//
// The nearest-first preference is EMERGENT: no agent knows where any patch
// is, yet the colony's discovery order tracks patch distance almost
// perfectly, because every paper algorithm spends its early budget close
// to the nest by construction.
//
//   ./patchy_foraging [--k=32] [--delta=0.5] [--trials=200]
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "core/harmonic.h"
#include "rng/rng.h"
#include "sim/multi_target.h"
#include "util/cli.h"

int main(int argc, char** argv) try {
  ants::util::Cli cli(argc, argv);
  const int k = static_cast<int>(cli.get_int("k", 32));
  const double delta = cli.get_double("delta", 0.5);
  const std::int64_t trials = cli.get_int("trials", 200);
  cli.finish();

  // A landscape of four patches: two nearby (one of them in an "awkward"
  // diagonal direction to show direction does not matter), one mid-range,
  // one far. Distances are L1.
  struct Patch {
    const char* tag;
    ants::grid::Point where;
  };
  const std::vector<Patch> patches{
      {"berries (D=6)", {4, -2}},
      {"seeds (D=10)", {-5, 5}},
      {"carcass (D=36)", {-20, 16}},
      {"grove (D=120)", {60, -60}},
  };
  std::vector<ants::grid::Point> targets;
  targets.reserve(patches.size());
  for (const Patch& p : patches) targets.push_back(p.where);

  const ants::core::HarmonicStrategy strategy(delta);

  std::vector<std::int64_t> first_wins(patches.size(), 0);
  std::vector<double> discovery_sums(patches.size(), 0.0);
  std::vector<std::int64_t> discovered(patches.size(), 0);
  std::int64_t races_decided = 0;

  ants::sim::EngineConfig config;
  config.time_cap = 1 << 23;

  for (std::int64_t t = 0; t < trials; ++t) {
    const ants::rng::Rng trial(
        ants::rng::mix_seed(0xF00D, static_cast<std::uint64_t>(t)));
    const ants::sim::MultiSearchResult r = ants::sim::run_search_multi(
        strategy, k, targets, trial, config, /*collect_all=*/true);
    if (r.found) {
      ++races_decided;
      ++first_wins[static_cast<std::size_t>(r.first_target)];
    }
    for (std::size_t i = 0; i < patches.size(); ++i) {
      if (r.target_times[i] != ants::sim::kNeverTime) {
        discovery_sums[i] += static_cast<double>(r.target_times[i]);
        ++discovered[i];
      }
    }
  }

  std::printf("colony: k = %d, %s, %lld trials, time cap %lld\n\n", k,
              strategy.name().c_str(), static_cast<long long>(trials),
              static_cast<long long>(config.time_cap));
  std::printf("%-18s %14s %18s %14s\n", "patch", "P(found first)",
              "mean discovery T", "P(discovered)");
  for (std::size_t i = 0; i < patches.size(); ++i) {
    const double p_first =
        races_decided > 0
            ? static_cast<double>(first_wins[i]) /
                  static_cast<double>(races_decided)
            : 0.0;
    const double mean_t =
        discovered[i] > 0 ? discovery_sums[i] /
                                static_cast<double>(discovered[i])
                          : -1.0;
    std::printf("%-18s %13.1f%% %18.0f %13.1f%%\n", patches[i].tag,
                100.0 * p_first, mean_t,
                100.0 * static_cast<double>(discovered[i]) /
                    static_cast<double>(trials));
  }

  std::printf(
      "\nNo agent knows any patch location, the colony size, or even that\n"
      "other patches exist — yet the discovery order tracks distance: the\n"
      "paper's 'find nearby treasures first' design goal, emerging from\n"
      "nothing but each ant's private trip-length distribution.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
