// Staggered release with attrition: the paper's model assumptions, stressed.
//
// Real colonies do not launch all foragers in the same instant, and
// foragers die. Section 2 of the paper waves both away — synchronous starts
// "can easily be removed by starting to count the time after the last agent
// initiates the search", and immortality is implicit. This example stresses
// both relaxations at once:
//
//   * ants leave the nest one every `gap` steps (adversarial drip), and
//   * each ant independently survives a trip-time budget drawn from an
//     exponential with mean `lifetime`.
//
// It prints the absolute search time, the time measured from the last
// start (the paper's preferred clock), and the attrition count — showing
// that the non-communicating design sails through both relaxations.
//
//   ./staggered_release [--k=64] [--distance=48] [--gap=8]
//                       [--lifetime=20000] [--trials=150]
#include <cstdio>
#include <exception>

#include "core/known_k.h"
#include "sim/async_engine.h"
#include "sim/runner.h"
#include "util/cli.h"

int main(int argc, char** argv) try {
  ants::util::Cli cli(argc, argv);
  const int k = static_cast<int>(cli.get_int("k", 64));
  const std::int64_t distance = cli.get_int("distance", 48);
  const std::int64_t gap = cli.get_int("gap", 8);
  const double lifetime = cli.get_double("lifetime", 20000.0);
  const std::int64_t trials = cli.get_int("trials", 150);
  cli.finish();

  const ants::core::KnownKStrategy strategy(k);

  ants::sim::RunConfig config;
  config.trials = trials;
  config.seed = 4711;
  config.time_cap = 1 << 22;

  // Baseline: the paper's pristine model (synchronous, immortal).
  const ants::sim::AsyncRunStats pristine = ants::sim::run_async_trials(
      strategy, k, distance, ants::sim::uniform_ring_placement(),
      ants::sim::SyncStart(), ants::sim::NoCrash(), config);

  // The stressed run: drip release + exponential attrition.
  const ants::sim::StaggeredStart schedule(gap);
  const ants::sim::ExponentialLifetime crashes(lifetime);
  const ants::sim::AsyncRunStats stressed = ants::sim::run_async_trials(
      strategy, k, distance, ants::sim::uniform_ring_placement(), schedule,
      crashes, config);

  std::printf("colony: k = %d ants, %s, D = %lld, %lld trials\n", k,
              strategy.name().c_str(), static_cast<long long>(distance),
              static_cast<long long>(trials));
  std::printf("release: one ant every %lld steps (last start %lld)\n",
              static_cast<long long>(gap),
              static_cast<long long>(gap * (k - 1)));
  std::printf("attrition: exponential lifetimes, mean %.0f steps\n\n",
              lifetime);

  std::printf("%-34s %12s %12s\n", "", "pristine", "stressed");
  std::printf("%-34s %12.0f %12.0f\n", "mean search time (absolute)",
              pristine.base.time.mean, stressed.base.time.mean);
  std::printf("%-34s %12.0f %12.0f\n", "mean search time from last start",
              pristine.from_last_start.mean, stressed.from_last_start.mean);
  std::printf("%-34s %12.1f%% %11.1f%%\n", "success rate",
              100.0 * pristine.base.success_rate,
              100.0 * stressed.base.success_rate);
  std::printf("%-34s %12.1f %12.1f\n", "ants lost per trial (mean)",
              pristine.mean_crashed, stressed.mean_crashed);

  std::printf(
      "\nMeasured from the last start — the clock the paper says to use —\n"
      "the stressed colony is on par with the pristine one (often faster:\n"
      "early ants pre-cover ground before the clock starts). Attrition\n"
      "degrades the time like a smaller colony would, never catastrophic-\n"
      "ally: with no coordination there is nothing for a death to break.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
