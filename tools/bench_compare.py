#!/usr/bin/env python3
"""Compare a Google Benchmark JSON run against a stored baseline.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--max-ratio R]

Prints a per-benchmark table of baseline vs current real_time and the
current/baseline ratio. Benchmarks present on only one side are listed but
never fail the comparison. With --max-ratio R, exits non-zero if any shared
benchmark got slower than R x its baseline — the hook for turning the CI
smoke job into a hard regression gate once runner variance is
characterized. Without it the comparison is informational (exit 0).

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benchmarks", []):
        # Aggregate reports (mean/median/stddev) would double-count; keep
        # plain iterations only.
        if bench.get("run_type", "iteration") != "iteration":
            continue
        out[bench["name"]] = {
            "real_time": float(bench["real_time"]),
            "time_unit": bench.get("time_unit", "ns"),
        }
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=None,
        help="fail (exit 1) if any shared benchmark exceeds this "
        "current/baseline real_time ratio",
    )
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)

    shared = sorted(set(baseline) & set(current))
    only_baseline = sorted(set(baseline) - set(current))
    only_current = sorted(set(current) - set(baseline))

    if not shared:
        # Informational without --max-ratio: a wholesale rename of the
        # benchmark set (baseline not yet regenerated) must not fail CI.
        print("bench_compare: no shared benchmarks between the two runs")
        for name in sorted(baseline):
            print(f"{name}: in baseline only (removed or filtered out)")
        for name in sorted(current):
            print(f"{name}: new benchmark (no baseline yet)")
        return 1 if args.max_ratio is not None else 0

    name_w = max(len(n) for n in shared)
    print(f"{'benchmark':<{name_w}}  {'baseline':>12}  {'current':>12}  ratio")
    worst = None
    for name in shared:
        b = baseline[name]["real_time"]
        c = current[name]["real_time"]
        ratio = c / b if b > 0 else float("inf")
        unit = current[name]["time_unit"]
        flag = ""
        if args.max_ratio is not None and ratio > args.max_ratio:
            flag = "  REGRESSION"
        print(
            f"{name:<{name_w}}  {b:>10.1f}{unit}  {c:>10.1f}{unit}  "
            f"{ratio:>5.2f}x{flag}"
        )
        if worst is None or ratio > worst[1]:
            worst = (name, ratio)

    for name in only_baseline:
        print(f"{name}: in baseline only (removed or filtered out)")
    for name in only_current:
        print(f"{name}: new benchmark (no baseline yet)")

    print(f"worst ratio: {worst[1]:.2f}x ({worst[0]})")
    if args.max_ratio is not None and worst[1] > args.max_ratio:
        print(
            f"bench_compare: FAILED — worst ratio {worst[1]:.2f}x exceeds "
            f"--max-ratio {args.max_ratio}"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
