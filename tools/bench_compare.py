#!/usr/bin/env python3
"""Compare Google Benchmark JSON runs against a stored baseline.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [CURRENT2.json ...]
                     [--max-ratio R] [--update-baseline]

Prints a per-benchmark table of baseline vs current real_time and the
current/baseline ratio. When a run was made with --benchmark_repetitions=N,
each benchmark's repetitions are collapsed to their MEDIAN real_time before
comparing — the variance-robust statistic the CI gate relies on (a single
noisy repetition on a shared runner must not fail the job). Benchmarks
present on only one side are listed but never fail the comparison.

Multiple CURRENT files are pooled into one run before comparing (samples of
a benchmark appearing in several files are medianed together), so one
baseline store can span several harness binaries — e.g. micro_engine and
micro_plane each write their own JSON and gate against the shared
bench/baseline_engine.json.

With --max-ratio R, exits non-zero if any shared benchmark's median got
slower than R x its baseline — the CI benchmark-smoke job runs with
--max-ratio 1.35 (see .github/workflows/ci.yml), chosen from the observed
3-repetition median spread on shared runners.

With --batched-speedup R, additionally pairs every BM_Batched* benchmark
in the CURRENT run with its BM_Unified* twin (name substitution), prints
the per-pair unified/batched median ratio, and exits non-zero if the
MEDIAN of those ratios falls below R. The median — not the min — is the
scoreboard: the batch executor's wins are concentrated where SIMD has
leverage (plane sight tests, multi-target scans), while lock-step pairs
are structurally near 1x because byte-identity pins the per-agent program
and RNG work, so a min-gate would only measure the worst structural tie.

With --update-baseline, BASELINE.json is REWRITTEN from CURRENT.json's
medians (one synthetic iteration entry per benchmark, context preserved
from the current run) and the comparison is skipped. This is the one
sanctioned way to regenerate bench/baseline_engine.json — the baseline
store is tool-maintained, not hand-edited.

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import statistics
import sys


def load_benchmarks(paths):
    """name -> {"real_time": median across repetitions, "time_unit": unit}.

    `paths` is one path or a list; samples from every file pool into the
    same median, so a multi-binary run reads as one flat benchmark set.
    """
    if isinstance(paths, str):
        paths = [paths]
    samples = {}
    units = {}
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        for bench in data.get("benchmarks", []):
            # Aggregate reports (mean/median/stddev rows emitted alongside
            # repetitions) would double-count; keep plain iterations only and
            # aggregate ourselves so the statistic is the same with or
            # without --benchmark_repetitions.
            if bench.get("run_type", "iteration") != "iteration":
                continue
            name = bench["name"]
            samples.setdefault(name, []).append(float(bench["real_time"]))
            units[name] = bench.get("time_unit", "ns")
    return {
        name: {
            "real_time": statistics.median(values),
            "time_unit": units[name],
        }
        for name, values in samples.items()
    }


def write_baseline(path, current_path, current):
    """Rewrites the baseline store from a run's medians (context taken from
    the first current file)."""
    with open(current_path) as f:
        context = json.load(f).get("context", {})
    benchmarks = []
    for name in sorted(current):
        benchmarks.append(
            {
                "name": name,
                "run_type": "iteration",
                "real_time": current[name]["real_time"],
                "time_unit": current[name]["time_unit"],
            }
        )
    with open(path, "w") as f:
        json.dump({"context": context, "benchmarks": benchmarks}, f, indent=2)
        f.write("\n")
    return len(benchmarks)


def batched_speedup_check(current, floor):
    """Gates the batch executor against its scalar twins within one run.

    Pairs BM_Batched<X> with BM_Unified<X> by name substitution and
    requires the MEDIAN unified/batched real_time ratio to reach `floor`.
    Returns a process exit code.
    """
    pairs = []
    for name in sorted(current):
        if "Batched" not in name:
            continue
        twin = name.replace("Batched", "Unified")
        if twin not in current:
            print(f"{name}: no {twin} twin in the current run (skipped)")
            continue
        unified = current[twin]["real_time"]
        batched = current[name]["real_time"]
        ratio = unified / batched if batched > 0 else float("inf")
        pairs.append((name, unified, batched, ratio))
    if not pairs:
        print(
            "bench_compare: --batched-speedup found no Batched/Unified "
            "pairs in the current run"
        )
        return 1

    name_w = max(len(name) for name, *_ in pairs)
    print()
    print(
        f"{'batched benchmark':<{name_w}}  {'unified':>12}  {'batched':>12}"
        "  speedup"
    )
    for name, unified, batched, ratio in pairs:
        unit = current[name]["time_unit"]
        print(
            f"{name:<{name_w}}  {unified:>10.1f}{unit}  "
            f"{batched:>10.1f}{unit}  {ratio:>6.2f}x"
        )
    med = statistics.median(ratio for *_, ratio in pairs)
    print(
        f"batched speedup: median {med:.2f}x over {len(pairs)} pairs "
        f"(floor {floor:.2f}x)"
    )
    if med < floor:
        print(
            f"bench_compare: FAILED — median batched speedup {med:.2f}x is "
            f"below --batched-speedup {floor}"
        )
        return 1
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current", nargs="+")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=None,
        help="fail (exit 1) if any shared benchmark exceeds this "
        "current/baseline median real_time ratio",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite BASELINE from CURRENT's medians instead of comparing",
    )
    parser.add_argument(
        "--batched-speedup",
        type=float,
        default=None,
        metavar="R",
        help="fail (exit 1) unless the median BM_Unified*/BM_Batched* "
        "real_time ratio in the current run is at least R",
    )
    args = parser.parse_args()

    current = load_benchmarks(args.current)
    if args.update_baseline:
        if not current:
            print("bench_compare: current run has no benchmarks; refusing "
                  "to write an empty baseline")
            return 1
        n = write_baseline(args.baseline, args.current[0], current)
        print(
            f"bench_compare: baseline {args.baseline} regenerated from "
            f"{', '.join(args.current)} ({n} benchmarks)"
        )
        return 0

    baseline = load_benchmarks(args.baseline)

    shared = sorted(set(baseline) & set(current))
    only_baseline = sorted(set(baseline) - set(current))
    only_current = sorted(set(current) - set(baseline))

    if not shared:
        # Informational without --max-ratio: a wholesale rename of the
        # benchmark set (baseline not yet regenerated) must not fail CI.
        print("bench_compare: no shared benchmarks between the two runs")
        for name in sorted(baseline):
            print(f"{name}: in baseline only (removed or filtered out)")
        for name in sorted(current):
            print(f"{name}: new benchmark (no baseline yet)")
        rc = 1 if args.max_ratio is not None else 0
        if args.batched_speedup is not None:
            rc = max(rc, batched_speedup_check(current, args.batched_speedup))
        return rc

    name_w = max(len(n) for n in shared)
    print(f"{'benchmark':<{name_w}}  {'baseline':>12}  {'current':>12}  ratio")
    worst = None
    for name in shared:
        b = baseline[name]["real_time"]
        c = current[name]["real_time"]
        ratio = c / b if b > 0 else float("inf")
        unit = current[name]["time_unit"]
        flag = ""
        if args.max_ratio is not None and ratio > args.max_ratio:
            flag = "  REGRESSION"
        print(
            f"{name:<{name_w}}  {b:>10.1f}{unit}  {c:>10.1f}{unit}  "
            f"{ratio:>5.2f}x{flag}"
        )
        if worst is None or ratio > worst[1]:
            worst = (name, ratio)

    for name in only_baseline:
        print(f"{name}: in baseline only (removed or filtered out)")
    for name in only_current:
        print(f"{name}: new benchmark (no baseline yet)")

    print(f"worst ratio: {worst[1]:.2f}x ({worst[0]})")
    rc = 0
    if args.max_ratio is not None and worst[1] > args.max_ratio:
        print(
            f"bench_compare: FAILED — worst ratio {worst[1]:.2f}x exceeds "
            f"--max-ratio {args.max_ratio}"
        )
        rc = 1
    if args.batched_speedup is not None:
        rc = max(rc, batched_speedup_check(current, args.batched_speedup))
    return rc


if __name__ == "__main__":
    sys.exit(main())
