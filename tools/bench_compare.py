#!/usr/bin/env python3
"""Compare Google Benchmark JSON runs against a stored baseline.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [CURRENT2.json ...]
                     [--max-ratio R] [--update-baseline]

Prints a per-benchmark table of baseline vs current real_time and the
current/baseline ratio. When a run was made with --benchmark_repetitions=N,
each benchmark's repetitions are collapsed to their MEDIAN real_time before
comparing — the variance-robust statistic the CI gate relies on (a single
noisy repetition on a shared runner must not fail the job). Benchmarks
present on only one side are listed but never fail the comparison.

Multiple CURRENT files are pooled into one run before comparing (samples of
a benchmark appearing in several files are medianed together), so one
baseline store can span several harness binaries — e.g. micro_engine and
micro_plane each write their own JSON and gate against the shared
bench/baseline_engine.json.

With --max-ratio R, exits non-zero if any shared benchmark's median got
slower than R x its baseline — the CI benchmark-smoke job runs with
--max-ratio 1.35 (see .github/workflows/ci.yml), chosen from the observed
3-repetition median spread on shared runners.

With --pair-gate SLOW:FAST:R (repeatable), pairs every benchmark in the
CURRENT run whose name contains FAST with the twin obtained by
substituting SLOW for FAST, prints the per-pair slow/fast median ratio,
and exits non-zero if the MEDIAN of those ratios falls below R. This is
how within-run speedup contracts gate: the absolute numbers drift with
the runner, the ratio between two implementations measured in the same
process does not. E.g. --pair-gate MergeJsonl:MergeBinary:3 requires the
binary artifact merge to stay at least 3x faster than the JSONL merge.

--batched-speedup R is the historical shorthand for
--pair-gate Unified:Batched:R (kept for CI compatibility). The median —
not the min — is the scoreboard in both spellings: a speedup's wins are
usually concentrated (SIMD leverage, mmap leverage) while some pairs are
structurally near 1x, so a min-gate would only measure the worst
structural tie.

With --pair-gate-min SLOW:FAST:R (repeatable), the same pairing machinery
gates EVERY pair's slow/fast ratio individually: the worst pair — not the
median — must reach R. Use it for pair families where each member carries
its own contract (e.g. the stochastic-target twins, where every dynamic
axis is expected to beat the scalar loop, not just the family median).

With --spread-report FILE, additionally writes a JSON report of each
current benchmark's repetition spread (n, min, median, max, max/min of
real_time across repetitions and pooled files) — the CI benchmark job
uploads it as an artifact so gate-threshold choices (--max-ratio, pair
floors) can be audited against observed runner noise instead of guessed.

With --update-baseline, BASELINE.json is REWRITTEN from CURRENT.json's
medians (one synthetic iteration entry per benchmark, context preserved
from the current run) and the comparison is skipped. This is the one
sanctioned way to regenerate bench/baseline_engine.json — the baseline
store is tool-maintained, not hand-edited.

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import statistics
import sys


def load_samples(paths):
    """name -> ([real_time samples], time_unit), pooled across files.

    `paths` is one path or a list; samples from every file pool together,
    so a multi-binary run reads as one flat benchmark set.
    """
    if isinstance(paths, str):
        paths = [paths]
    samples = {}
    units = {}
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        for bench in data.get("benchmarks", []):
            # Aggregate reports (mean/median/stddev rows emitted alongside
            # repetitions) would double-count; keep plain iterations only and
            # aggregate ourselves so the statistic is the same with or
            # without --benchmark_repetitions.
            if bench.get("run_type", "iteration") != "iteration":
                continue
            name = bench["name"]
            samples.setdefault(name, []).append(float(bench["real_time"]))
            units[name] = bench.get("time_unit", "ns")
    return {name: (values, units[name]) for name, values in samples.items()}


def load_benchmarks(paths):
    """name -> {"real_time": median across repetitions, "time_unit": unit}."""
    return {
        name: {
            "real_time": statistics.median(values),
            "time_unit": unit,
        }
        for name, (values, unit) in load_samples(paths).items()
    }


def write_spread_report(path, samples):
    """Writes the per-benchmark repetition-spread JSON (see module doc)."""
    report = []
    for name in sorted(samples):
        values, unit = samples[name]
        lo, hi = min(values), max(values)
        report.append(
            {
                "name": name,
                "n": len(values),
                "min": lo,
                "median": statistics.median(values),
                "max": hi,
                "max_over_min": hi / lo if lo > 0 else float("inf"),
                "time_unit": unit,
            }
        )
    with open(path, "w") as f:
        json.dump({"benchmarks": report}, f, indent=2)
        f.write("\n")
    return len(report)


def write_baseline(path, current_path, current):
    """Rewrites the baseline store from a run's medians (context taken from
    the first current file)."""
    with open(current_path) as f:
        context = json.load(f).get("context", {})
    benchmarks = []
    for name in sorted(current):
        benchmarks.append(
            {
                "name": name,
                "run_type": "iteration",
                "real_time": current[name]["real_time"],
                "time_unit": current[name]["time_unit"],
            }
        )
    with open(path, "w") as f:
        json.dump({"context": context, "benchmarks": benchmarks}, f, indent=2)
        f.write("\n")
    return len(benchmarks)


def parse_pair_gate(spec):
    """Parses one SLOW:FAST:R argument into (slow_sub, fast_sub, floor)."""
    parts = spec.split(":")
    if len(parts) != 3 or not parts[0] or not parts[1]:
        raise SystemExit(
            f"bench_compare: --pair-gate expects SLOW:FAST:R, got '{spec}'"
        )
    try:
        floor = float(parts[2])
    except ValueError:
        raise SystemExit(
            f"bench_compare: --pair-gate floor '{parts[2]}' is not a number"
        )
    return parts[0], parts[1], floor


def pair_gate_check(current, slow_sub, fast_sub, floor, aggregate="median"):
    """Gates a fast implementation against its slow twin within one run.

    Pairs every benchmark whose name contains `fast_sub` with the twin
    named by substituting `slow_sub`, and requires the aggregated
    slow/fast real_time ratio to reach `floor` — the MEDIAN over pairs
    by default, or the MINIMUM (every pair individually) when
    `aggregate` is "min". Returns a process exit code.
    """
    pairs = []
    for name in sorted(current):
        if fast_sub not in name:
            continue
        twin = name.replace(fast_sub, slow_sub)
        if twin not in current:
            print(f"{name}: no {twin} twin in the current run (skipped)")
            continue
        slow = current[twin]["real_time"]
        fast = current[name]["real_time"]
        ratio = slow / fast if fast > 0 else float("inf")
        pairs.append((name, slow, fast, ratio))
    if not pairs:
        print(
            f"bench_compare: pair gate {slow_sub}:{fast_sub} found no pairs "
            "in the current run"
        )
        return 1

    name_w = max(len(name) for name, *_ in pairs)
    print()
    print(
        f"{'fast benchmark':<{name_w}}  {'slow':>12}  {'fast':>12}  speedup"
    )
    for name, slow, fast, ratio in pairs:
        unit = current[name]["time_unit"]
        print(
            f"{name:<{name_w}}  {slow:>10.1f}{unit}  "
            f"{fast:>10.1f}{unit}  {ratio:>6.2f}x"
        )
    if aggregate == "min":
        stat = min(ratio for *_, ratio in pairs)
    else:
        stat = statistics.median(ratio for *_, ratio in pairs)
    print(
        f"{slow_sub}/{fast_sub} speedup: {aggregate} {stat:.2f}x over "
        f"{len(pairs)} pairs (floor {floor:.2f}x)"
    )
    if stat < floor:
        print(
            f"bench_compare: FAILED — {aggregate} {slow_sub}/{fast_sub} "
            f"speedup {stat:.2f}x is below the {floor} floor"
        )
        return 1
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current", nargs="+")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=None,
        help="fail (exit 1) if any shared benchmark exceeds this "
        "current/baseline median real_time ratio",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite BASELINE from CURRENT's medians instead of comparing",
    )
    parser.add_argument(
        "--batched-speedup",
        type=float,
        default=None,
        metavar="R",
        help="fail (exit 1) unless the median BM_Unified*/BM_Batched* "
        "real_time ratio in the current run is at least R "
        "(shorthand for --pair-gate Unified:Batched:R)",
    )
    parser.add_argument(
        "--pair-gate",
        action="append",
        default=[],
        metavar="SLOW:FAST:R",
        help="fail (exit 1) unless the median slow/fast real_time ratio "
        "over all name-substitution pairs reaches R; repeatable",
    )
    parser.add_argument(
        "--pair-gate-min",
        action="append",
        default=[],
        metavar="SLOW:FAST:R",
        help="like --pair-gate, but every individual pair's slow/fast "
        "ratio must reach R (a per-pair floor rather than a median "
        "gate); repeatable",
    )
    parser.add_argument(
        "--spread-report",
        default=None,
        metavar="FILE",
        help="write per-benchmark repetition spread (n/min/median/max) of "
        "the current run as JSON",
    )
    args = parser.parse_args()

    pair_gates = [
        (*parse_pair_gate(spec), "median") for spec in args.pair_gate
    ]
    if args.batched_speedup is not None:
        pair_gates.append(("Unified", "Batched", args.batched_speedup,
                           "median"))
    pair_gates.extend(
        (*parse_pair_gate(spec), "min") for spec in args.pair_gate_min
    )

    current_samples = load_samples(args.current)
    current = {
        name: {"real_time": statistics.median(values), "time_unit": unit}
        for name, (values, unit) in current_samples.items()
    }
    if args.spread_report is not None:
        n = write_spread_report(args.spread_report, current_samples)
        print(
            f"bench_compare: spread report for {n} benchmarks written to "
            f"{args.spread_report}"
        )
    if args.update_baseline:
        if not current:
            print("bench_compare: current run has no benchmarks; refusing "
                  "to write an empty baseline")
            return 1
        n = write_baseline(args.baseline, args.current[0], current)
        print(
            f"bench_compare: baseline {args.baseline} regenerated from "
            f"{', '.join(args.current)} ({n} benchmarks)"
        )
        return 0

    baseline = load_benchmarks(args.baseline)

    shared = sorted(set(baseline) & set(current))
    only_baseline = sorted(set(baseline) - set(current))
    only_current = sorted(set(current) - set(baseline))

    if not shared:
        # Informational without --max-ratio: a wholesale rename of the
        # benchmark set (baseline not yet regenerated) must not fail CI.
        print("bench_compare: no shared benchmarks between the two runs")
        for name in sorted(baseline):
            print(f"{name}: in baseline only (removed or filtered out)")
        for name in sorted(current):
            print(f"{name}: new benchmark (no baseline yet)")
        rc = 1 if args.max_ratio is not None else 0
        for slow_sub, fast_sub, floor, aggregate in pair_gates:
            rc = max(rc, pair_gate_check(current, slow_sub, fast_sub, floor,
                                         aggregate))
        return rc

    name_w = max(len(n) for n in shared)
    print(f"{'benchmark':<{name_w}}  {'baseline':>12}  {'current':>12}  ratio")
    worst = None
    for name in shared:
        b = baseline[name]["real_time"]
        c = current[name]["real_time"]
        ratio = c / b if b > 0 else float("inf")
        unit = current[name]["time_unit"]
        flag = ""
        if args.max_ratio is not None and ratio > args.max_ratio:
            flag = "  REGRESSION"
        print(
            f"{name:<{name_w}}  {b:>10.1f}{unit}  {c:>10.1f}{unit}  "
            f"{ratio:>5.2f}x{flag}"
        )
        if worst is None or ratio > worst[1]:
            worst = (name, ratio)

    for name in only_baseline:
        print(f"{name}: in baseline only (removed or filtered out)")
    for name in only_current:
        print(f"{name}: new benchmark (no baseline yet)")

    print(f"worst ratio: {worst[1]:.2f}x ({worst[0]})")
    rc = 0
    if args.max_ratio is not None and worst[1] > args.max_ratio:
        print(
            f"bench_compare: FAILED — worst ratio {worst[1]:.2f}x exceeds "
            f"--max-ratio {args.max_ratio}"
        )
        rc = 1
    for slow_sub, fast_sub, floor, aggregate in pair_gates:
        rc = max(rc, pair_gate_check(current, slow_sub, fast_sub, floor,
                                     aggregate))
    return rc


if __name__ == "__main__":
    sys.exit(main())
