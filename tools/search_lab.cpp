// search_lab — the unified scenario driver: one binary that runs any
// declarative sweep over the registered strategies.
//
//   search_lab list
//       Lists every registered strategy with its parameter spec.
//
//   search_lab run --spec=FILE [output/scheduler flags]
//   search_lab run --strategies='uniform(eps=0.5); known-k' --ks=1,4,16
//                  --ds=16,32 --trials=100 [--seed=N] [--placement=ring,axis]
//                  [--targets='single,poisson(rate=0.01, life=500)']
//                  [--schedule=staggered(gap=4)] [--crash=doa(p=0.25)]
//                  [--capture=dwell(t=2)] [--collect=first|all]
//                  [--time-cap=T] [--columns=a,b,c] [output/scheduler flags]
//       Runs every scenario in FILE (text or JSON-lines form, see
//       docs/scenarios.md), or a single scenario assembled from flags.
//
//   search_lab run ... --shard=I/N --shard-out=FILE [--format=jsonl|binary]
//       Runs only shard I of an N-way split of each scenario's cells
//       (deterministic partition by cell index) and writes a
//       self-describing shard artifact instead of CSV/JSONL rows —
//       JSONL (default; diff-able) or binary columnar (mmap-able, the
//       fast path for big campaigns). Launch one process per shard — on
//       one machine or many — then reassemble with `search_lab merge`.
//       With --cache-dir, a killed shard resumes: the rerun recomputes
//       only cells missing from the cache.
//
//   search_lab merge ARTIFACT... [--csv=PATH] [--jsonl=PATH] [--quiet]
//             [--metrics-out=FILE]
//       Merges shard artifacts back into the canonical result table —
//       byte-identical to what the unsharded run would have written
//       (test-enforced). Artifacts are read in parallel and may mix JSONL
//       and binary encodings freely (each file is sniffed). The spec
//       travels inside the artifacts; merge refuses mismatched specs,
//       duplicate cells, and missing cells. --metrics-out aggregates the
//       per-shard telemetry embedded in the artifacts (exact counter sums
//       + bin-wise sketch merge) into one campaign-level metrics record.
//
//   search_lab catalog ARTIFACT... [--columns=a,b,c] [--csv=PATH]
//             [--strategy=SUBSTR] [--k=LIST] [--d=LIST] [--quiet]
//       Inspects shard artifacts without merging. With no selection flags,
//       lists one row per artifact (path, format, scenario, shard, cells,
//       spec hash). With --columns/--csv/filters it switches to cell mode:
//       renders the selected columns for every matching cell across ALL
//       the artifacts — different specs may mix, no completeness required,
//       nothing is validated against a plan beyond each artifact's own
//       spec. The cheap "what do I have / pull these columns" tool for a
//       directory of campaign shards.
//
//   search_lab cache pack --cache-dir=DIR
//       Compacts DIR's per-cell cache files into one mmap-able journal
//       (DIR/cache.pack). Subsequent runs load the pack once instead of
//       opening one file per cell, and append completed cells to the
//       journal; corrupt entries are dropped (and counted). Pack any time
//       — between runs, between shards — the cache contract is unchanged.
//
//   search_lab report METRICS_FILE... [--hist]
//       Renders metrics JSON files (from --metrics-out) as a human table:
//       cells computed/cached, trials, cache hits, phase times, trials/sec,
//       and cell-duration p50/p90/p99. --hist adds the cell-duration
//       distribution as a text histogram.
//
// Output/scheduler flags:
//   --csv=PATH       write rows as CSV (scenario i > 1 gets PATH.i)
//   --jsonl=PATH     write rows as JSON lines (same suffix rule)
//   --quiet          suppress the stdout table
//   --threads=N      scheduler threads (0 = hardware concurrency)
//   --cache-dir=DIR  per-cell result cache; re-runs recompute only changed
//                    cells (shards sharing one dir write atomically)
//   --progress       per-cell completion lines on stderr (rows unaffected;
//                    sharded runs prefix lines with "shard I/N"), with
//                    elapsed/rate/ETA appended
//
// Telemetry flags (run; all strictly observational — result rows are
// byte-identical with or without them, test-enforced):
//   --metrics-out=FILE  one JSON line of run metrics (counters, phase
//                       times, trials/sec, duration quantiles + sketch)
//   --events=FILE       structured JSONL event log (run_start, cell_start,
//                       cell_end, heartbeat, run_end), flushed per line
//   --trace=FILE        Chrome trace-event JSON; load in chrome://tracing
//                       or Perfetto to see per-worker cell execution
//   (scenario i > 1 gets FILE.i, like --csv)
#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "scenario/artifact.h"
#include "scenario/cache_pack.h"
#include "scenario/environment.h"
#include "scenario/registry.h"
#include "scenario/sink.h"
#include "scenario/spec.h"
#include "scenario/sweep.h"
#include "telemetry/run_telemetry.h"
#include "util/cli.h"
#include "util/table.h"

namespace ants {
namespace {

void print_params(const std::vector<scenario::ParamSpec>& params) {
  for (const scenario::ParamSpec& p : params) {
    std::cout << "    " << p.name << " (" << scenario::param_type_name(p.type)
              << ", default " << p.default_value << "): " << p.doc << "\n";
  }
}

void print_env_entries(const std::vector<scenario::EnvEntry>& entries) {
  for (const scenario::EnvEntry& entry : entries) {
    std::cout << entry.name;
    // Per-entry applicability: most entries run under every engine family
    // (the axis header says so); the exceptions carry their restriction.
    if (!entry.applies.empty()) {
      std::cout << " [applies: " << entry.applies << "]";
    }
    std::cout << "\n    " << entry.summary << "\n";
    print_params(entry.params);
  }
  std::cout << "\n";
}

const char* engine_kind(const scenario::BuiltStrategy& built) {
  if (built.is_step()) return "step-level";
  if (built.is_plane()) return "plane-level";
  return "segment-level";
}

/// Which environment axes a strategy's engine family supports. The unified
/// executor (sim/trial.h) gives EVERY family — segment-, step-, and
/// plane-level — the full environment.
const char* engine_axes(const scenario::BuiltStrategy&) {
  return "placements, schedule, crash, targets";
}

int run_list() {
  const scenario::Registry& registry = scenario::Registry::instance();
  for (const std::string& name : registry.names()) {
    const scenario::StrategyEntry* entry = registry.find(name);
    const scenario::BuiltStrategy built =
        registry.make(name, scenario::BuildContext{1});
    std::cout << name << " [" << engine_kind(built)
              << "; axes: " << engine_axes(built) << "]\n    "
              << entry->summary << "\n";
    print_params(entry->params);
    std::cout << "\n";
  }
  std::cout << registry.names().size() << " strategies registered.\n\n";

  const auto print_axis = [](const char* title, const char* spec_key,
                             const char* applies,
                             const std::vector<scenario::EnvEntry>& entries) {
    std::cout << "--- " << title << " (spec key: " << spec_key
              << "; applies to " << applies << ") ---\n";
    print_env_entries(entries);
  };
  print_axis("placements — sweepable axis", "placements",
             "every engine family", scenario::placement_entries());
  print_axis("start schedules — async variants", "schedule",
             "every engine family", scenario::schedule_entries());
  print_axis("crash models — fail-stop variants", "crash",
             "every engine family", scenario::crash_entries());
  print_axis("target processes — static sets, Poisson arrivals, drifting "
             "targets (sweepable axis)",
             "targets", "every engine family unless noted",
             scenario::target_entries());
  print_axis("capture policies — how a find confirms", "capture",
             "every engine family unless noted", scenario::capture_entries());
  std::cout << "--- collect modes (spec key: collect) ---\n"
            << "first\n    the race ends at the first find (the classic "
               "model)\n"
            << "all\n    the trial runs until every spawned target is found "
               "or the time cap; surfaces time_to_all and the "
               "target_time_0..3 per-slot discovery-time columns (requires "
               "a finite time_cap)\n\n"
            << "Every axis above — including the dynamic target processes, "
               "dwell capture, and\ncollect-all — executes through the "
               "batched SoA/SIMD executor (src/sim/batch/,\n"
               "scalar/SSE2/AVX2 dispatch). The one exception is plane "
               "strategies under a\nwindowed or collect-all process, which "
               "delegate per trial to the scalar executor\n(counted by the "
               "batch_scalar_fallback metric; see docs/observability.md)."
               "\n\n";
  return 0;
}

/// PATH for the first scenario, PATH.2, PATH.3, ... for the rest, so a
/// multi-scenario file never silently overwrites its own output.
std::string indexed_path(const std::string& path, std::size_t index) {
  if (index == 0) return path;
  return path + "." + std::to_string(index + 1);
}

/// Parses "--shard=I/N" into 1-based (shard, n_shards); throws on junk.
std::pair<std::size_t, std::size_t> parse_shard_arg(const std::string& arg) {
  const std::size_t slash = arg.find('/');
  std::size_t shard = 0, n_shards = 0;
  try {
    if (slash == std::string::npos) throw std::invalid_argument(arg);
    std::size_t shard_end = 0, n_end = 0;
    shard = std::stoull(arg.substr(0, slash), &shard_end);
    const std::string n_text = arg.substr(slash + 1);
    n_shards = std::stoull(n_text, &n_end);
    if (shard_end != slash || n_end != n_text.size()) {
      throw std::invalid_argument(arg);
    }
  } catch (const std::exception&) {
    throw std::invalid_argument("--shard expects I/N (e.g. 2/3), got '" +
                                arg + "'");
  }
  if (n_shards == 0 || shard == 0 || shard > n_shards) {
    throw std::invalid_argument("--shard=" + arg +
                                " outside 1/N..N/N");
  }
  return {shard, n_shards};
}

/// Writes one metrics JSON line to `path`.
void write_metrics_file(const std::string& path,
                        const telemetry::RunTelemetry& tel) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open metrics file: " + path);
  os << tel.metrics_json() << "\n";
}

int run_specs(util::Cli& cli) {
  const std::string spec_path = cli.get_string("spec", "");
  const std::string csv_path = cli.get_string("csv", "");
  const std::string jsonl_path = cli.get_string("jsonl", "");
  const bool quiet = cli.get_bool("quiet", false);
  const std::string shard_arg = cli.get_string("shard", "");
  const std::string shard_out = cli.get_string("shard-out", "");
  const std::string format_arg = cli.get_string("format", "");
  const std::string metrics_path = cli.get_string("metrics-out", "");
  const std::string events_path = cli.get_string("events", "");
  const std::string trace_path = cli.get_string("trace", "");

  std::size_t shard = 0, n_shards = 0;
  if (!shard_arg.empty()) {
    std::tie(shard, n_shards) = parse_shard_arg(shard_arg);
    if (shard_out.empty()) {
      std::cerr << "error: --shard requires --shard-out=FILE (the artifact "
                   "`search_lab merge` reassembles)\n";
      return 2;
    }
    if (!csv_path.empty() || !jsonl_path.empty()) {
      std::cerr << "error: --shard writes a shard artifact, not result "
                   "rows; produce the merged CSV/JSONL via `search_lab "
                   "merge`\n";
      return 2;
    }
  } else if (!shard_out.empty()) {
    std::cerr << "error: --shard-out only applies with --shard=I/N\n";
    return 2;
  }

  scenario::ArtifactFormat format = scenario::ArtifactFormat::kJsonl;
  if (!format_arg.empty()) {
    if (shard_arg.empty()) {
      std::cerr << "error: --format selects the shard-artifact encoding and "
                   "only applies with --shard=I/N\n";
      return 2;
    }
    if (format_arg == "binary") {
      format = scenario::ArtifactFormat::kBinary;
    } else if (format_arg != "jsonl") {
      std::cerr << "error: --format expects jsonl or binary, got '"
                << format_arg << "'\n";
      return 2;
    }
  }

  scenario::SweepOptions sweep_opt;
  sweep_opt.threads = static_cast<unsigned>(cli.get_int("threads", 0));
  sweep_opt.cache_dir = cli.get_string("cache-dir", "");
  sweep_opt.progress = cli.get_bool("progress", false);

  std::vector<scenario::ScenarioSpec> specs;
  if (!spec_path.empty()) {
    // Sweep-building flags are deliberately NOT consumed here, so mixing
    // --spec with e.g. --trials fails loudly in finish() instead of being
    // silently ignored.
    specs = scenario::parse_spec_file(spec_path);
    if (specs.empty()) {
      std::cerr << "error: " << spec_path << " contains no scenarios\n";
      return 1;
    }
  } else {
    specs.push_back(scenario::spec_from_cli(cli));
  }
  cli.finish();

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const scenario::ScenarioSpec& spec = specs[i];
    // run_sweep/run_shard validate via flatten(); no separate validate()
    // call here.
    if (!quiet) {
      std::cout << "scenario '" << spec.name << "': "
                << spec.strategies.size() << " strategies x "
                << spec.ks.size() << " ks x " << spec.distances.size()
                << " distances";
      if (spec.placements.size() > 1) {
        std::cout << " x " << spec.placements.size() << " placements";
      }
      if (spec.targets.size() > 1) {
        std::cout << " x " << spec.targets.size() << " target sets";
      }
      if (spec.is_async()) std::cout << " [async]";
      if (spec.is_multi_target()) std::cout << " [multi-target]";
      if (spec.is_dynamic()) std::cout << " [dynamic-targets]";
      std::cout << ", " << spec.trials << " trials/cell\n";
    }

    // One telemetry object per scenario, mirroring the per-scenario output
    // files: scenario i > 1 writes FILE.i like --csv does.
    std::unique_ptr<telemetry::RunTelemetry> tel;
    if (!metrics_path.empty() || !events_path.empty() ||
        !trace_path.empty()) {
      telemetry::TelemetryConfig config;
      if (!events_path.empty()) {
        config.events_path = indexed_path(events_path, i);
      }
      if (!trace_path.empty()) config.trace_path = indexed_path(trace_path, i);
      tel = std::make_unique<telemetry::RunTelemetry>(config);
    }
    sweep_opt.telemetry = tel.get();

    if (n_shards > 0) {
      // Execute layer only: run this shard's cells, publish the artifact.
      scenario::SweepPlan plan;
      {
        const telemetry::RunTelemetry::PhaseScope plan_scope(
            tel.get(), telemetry::Phase::kPlan);
        plan = scenario::make_plan(spec);
      }
      const std::vector<scenario::CellResult> results =
          scenario::run_shard(plan, shard, n_shards, sweep_opt);
      const std::string out_path = indexed_path(shard_out, i);
      if (tel != nullptr) {
        tel->finish();
        // The shard's telemetry rides inside the artifact so `merge` can
        // aggregate the campaign exactly.
        const telemetry::RunMetrics metrics = tel->snapshot();
        scenario::write_shard(out_path, plan, shard, n_shards, results,
                              &metrics, format);
        if (!metrics_path.empty()) {
          write_metrics_file(indexed_path(metrics_path, i), *tel);
        }
      } else {
        scenario::write_shard(out_path, plan, shard, n_shards, results,
                              nullptr, format);
      }
      if (!quiet) {
        scenario::TableSink table(std::cout);
        std::vector<scenario::ResultSink*> sinks = {&table};
        emit_results(spec, results, sinks);
        std::cout << "(shard " << shard << "/" << n_shards << ": "
                  << results.size() << " of " << plan.cells.size()
                  << " cells; artifact written to " << out_path << ")\n";
        if (i + 1 < specs.size()) std::cout << "\n";
      }
      continue;
    }

    const std::vector<scenario::CellResult> results =
        scenario::run_sweep(spec, sweep_opt);
    if (tel != nullptr) {
      tel->finish();
      if (!metrics_path.empty()) {
        write_metrics_file(indexed_path(metrics_path, i), *tel);
      }
    }

    std::vector<scenario::ResultSink*> sinks;
    scenario::TableSink table(std::cout);
    if (!quiet) sinks.push_back(&table);
    std::unique_ptr<scenario::CsvSink> csv;
    if (!csv_path.empty()) {
      csv = std::make_unique<scenario::CsvSink>(indexed_path(csv_path, i));
      sinks.push_back(csv.get());
    }
    std::unique_ptr<scenario::JsonlSink> jsonl;
    if (!jsonl_path.empty()) {
      jsonl =
          std::make_unique<scenario::JsonlSink>(indexed_path(jsonl_path, i));
      sinks.push_back(jsonl.get());
    }
    emit_results(spec, results, sinks);

    if (!quiet) {
      std::size_t cached = 0;
      for (const auto& r : results) cached += r.from_cache ? 1 : 0;
      if (cached > 0) {
        std::cout << "(" << cached << "/" << results.size()
                  << " cells served from cache)\n";
      }
      if (!csv_path.empty()) {
        std::cout << "(csv written to " << indexed_path(csv_path, i) << ")\n";
      }
      if (!jsonl_path.empty()) {
        std::cout << "(jsonl written to " << indexed_path(jsonl_path, i)
                  << ")\n";
      }
      if (!metrics_path.empty()) {
        std::cout << "(metrics written to " << indexed_path(metrics_path, i)
                  << ")\n";
      }
      if (i + 1 < specs.size()) std::cout << "\n";
    }
  }
  return 0;
}

/// The merge layer as a subcommand: reassembles shard artifacts into the
/// canonical table, identical to what the unsharded run would print/write.
int run_merge(util::Cli& cli) {
  const std::string csv_path = cli.get_string("csv", "");
  const std::string jsonl_path = cli.get_string("jsonl", "");
  const std::string metrics_path = cli.get_string("metrics-out", "");
  const bool quiet = cli.get_bool("quiet", false);
  cli.finish();

  const std::vector<std::string> artifacts(cli.positional().begin() + 1,
                                           cli.positional().end());
  if (artifacts.empty()) {
    std::cerr << "error: merge needs at least one shard artifact\n";
    return 2;
  }

  scenario::ScenarioSpec spec;
  telemetry::RunMetrics metrics;
  const std::int64_t merge_t0 = telemetry::now_us();
  const std::vector<scenario::CellResult> results = scenario::merge_shards(
      artifacts, &spec, metrics_path.empty() ? nullptr : &metrics);
  // The campaign record = the shards' aggregated telemetry plus this
  // process's own merge time on top of whatever the shards measured.
  metrics.merge_us += telemetry::now_us() - merge_t0;

  std::vector<scenario::ResultSink*> sinks;
  scenario::TableSink table(std::cout);
  if (!quiet) sinks.push_back(&table);
  std::unique_ptr<scenario::CsvSink> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<scenario::CsvSink>(csv_path);
    sinks.push_back(csv.get());
  }
  std::unique_ptr<scenario::JsonlSink> jsonl;
  if (!jsonl_path.empty()) {
    jsonl = std::make_unique<scenario::JsonlSink>(jsonl_path);
    sinks.push_back(jsonl.get());
  }
  emit_results(spec, results, sinks);

  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path);
    if (!os) {
      throw std::runtime_error("cannot open metrics file: " + metrics_path);
    }
    os << telemetry::metrics_to_json(metrics, spec.name, 0, 1) << "\n";
  }

  if (!quiet) {
    std::cout << "(merged " << results.size() << " cells of scenario '"
              << spec.name << "' from " << artifacts.size()
              << " shard artifact" << (artifacts.size() == 1 ? "" : "s")
              << ")\n";
    if (!csv_path.empty()) {
      std::cout << "(csv written to " << csv_path << ")\n";
    }
    if (!jsonl_path.empty()) {
      std::cout << "(jsonl written to " << jsonl_path << ")\n";
    }
    if (!metrics_path.empty()) {
      std::cout << "(metrics written to " << metrics_path << ")\n";
    }
  }
  return 0;
}

/// Renders --metrics-out files as a human table (plus an optional duration
/// histogram): the quick "what did that run cost" view without jq.
int run_report(util::Cli& cli) {
  const bool hist = cli.get_bool("hist", false);
  cli.finish();

  const std::vector<std::string> files(cli.positional().begin() + 1,
                                       cli.positional().end());
  if (files.empty()) {
    std::cerr << "error: report needs at least one metrics JSON file "
                 "(written by run/merge --metrics-out)\n";
    return 2;
  }

  util::Table table({"scenario", "shard", "cells", "computed", "cached",
                     "trials", "cache_hits", "plan_ms", "execute_ms",
                     "merge_ms", "trials/s", "p50_ms", "p90_ms", "p99_ms"});
  const auto fmt1 = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return std::string(buf);
  };
  const auto fmt_quantile = [&](const telemetry::DurationSketch& sketch,
                                double p) {
    const double us = sketch.quantile_us(p);
    return us != us ? std::string("-") : fmt1(us / 1000.0);
  };

  telemetry::RunMetrics combined;
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "error: cannot open " << file << "\n";
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::string scenario;
      std::size_t shard = 0, n_shards = 1;
      const telemetry::RunMetrics m =
          telemetry::metrics_from_json(line, &scenario, &shard, &n_shards);
      combined.merge(m);
      table.add_row(
          {scenario,
           shard == 0 ? "-"
                      : std::to_string(shard) + "/" +
                            std::to_string(n_shards),
           std::to_string(m.cells_total), std::to_string(m.cells_computed),
           std::to_string(m.cells_cached), std::to_string(m.trials_executed),
           std::to_string(m.cache_hits),
           fmt1(static_cast<double>(m.plan_us) / 1000.0),
           fmt1(static_cast<double>(m.execute_us) / 1000.0),
           fmt1(static_cast<double>(m.merge_us) / 1000.0),
           fmt1(m.trials_per_sec()), fmt_quantile(m.cell_duration, 0.50),
           fmt_quantile(m.cell_duration, 0.90),
           fmt_quantile(m.cell_duration, 0.99)});
    }
  }
  table.print(std::cout);

  if (hist) {
    // The 512-bin sketch is built for exact merging, not for eyeballs;
    // coarsen 16:1 before rendering so the distribution fits a screen.
    constexpr std::size_t kCoarseBins = 32;
    stats::Histogram coarse(telemetry::DurationSketch::kLog2Lo,
                            telemetry::DurationSketch::kLog2Hi, kCoarseBins);
    for (const auto& [bin, count] : combined.cell_duration.sparse_bins()) {
      coarse.add_count(bin * kCoarseBins / telemetry::DurationSketch::kBins,
                       count);
    }
    std::cout << "\ncell duration distribution (bin edges are "
                 "log2(microseconds)):\n"
              << coarse.render();
  }
  return 0;
}

/// Catalog over many shard artifacts: list what exists, or pull selected
/// columns for matching cells — across specs, without the merge layer's
/// completeness checks. Each artifact is self-describing (embedded spec),
/// so the catalog rebuilds just enough plan per DISTINCT spec to reattach
/// cells to their coordinates; artifacts sharing a spec share the plan.
int run_catalog(util::Cli& cli) {
  const std::string columns_arg = cli.get_string("columns", "");
  const std::string csv_path = cli.get_string("csv", "");
  const std::string strategy_filter = cli.get_string("strategy", "");
  const std::vector<std::int64_t> ks = cli.get_int_list("k", {});
  const std::vector<std::int64_t> ds = cli.get_int_list("d", {});
  const bool quiet = cli.get_bool("quiet", false);
  cli.finish();

  const std::vector<std::string> artifacts(cli.positional().begin() + 1,
                                           cli.positional().end());
  if (artifacts.empty()) {
    std::cerr << "error: catalog needs at least one shard artifact\n";
    return 2;
  }

  const bool cell_mode = !columns_arg.empty() || !csv_path.empty() ||
                         !strategy_filter.empty() || !ks.empty() ||
                         !ds.empty();

  if (!cell_mode) {
    // Listing mode: one row per artifact, header-level facts only.
    util::Table table({"artifact", "format", "scenario", "shard", "cells",
                       "spec_hash", "version"});
    for (const std::string& path : artifacts) {
      std::vector<scenario::ShardEntry> entries;
      const scenario::ShardHeader header =
          scenario::read_any_artifact(path, &entries);
      const std::vector<scenario::ScenarioSpec> specs =
          scenario::parse_spec_text(header.spec_text);
      char hash_hex[24];
      std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                    static_cast<unsigned long long>(header.spec_hash));
      table.add_row({path,
                     scenario::is_binary_artifact(path) ? "binary" : "jsonl",
                     specs.size() == 1 ? specs.front().name : "?",
                     std::to_string(header.shard) + "/" +
                         std::to_string(header.n_shards),
                     std::to_string(entries.size()) + "/" +
                         std::to_string(header.n_cells_total),
                     hash_hex, std::to_string(header.format_version)});
    }
    table.print(std::cout);
    return 0;
  }

  std::vector<std::string> columns;
  if (!columns_arg.empty()) {
    std::size_t begin = 0;
    while (begin <= columns_arg.size()) {
      const std::size_t comma = columns_arg.find(',', begin);
      const std::string name = columns_arg.substr(
          begin, comma == std::string::npos ? std::string::npos
                                            : comma - begin);
      if (!name.empty()) {
        if (!scenario::is_known_column(name)) {
          std::cerr << "error: unknown column '" << name << "'\n";
          return 2;
        }
        columns.push_back(name);
      }
      if (comma == std::string::npos) break;
      begin = comma + 1;
    }
  }
  if (columns.empty()) columns = scenario::default_columns();

  const auto keep = [&](const scenario::Cell& cell) {
    if (!strategy_filter.empty() &&
        cell.strategy_name.find(strategy_filter) == std::string::npos) {
      return false;
    }
    if (!ks.empty() &&
        std::find(ks.begin(), ks.end(), cell.k) == ks.end()) {
      return false;
    }
    if (!ds.empty() &&
        std::find(ds.begin(), ds.end(), cell.distance) == ds.end()) {
      return false;
    }
    return true;
  };

  std::vector<scenario::ResultSink*> sinks;
  scenario::TableSink table(std::cout);
  if (!quiet) sinks.push_back(&table);
  std::unique_ptr<scenario::CsvSink> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<scenario::CsvSink>(csv_path);
    sinks.push_back(csv.get());
  }
  for (scenario::ResultSink* sink : sinks) sink->begin(columns);

  // Plans are cached per distinct spec hash: a 50-shard campaign of one
  // spec flattens it once, not 50 times.
  std::map<std::uint64_t, scenario::SweepPlan> plans;
  std::size_t matched = 0;
  for (const std::string& path : artifacts) {
    std::vector<scenario::ShardEntry> entries;
    const scenario::ShardHeader header =
        scenario::read_any_artifact(path, &entries);
    if (header.format_version != scenario::cell_format_version()) {
      throw std::invalid_argument(
          "shard artifact " + path + ": format version " +
          std::to_string(header.format_version) +
          " does not match this build's " +
          std::to_string(scenario::cell_format_version()) +
          " — cell coordinates would not line up");
    }
    auto it = plans.find(header.spec_hash);
    if (it == plans.end()) {
      const std::vector<scenario::ScenarioSpec> specs =
          scenario::parse_spec_text(header.spec_text);
      if (specs.size() != 1) {
        throw std::invalid_argument(
            "shard artifact " + path +
            ": embedded spec does not parse to exactly one scenario");
      }
      it = plans.emplace(header.spec_hash,
                         scenario::make_plan(specs.front())).first;
      if (it->second.spec_hash != header.spec_hash) {
        throw std::invalid_argument(
            "shard artifact " + path +
            ": embedded spec re-hashes differently — artifact written by "
            "an incompatible build");
      }
    }
    const scenario::SweepPlan& plan = it->second;
    for (scenario::ShardEntry& entry : entries) {
      if (entry.cell_index >= plan.cells.size()) {
        throw std::invalid_argument(
            "shard artifact " + path + ": cell index " +
            std::to_string(entry.cell_index) + " out of range");
      }
      entry.result.cell = plan.cells[entry.cell_index];
      if (!keep(entry.result.cell)) continue;
      ++matched;
      std::vector<std::string> cells_row;
      cells_row.reserve(columns.size());
      for (const std::string& column : columns) {
        cells_row.push_back(
            scenario::column_value(column, plan.spec, entry.result));
      }
      for (scenario::ResultSink* sink : sinks) sink->row(cells_row);
    }
  }
  for (scenario::ResultSink* sink : sinks) sink->end();

  if (!quiet) {
    std::cout << "(" << matched << " cells from " << artifacts.size()
              << " artifact" << (artifacts.size() == 1 ? "" : "s") << ", "
              << plans.size() << " distinct spec"
              << (plans.size() == 1 ? "" : "s") << ")\n";
    if (!csv_path.empty()) {
      std::cout << "(csv written to " << csv_path << ")\n";
    }
  }
  return 0;
}

/// `search_lab cache pack`: compacts a cache_dir into the packed journal.
int run_cache(util::Cli& cli) {
  const std::string cache_dir = cli.get_string("cache-dir", "");
  cli.finish();
  if (cli.positional().size() != 2 || cli.positional()[1] != "pack") {
    std::cerr << "usage: search_lab cache pack --cache-dir=DIR\n";
    return 2;
  }
  if (cache_dir.empty()) {
    std::cerr << "error: cache pack needs --cache-dir=DIR\n";
    return 2;
  }
  const scenario::PackStats stats = scenario::pack_cache_dir(cache_dir);
  std::cout << "packed " << stats.packed_cells << " cells into " << cache_dir
            << "/cache.pack (" << stats.folded_files
            << " per-cell files folded";
  if (stats.corrupt_dropped > 0) {
    std::cout << ", " << stats.corrupt_dropped << " corrupt entries dropped";
  }
  std::cout << ")\n";
  return 0;
}

int usage() {
  std::cerr << "usage: search_lab list\n"
            << "       search_lab run --spec=FILE [flags]\n"
            << "       search_lab run --strategies='a; b(x=1)' --ks=... "
               "--ds=... [flags]\n"
            << "       search_lab run ... --shard=I/N --shard-out=FILE "
               "[--format=jsonl|binary]\n"
            << "       search_lab merge ARTIFACT... [--csv=PATH] "
               "[--jsonl=PATH] [--metrics-out=FILE] [--quiet]\n"
            << "       search_lab catalog ARTIFACT... [--columns=a,b,c] "
               "[--csv=PATH] [--strategy=SUBSTR] [--k=LIST] [--d=LIST] "
               "[--quiet]\n"
            << "       search_lab cache pack --cache-dir=DIR\n"
            << "       search_lab report METRICS_FILE... [--hist]\n"
            << "see docs/scenarios.md for the spec format and flag list,\n"
            << "docs/observability.md for --metrics-out/--events/--trace\n";
  return 2;
}

int run(int argc, char** argv) {
  util::Cli cli(argc, argv);
  if (cli.positional().empty()) return usage();
  const std::string& command = cli.positional()[0];
  if (command == "merge") return run_merge(cli);
  if (command == "catalog") return run_catalog(cli);
  if (command == "cache") return run_cache(cli);
  if (command == "report") return run_report(cli);
  if (cli.positional().size() != 1) return usage();
  if (command == "list") {
    cli.finish();
    return run_list();
  }
  if (command == "run") return run_specs(cli);
  return usage();
}

}  // namespace
}  // namespace ants

int main(int argc, char** argv) try {
  return ants::run(argc, argv);
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
