// Continuous-plane ports of the paper's algorithms.
//
// Identical trip structure to the grid versions (go somewhere random, local
// spiral sweep, return home), with the discrete draws replaced by their
// continuous analogues:
//
//   * uniform node of B(r)        -> uniform point of the disk of radius r
//                                    (r*sqrt(U), uniform angle)
//   * harmonic node weight
//     p(u) ~ 1/d(u)^(2+delta)     -> radial density ~ r^-(1+delta) on
//                                    [1, inf), i.e. a Pareto(1, delta) draw
//   * spiral search of length t   -> Archimedean spiral sweep of arc
//                                    length t (pitch fixed by the engine)
//
// Used by tests and experiment E11 to validate the paper's grid reduction:
// the same theorem shapes must appear in both models.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "plane/engine.h"

namespace ants::plane {

/// A_k on the plane (Theorem 3.1 trip schedule).
class PlaneKnownKStrategy final : public PlaneStrategy {
 public:
  explicit PlaneKnownKStrategy(std::int64_t k_belief);

  std::string name() const override;
  std::unique_ptr<PlaneAgentProgram> make_program(int agent_index,
                                                  int k) const override;

  std::int64_t k_belief() const noexcept { return k_belief_; }

  double disk_radius(int phase_i) const noexcept;
  Time sweep_budget(int phase_i) const noexcept;

 private:
  std::int64_t k_belief_;
};

/// Algorithm 2 on the plane (Theorem 5.1): Pareto trips, d^(2+delta) sweeps.
class PlaneHarmonicStrategy final : public PlaneStrategy {
 public:
  explicit PlaneHarmonicStrategy(double delta);

  std::string name() const override;
  std::unique_ptr<PlaneAgentProgram> make_program(int agent_index,
                                                  int k) const override;

  double delta() const noexcept { return delta_; }

 private:
  double delta_;
};

/// Algorithm 1 on the plane (Theorem 3.3): the uniform algorithm's
/// big-stage / stage / phase triple loop with disk trips and spiral sweeps.
class PlaneUniformStrategy final : public PlaneStrategy {
 public:
  explicit PlaneUniformStrategy(double eps);

  std::string name() const override;
  std::unique_ptr<PlaneAgentProgram> make_program(int agent_index,
                                                  int k) const override;

  double eps() const noexcept { return eps_; }

  /// D_ij = sqrt(2^(i+j) / max(j,1)^(1+eps)) — the paper's closed form.
  double disk_radius(int stage_i, int phase_j) const noexcept;
  /// t_ij = 2^(i+2) / max(j,1)^(1+eps).
  Time sweep_budget(int stage_i, int phase_j) const noexcept;

 private:
  double eps_;
};

}  // namespace ants::plane
