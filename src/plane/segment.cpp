#include "plane/segment.h"

#include <algorithm>
#include <cmath>

namespace ants::plane {

std::optional<Time> line_first_sighting(const LineMove& line, Vec2 target,
                                        double eps) {
  const Vec2 d = line.to - line.from;
  const double len = d.norm();
  const Vec2 w = line.from - target;
  if (w.norm2() <= eps * eps) return 0.0;  // already in sight at the start
  if (len == 0.0) return std::nullopt;
  const Vec2 u = d * (1.0 / len);
  // |w + t u|^2 = eps^2  =>  t^2 + 2 (w.u) t + (|w|^2 - eps^2) = 0.
  const double b = w.dot(u);
  const double c = w.norm2() - eps * eps;
  const double disc = b * b - c;
  if (disc < 0) return std::nullopt;
  const double t = -b - std::sqrt(disc);  // earliest root; start is outside
  if (t < 0 || t > len) return std::nullopt;
  return t;
}

namespace {

/// Squared distance from `target` to the spiral point at angle theta.
double spiral_dist2(Vec2 center, double a, double theta, Vec2 target) {
  const Vec2 p = spiral_point_at(center, a, theta);
  return (p - target).norm2();
}

/// Bisects the sight-disk entry in (outside, inside] and converts to arc
/// length, honoring the budget.
std::optional<Time> refine_entry(const SpiralMove& sp, double a, Vec2 target,
                                 double eps2, double outside, double inside) {
  double x0 = outside, x1 = inside;
  for (int it = 0; it < 80; ++it) {
    const double mid = 0.5 * (x0 + x1);
    if (spiral_dist2(sp.center, a, mid, target) <= eps2) {
      x1 = mid;
    } else {
      x0 = mid;
    }
  }
  const double s = spiral_arc_length(a, x1);
  if (s <= sp.duration) return s;
  return std::nullopt;  // sighted only past the budget
}

}  // namespace

// First sighting on an Archimedean spiral. Sighting is only possible while
// the coil radius a*theta is inside the annulus [d - eps, d + eps] — an
// angular interval of width 2*eps/a (O(eps/pitch) coils). Two regimes:
//
//  * d within ~50 coils of the center: densely scan that interval with
//    arc-length steps of eps/20 and bisect the first crossing (O(10^4)
//    evaluations worst case, but only when the treasure is radially inside
//    this trip's spiral — rare and cheap at small radii).
//  * d deeper out: visit each coil pass (angles congruent to the target's
//    angle phi), where the distance along one coil window is unimodal (the
//    sin(u) term of d/du |spiral - target|^2 dominates once theta >> 1), so
//    ternary search + bisection is exact and O(#coils) total.
//
// Grazing passes with penetration depth below the tolerance (~eps/40) can
// be reported one coil late; the asymptotic claims this module supports are
// insensitive to that, and the dense cross-check tests use a matching
// tolerance.
std::optional<Time> spiral_first_sighting_at(const SpiralMove& sp, Vec2 target,
                                             double eps, double theta_end) {
  const double a = sp.pitch / kTwoPi;
  const Vec2 rel = target - sp.center;
  const double d = rel.norm();
  if (d <= eps) return 0.0;  // visible from the spiral's very first point
  if (sp.duration <= 0) return std::nullopt;

  const double theta_lo = std::max(0.0, (d - eps) / a);
  const double theta_hi = std::min(theta_end, (d + eps) / a);
  if (theta_lo > theta_hi) return std::nullopt;
  const double eps2 = eps * eps;

  if (d <= 50.0 * sp.pitch) {
    // Near-center regime: dense scan of the annulus interval.
    const double dtheta = eps / (20.0 * std::max(d, eps));
    double prev = theta_lo;
    if (spiral_dist2(sp.center, a, prev, target) <= eps2) {
      return spiral_arc_length(a, prev);
    }
    for (double theta = theta_lo + dtheta;; theta += dtheta) {
      const double th = std::min(theta, theta_hi);
      if (spiral_dist2(sp.center, a, th, target) <= eps2) {
        return refine_entry(sp, a, target, eps2, prev, th);
      }
      prev = th;
      if (th >= theta_hi) break;
    }
    return std::nullopt;
  }

  // Deep regime: one unimodal window per coil pass.
  const double phi = std::atan2(rel.y, rel.x);
  const double n_min = std::floor((theta_lo - phi) / kTwoPi) - 1.0;
  const double n_max = std::ceil((theta_hi - phi) / kTwoPi) + 1.0;
  for (double n = std::max(n_min, 0.0); n <= n_max; n += 1.0) {
    const double theta_c = phi + n * kTwoPi;
    const double lo = std::max(0.0, theta_c - 0.5 * kTwoPi);
    const double hi = std::min(theta_end, theta_c + 0.5 * kTwoPi);
    if (lo >= hi) continue;
    double a1 = lo, b1 = hi;
    for (int it = 0; it < 100; ++it) {
      const double m1 = a1 + (b1 - a1) / 3.0;
      const double m2 = b1 - (b1 - a1) / 3.0;
      if (spiral_dist2(sp.center, a, m1, target) <
          spiral_dist2(sp.center, a, m2, target)) {
        b1 = m2;
      } else {
        a1 = m1;
      }
    }
    const double theta_min = 0.5 * (a1 + b1);
    if (spiral_dist2(sp.center, a, theta_min, target) > eps2) continue;
    return refine_entry(sp, a, target, eps2, lo, theta_min);
  }
  return std::nullopt;
}

namespace {

/// spiral_first_sighting_at generalized to a start angle `theta_begin` (the
/// appear-window variant). Kept as a SEPARATE copy of the annulus scan so
/// the original — pinned byte-identical between the scalar and batch
/// executors — is never perturbed. The caller has already established that
/// the spiral point at theta_begin is OUTSIDE the sight disc, so every
/// bisection anchor clamped to theta_begin is a valid outside point.
std::optional<Time> spiral_first_sighting_windowed(const SpiralMove& sp,
                                                   Vec2 target, double eps,
                                                   double theta_begin,
                                                   double theta_end) {
  const double a = sp.pitch / kTwoPi;
  const Vec2 rel = target - sp.center;
  const double d = rel.norm();
  const double theta_lo = std::max(theta_begin, std::max(0.0, (d - eps) / a));
  const double theta_hi = std::min(theta_end, (d + eps) / a);
  if (theta_lo > theta_hi) return std::nullopt;
  const double eps2 = eps * eps;

  if (d <= 50.0 * sp.pitch) {
    const double dtheta = eps / (20.0 * std::max(d, eps));
    double prev = theta_lo;
    if (spiral_dist2(sp.center, a, prev, target) <= eps2) {
      return spiral_arc_length(a, prev);
    }
    for (double theta = theta_lo + dtheta;; theta += dtheta) {
      const double th = std::min(theta, theta_hi);
      if (spiral_dist2(sp.center, a, th, target) <= eps2) {
        return refine_entry(sp, a, target, eps2, prev, th);
      }
      prev = th;
      if (th >= theta_hi) break;
    }
    return std::nullopt;
  }

  const double phi = std::atan2(rel.y, rel.x);
  const double n_min = std::floor((theta_lo - phi) / kTwoPi) - 1.0;
  const double n_max = std::ceil((theta_hi - phi) / kTwoPi) + 1.0;
  for (double n = std::max(n_min, 0.0); n <= n_max; n += 1.0) {
    const double theta_c = phi + n * kTwoPi;
    const double lo =
        std::max(theta_begin, std::max(0.0, theta_c - 0.5 * kTwoPi));
    const double hi = std::min(theta_end, theta_c + 0.5 * kTwoPi);
    if (lo >= hi) continue;
    double a1 = lo, b1 = hi;
    for (int it = 0; it < 100; ++it) {
      const double m1 = a1 + (b1 - a1) / 3.0;
      const double m2 = b1 - (b1 - a1) / 3.0;
      if (spiral_dist2(sp.center, a, m1, target) <
          spiral_dist2(sp.center, a, m2, target)) {
        b1 = m2;
      } else {
        a1 = m1;
      }
    }
    const double theta_min = 0.5 * (a1 + b1);
    if (spiral_dist2(sp.center, a, theta_min, target) > eps2) continue;
    return refine_entry(sp, a, target, eps2, lo, theta_min);
  }
  return std::nullopt;
}

/// Single-trial path: solves for theta_end itself.
std::optional<Time> spiral_first_sighting(const SpiralMove& sp, Vec2 target,
                                          double eps) {
  const Vec2 rel = target - sp.center;
  if (rel.norm() <= eps) return 0.0;  // visible from the very first point
  if (sp.duration <= 0) return std::nullopt;
  const double a = sp.pitch / kTwoPi;
  return spiral_first_sighting_at(sp, target, eps,
                                  spiral_theta_for_arc(a, sp.duration));
}

}  // namespace

Time move_duration(const Move& move) noexcept {
  if (const auto* line = std::get_if<LineMove>(&move)) {
    return (line->to - line->from).norm();
  }
  return std::get<SpiralMove>(move).duration;
}

Vec2 move_end(const Move& move) noexcept {
  if (const auto* line = std::get_if<LineMove>(&move)) return line->to;
  const auto& sp = std::get<SpiralMove>(move);
  const double a = sp.pitch / kTwoPi;
  const double theta = spiral_theta_for_arc(a, sp.duration);
  return spiral_point_at(sp.center, a, theta);
}

Vec2 move_position_at(const Move& move, Time t) noexcept {
  if (t <= 0) {
    if (const auto* line = std::get_if<LineMove>(&move)) return line->from;
    return std::get<SpiralMove>(move).center;
  }
  if (t >= move_duration(move)) return move_end(move);
  if (const auto* line = std::get_if<LineMove>(&move)) {
    const Vec2 d = line->to - line->from;
    const double len = d.norm();
    if (len == 0.0) return line->from;
    return line->from + d * (t / len);
  }
  const auto& sp = std::get<SpiralMove>(move);
  const double a = sp.pitch / kTwoPi;
  return spiral_point_at(sp.center, a, spiral_theta_for_arc(a, t));
}

std::optional<Time> first_sighting(const Move& move, Vec2 target, double eps) {
  if (const auto* line = std::get_if<LineMove>(&move)) {
    return line_first_sighting(*line, target, eps);
  }
  return spiral_first_sighting(std::get<SpiralMove>(move), target, eps);
}

std::optional<Time> first_sighting_from(const Move& move, Vec2 target,
                                        double eps, Time from) {
  if (from <= 0) return first_sighting(move, target, eps);
  if (from >= move_duration(move)) return std::nullopt;
  // Already inside the disc the instant the window opens.
  if ((move_position_at(move, from) - target).norm2() <= eps * eps) {
    return from;
  }
  if (const auto* line = std::get_if<LineMove>(&move)) {
    // A line crosses the disc in at most one interval; since the position
    // at `from` is outside, either the entry is still ahead (valid iff
    // >= from) or the disc was exited before `from` (no re-entry).
    const auto hit = line_first_sighting(*line, target, eps);
    if (hit && *hit >= from) return hit;
    return std::nullopt;
  }
  // A spiral may re-enter the disc on a later coil: scan the annulus window
  // from the angle reached at arc length `from`.
  const auto& sp = std::get<SpiralMove>(move);
  const double a = sp.pitch / kTwoPi;
  return spiral_first_sighting_windowed(
      sp, target, eps, spiral_theta_for_arc(a, from),
      spiral_theta_for_arc(a, sp.duration));
}

double spiral_arc_length(double a, double theta) noexcept {
  // s(theta) = (a/2) (theta*sqrt(1+theta^2) + asinh(theta)).
  return 0.5 * a * (theta * std::sqrt(1.0 + theta * theta) +
                    std::asinh(theta));
}

double spiral_theta_for_arc(double a, double s) noexcept {
  if (s <= 0 || a <= 0) return 0;
  // s ~ (a/2) theta^2 for large theta: a robust starting point.
  double theta = std::sqrt(2.0 * s / a);
  for (int it = 0; it < 60; ++it) {
    const double f = spiral_arc_length(a, theta) - s;
    const double fp = a * std::sqrt(1.0 + theta * theta);  // ds/dtheta
    const double step = f / fp;
    theta -= step;
    if (theta < 0) theta = 0;
    if (std::abs(step) < 1e-12 * (1.0 + theta)) break;
  }
  return theta;
}

Vec2 spiral_point_at(Vec2 center, double a, double theta) noexcept {
  const double r = a * theta;
  return center + Vec2{r * std::cos(theta), r * std::sin(theta)};
}

}  // namespace ants::plane
