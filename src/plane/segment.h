// Continuous motion segments with closed-form / numeric first-sighting
// detection.
//
// The continuous agent moves at unit speed and SEES the treasure as soon as
// it comes within the sight radius eps (the paper's "bounded field of view
// of say eps > 0"). Two motion primitives cover the paper's navigation
// procedures on R^2:
//
//   LineMove    straight segment; first sighting is the smaller root of a
//               quadratic (exact, O(1)).
//   SpiralMove  Archimedean spiral r = a*theta around a center, pitch
//               2*pi*a <= 2*eps so successive coils leave no blind ring;
//               first sighting is located by walking the O(1) candidate
//               coil passes near the treasure's angle and bisecting the
//               earliest entry into the sight disk (numeric, validated
//               against dense path sampling in tests).
//
// Durations and hit offsets are arc lengths == travel times (unit speed).
#pragma once

#include <optional>
#include <variant>

#include "plane/vec2.h"

namespace ants::plane {

using Time = double;

/// 2*pi at the precision every spiral coefficient here is derived with
/// (a = pitch / kTwoPi). Exposed so the batch kernels compute the exact same
/// coefficient the scalar path does — a ULP of drift in `a` would break the
/// byte-identity contract between the two executors.
inline constexpr double kTwoPi = 6.283185307179586476925286766559;

struct LineMove {
  Vec2 from;
  Vec2 to;
};

struct SpiralMove {
  Vec2 center;
  double pitch = 2.0;    ///< radial gap between successive coils
  Time duration = 0;     ///< arc-length budget
};

using Move = std::variant<LineMove, SpiralMove>;

/// Travel time of the move (arc length; unit speed).
Time move_duration(const Move& move) noexcept;

/// Position when the move completes.
Vec2 move_end(const Move& move) noexcept;

/// Position after traveling `t` arc-length units into the move (clamped to
/// [0, duration]). Lets the environment-aware engine truncate a trajectory
/// mid-move: an agent whose lifetime expires partway through a move halts at
/// move_position_at(move, remaining_budget).
Vec2 move_position_at(const Move& move, Time t) noexcept;

/// Earliest time offset in [0, duration] at which the mover comes within
/// `eps` of `target`, if any.
std::optional<Time> first_sighting(const Move& move, Vec2 target, double eps);

/// Earliest time offset in [from, duration] at which the mover is within
/// `eps` of `target` — first_sighting constrained to start at offset `from`.
/// If the mover is already inside the disc at `from`, the answer is `from`
/// itself. Serves the appear-window check of dynamic target processes
/// (sim/trial.h): a target that appears mid-move must not be credited with
/// a sighting from before it existed — including a spiral that crossed the
/// disc on an earlier coil and re-enters on a later one.
std::optional<Time> first_sighting_from(const Move& move, Vec2 target,
                                        double eps, Time from);

/// The LineMove case of first_sighting, exposed so the batch kernels
/// (sim/batch/) can re-check SIMD-prefiltered candidate targets with the
/// byte-identical scalar arithmetic.
std::optional<Time> line_first_sighting(const LineMove& line, Vec2 target,
                                        double eps);

/// The SpiralMove case of first_sighting with the final angle
/// `theta_end = spiral_theta_for_arc(pitch / 2pi, duration)` supplied by
/// the caller. The Newton solve behind theta_end dominates the spiral hit
/// test, and the batch kernels evaluate one spiral against many targets —
/// memoizing theta_end there and passing it here keeps results
/// byte-identical while paying for the solve once per move.
std::optional<Time> spiral_first_sighting_at(const SpiralMove& sp, Vec2 target,
                                             double eps, double theta_end);

// --- Archimedean spiral math (exposed for tests) ---------------------------

/// Arc length of r = a*theta from angle 0 to theta (>= 0).
double spiral_arc_length(double a, double theta) noexcept;

/// Inverse of spiral_arc_length: the angle reached after arc length s >= 0
/// (Newton, converges in a handful of iterations).
double spiral_theta_for_arc(double a, double s) noexcept;

/// Point of the spiral around `center` at angle theta.
Vec2 spiral_point_at(Vec2 center, double a, double theta) noexcept;

}  // namespace ants::plane
