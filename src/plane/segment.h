// Continuous motion segments with closed-form / numeric first-sighting
// detection.
//
// The continuous agent moves at unit speed and SEES the treasure as soon as
// it comes within the sight radius eps (the paper's "bounded field of view
// of say eps > 0"). Two motion primitives cover the paper's navigation
// procedures on R^2:
//
//   LineMove    straight segment; first sighting is the smaller root of a
//               quadratic (exact, O(1)).
//   SpiralMove  Archimedean spiral r = a*theta around a center, pitch
//               2*pi*a <= 2*eps so successive coils leave no blind ring;
//               first sighting is located by walking the O(1) candidate
//               coil passes near the treasure's angle and bisecting the
//               earliest entry into the sight disk (numeric, validated
//               against dense path sampling in tests).
//
// Durations and hit offsets are arc lengths == travel times (unit speed).
#pragma once

#include <optional>
#include <variant>

#include "plane/vec2.h"

namespace ants::plane {

using Time = double;

struct LineMove {
  Vec2 from;
  Vec2 to;
};

struct SpiralMove {
  Vec2 center;
  double pitch = 2.0;    ///< radial gap between successive coils
  Time duration = 0;     ///< arc-length budget
};

using Move = std::variant<LineMove, SpiralMove>;

/// Travel time of the move (arc length; unit speed).
Time move_duration(const Move& move) noexcept;

/// Position when the move completes.
Vec2 move_end(const Move& move) noexcept;

/// Position after traveling `t` arc-length units into the move (clamped to
/// [0, duration]). Lets the environment-aware engine truncate a trajectory
/// mid-move: an agent whose lifetime expires partway through a move halts at
/// move_position_at(move, remaining_budget).
Vec2 move_position_at(const Move& move, Time t) noexcept;

/// Earliest time offset in [0, duration] at which the mover comes within
/// `eps` of `target`, if any.
std::optional<Time> first_sighting(const Move& move, Vec2 target, double eps);

// --- Archimedean spiral math (exposed for tests) ---------------------------

/// Arc length of r = a*theta from angle 0 to theta (>= 0).
double spiral_arc_length(double a, double theta) noexcept;

/// Inverse of spiral_arc_length: the angle reached after arc length s >= 0
/// (Newton, converges in a handful of iterations).
double spiral_theta_for_arc(double a, double s) noexcept;

/// Point of the spiral around `center` at angle theta.
Vec2 spiral_point_at(Vec2 center, double a, double theta) noexcept;

}  // namespace ants::plane
