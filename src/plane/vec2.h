// 2D Euclidean vectors for the continuous-plane model.
//
// Section 2 of the paper: "Each agent has a bounded field of view of say
// eps > 0, hence, for simplicity, we can assume that the agents are actually
// walking on the integer two-dimensional infinite grid." The plane module
// implements the model BEFORE that reduction — agents move on R^2 at unit
// speed and detect the treasure within sight radius eps — so the reduction
// itself becomes testable (plane and grid runs must agree up to constants;
// see tests/plane_engine_test.cpp and bench/exp_e11_plane.cpp).
#pragma once

#include <cmath>

namespace ants::plane {

struct Vec2 {
  double x = 0;
  double y = 0;

  constexpr Vec2 operator+(Vec2 o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const noexcept { return {x * s, y * s}; }
  constexpr bool operator==(const Vec2&) const noexcept = default;

  double norm() const noexcept { return std::hypot(x, y); }
  constexpr double norm2() const noexcept { return x * x + y * y; }
  constexpr double dot(Vec2 o) const noexcept { return x * o.x + y * o.y; }
};

inline constexpr Vec2 kPlaneOrigin{0.0, 0.0};

inline double distance(Vec2 a, Vec2 b) noexcept { return (a - b).norm(); }

/// Unit vector at angle theta (radians).
inline Vec2 unit(double theta) noexcept {
  return {std::cos(theta), std::sin(theta)};
}

}  // namespace ants::plane
