// The continuous-plane collaborative-search engine.
//
// Mirrors sim/engine.h on R^2: k identical agents start at the origin, move
// at unit speed, and the search ends when one of them comes within the
// sight radius eps of the treasure. The paper's grid model is the
// discretization of THIS model ("each agent has a bounded field of view of
// say eps > 0, hence ... the integer two-dimensional infinite grid");
// running both and comparing (tests + experiment E11) validates that
// reduction quantitatively.
#pragma once

#include <memory>
#include <string>

#include "plane/segment.h"
#include "rng/rng.h"

namespace ants::plane {

inline constexpr Time kPlaneNever = 1e300;

/// High-level continuous ops, realized into Moves from the current position.
struct GoToPoint {
  Vec2 target;
};
struct SpiralSweep {
  Time duration = 0;  ///< arc-length budget around the current position
};
struct ReturnHome {};

using PlaneOp = std::variant<GoToPoint, SpiralSweep, ReturnHome>;

class PlaneAgentProgram {
 public:
  virtual ~PlaneAgentProgram() = default;
  virtual PlaneOp next(rng::Rng& rng) = 0;
};

class PlaneStrategy {
 public:
  virtual ~PlaneStrategy() = default;
  virtual std::string name() const = 0;
  /// Uniform strategies must ignore k (same contract as the grid model).
  virtual std::unique_ptr<PlaneAgentProgram> make_program(int agent_index,
                                                          int k) const = 0;
};

struct PlaneEngineConfig {
  double sight_radius = 1.0;  ///< the paper's eps
  double spiral_pitch = 1.0;  ///< <= 2 * sight_radius for gap-free coverage
  Time time_cap = kPlaneNever;
  std::int64_t max_segments_per_agent = 50'000'000;
};

struct PlaneSearchResult {
  Time time = kPlaneNever;
  bool found = false;
  int finder = -1;
  std::int64_t segments = 0;
};

/// One collaborative continuous search; agent a uses trial_rng.child(a).
PlaneSearchResult run_plane_search(const PlaneStrategy& strategy, int k,
                                   Vec2 treasure, const rng::Rng& trial_rng,
                                   const PlaneEngineConfig& config = {});

}  // namespace ants::plane
