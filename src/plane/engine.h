// The continuous-plane collaborative-search engine.
//
// Mirrors sim/engine.h on R^2: k identical agents start at the origin, move
// at unit speed, and the search ends when one of them comes within the
// sight radius eps of the treasure. The paper's grid model is the
// discretization of THIS model ("each agent has a bounded field of view of
// say eps > 0, hence ... the integer two-dimensional infinite grid");
// running both and comparing (tests + experiment E11) validates that
// reduction quantitatively.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "plane/segment.h"
#include "rng/rng.h"

namespace ants::plane {

inline constexpr Time kPlaneNever = 1e300;

/// High-level continuous ops, realized into Moves from the current position.
struct GoToPoint {
  Vec2 target;
};
struct SpiralSweep {
  Time duration = 0;  ///< arc-length budget around the current position
};
struct ReturnHome {};

using PlaneOp = std::variant<GoToPoint, SpiralSweep, ReturnHome>;

class PlaneAgentProgram {
 public:
  virtual ~PlaneAgentProgram() = default;
  virtual PlaneOp next(rng::Rng& rng) = 0;
};

class PlaneStrategy {
 public:
  virtual ~PlaneStrategy() = default;
  virtual std::string name() const = 0;
  /// Uniform strategies must ignore k (same contract as the grid model).
  virtual std::unique_ptr<PlaneAgentProgram> make_program(int agent_index,
                                                          int k) const = 0;
};

struct PlaneEngineConfig {
  double sight_radius = 1.0;  ///< the paper's eps
  double spiral_pitch = 1.0;  ///< <= 2 * sight_radius for gap-free coverage
  Time time_cap = kPlaneNever;
  std::int64_t max_segments_per_agent = 50'000'000;
};

struct PlaneSearchResult {
  Time time = kPlaneNever;
  bool found = false;
  int finder = -1;
  std::int64_t segments = 0;
};

/// One collaborative continuous search; agent a uses trial_rng.child(a).
/// Thin wrapper over run_plane_trial under the base-model environment
/// (simultaneous starts, immortal agents, one treasure).
PlaneSearchResult run_plane_search(const PlaneStrategy& strategy, int k,
                                   Vec2 treasure, const rng::Rng& trial_rng,
                                   const PlaneEngineConfig& config = {});

/// The fully realized environment of one continuous-plane trial — the
/// plane-side mirror of sim::TrialEnvironment. Targets are sight discs of
/// the engine's eps around each point; empty `starts` / `lifetimes` are the
/// base model (everybody at t = 0, immortal) without paying two k-sized
/// allocations on the synchronous hot path; non-empty vectors must have
/// exactly k entries.
struct PlaneTrialEnvironment {
  std::vector<Vec2> targets;    ///< >= 1 target discs; first-of-set race
  std::vector<Time> starts;     ///< per-agent start delays (empty = 0)
  std::vector<Time> lifetimes;  ///< per-agent lifetimes (empty = never)

  /// Absolute appear/vanish times per target (empty = whole trial); a
  /// sighting at absolute time T counts iff appear[ti] <= T < vanish[ti].
  /// The plane-side mirror of sim::TrialEnvironment's target windows; when
  /// engaged, the target set may legitimately be empty (a Poisson process
  /// that spawned nothing) and the home-target special case is skipped
  /// (detection on sighting only).
  std::vector<double> target_appear;
  std::vector<double> target_vanish;

  /// Set by windowed target processes even when the realization spawned
  /// ZERO targets (mirrors sim::TrialEnvironment::windowed).
  bool windowed = false;

  /// true: the trial runs until every spawned target is sighted (or the
  /// cap); PlaneTrialResult::target_times records per-target times.
  bool collect_all = false;

  /// Latest start delay (0 for the base model).
  Time last_start() const noexcept;

  bool has_target_windows() const noexcept {
    return windowed || !target_appear.empty() || !target_vanish.empty();
  }
};

/// Result of one environment-aware plane trial; the plane-side mirror of
/// sim::TrialResult (all times in continuous unit-speed units).
struct PlaneTrialResult {
  Time time = kPlaneNever;    ///< absolute first-sighting time (or the cap)
  bool found = false;         ///< true iff some target was sighted in time
  int finder = -1;            ///< index of the first agent to sight one
  int first_target = -1;      ///< index of the first-sighted target
  std::int64_t segments = 0;  ///< moves realized (cost accounting)
  Time last_start = 0;        ///< latest start delay in the environment
  Time from_last_start = 0;   ///< max(0, time - last_start) if found
  int crashed = 0;            ///< agents that exhausted their lifetime

  /// Collect-all mode only (empty otherwise): per spawned target, the
  /// absolute sighting time or -1 if never sighted in its live window. In
  /// this mode `time` is the time-to-ALL-sighted (censored at the cap) and
  /// finder/first_target describe the earliest sighting.
  std::vector<double> target_times;
};

/// Runs one continuous trial of `strategy` under `env`: the interleaved
/// min-clock sweep generalized over per-agent start delays (agents idle at
/// home until their start time), fail-stop lifetimes (a trajectory is
/// truncated at its active-time budget; sightings past it do not count),
/// and first-of-set races over multiple sight discs. Under a sync/no-crash
/// single-target environment this is exactly the historical
/// run_plane_search (which is now a wrapper over it). Throws
/// std::invalid_argument on k < 1, an empty target set, environment vectors
/// of the wrong size, or a non-positive sight radius.
PlaneTrialResult run_plane_trial(const PlaneStrategy& strategy, int k,
                                 const PlaneTrialEnvironment& env,
                                 const rng::Rng& trial_rng,
                                 const PlaneEngineConfig& config = {});

namespace detail {

/// Shared between the scalar executor and the batch kernels (sim/batch/):
/// argument validation and the home-target special case must behave
/// byte-identically on both paths, so they live in one place.

/// Throws std::invalid_argument exactly as run_plane_trial documents.
void validate_plane_trial_args(int k, const PlaneTrialEnvironment& env,
                               const PlaneEngineConfig& config);

/// Handles a target already inside the sight disc of home: every agent that
/// ever starts sees it the moment it wakes up, so the earliest ALIVE
/// starter (lowest index on ties) is the finder, provided its start is
/// within `time_cap`. Dead-on-arrival agents (lifetime <= 0) never act —
/// they cannot be credited with the find and they count into
/// result->crashed, exactly as on the non-home path. Returns true iff a
/// target was within eps of home (the result is then fully resolved).
bool resolve_home_target(const PlaneTrialEnvironment& env, int k, double eps,
                         Time time_cap, PlaneTrialResult* result);

}  // namespace detail

}  // namespace ants::plane
