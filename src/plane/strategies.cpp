#include "plane/strategies.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/format.h"

namespace ants::plane {

namespace {

/// Uniform point of the disk of radius r around the origin.
Vec2 uniform_disk_point(rng::Rng& rng, double r) {
  const double rad = r * std::sqrt(rng.uniform_unit());
  return unit(rng.angle()) * rad;
}

// Stage/phase double loop of A_k, continuous trips.
class PlaneKnownKProgram final : public PlaneAgentProgram {
 public:
  explicit PlaneKnownKProgram(const PlaneKnownKStrategy& strategy)
      : strategy_(strategy) {}

  PlaneOp next(rng::Rng& rng) override {
    switch (step_) {
      case Step::kGoTo: {
        step_ = Step::kSpiral;
        return GoToPoint{uniform_disk_point(rng, strategy_.disk_radius(i_))};
      }
      case Step::kSpiral:
        step_ = Step::kReturn;
        return SpiralSweep{strategy_.sweep_budget(i_)};
      default:
        step_ = Step::kGoTo;
        if (i_ < j_) {
          ++i_;
        } else {
          ++j_;
          i_ = 1;
        }
        return ReturnHome{};
    }
  }

 private:
  enum class Step { kGoTo, kSpiral, kReturn };

  const PlaneKnownKStrategy& strategy_;
  int j_ = 1;
  int i_ = 1;
  Step step_ = Step::kGoTo;
};

// Three-step harmonic loop, continuous trips.
class PlaneHarmonicProgram final : public PlaneAgentProgram {
 public:
  explicit PlaneHarmonicProgram(double delta) : delta_(delta) {}

  PlaneOp next(rng::Rng& rng) override {
    switch (step_) {
      case Step::kGoTo: {
        step_ = Step::kSpiral;
        // Radial density ~ r^-(1+delta) on [1, inf): Pareto(1, delta).
        // Clamp so a single astronomically far trip cannot stall a trial.
        radius_ = std::min(rng.pareto(1.0, delta_), 1e9);
        return GoToPoint{unit(rng.angle()) * radius_};
      }
      case Step::kSpiral: {
        step_ = Step::kReturn;
        const double budget = std::pow(radius_, 2.0 + delta_);
        return SpiralSweep{std::min(budget, 1e18)};
      }
      default:
        step_ = Step::kGoTo;
        return ReturnHome{};
    }
  }

 private:
  enum class Step { kGoTo, kSpiral, kReturn };

  double delta_;
  double radius_ = 1.0;
  Step step_ = Step::kGoTo;
};

// Algorithm 1's triple loop, continuous trips.
class PlaneUniformProgram final : public PlaneAgentProgram {
 public:
  explicit PlaneUniformProgram(const PlaneUniformStrategy& strategy)
      : strategy_(strategy) {}

  PlaneOp next(rng::Rng& rng) override {
    switch (step_) {
      case Step::kGoTo: {
        step_ = Step::kSpiral;
        return GoToPoint{
            uniform_disk_point(rng, strategy_.disk_radius(i_, j_))};
      }
      case Step::kSpiral:
        step_ = Step::kReturn;
        return SpiralSweep{strategy_.sweep_budget(i_, j_)};
      default:
        step_ = Step::kGoTo;
        advance();
        return ReturnHome{};
    }
  }

 private:
  enum class Step { kGoTo, kSpiral, kReturn };

  void advance() {
    if (j_ < i_) {
      ++j_;
      return;
    }
    j_ = 0;
    if (i_ < l_) {
      ++i_;
      return;
    }
    i_ = 0;
    ++l_;
  }

  const PlaneUniformStrategy& strategy_;
  int l_ = 0;
  int i_ = 0;
  int j_ = 0;
  Step step_ = Step::kGoTo;
};

}  // namespace

PlaneKnownKStrategy::PlaneKnownKStrategy(std::int64_t k_belief)
    : k_belief_(k_belief) {
  if (k_belief < 1) {
    throw std::invalid_argument("PlaneKnownK: k_belief >= 1");
  }
}

std::string PlaneKnownKStrategy::name() const {
  return "plane-known-k(k=" + std::to_string(k_belief_) + ")";
}

std::unique_ptr<PlaneAgentProgram> PlaneKnownKStrategy::make_program(
    int /*agent_index*/, int /*k*/) const {
  return std::make_unique<PlaneKnownKProgram>(*this);
}

double PlaneKnownKStrategy::disk_radius(int phase_i) const noexcept {
  return std::ldexp(1.0, std::min(phase_i, 60));
}

Time PlaneKnownKStrategy::sweep_budget(int phase_i) const noexcept {
  // Same 2^(2i+2)/k schedule as the grid A_k; arc length on the plane.
  const double t = std::ldexp(1.0, std::min(2 * phase_i + 2, 120)) /
                   static_cast<double>(k_belief_);
  return std::max(1.0, t);
}

PlaneHarmonicStrategy::PlaneHarmonicStrategy(double delta) : delta_(delta) {
  if (!(delta > 0)) throw std::invalid_argument("PlaneHarmonic: delta > 0");
}

std::string PlaneHarmonicStrategy::name() const {
  return "plane-harmonic(delta=" + util::fmt_param(delta_) + ")";
}

std::unique_ptr<PlaneAgentProgram> PlaneHarmonicStrategy::make_program(
    int /*agent_index*/, int /*k*/) const {
  return std::make_unique<PlaneHarmonicProgram>(delta_);
}

PlaneUniformStrategy::PlaneUniformStrategy(double eps) : eps_(eps) {
  if (!(eps >= 0)) throw std::invalid_argument("PlaneUniform: eps >= 0");
}

std::string PlaneUniformStrategy::name() const {
  return "plane-uniform(eps=" + util::fmt_param(eps_) + ")";
}

std::unique_ptr<PlaneAgentProgram> PlaneUniformStrategy::make_program(
    int /*agent_index*/, int /*k*/) const {
  return std::make_unique<PlaneUniformProgram>(*this);
}

double PlaneUniformStrategy::disk_radius(int stage_i, int phase_j) const
    noexcept {
  const double divisor =
      std::pow(phase_j < 1 ? 1.0 : static_cast<double>(phase_j), 1.0 + eps_);
  return std::sqrt(std::ldexp(1.0, std::min(stage_i + phase_j, 120)) /
                   divisor);
}

Time PlaneUniformStrategy::sweep_budget(int stage_i, int phase_j) const
    noexcept {
  const double divisor =
      std::pow(phase_j < 1 ? 1.0 : static_cast<double>(phase_j), 1.0 + eps_);
  return std::max(1.0,
                  std::ldexp(1.0, std::min(stage_i + 2, 120)) / divisor);
}

}  // namespace ants::plane
