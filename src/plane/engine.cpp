#include "plane/engine.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ants::plane {

namespace {

Move realize(const PlaneOp& op, Vec2 current, double pitch) {
  struct Visitor {
    Vec2 current;
    double pitch;

    Move operator()(const GoToPoint& go) const {
      return LineMove{current, go.target};
    }
    Move operator()(const SpiralSweep& sp) const {
      return SpiralMove{current, pitch, sp.duration};
    }
    Move operator()(const ReturnHome&) const {
      return LineMove{current, kPlaneOrigin};
    }
  };
  return std::visit(Visitor{current, pitch}, op);
}

}  // namespace

namespace detail {

void validate_plane_trial_args(int k, const PlaneTrialEnvironment& env,
                               const PlaneEngineConfig& config) {
  if (k < 1) throw std::invalid_argument("run_plane_trial: need k >= 1");
  if (!(config.sight_radius > 0)) {
    throw std::invalid_argument("run_plane_trial: sight_radius > 0");
  }
  if (env.targets.empty() && !env.has_target_windows()) {
    // A windowed process (Poisson arrivals) may spawn zero targets.
    throw std::invalid_argument("run_plane_trial: need >= 1 target");
  }
  if (!env.target_appear.empty() &&
      env.target_appear.size() != env.targets.size()) {
    throw std::invalid_argument(
        "run_plane_trial: target_appear count != targets");
  }
  if (!env.target_vanish.empty() &&
      env.target_vanish.size() != env.targets.size()) {
    throw std::invalid_argument(
        "run_plane_trial: target_vanish count != targets");
  }
  const auto uk = static_cast<std::size_t>(k);
  if (!env.starts.empty() && env.starts.size() != uk) {
    throw std::invalid_argument("run_plane_trial: starts count != k");
  }
  if (!env.lifetimes.empty() && env.lifetimes.size() != uk) {
    throw std::invalid_argument("run_plane_trial: lifetimes count != k");
  }
}

bool resolve_home_target(const PlaneTrialEnvironment& env, int k, double eps,
                         Time time_cap, PlaneTrialResult* result) {
  for (std::size_t ti = 0; ti < env.targets.size(); ++ti) {
    if (distance(env.targets[ti], kPlaneOrigin) > eps) continue;
    // Earliest ALIVE starter (lowest index on ties). A dead-on-arrival
    // agent (lifetime <= 0) never acts, so it cannot be the finder — it
    // crashes, exactly as the main sweep counts it.
    int finder = -1;
    Time first_start = 0;
    for (int a = 0; a < k; ++a) {
      const auto ia = static_cast<std::size_t>(a);
      if (!env.lifetimes.empty() && env.lifetimes[ia] <= 0) {
        ++result->crashed;  // dead on arrival: never acts
        continue;
      }
      const Time start = env.starts.empty() ? Time{0} : env.starts[ia];
      if (finder == -1 || start < first_start) {
        finder = a;
        first_start = start;
      }
    }
    if (finder == -1 || first_start > time_cap) {
      result->found = false;
      result->time = time_cap;
      result->finder = -1;
      result->from_last_start = time_cap;
      return true;
    }
    result->found = true;
    result->time = first_start;
    result->finder = finder;
    result->first_target = static_cast<int>(ti);
    result->from_last_start = 0;
    return true;
  }
  return false;
}

}  // namespace detail

Time PlaneTrialEnvironment::last_start() const noexcept {
  if (starts.empty()) return 0;
  return *std::max_element(starts.begin(), starts.end());
}

namespace {

/// The min-clock sweep generalized over appear/vanish windows and
/// collect-all — a separate loop from the static path so the classic model
/// stays byte-identical. Detection is on sighting only (no home-target
/// special case; see PlaneTrialEnvironment docs).
PlaneTrialResult run_plane_trial_dynamic(const PlaneStrategy& strategy, int k,
                                         const PlaneTrialEnvironment& env,
                                         const rng::Rng& trial_rng,
                                         const PlaneEngineConfig& config) {
  const auto uk = static_cast<std::size_t>(k);
  const std::size_t nt = env.targets.size();
  const bool collect = env.collect_all;
  PlaneTrialResult result;
  result.last_start = env.last_start();
  if (collect) result.target_times.assign(nt, -1.0);

  const auto appear_of = [&](std::size_t ti) {
    return env.target_appear.empty() ? 0.0 : env.target_appear[ti];
  };
  const auto vanish_of = [&](std::size_t ti) {
    return env.target_vanish.empty() ? kPlaneNever : env.target_vanish[ti];
  };
  const auto start_of = [&](int a) {
    return env.starts.empty() ? Time{0}
                              : env.starts[static_cast<std::size_t>(a)];
  };
  const auto lifetime_of = [&](int a) {
    return env.lifetimes.empty()
               ? kPlaneNever
               : env.lifetimes[static_cast<std::size_t>(a)];
  };

  if (collect && nt == 0) {
    // Zero spawned targets: vacuously all sighted at t = 0; nobody acts.
    result.found = true;
    result.time = 0;
    result.from_last_start = 0;
    for (int a = 0; a < k; ++a) {
      if (lifetime_of(a) <= 0) ++result.crashed;
    }
    return result;
  }

  struct AgentState {
    std::unique_ptr<PlaneAgentProgram> program;
    rng::Rng rng;
    Vec2 pos = kPlaneOrigin;
    Time elapsed = 0;
    std::int64_t segments = 0;
  };
  std::vector<AgentState> agents;
  agents.reserve(uk);
  for (int a = 0; a < k; ++a) {
    agents.push_back(AgentState{strategy.make_program(a, k),
                                trial_rng.child(static_cast<std::uint64_t>(a)),
                                kPlaneOrigin, 0, 0});
  }

  using Entry = std::pair<Time, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  for (int a = 0; a < k; ++a) {
    if (lifetime_of(a) <= 0) {
      ++result.crashed;
      continue;
    }
    queue.emplace(start_of(a), a);
  }

  std::vector<Time> best_t(nt, kPlaneNever);
  std::vector<int> finder_t(nt, -1);
  Time best_first = kPlaneNever;

  while (!queue.empty()) {
    const auto [abs_clock, a] = queue.top();
    queue.pop();
    // The bound below which a pop can still improve the outcome: the
    // first-sighting race uses the classic best; collect-all keeps the
    // loosest per-target bound open (an unsighted target holds the cap).
    Time bound = config.time_cap;
    if (!collect) {
      bound = std::min(bound, best_first);
    } else {
      Time loosest = 0;
      for (std::size_t ti = 0; ti < nt; ++ti) {
        loosest = std::max(
            loosest, best_t[ti] == kPlaneNever ? config.time_cap : best_t[ti]);
      }
      bound = std::min(bound, loosest);
    }
    if (abs_clock >= bound) break;

    AgentState& agent = agents[static_cast<std::size_t>(a)];
    if (++agent.segments > config.max_segments_per_agent) {
      throw std::runtime_error(
          "plane engine: agent exceeded segment budget without terminating");
    }
    ++result.segments;

    const Move move =
        realize(agent.program->next(agent.rng), agent.pos,
                config.spiral_pitch);
    const Time base = start_of(a) + agent.elapsed;
    for (std::size_t ti = 0; ti < nt; ++ti) {
      const Time from = appear_of(ti) - base;
      const auto hit =
          from > 0
              ? first_sighting_from(move, env.targets[ti],
                                    config.sight_radius, from)
              : first_sighting(move, env.targets[ti], config.sight_radius);
      if (!hit) continue;
      const Time when_active = agent.elapsed + *hit;
      if (when_active > lifetime_of(a)) continue;
      const Time when_abs = start_of(a) + when_active;
      if (when_abs > config.time_cap) continue;
      // The first in-window sighting at or past vanish means every later
      // pass is as well (sighting offsets increase along the move).
      if (when_abs >= vanish_of(ti)) continue;
      if (when_abs < best_t[ti] ||
          (when_abs == best_t[ti] && a < finder_t[ti])) {
        best_t[ti] = when_abs;
        finder_t[ti] = a;
      }
      if (when_abs < best_first) best_first = when_abs;
    }
    const Time move_time = move_duration(move);
    if (agent.elapsed + move_time >= lifetime_of(a)) {
      agent.pos = move_position_at(move, lifetime_of(a) - agent.elapsed);
      agent.elapsed = lifetime_of(a);
      ++result.crashed;
      continue;
    }
    agent.elapsed += move_time;
    agent.pos = move_end(move);
    queue.emplace(start_of(a) + agent.elapsed, a);
  }

  // Earliest sighting (ties: lowest agent, then lowest target) fills
  // finder/first_target in both modes.
  std::size_t n_found = 0;
  Time t_all = 0;
  Time first_time = kPlaneNever;
  for (std::size_t ti = 0; ti < nt; ++ti) {
    if (best_t[ti] == kPlaneNever) continue;
    ++n_found;
    t_all = std::max(t_all, best_t[ti]);
    if (collect) result.target_times[ti] = best_t[ti];
    if (best_t[ti] < first_time ||
        (best_t[ti] == first_time && finder_t[ti] < result.finder)) {
      first_time = best_t[ti];
      result.finder = finder_t[ti];
      result.first_target = static_cast<int>(ti);
    }
  }
  const bool done = collect ? n_found == nt : n_found > 0;
  if (done) {
    const Time when = collect ? t_all : first_time;
    result.found = true;
    result.time = when;
    result.from_last_start =
        when > result.last_start ? when - result.last_start : 0;
  } else {
    // Partial collect-all finds keep finder/first_target of the earliest
    // sighting (and the partial target_times) for the aggregates.
    result.found = false;
    result.time = config.time_cap;
    result.from_last_start = config.time_cap;
  }
  return result;
}

}  // namespace

PlaneTrialResult run_plane_trial(const PlaneStrategy& strategy, int k,
                                 const PlaneTrialEnvironment& env,
                                 const rng::Rng& trial_rng,
                                 const PlaneEngineConfig& config) {
  detail::validate_plane_trial_args(k, env, config);
  if (env.has_target_windows() || env.collect_all) {
    return run_plane_trial_dynamic(strategy, k, env, trial_rng, config);
  }
  const auto uk = static_cast<std::size_t>(k);

  PlaneTrialResult result;
  result.last_start = env.last_start();
  if (detail::resolve_home_target(env, k, config.sight_radius,
                                  config.time_cap, &result)) {
    return result;
  }

  const auto start_of = [&](int a) {
    return env.starts.empty() ? Time{0}
                              : env.starts[static_cast<std::size_t>(a)];
  };
  const auto lifetime_of = [&](int a) {
    return env.lifetimes.empty()
               ? kPlaneNever
               : env.lifetimes[static_cast<std::size_t>(a)];
  };

  // Interleaved min-clock sweep, exactly as the grid executor (see
  // sim/trial.cpp for why interleaving rather than agent-at-a-time). Agents
  // are ordered by ABSOLUTE clock: start delay + active time in their own
  // program.
  struct AgentState {
    std::unique_ptr<PlaneAgentProgram> program;
    rng::Rng rng;
    Vec2 pos = kPlaneOrigin;
    Time elapsed = 0;  ///< active time in the agent's own program
    std::int64_t segments = 0;
  };
  std::vector<AgentState> agents;
  agents.reserve(uk);
  for (int a = 0; a < k; ++a) {
    agents.push_back(AgentState{strategy.make_program(a, k),
                                trial_rng.child(static_cast<std::uint64_t>(a)),
                                kPlaneOrigin, 0, 0});
  }

  using Entry = std::pair<Time, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  for (int a = 0; a < k; ++a) {
    if (lifetime_of(a) <= 0) {
      ++result.crashed;  // dead on arrival: never acts
      continue;
    }
    queue.emplace(start_of(a), a);
  }

  Time best = kPlaneNever;
  int finder = -1;
  int first_target = -1;

  while (!queue.empty()) {
    const auto [abs_clock, a] = queue.top();
    queue.pop();
    // All other clocks are >= this one; once it reaches the bound (the best
    // sighting so far, or the cap), no agent can improve the outcome.
    const Time bound = std::min(config.time_cap, best);
    if (abs_clock >= bound) break;

    AgentState& agent = agents[static_cast<std::size_t>(a)];
    if (++agent.segments > config.max_segments_per_agent) {
      throw std::runtime_error(
          "plane engine: agent exceeded segment budget without terminating");
    }
    ++result.segments;

    const Move move =
        realize(agent.program->next(agent.rng), agent.pos,
                config.spiral_pitch);
    for (std::size_t ti = 0; ti < env.targets.size(); ++ti) {
      const auto hit =
          first_sighting(move, env.targets[ti], config.sight_radius);
      if (!hit) continue;
      const Time when_active = agent.elapsed + *hit;
      // A sighting only counts while the agent is still alive.
      if (when_active > lifetime_of(a)) continue;
      const Time when_abs = start_of(a) + when_active;
      if (when_abs > config.time_cap) continue;
      // Earliest sighting wins; exact ties go to the lowest agent index,
      // then to the lowest target index — the grid executor's rule.
      if (when_abs < best || (when_abs == best && a < finder)) {
        best = when_abs;
        finder = a;
        first_target = static_cast<int>(ti);
      }
    }
    const Time move_time = move_duration(move);
    if (agent.elapsed + move_time >= lifetime_of(a)) {
      // Fail-stop: the trajectory is truncated at the agent's active-time
      // budget; it halts wherever the budget ran out, mid-move included.
      // The race outcome never reads a dead agent's position — this keeps
      // the agent state faithful for future instrumentation (trajectory
      // dumps, visitation traces) at one move_position_at per crash.
      agent.pos = move_position_at(move, lifetime_of(a) - agent.elapsed);
      agent.elapsed = lifetime_of(a);
      ++result.crashed;
      continue;
    }
    agent.elapsed += move_time;
    agent.pos = move_end(move);
    queue.emplace(start_of(a) + agent.elapsed, a);
  }

  if (best != kPlaneNever) {
    result.found = true;
    result.time = best;
    result.finder = finder;
    result.first_target = first_target;
    result.from_last_start =
        best > result.last_start ? best - result.last_start : 0;
  } else {
    result.found = false;
    result.time = config.time_cap;
    result.finder = -1;
    result.from_last_start = config.time_cap;
  }
  return result;
}

PlaneSearchResult run_plane_search(const PlaneStrategy& strategy, int k,
                                   Vec2 treasure, const rng::Rng& trial_rng,
                                   const PlaneEngineConfig& config) {
  if (k < 1) throw std::invalid_argument("run_plane_search: need k >= 1");
  // The base model is the environment-aware executor under the trivial
  // environment (simultaneous starts, immortal agents, one treasure); see
  // run_plane_trial for the interleaved min-clock sweep this used to
  // implement directly.
  PlaneTrialEnvironment env;
  env.targets = {treasure};
  const PlaneTrialResult r =
      run_plane_trial(strategy, k, env, trial_rng, config);
  PlaneSearchResult result;
  result.time = r.time;
  result.found = r.found;
  result.finder = r.finder;
  result.segments = r.segments;
  return result;
}

}  // namespace ants::plane
