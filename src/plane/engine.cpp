#include "plane/engine.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ants::plane {

namespace {

Move realize(const PlaneOp& op, Vec2 current, double pitch) {
  struct Visitor {
    Vec2 current;
    double pitch;

    Move operator()(const GoToPoint& go) const {
      return LineMove{current, go.target};
    }
    Move operator()(const SpiralSweep& sp) const {
      return SpiralMove{current, pitch, sp.duration};
    }
    Move operator()(const ReturnHome&) const {
      return LineMove{current, kPlaneOrigin};
    }
  };
  return std::visit(Visitor{current, pitch}, op);
}

}  // namespace

PlaneSearchResult run_plane_search(const PlaneStrategy& strategy, int k,
                                   Vec2 treasure, const rng::Rng& trial_rng,
                                   const PlaneEngineConfig& config) {
  if (k < 1) throw std::invalid_argument("run_plane_search: need k >= 1");
  if (!(config.sight_radius > 0)) {
    throw std::invalid_argument("run_plane_search: sight_radius > 0");
  }

  PlaneSearchResult result;
  if (distance(treasure, kPlaneOrigin) <= config.sight_radius) {
    result.found = true;
    result.time = 0;
    result.finder = 0;
    return result;
  }

  // Interleaved min-clock sweep, exactly as the grid engine (see
  // sim/engine.cpp for why interleaving rather than agent-at-a-time).
  struct AgentState {
    std::unique_ptr<PlaneAgentProgram> program;
    rng::Rng rng;
    Vec2 pos = kPlaneOrigin;
    Time clock = 0;
    std::int64_t segments = 0;
  };
  std::vector<AgentState> agents;
  agents.reserve(static_cast<std::size_t>(k));
  for (int a = 0; a < k; ++a) {
    agents.push_back(AgentState{strategy.make_program(a, k),
                                trial_rng.child(static_cast<std::uint64_t>(a)),
                                kPlaneOrigin, 0, 0});
  }

  using Entry = std::pair<Time, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  for (int a = 0; a < k; ++a) queue.emplace(0.0, a);

  Time best = kPlaneNever;
  int finder = -1;

  while (!queue.empty()) {
    const auto [clock, a] = queue.top();
    queue.pop();
    const Time bound = std::min(config.time_cap, best);
    if (clock >= bound) break;

    AgentState& agent = agents[static_cast<std::size_t>(a)];
    if (++agent.segments > config.max_segments_per_agent) {
      throw std::runtime_error(
          "plane engine: agent exceeded segment budget without terminating");
    }
    ++result.segments;

    const Move move =
        realize(agent.program->next(agent.rng), agent.pos,
                config.spiral_pitch);
    if (const auto hit =
            first_sighting(move, treasure, config.sight_radius)) {
      const Time when = agent.clock + *hit;
      if (when <= config.time_cap && when < best) {
        best = when;
        finder = a;
      }
    }
    agent.clock += move_duration(move);
    agent.pos = move_end(move);
    queue.emplace(agent.clock, a);
  }

  if (best != kPlaneNever) {
    result.found = true;
    result.time = best;
    result.finder = finder;
  } else {
    result.found = false;
    result.time = config.time_cap;
    result.finder = -1;
  }
  return result;
}

}  // namespace ants::plane
