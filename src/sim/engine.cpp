#include "sim/engine.h"

#include <algorithm>
#include <memory>
#include <queue>
#include <stdexcept>
#include <vector>

#include "util/sat.h"

namespace ants::sim {

Segment realize(const Op& op, grid::Point current, grid::Point source) {
  struct Visitor {
    grid::Point current;
    grid::Point source;

    Segment operator()(const GoTo& go) const {
      return WalkSegment(current, go.target);
    }
    Segment operator()(const SpiralFor& sp) const {
      return SpiralSegment{current, sp.duration};
    }
    Segment operator()(const ReturnToSource&) const {
      return WalkSegment(current, source);
    }
    Segment operator()(const FollowPath& fp) const {
      return PathSegment{current, fp.steps};
    }
  };
  return std::visit(Visitor{current, source}, op);
}

Time single_agent_hit_time(AgentProgram& program, rng::Rng& rng,
                           grid::Point treasure, grid::Point source,
                           Time bound, std::int64_t max_segments,
                           std::int64_t* segments_out) {
  grid::Point pos = source;
  Time clock = 0;
  std::int64_t segments = 0;

  if (pos == treasure) {
    if (segments_out) *segments_out = 0;
    return 0;
  }

  // Invariant: clock <= bound when a segment is realized, so any hit that
  // could still matter (<= bound) is inside a segment we do inspect.
  while (clock <= bound) {
    if (++segments > max_segments) {
      throw std::runtime_error(
          "engine: agent exceeded segment budget without terminating");
    }
    const Segment seg = realize(program.next(rng), pos, source);
    if (const auto hit = hit_offset(seg, treasure)) {
      const Time when = util::sat_add(clock, *hit);
      if (when <= bound) {
        if (segments_out) *segments_out = segments;
        return when;
      }
    }
    clock = util::sat_add(clock, duration(seg));
    pos = end_position(seg);
  }
  if (segments_out) *segments_out = segments;
  return kNeverTime;
}

SearchResult run_search(const Strategy& strategy, int k, grid::Point treasure,
                        const rng::Rng& trial_rng, const EngineConfig& config) {
  if (k < 1) throw std::invalid_argument("run_search: need k >= 1");

  SearchResult result;

  if (treasure == grid::kOrigin) {
    result.found = true;
    result.time = 0;
    result.finder = 0;
    return result;
  }

  // Agents are interleaved by simulation clock (smallest first) rather than
  // processed to completion one at a time: with deterministic partitioned
  // strategies (e.g. the sector sweep) only ONE agent ever reaches the
  // treasure, so any agent processed before it under an infinite bound
  // would never terminate. Interleaving guarantees the eventual finder sets
  // the bound after simulating at most its own hit time, and every other
  // agent stops as soon as its clock passes that bound.
  struct AgentState {
    std::unique_ptr<AgentProgram> program;
    rng::Rng rng;
    grid::Point pos = grid::kOrigin;
    Time clock = 0;
    std::int64_t segments = 0;
  };
  std::vector<AgentState> agents;
  agents.reserve(static_cast<std::size_t>(k));
  for (int a = 0; a < k; ++a) {
    agents.push_back(AgentState{
        strategy.make_program(AgentContext{a, k}),
        trial_rng.child(static_cast<std::uint64_t>(a)),
        grid::kOrigin, 0, 0});
  }

  // Min-heap of (clock, agent index); lower index wins ties so the outcome
  // is deterministic and matches the brute-force reference order.
  using Entry = std::pair<Time, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  for (int a = 0; a < k; ++a) queue.emplace(0, a);

  Time best = kNeverTime;
  int finder = -1;

  while (!queue.empty()) {
    const auto [clock, a] = queue.top();
    queue.pop();
    // All other clocks are >= this one; once it exceeds the bound, no agent
    // can improve the outcome.
    const Time bound =
        std::min(config.time_cap, best == kNeverTime ? best : best - 1);
    if (clock > bound) break;

    AgentState& agent = agents[static_cast<std::size_t>(a)];
    if (++agent.segments > config.max_segments_per_agent) {
      throw std::runtime_error(
          "engine: agent exceeded segment budget without terminating");
    }
    ++result.segments;

    const Segment seg =
        realize(agent.program->next(agent.rng), agent.pos, grid::kOrigin);
    if (const auto hit = hit_offset(seg, treasure)) {
      const Time when = util::sat_add(agent.clock, *hit);
      // Earliest hit wins; exact ties go to the lowest agent index, the
      // same rule as the brute-force reference in the cross-check tests.
      if (when <= config.time_cap &&
          (when < best || (when == best && a < finder))) {
        best = when;
        finder = a;
      }
    }
    agent.clock = util::sat_add(agent.clock, duration(seg));
    agent.pos = end_position(seg);
    queue.emplace(agent.clock, a);
  }

  if (best != kNeverTime) {
    result.found = true;
    result.time = best;
    result.finder = finder;
  } else {
    result.found = false;
    result.time = config.time_cap;
    result.finder = -1;
  }
  return result;
}

}  // namespace ants::sim
