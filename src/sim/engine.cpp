#include "sim/engine.h"

#include <stdexcept>

#include "sim/trial.h"
#include "util/sat.h"

namespace ants::sim {

Segment realize(const Op& op, grid::Point current, grid::Point source) {
  struct Visitor {
    grid::Point current;
    grid::Point source;

    Segment operator()(const GoTo& go) const {
      return WalkSegment(current, go.target);
    }
    Segment operator()(const SpiralFor& sp) const {
      return SpiralSegment{current, sp.duration};
    }
    Segment operator()(const ReturnToSource&) const {
      return WalkSegment(current, source);
    }
    Segment operator()(const FollowPath& fp) const {
      return PathSegment{current, fp.steps};
    }
  };
  return std::visit(Visitor{current, source}, op);
}

Time single_agent_hit_time(AgentProgram& program, rng::Rng& rng,
                           grid::Point treasure, grid::Point source,
                           Time bound, std::int64_t max_segments,
                           std::int64_t* segments_out) {
  grid::Point pos = source;
  Time clock = 0;
  std::int64_t segments = 0;

  if (pos == treasure) {
    if (segments_out) *segments_out = 0;
    return 0;
  }

  // Invariant: clock <= bound when a segment is realized, so any hit that
  // could still matter (<= bound) is inside a segment we do inspect.
  while (clock <= bound) {
    if (++segments > max_segments) {
      throw std::runtime_error(
          "engine: agent exceeded segment budget without terminating");
    }
    const Segment seg = realize(program.next(rng), pos, source);
    if (const auto hit = hit_offset(seg, treasure)) {
      const Time when = util::sat_add(clock, *hit);
      if (when <= bound) {
        if (segments_out) *segments_out = segments;
        return when;
      }
    }
    clock = util::sat_add(clock, duration(seg));
    pos = end_position(seg);
  }
  if (segments_out) *segments_out = segments;
  return kNeverTime;
}

SearchResult run_search(const Strategy& strategy, int k, grid::Point treasure,
                        const rng::Rng& trial_rng, const EngineConfig& config) {
  if (k < 1) throw std::invalid_argument("run_search: need k >= 1");
  // The base model is the unified executor under the trivial environment
  // (simultaneous starts, immortal agents, one target); see sim/trial.h for
  // the interleaved min-heap sweep this used to implement directly.
  const TrialResult r =
      run_trial(strategy, k, single_target_environment(treasure), trial_rng,
                config);
  SearchResult result;
  result.time = static_cast<Time>(r.time);
  result.found = r.found;
  result.finder = r.finder;
  result.segments = r.segments;
  return result;
}

}  // namespace ants::sim
