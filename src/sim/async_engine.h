// Start schedules and fail-stop crash models.
//
// Section 2 of the paper makes two simplifying assumptions and argues both
// away in one sentence each: agents start simultaneously ("can easily be
// removed by starting to count the time after the last agent initiates the
// search") and never fail. This module makes those remarks executable so
// experiment E9 can check them quantitatively:
//
//   * A StartSchedule assigns each agent a start delay; the executor
//     reports the search time both from t0 (first possible start) and from
//     the last start, so the paper's "count from the last start" reduction
//     is a measurable claim rather than a modeling convention.
//   * A CrashModel assigns each agent an active-time budget (lifetime);
//     an agent that exhausts its lifetime halts in place and contributes
//     nothing further (fail-stop — the agent does not "unvisit" anything).
//     Crash robustness is the natural future-work axis of the paper: with
//     Bernoulli dead-on-arrival failures of rate p the survivors are a
//     Binomial(k, 1-p) crowd, so E[T] should track D + D^2/((1-p)k).
//
// Both policies are pure per-trial draws consumed by sim::draw_environment
// (sim/trial.h), which executes them on EVERY strategy family — segment-,
// lock-step-, and continuous-plane-level alike — through the unified
// run_trial executor (plane backends read the integer delays/lifetimes as
// continuous time units).
// run_search_async below is the historical segment-level entry point, now a
// thin wrapper over that executor.
//
// Determinism: delays and lifetimes are drawn from dedicated child streams
// of the trial rng (tags kScheduleStream / kCrashStream), so enabling either
// feature does not perturb the agents' program randomness — the same trial
// seed explores the same trajectories, only truncated or shifted.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rng/rng.h"
#include "sim/engine.h"
#include "sim/program.h"
#include "sim/types.h"

namespace ants::sim {

/// Start times for the k agents of one trial.
class StartSchedule {
 public:
  virtual ~StartSchedule() = default;
  virtual std::string name() const = 0;
  /// k start delays (>= 0), one per agent. Must be deterministic given rng.
  virtual std::vector<Time> draw(int k, rng::Rng& rng) const = 0;
};

/// Everybody at t = 0 (the paper's base model).
class SyncStart final : public StartSchedule {
 public:
  std::string name() const override { return "sync"; }
  std::vector<Time> draw(int k, rng::Rng& rng) const override;
};

/// Agent a starts at a * gap: the adversarial "drip" release. With gap >= 1
/// the last start is (k-1)*gap, so measuring from t0 necessarily costs that
/// much; measuring from the last start should not.
class StaggeredStart final : public StartSchedule {
 public:
  explicit StaggeredStart(Time gap);
  std::string name() const override;
  std::vector<Time> draw(int k, rng::Rng& rng) const override;

 private:
  Time gap_;
};

/// Each agent independently starts at Uniform{0, ..., max_delay}.
class UniformRandomStart final : public StartSchedule {
 public:
  explicit UniformRandomStart(Time max_delay);
  std::string name() const override;
  std::vector<Time> draw(int k, rng::Rng& rng) const override;

 private:
  Time max_delay_;
};

/// Explicit per-agent delays (adversarial schedules in tests).
class FixedStart final : public StartSchedule {
 public:
  explicit FixedStart(std::vector<Time> delays);
  std::string name() const override { return "fixed"; }
  std::vector<Time> draw(int k, rng::Rng& rng) const override;

 private:
  std::vector<Time> delays_;
};

/// Active-time budgets (lifetimes) for the k agents of one trial. An agent
/// with lifetime L executes exactly L time units of its own program and then
/// halts; kNeverTime means immortal.
class CrashModel {
 public:
  virtual ~CrashModel() = default;
  virtual std::string name() const = 0;
  virtual std::vector<Time> draw_lifetimes(int k, rng::Rng& rng) const = 0;
};

/// No failures (the paper's base model).
class NoCrash final : public CrashModel {
 public:
  std::string name() const override { return "no-crash"; }
  std::vector<Time> draw_lifetimes(int k, rng::Rng& rng) const override;
};

/// Dead on arrival with probability p (independently per agent): the
/// survivors are a Binomial(k, 1-p) search party.
class DoaCrash final : public CrashModel {
 public:
  explicit DoaCrash(double p);
  std::string name() const override;
  std::vector<Time> draw_lifetimes(int k, rng::Rng& rng) const override;

 private:
  double p_;
};

/// Independent Exponential(1/mean) lifetimes: memoryless attrition.
class ExponentialLifetime final : public CrashModel {
 public:
  explicit ExponentialLifetime(double mean);
  std::string name() const override;
  std::vector<Time> draw_lifetimes(int k, rng::Rng& rng) const override;

 private:
  double mean_;
};

/// Every agent halts after exactly `lifetime` active time units.
class FixedLifetime final : public CrashModel {
 public:
  explicit FixedLifetime(Time lifetime);
  std::string name() const override;
  std::vector<Time> draw_lifetimes(int k, rng::Rng& rng) const override;

 private:
  Time lifetime_;
};

/// Collaborative search with per-agent start delays and fail-stop crashes:
/// draws the trial environment from the dedicated child streams and runs
/// the unified executor. With SyncStart and NoCrash this is exactly
/// run_search (asserted by the equivalence tests). The returned time is
/// absolute (from t = 0).
TrialResult run_search_async(const Strategy& strategy, int k,
                             grid::Point treasure, const rng::Rng& trial_rng,
                             const StartSchedule& schedule,
                             const CrashModel& crashes,
                             const EngineConfig& config = {});

}  // namespace ants::sim
