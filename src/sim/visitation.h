// Visitation accounting: how many DISTINCT nodes does an agent visit, and
// where?
//
// This is the measurable core of the paper's lower-bound proofs (Theorems
// 4.1/4.2): under a phi(k)-competitive algorithm, a single agent must visit
// Omega(T / phi(k_i)) distinct nodes in each dyadic annulus S_i by time 2T,
// and summing those forces Sum 1/phi(2^i) to converge. The recorder
// materializes one agent's trajectory up to a horizon and counts distinct
// nodes per annulus, letting experiment E4 print exactly that bookkeeping.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/point.h"
#include "rng/rng.h"
#include "sim/program.h"
#include "sim/types.h"

namespace ants::sim {

struct VisitationReport {
  /// distinct[i] = number of distinct nodes visited with annulus index i,
  /// where annulus i is { u : radii[i-1] < d(u) <= radii[i] } (annulus 0 is
  /// the ball of radius radii[0]).
  std::vector<std::int64_t> distinct;
  /// Total distinct nodes visited anywhere within the horizon.
  std::int64_t total_distinct = 0;
  /// Total steps actually simulated (= horizon unless the program stalls).
  Time steps = 0;
};

/// Runs one agent's program for `horizon` time steps and counts distinct
/// visited nodes per annulus. `radii` must be strictly increasing.
VisitationReport record_visitation(const Strategy& strategy, AgentContext ctx,
                                   rng::Rng& rng, Time horizon,
                                   const std::vector<std::int64_t>& radii);

/// Dyadic radii 2^0 .. 2^max_exponent (convenience for E4's S_i annuli).
std::vector<std::int64_t> dyadic_radii(int max_exponent);

}  // namespace ants::sim
