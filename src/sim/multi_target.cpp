#include "sim/multi_target.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <utility>

#include "sim/trial.h"
#include "util/sat.h"

namespace ants::sim {

MultiSearchResult run_search_multi(const Strategy& strategy, int k,
                                   const std::vector<grid::Point>& targets,
                                   const rng::Rng& trial_rng,
                                   const EngineConfig& config,
                                   bool collect_all) {
  if (k < 1) throw std::invalid_argument("run_search_multi: need k >= 1");
  if (targets.empty()) {
    throw std::invalid_argument("run_search_multi: need >= 1 target");
  }
  if (collect_all && config.time_cap == kNeverTime) {
    throw std::invalid_argument(
        "run_search_multi: collect-all requires a finite time_cap");
  }

  // First-of-set is exactly the unified executor's race semantics; only
  // collect-all (every target's first-visit time, no shrinking bound) needs
  // the dedicated sweep below.
  if (!collect_all) {
    TrialEnvironment env;
    env.targets = targets;
    const TrialResult r = run_trial(strategy, k, env, trial_rng, config);
    MultiSearchResult result;
    result.first_time = static_cast<Time>(r.time);
    result.found = r.found;
    result.finder = r.finder;
    result.first_target = r.first_target;
    result.target_times.assign(targets.size(), kNeverTime);
    for (std::size_t ti = 0; ti < targets.size(); ++ti) {
      if (targets[ti] == grid::kOrigin) result.target_times[ti] = 0;
    }
    if (r.found) {
      result.target_times[static_cast<std::size_t>(r.first_target)] =
          static_cast<Time>(r.time);
    }
    return result;
  }

  MultiSearchResult result;
  result.target_times.assign(targets.size(), kNeverTime);

  // Targets at the source are discovered at t = 0 by agent 0.
  for (std::size_t ti = 0; ti < targets.size(); ++ti) {
    if (targets[ti] == grid::kOrigin) {
      result.target_times[ti] = 0;
      if (result.first_target < 0) {
        result.found = true;
        result.first_time = 0;
        result.finder = 0;
        result.first_target = static_cast<int>(ti);
      }
    }
  }
  // Interleaved min-clock sweep as in the unified executor; the difference
  // is the per-target first-visit bookkeeping and a bound that never
  // shrinks below the cap (every agent runs to the cap regardless of what
  // has been found).
  struct AgentState {
    std::unique_ptr<AgentProgram> program;
    rng::Rng rng;
    grid::Point pos = grid::kOrigin;
    Time clock = 0;
    std::int64_t segments = 0;
  };
  std::vector<AgentState> agents;
  agents.reserve(static_cast<std::size_t>(k));
  for (int a = 0; a < k; ++a) {
    agents.push_back(AgentState{
        strategy.make_program(AgentContext{a, k}),
        trial_rng.child(static_cast<std::uint64_t>(a)), grid::kOrigin, 0, 0});
  }

  using Entry = std::pair<Time, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  for (int a = 0; a < k; ++a) queue.emplace(0, a);

  Time best = kNeverTime;
  int finder = -1;
  int first_target = result.first_target;  // may be 0-at-origin already
  if (first_target >= 0) best = 0;

  while (!queue.empty()) {
    const auto [clock, a] = queue.top();
    queue.pop();
    if (clock > config.time_cap) break;

    AgentState& agent = agents[static_cast<std::size_t>(a)];
    if (++agent.segments > config.max_segments_per_agent) {
      throw std::runtime_error(
          "multi-target engine: agent exceeded segment budget");
    }

    const Segment seg =
        realize(agent.program->next(agent.rng), agent.pos, grid::kOrigin);
    for (std::size_t ti = 0; ti < targets.size(); ++ti) {
      const auto hit = hit_offset(seg, targets[ti]);
      if (!hit) continue;
      const Time when = util::sat_add(agent.clock, *hit);
      if (when > config.time_cap) continue;
      if (when < result.target_times[ti]) result.target_times[ti] = when;
      if (when < best || (when == best && a < finder)) {
        best = when;
        finder = a;
        first_target = static_cast<int>(ti);
      }
    }
    agent.clock = util::sat_add(agent.clock, duration(seg));
    agent.pos = end_position(seg);
    queue.emplace(agent.clock, a);
  }

  if (best != kNeverTime) {
    result.found = true;
    result.first_time = best;
    result.finder = finder;
    result.first_target = first_target;
  } else {
    result.found = false;
    result.first_time = config.time_cap;
  }
  return result;
}

}  // namespace ants::sim
