// Segments: the engine's unit of simulated motion.
//
// A segment is a concrete realized movement with a known start position,
// duration, end position, and — crucially — a closed-form answer to "does
// this movement visit node tau, and after how many steps?". The three kinds
// map onto the paper's atomic navigation procedures:
//
//   WalkSegment    straight-line walk (procedures 2 and 4) — O(1) hit test
//   SpiralSegment  spiral search (procedure 3)             — O(1) hit test
//   PathSegment    explicit unit-step path (baselines)     — O(len) hit test
//
// Hit offsets are relative to the segment start; a segment of duration d
// occupies offsets [0, d] (offset 0 is the start node, shared with the
// previous segment's end — taking minima makes the overlap harmless).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "grid/point.h"
#include "grid/spiral.h"
#include "grid/staircase_path.h"
#include "sim/types.h"

namespace ants::sim {

struct WalkSegment {
  grid::StaircasePath path;

  explicit WalkSegment(grid::Point from, grid::Point to) : path(from, to) {}
};

struct SpiralSegment {
  grid::Point center;
  Time duration = 0;  ///< visits spiral indices 0..duration
};

struct PathSegment {
  grid::Point start;
  /// Successive positions after each unit step; positions[i] is occupied at
  /// offset i+1. Every hop must be grid-adjacent (checked in debug builds).
  std::vector<grid::Point> steps;
};

// SpiralSegment first: it is an aggregate, keeping Segment
// default-constructible even though WalkSegment is not.
using Segment = std::variant<SpiralSegment, WalkSegment, PathSegment>;

/// Number of time steps the segment takes.
Time duration(const Segment& seg) noexcept;

/// Position when the segment completes.
grid::Point end_position(const Segment& seg) noexcept;

/// First offset (0-based, <= duration) at which `target` is visited.
std::optional<Time> hit_offset(const Segment& seg, grid::Point target) noexcept;

/// First offset >= `from` at which `target` is visited, or nullopt. Walk and
/// spiral segments visit every node at most once, so this is their unique
/// hit offset filtered against `from`; explicit paths may revisit and are
/// scanned from `from`. Serves the appear-window check of dynamic target
/// processes (sim/trial.h): a target appearing mid-segment must not be
/// credited with a visit that happened before it existed.
std::optional<Time> hit_offset_from(const Segment& seg, grid::Point target,
                                    Time from) noexcept;

/// Enumerates (position, offset) pairs for offsets in [0, min(duration,
/// max_offset)], in visit order. Used by the brute-force cross-checks, the
/// visitation recorder, and trajectory dumps; the analytic engine never
/// calls this.
template <typename Fn>
void for_each_visit(const Segment& seg, Time max_offset, Fn&& fn) {
  struct Visitor {
    Time max_offset;
    Fn& fn;
    void operator()(const WalkSegment& w) const {
      const Time last = std::min(max_offset, w.path.length());
      for (Time t = 0; t <= last; ++t) fn(w.path.at(t), t);
    }
    void operator()(const SpiralSegment& s) const {
      const Time last = std::min(max_offset, s.duration);
      for (Time t = 0; t <= last; ++t) {
        fn(s.center + grid::spiral_point(t), t);
      }
    }
    void operator()(const PathSegment& p) const {
      fn(p.start, 0);
      const Time last =
          std::min<Time>(max_offset, static_cast<Time>(p.steps.size()));
      for (Time t = 1; t <= last; ++t) {
        fn(p.steps[static_cast<std::size_t>(t - 1)], t);
      }
    }
  };
  std::visit(Visitor{max_offset, fn}, seg);
}

}  // namespace ants::sim
