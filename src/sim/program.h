// The strategy/program abstraction: how search algorithms plug into the
// engine.
//
// A Strategy is the immutable description of an algorithm (with all its
// parameters); make_program instantiates the per-agent mutable state. A
// program emits an infinite stream of high-level Ops; the engine realizes
// each op into a concrete Segment from the agent's current position. This
// mirrors the paper's model: identical probabilistic agents whose only
// navigation capabilities are "pick a point / walk straight / spiral /
// return to source".
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "grid/point.h"
#include "rng/rng.h"
#include "sim/types.h"

namespace ants::sim {

/// Walk in a digital straight line from the current position to `target`.
struct GoTo {
  grid::Point target;
};

/// Spiral around the current position visiting spiral indices 0..duration.
struct SpiralFor {
  Time duration = 0;
};

/// Walk straight back to the source node (atomic procedure 4).
struct ReturnToSource {};

/// Follow an explicit unit-step path from the current position (baselines:
/// ring arcs of the sector sweep, chunked random-walk steps).
struct FollowPath {
  std::vector<grid::Point> steps;  ///< successive positions, each adjacent
};

using Op = std::variant<GoTo, SpiralFor, ReturnToSource, FollowPath>;

/// Per-agent mutable algorithm state; next() may consult the agent's private
/// randomness and must always return (programs are conceptually infinite;
/// the engine stops pulling once its time bound is exceeded).
class AgentProgram {
 public:
  virtual ~AgentProgram() = default;
  virtual Op next(rng::Rng& rng) = 0;
};

class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Human-readable name used in experiment tables.
  virtual std::string name() const = 0;

  /// Instantiates the program one agent runs. Uniform algorithms must ignore
  /// ctx.k (see AgentContext); coordinated baselines may use it.
  virtual std::unique_ptr<AgentProgram> make_program(AgentContext ctx) const = 0;
};

}  // namespace ants::sim
