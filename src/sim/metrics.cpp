#include "sim/metrics.h"

#include <cassert>
#include <cmath>

namespace ants::sim {

double optimal_time(std::int64_t distance, std::int64_t k) noexcept {
  assert(distance >= 1 && k >= 1);
  const auto d = static_cast<double>(distance);
  return d + d * d / static_cast<double>(k);
}

double competitiveness(double measured_time, std::int64_t distance,
                       std::int64_t k) noexcept {
  return measured_time / optimal_time(distance, k);
}

double speedup(double time_single, double time_k) noexcept {
  assert(time_k > 0);
  return time_single / time_k;
}

double log_power(std::int64_t k, double power) noexcept {
  assert(k >= 1);
  const double l = std::log2(static_cast<double>(k));
  // log2(1) = 0 would zero every comparison column; clamp to 1 as the
  // asymptotic expressions are only meaningful for k >= 2 anyway.
  return std::pow(l < 1.0 ? 1.0 : l, power);
}

}  // namespace ants::sim
