#include "sim/placement.h"

#include <cassert>
#include <stdexcept>

#include "grid/ball.h"
#include "grid/ring.h"

namespace ants::sim {

Placement axis_placement() {
  return [](rng::Rng&, std::int64_t d) -> grid::Point {
    assert(d >= 1);
    return {d, 0};
  };
}

Placement diagonal_placement() {
  return [](rng::Rng&, std::int64_t d) -> grid::Point {
    assert(d >= 1);
    return {(d + 1) / 2, d / 2};
  };
}

Placement uniform_ring_placement() {
  return [](rng::Rng& rng, std::int64_t d) -> grid::Point {
    assert(d >= 1);
    return grid::uniform_ring_point(rng, d);
  };
}

Placement ring_fraction_placement(double fraction) {
  if (fraction < 0 || fraction >= 1) {
    throw std::invalid_argument("ring fraction must be in [0, 1)");
  }
  return [fraction](rng::Rng&, std::int64_t d) -> grid::Point {
    assert(d >= 1);
    const auto m = static_cast<std::int64_t>(
        fraction * static_cast<double>(grid::ring_size(d)));
    return grid::ring_point(d, m);
  };
}

}  // namespace ants::sim
