// Monte-Carlo runner: repeats environment-aware trials across threads and
// aggregates the statistics the experiment tables need.
//
// Every public run_* entry point funnels through ONE driver
// (run_env_trials), which draws the per-trial environment and executes the
// unified sim::run_trial — so segment- and step-level strategies, start
// schedules, crash models, and multi-target races all share a single
// Monte-Carlo loop.
//
// Reproducibility contract: trial i of a run with master seed S uses
// rng seed mix(S, i) for both placement and the engine, so a result is a
// pure function of (strategy, k, D, placement, trials, S) — thread count
// and scheduling cannot change it.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/async_engine.h"
#include "sim/engine.h"
#include "sim/placement.h"
#include "sim/step_engine.h"
#include "sim/trial.h"
#include "sim/types.h"
#include "stats/summary.h"

namespace ants::telemetry {
class Counter;
class DurationSketch;
}  // namespace ants::telemetry

namespace ants::sim {

struct RunConfig {
  std::int64_t trials = 200;
  std::uint64_t seed = 0x5EEDF00DULL;
  Time time_cap = kNeverTime;  ///< per-trial cap (censored if exceeded)
  unsigned threads = 0;        ///< 0 = hardware concurrency
  /// Optional telemetry hooks (telemetry/metrics.h) for callers that drive
  /// the runner directly (experiment binaries; the sweep scheduler has its
  /// own loop and hooks). Strictly observational — results are unaffected
  /// — and null hooks cost one branch per trial. trial_counter tallies
  /// executed trials; trial_duration records each trial's wall
  /// microseconds.
  telemetry::Counter* trial_counter = nullptr;
  telemetry::DurationSketch* trial_duration = nullptr;
};

struct RunStats {
  stats::Summary time;          ///< search times, censored at the cap
  double success_rate = 1.0;    ///< fraction of trials that found it in time
  double mean_competitiveness = 0;  ///< mean time / (D + D^2/k)
  double median_competitiveness = 0;
  std::int64_t distance = 0;
  std::int64_t k = 0;
  std::vector<double> times;    ///< raw per-trial times (censored)
};

/// Builds RunStats from raw per-trial times. Shared by the runner and the
/// scenario sweep scheduler (which owns its own trial loop so it can
/// schedule across sweep cells); both must aggregate identically.
RunStats make_run_stats(std::vector<double> times, std::int64_t found,
                        std::int64_t distance, int k);

/// Environment aggregates on top of the base stats (zero under the paper's
/// base model, where every trial has zero delays, no crashes, and target 0
/// wins every race).
struct AsyncRunStats {
  RunStats base;                  ///< times measured from t = 0
  stats::Summary from_last_start; ///< times measured from the last start
  double mean_crashed = 0;        ///< mean number of crashed agents per trial
  double mean_last_start = 0;     ///< mean of the trial's latest start delay
  /// Mean winning-target index over FOUND trials (-1 when nothing was ever
  /// found); 0 for single-target runs.
  double mean_first_target = -1;
};

/// The unified Monte-Carlo driver: `targets` realizes each trial's target
/// state over the horizon config.time_cap (see sim::single_target /
/// sim::single_plane_target for the classic one-treasure adversaries and
/// sim::poisson_targets / sim::drifting_target for the dynamic processes),
/// schedule/crashes realize the per-agent environment, and the strategy may
/// be segment-, step-, or plane-level. Step- and plane-level strategies
/// require a finite config.time_cap, and the target process must cover the
/// strategy's substrate (grid vs plane).
AsyncRunStats run_env_trials(const TrialStrategy& strategy, int k,
                             std::int64_t distance,
                             const TargetProcess& targets,
                             const StartSchedule& schedule,
                             const CrashModel& crashes,
                             const RunConfig& config);

/// Segment-level strategies (all paper algorithms + coordinated baselines)
/// under the base model.
RunStats run_trials(const Strategy& strategy, int k, std::int64_t distance,
                    const Placement& placement, const RunConfig& config);

/// Step-level strategies (random-walk family) under the base model.
/// config.time_cap must be finite.
RunStats run_step_trials(const StepStrategy& strategy, int k,
                         std::int64_t distance, const Placement& placement,
                         const RunConfig& config);

/// Segment-level strategies under a start schedule / crash model
/// (experiment E9); same reproducibility contract as run_trials.
AsyncRunStats run_async_trials(const Strategy& strategy, int k,
                               std::int64_t distance,
                               const Placement& placement,
                               const StartSchedule& schedule,
                               const CrashModel& crashes,
                               const RunConfig& config);

}  // namespace ants::sim
