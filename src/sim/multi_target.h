// Multiple treasures: the paper's foraging motivation, executable.
//
// The introduction motivates the whole problem with central place foraging:
// "a strong preference to locate nearby food sources before those that are
// further away". With a single treasure that preference is invisible — so
// this module runs the SAME non-communicating agents against a SET of
// target nodes (food patches) and reports which patch is discovered first
// and when each patch is discovered.
//
// Two modes:
//   * first-of-set (collect_all = false): the run ends at the first visit
//     of any target — the foraging race. O(#targets) per segment. This is
//     the unified executor's native semantics (sim/trial.h), so this mode
//     is a thin wrapper over run_trial — and the scenario layer's
//     `targets=` axis exposes the same race as an ordinary sweep.
//   * collect-all  (collect_all = true): agents run to the time cap and
//     the first-visit time of EVERY target is recorded — the discovery
//     schedule, from which nearest-first orderings are computed.
//
// Used by examples/patchy_foraging.cpp and tests.
#pragma once

#include <vector>

#include "rng/rng.h"
#include "sim/engine.h"
#include "sim/program.h"
#include "sim/types.h"

namespace ants::sim {

struct MultiSearchResult {
  Time first_time = kNeverTime;  ///< first visit of any target (or cap)
  bool found = false;            ///< some target visited within the cap
  int finder = -1;               ///< agent that made the first discovery
  int first_target = -1;         ///< index of the first-discovered target
  /// Per-target first-visit times (kNeverTime when not reached within the
  /// cap). In first-of-set mode only the winning entry is guaranteed to be
  /// meaningful; collect-all mode fills every entry exactly.
  std::vector<Time> target_times;
};

/// Collaborative search against a set of targets. In collect-all mode
/// config.time_cap must be finite (agents otherwise never stop).
MultiSearchResult run_search_multi(const Strategy& strategy, int k,
                                   const std::vector<grid::Point>& targets,
                                   const rng::Rng& trial_rng,
                                   const EngineConfig& config = {},
                                   bool collect_all = false);

}  // namespace ants::sim
