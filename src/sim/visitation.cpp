#include "sim/visitation.h"

#include <algorithm>
#include <stdexcept>

#include "grid/visited_set.h"
#include "sim/engine.h"
#include "sim/segment.h"
#include "util/math.h"

namespace ants::sim {

std::vector<std::int64_t> dyadic_radii(int max_exponent) {
  std::vector<std::int64_t> radii;
  radii.reserve(static_cast<std::size_t>(max_exponent) + 1);
  for (int e = 0; e <= max_exponent; ++e) radii.push_back(util::pow2(e));
  return radii;
}

VisitationReport record_visitation(const Strategy& strategy, AgentContext ctx,
                                   rng::Rng& rng, Time horizon,
                                   const std::vector<std::int64_t>& radii) {
  if (radii.empty()) throw std::invalid_argument("visitation: empty radii");
  if (!std::is_sorted(radii.begin(), radii.end()) ||
      std::adjacent_find(radii.begin(), radii.end()) != radii.end()) {
    throw std::invalid_argument("visitation: radii must strictly increase");
  }
  if (horizon < 0) throw std::invalid_argument("visitation: horizon");

  VisitationReport report;
  report.distinct.assign(radii.size(), 0);

  const auto annulus_of = [&radii](std::int64_t d) -> std::ptrdiff_t {
    const auto it = std::lower_bound(radii.begin(), radii.end(), d);
    return it == radii.end() ? -1 : it - radii.begin();
  };

  const auto program = strategy.make_program(ctx);
  grid::VisitedSet visited;
  grid::Point pos = grid::kOrigin;
  Time clock = 0;
  int consecutive_stalls = 0;

  while (clock < horizon) {
    const Segment seg = realize(program->next(rng), pos, grid::kOrigin);
    const Time budget = horizon - clock;
    for_each_visit(seg, budget, [&](grid::Point p, Time) {
      if (!visited.insert(p)) return;
      ++report.total_distinct;
      const auto annulus = annulus_of(grid::l1_norm(p));
      if (annulus >= 0) ++report.distinct[static_cast<std::size_t>(annulus)];
    });
    clock += std::min(budget, duration(seg));
    pos = end_position(seg);

    // A program emitting only zero-duration segments (e.g. GoTo to the
    // current node forever) would never advance the clock; bail out after a
    // long run of them rather than spin.
    if (duration(seg) == 0) {
      if (++consecutive_stalls > 1000) break;
    } else {
      consecutive_stalls = 0;
    }
  }

  report.steps = clock;
  return report;
}

}  // namespace ants::sim
