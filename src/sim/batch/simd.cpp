#include "sim/batch/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace ants::sim::batch {

namespace {

#if defined(__x86_64__) || defined(__i386__)
SimdLevel probe_cpu() noexcept {
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse2")) return SimdLevel::kSse2;
  return SimdLevel::kScalar;
}
#else
SimdLevel probe_cpu() noexcept { return SimdLevel::kScalar; }
#endif

/// ANTS_SIMD_LEVEL, or detected when unset/unrecognized.
SimdLevel env_level(SimdLevel detected) noexcept {
  const char* env = std::getenv("ANTS_SIMD_LEVEL");
  if (env == nullptr) return detected;
  if (std::strcmp(env, "scalar") == 0) return SimdLevel::kScalar;
  if (std::strcmp(env, "sse2") == 0) return SimdLevel::kSse2;
  if (std::strcmp(env, "avx2") == 0) return SimdLevel::kAvx2;
  return detected;
}

SimdLevel clamp_to_detected(SimdLevel level) noexcept {
  const SimdLevel detected = detected_simd_level();
  return static_cast<int>(level) > static_cast<int>(detected) ? detected
                                                              : level;
}

std::atomic<int>& active_storage() noexcept {
  // First use seeds the active level from the environment; forced overrides
  // replace it afterwards.
  static std::atomic<int> active{static_cast<int>(
      clamp_to_detected(env_level(detected_simd_level())))};
  return active;
}

}  // namespace

const char* simd_level_name(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
    default:
      return "scalar";
  }
}

SimdLevel detected_simd_level() noexcept {
  static const SimdLevel detected = probe_cpu();
  return detected;
}

SimdLevel active_simd_level() noexcept {
  return static_cast<SimdLevel>(
      active_storage().load(std::memory_order_relaxed));
}

void force_simd_level(SimdLevel level) noexcept {
  active_storage().store(static_cast<int>(clamp_to_detected(level)),
                         std::memory_order_relaxed);
}

}  // namespace ants::sim::batch
