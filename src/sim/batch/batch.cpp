#include "sim/batch/batch.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <optional>
#include <stdexcept>

#include "grid/spiral.h"
#include "grid/staircase_path.h"
#include "util/sat.h"

namespace ants::sim::batch {

namespace {

// Tiny-scan argmin, lowest index on ties (strict < keeps the first). For a
// handful of elements the SIMD kernels lose to this: the indirect call plus
// horizontal reduction costs more than the scan itself (measured ~19ns vs
// ~8ns at n=16 for the AVX2 kernel). The kernels take over for large scans,
// where the vector width wins.
template <typename T>
inline std::size_t small_argmin(const T* v, std::size_t n) noexcept {
  std::size_t bi = 0;
  T bv = v[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (v[i] < bv) {
      bv = v[i];
      bi = i;
    }
  }
  return bi;
}

/// Block size for the two-level min-clock advance. A flat argmin rescan is
/// O(k) per segment pop and dominates large-k trials; keeping per-block
/// minima cuts a pop to one block rescan + one block-minima scan + one
/// winning-block scan. Picking the lowest block achieving the global min,
/// then the lowest index inside it, reproduces the flat lowest-index argmin
/// exactly, so pop order — and every result byte — is unchanged.
inline constexpr std::size_t kMinBlock = 8;

/// Flat scans up to this size skip the two-level structure entirely.
inline constexpr std::size_t kFlatAdvance = 16;

}  // namespace

BatchRunner::BatchRunner(const TrialStrategy& strategy, int k,
                         const EngineConfig& config)
    : strategy_(strategy),
      k_(k),
      config_(config),
      kernels_(&kernels_for(active_simd_level())) {
  const int set = (strategy.segment != nullptr ? 1 : 0) +
                  (strategy.step != nullptr ? 1 : 0) +
                  (strategy.plane != nullptr ? 1 : 0);
  if (set == 0) throw std::invalid_argument("BatchRunner: no strategy given");
  if (set > 1) {
    throw std::invalid_argument("BatchRunner: ambiguous strategy family");
  }
  if (k < 1) throw std::invalid_argument("BatchRunner: need k >= 1");
}

TrialResult BatchRunner::run_one(const TrialEnvironment& env,
                                 const rng::Rng& trial_rng) {
  kernels_ = &kernels_for(active_simd_level());
  detail::validate_trial_args(strategy_, k_, env);
  if (strategy_.plane != nullptr) {
    if (env.has_dynamic_targets()) {
      // The one remaining delegation: plane windowed/collect cells. Their
      // dynamic race lives inside plane::run_plane_trial's heap loop, where
      // the quadratic sight tests dominate — rebuilding that loop here buys
      // little. Counted (batch_scalar_fallback metric) so the delegation is
      // observable instead of silent; run_one ≡ run_trial holds trivially.
      ++scalar_fallbacks_;
      return run_trial(strategy_, k_, env, trial_rng, config_);
    }
    return run_plane(env, trial_rng);
  }
  if (strategy_.step != nullptr) return run_step(env, trial_rng);
  return run_segment(env, trial_rng);
}

// ---------------------------------------------------------------------------
// Segment backend: the scalar executor's interleaved min-heap sweep (see
// sim/trial.cpp) with the heap replaced by an argmin kernel over the SoA
// clock array — removed agents park at kNeverTime, which never wins the scan
// while a live clock remains — and the Segment variant flattened into direct
// hit tests. A walk's targets are prefiltered by the endpoint bounding box
// (a staircase is monotone, so it never leaves it), and the StaircasePath is
// only constructed when some target survives the box.

TrialResult BatchRunner::run_segment(const TrialEnvironment& env,
                                     const rng::Rng& trial_rng) {
  const Strategy& strategy = *strategy_.segment;
  const int k = k_;
  const auto uk = static_cast<std::size_t>(k);

  if (env.has_target_windows() || env.collect_all) {
    // Same routing predicate as the scalar run_segment_trial: drift and
    // dwell were rejected by validate_trial_args for this family.
    return run_segment_dynamic(env, trial_rng);
  }

  const Time last_start = env.last_start();
  TrialResult result;
  result.last_start = static_cast<double>(last_start);
  if (detail::resolve_origin_target(env, k, config_.time_cap, &result)) {
    return result;
  }

  seg_programs_.clear();
  rngs_.clear();
  for (int a = 0; a < k; ++a) {
    seg_programs_.push_back(strategy.make_program(AgentContext{a, k}));
    rngs_.push_back(trial_rng.child(static_cast<std::uint64_t>(a)));
  }
  clock_.assign(uk, kNeverTime);
  elapsed_.assign(uk, 0);
  pos_x_.assign(uk, 0);
  pos_y_.assign(uk, 0);
  seg_count_.assign(uk, 0);
  queued_.assign(uk, 0);
  std::size_t n_queued = 0;
  for (int a = 0; a < k; ++a) {
    const auto ia = static_cast<std::size_t>(a);
    const Time life = env.lifetimes.empty() ? kNeverTime : env.lifetimes[ia];
    if (life <= 0) {
      ++result.crashed;  // dead on arrival: never acts
      continue;
    }
    clock_[ia] = env.starts.empty() ? Time{0} : env.starts[ia];
    queued_[ia] = 1;
    ++n_queued;
  }

  const std::size_t nt = env.targets.size();
  tgt_x_.resize(nt);
  tgt_y_.resize(nt);
  for (std::size_t ti = 0; ti < nt; ++ti) {
    tgt_x_[ti] = env.targets[ti].x;
    tgt_y_[ti] = env.targets[ti].y;
  }

  // Two-level min-clock advance (see kMinBlock). Block scans are at most
  // kMinBlock elements, so they use small_argmin; the block-minima scan uses
  // the SIMD kernel once it is wide enough to amortize the call.
  const bool two_level = uk > kFlatAdvance;
  const std::size_t n_min_blocks = (uk + kMinBlock - 1) / kMinBlock;
  const auto refresh_blockmin = [&](std::size_t b) {
    const std::size_t base = b * kMinBlock;
    const std::size_t len = std::min(kMinBlock, uk - base);
    blockmin_[b] = clock_[base + small_argmin(clock_.data() + base, len)];
  };
  if (two_level) {
    blockmin_.resize(n_min_blocks);
    for (std::size_t b = 0; b < n_min_blocks; ++b) refresh_blockmin(b);
  }
  const auto argmin_clock = [&]() -> std::size_t {
    if (!two_level) return small_argmin(clock_.data(), uk);
    const std::size_t b =
        n_min_blocks > 2 * kFlatAdvance
            ? kernels_->argmin_i64(blockmin_.data(), n_min_blocks)
            : small_argmin(blockmin_.data(), n_min_blocks);
    const std::size_t base = b * kMinBlock;
    const std::size_t len = std::min(kMinBlock, uk - base);
    return base + small_argmin(clock_.data() + base, len);
  };

  Time best = kNeverTime;
  int finder = -1;
  int first_target = -1;

  while (n_queued > 0) {
    std::size_t ia = argmin_clock();
    if (clock_[ia] == kNeverTime) {
      // Every queued clock is at kNeverTime (a hand-built environment with
      // such a start), so the argmin may have landed on a REMOVED agent's
      // parking value. The heap would pop the lowest-index queued agent.
      ia = 0;
      while (queued_[ia] == 0) ++ia;
    }
    const Time abs_clock = clock_[ia];
    const Time bound =
        std::min(config_.time_cap, best == kNeverTime ? best : best - 1);
    if (abs_clock > bound) break;

    const int a = static_cast<int>(ia);
    if (++seg_count_[ia] > config_.max_segments_per_agent) {
      throw std::runtime_error(
          "run_trial: agent exceeded segment budget without terminating");
    }
    ++result.segments;

    const Time start = env.starts.empty() ? Time{0} : env.starts[ia];
    const Time life = env.lifetimes.empty() ? kNeverTime : env.lifetimes[ia];
    const grid::Point pos{pos_x_[ia], pos_y_[ia]};

    const auto consider = [&](Time hit, std::size_t ti) {
      const Time when_active = util::sat_add(elapsed_[ia], hit);
      if (when_active > life) return;  // only counts while still alive
      const Time when_abs = util::sat_add(start, when_active);
      if (when_abs > config_.time_cap) return;
      // Earliest hit wins; ties to the lowest agent, then lowest target.
      if (when_abs < best || (when_abs == best && a < finder)) {
        best = when_abs;
        finder = a;
        first_target = static_cast<int>(ti);
      }
    };

    Time dur = 0;
    grid::Point end = pos;
    const auto scan_walk = [&](grid::Point from, grid::Point to) {
      const std::int64_t xlo = std::min(from.x, to.x);
      const std::int64_t xhi = std::max(from.x, to.x);
      const std::int64_t ylo = std::min(from.y, to.y);
      const std::int64_t yhi = std::max(from.y, to.y);
      std::optional<grid::StaircasePath> path;
      for (std::size_t ti = 0; ti < nt; ++ti) {
        const grid::Point tgt{tgt_x_[ti], tgt_y_[ti]};
        if (tgt.x < xlo || tgt.x > xhi || tgt.y < ylo || tgt.y > yhi) continue;
        if (!path) path.emplace(from, to);
        const auto hit = path->index_of(tgt);
        if (hit) consider(*hit, ti);
      }
      dur = grid::l1_dist(from, to);
      end = to;
    };

    const Op op = seg_programs_[ia]->next(rngs_[ia]);
    if (const auto* go = std::get_if<GoTo>(&op)) {
      scan_walk(pos, go->target);
    } else if (std::get_if<ReturnToSource>(&op) != nullptr) {
      scan_walk(pos, grid::kOrigin);
    } else if (const auto* sp = std::get_if<SpiralFor>(&op)) {
      for (std::size_t ti = 0; ti < nt; ++ti) {
        const std::int64_t idx = grid::spiral_index(
            grid::Point{tgt_x_[ti] - pos.x, tgt_y_[ti] - pos.y});
        if (idx > sp->duration) continue;
        consider(idx, ti);
      }
      dur = sp->duration;
      end = pos + grid::spiral_point(sp->duration);
    } else {
      const auto& fp = std::get<FollowPath>(op);
      for (std::size_t ti = 0; ti < nt; ++ti) {
        const grid::Point tgt{tgt_x_[ti], tgt_y_[ti]};
        std::optional<Time> hit;
        if (pos == tgt) {
          hit = 0;
        } else {
          for (std::size_t i = 0; i < fp.steps.size(); ++i) {
            if (fp.steps[i] == tgt) {
              hit = static_cast<Time>(i + 1);
              break;
            }
          }
        }
        if (hit) consider(*hit, ti);
      }
      dur = static_cast<Time>(fp.steps.size());
      end = fp.steps.empty() ? pos : fp.steps.back();
    }

    elapsed_[ia] = util::sat_add(elapsed_[ia], dur);
    pos_x_[ia] = end.x;
    pos_y_[ia] = end.y;
    if (elapsed_[ia] >= life) {
      ++result.crashed;  // halts mid-plan; position is wherever it died
      clock_[ia] = kNeverTime;
      queued_[ia] = 0;
      --n_queued;
    } else {
      clock_[ia] = util::sat_add(start, elapsed_[ia]);
    }
    if (two_level) refresh_blockmin(ia / kMinBlock);
  }

  if (best != kNeverTime) {
    result.found = true;
    result.time = static_cast<double>(best);
    result.finder = finder;
    result.first_target = first_target;
    result.from_last_start =
        static_cast<double>(best > last_start ? best - last_start : 0);
  } else {
    result.found = false;
    result.time = static_cast<double>(config_.time_cap);
    result.from_last_start = static_cast<double>(config_.time_cap);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Segment backend, dynamic variant: the scalar run_segment_trial_dynamic
// sweep (appear/vanish windows + collect-all; drift and dwell were rejected
// by validate_trial_args for this family) over the same SoA state and
// two-level argmin as the static path. The flattened op scans reproduce
// hit_offset_from exactly: walks and spirals visit each node at most once,
// so their unique hit counts iff its offset is not before the window's
// first admissible offset; explicit paths rescan from that offset.

TrialResult BatchRunner::run_segment_dynamic(const TrialEnvironment& env,
                                             const rng::Rng& trial_rng) {
  const Strategy& strategy = *strategy_.segment;
  const int k = k_;
  const auto uk = static_cast<std::size_t>(k);

  const Time last_start = env.last_start();
  const std::size_t nt = env.targets.size();
  const bool collect = env.collect_all;
  TrialResult result;
  result.last_start = static_cast<double>(last_start);
  if (collect) result.target_times.assign(nt, -1.0);
  if (collect && nt == 0) {
    // Zero spawned targets: vacuously all found at t = 0; nobody acts.
    result.found = true;
    result.time = 0;
    result.from_last_start = 0;
    for (int a = 0; a < k; ++a) {
      if (!env.lifetimes.empty() &&
          env.lifetimes[static_cast<std::size_t>(a)] <= 0) {
        ++result.crashed;
      }
    }
    return result;
  }

  seg_programs_.clear();
  rngs_.clear();
  for (int a = 0; a < k; ++a) {
    seg_programs_.push_back(strategy.make_program(AgentContext{a, k}));
    rngs_.push_back(trial_rng.child(static_cast<std::uint64_t>(a)));
  }
  clock_.assign(uk, kNeverTime);
  elapsed_.assign(uk, 0);
  pos_x_.assign(uk, 0);
  pos_y_.assign(uk, 0);
  seg_count_.assign(uk, 0);
  queued_.assign(uk, 0);
  std::size_t n_queued = 0;
  for (int a = 0; a < k; ++a) {
    const auto ia = static_cast<std::size_t>(a);
    const Time life = env.lifetimes.empty() ? kNeverTime : env.lifetimes[ia];
    if (life <= 0) {
      ++result.crashed;  // dead on arrival: never acts
      continue;
    }
    clock_[ia] = env.starts.empty() ? Time{0} : env.starts[ia];
    queued_[ia] = 1;
    ++n_queued;
  }

  tgt_x_.resize(nt);
  tgt_y_.resize(nt);
  app_.resize(nt);
  van_.resize(nt);
  for (std::size_t ti = 0; ti < nt; ++ti) {
    tgt_x_[ti] = env.targets[ti].x;
    tgt_y_[ti] = env.targets[ti].y;
    app_[ti] = detail::appear_of(env, ti);
    van_[ti] = detail::vanish_of(env, ti);
  }
  // Per-target earliest hit; in collect-first mode only slot semantics
  // differ (the race collapses to a single best across targets).
  best_t_.assign(nt, kNeverTime);
  finder_t_.assign(nt, -1);
  Time best_first = kNeverTime;  // collect-first race bound

  const bool two_level = uk > kFlatAdvance;
  const std::size_t n_min_blocks = (uk + kMinBlock - 1) / kMinBlock;
  const auto refresh_blockmin = [&](std::size_t b) {
    const std::size_t base = b * kMinBlock;
    const std::size_t len = std::min(kMinBlock, uk - base);
    blockmin_[b] = clock_[base + small_argmin(clock_.data() + base, len)];
  };
  if (two_level) {
    blockmin_.resize(n_min_blocks);
    for (std::size_t b = 0; b < n_min_blocks; ++b) refresh_blockmin(b);
  }
  const auto argmin_clock = [&]() -> std::size_t {
    if (!two_level) return small_argmin(clock_.data(), uk);
    const std::size_t b =
        n_min_blocks > 2 * kFlatAdvance
            ? kernels_->argmin_i64(blockmin_.data(), n_min_blocks)
            : small_argmin(blockmin_.data(), n_min_blocks);
    const std::size_t base = b * kMinBlock;
    const std::size_t len = std::min(kMinBlock, uk - base);
    return base + small_argmin(clock_.data() + base, len);
  };

  while (n_queued > 0) {
    std::size_t ia = argmin_clock();
    if (clock_[ia] == kNeverTime) {
      // Every queued clock is at kNeverTime; the heap would pop the
      // lowest-index queued agent (see run_segment).
      ia = 0;
      while (queued_[ia] == 0) ++ia;
    }
    const Time abs_clock = clock_[ia];
    // The bound below which a pop can still improve the outcome: in the
    // first-find race it is the classic best - 1; in collect-all it is the
    // loosest per-target bound (an unfound target keeps the cap open).
    Time bound = config_.time_cap;
    if (!collect) {
      bound = std::min(bound, best_first == kNeverTime ? best_first
                                                       : best_first - 1);
    } else {
      Time loosest = 0;
      for (std::size_t ti = 0; ti < nt; ++ti) {
        loosest = std::max(loosest, best_t_[ti] == kNeverTime
                                        ? config_.time_cap
                                        : best_t_[ti] - 1);
      }
      bound = std::min(bound, loosest);
    }
    if (abs_clock > bound) break;

    const int a = static_cast<int>(ia);
    if (++seg_count_[ia] > config_.max_segments_per_agent) {
      throw std::runtime_error(
          "run_trial: agent exceeded segment budget without terminating");
    }
    ++result.segments;

    const Time start = env.starts.empty() ? Time{0} : env.starts[ia];
    const Time life = env.lifetimes.empty() ? kNeverTime : env.lifetimes[ia];
    const grid::Point pos{pos_x_[ia], pos_y_[ia]};
    const Time base = util::sat_add(start, elapsed_[ia]);

    const auto consider = [&](Time hit, std::size_t ti) {
      const Time when_active = util::sat_add(elapsed_[ia], hit);
      if (when_active > life) return;  // only counts while still alive
      const Time when_abs = util::sat_add(start, when_active);
      if (when_abs > config_.time_cap) return;
      // The first in-window visit at or past vanish means every later
      // revisit is as well (the live window is one interval).
      if (static_cast<double>(when_abs) >= van_[ti]) return;
      if (when_abs < best_t_[ti] ||
          (when_abs == best_t_[ti] && a < finder_t_[ti])) {
        best_t_[ti] = when_abs;
        finder_t_[ti] = a;
      }
      if (when_abs < best_first) best_first = when_abs;
    };

    Time dur = 0;
    grid::Point end = pos;
    const auto scan_walk = [&](grid::Point from_pt, grid::Point to) {
      const std::int64_t xlo = std::min(from_pt.x, to.x);
      const std::int64_t xhi = std::max(from_pt.x, to.x);
      const std::int64_t ylo = std::min(from_pt.y, to.y);
      const std::int64_t yhi = std::max(from_pt.y, to.y);
      std::optional<grid::StaircasePath> path;
      for (std::size_t ti = 0; ti < nt; ++ti) {
        const grid::Point tgt{tgt_x_[ti], tgt_y_[ti]};
        if (tgt.x < xlo || tgt.x > xhi || tgt.y < ylo || tgt.y > yhi) continue;
        if (!path) path.emplace(from_pt, to);
        const auto hit = path->index_of(tgt);
        if (!hit) continue;
        if (*hit < detail::window_from_offset(app_[ti], base)) continue;
        consider(*hit, ti);
      }
      dur = grid::l1_dist(from_pt, to);
      end = to;
    };

    const Op op = seg_programs_[ia]->next(rngs_[ia]);
    if (const auto* go = std::get_if<GoTo>(&op)) {
      scan_walk(pos, go->target);
    } else if (std::get_if<ReturnToSource>(&op) != nullptr) {
      scan_walk(pos, grid::kOrigin);
    } else if (const auto* sp = std::get_if<SpiralFor>(&op)) {
      for (std::size_t ti = 0; ti < nt; ++ti) {
        const std::int64_t idx = grid::spiral_index(
            grid::Point{tgt_x_[ti] - pos.x, tgt_y_[ti] - pos.y});
        if (idx > sp->duration) continue;
        if (idx < detail::window_from_offset(app_[ti], base)) continue;
        consider(idx, ti);
      }
      dur = sp->duration;
      end = pos + grid::spiral_point(sp->duration);
    } else {
      const auto& fp = std::get<FollowPath>(op);
      for (std::size_t ti = 0; ti < nt; ++ti) {
        const grid::Point tgt{tgt_x_[ti], tgt_y_[ti]};
        const Time from = detail::window_from_offset(app_[ti], base);
        std::optional<Time> hit;
        if (from <= 0 && pos == tgt) {
          hit = 0;
        } else {
          // Paths may revisit: first match at offset >= from (offset i + 1
          // is steps[i]; offset 0 is the start, already < from when > 0).
          for (std::size_t i =
                   from <= 0 ? 0 : static_cast<std::size_t>(from - 1);
               i < fp.steps.size(); ++i) {
            if (fp.steps[i] == tgt) {
              hit = static_cast<Time>(i + 1);
              break;
            }
          }
        }
        if (hit) consider(*hit, ti);
      }
      dur = static_cast<Time>(fp.steps.size());
      end = fp.steps.empty() ? pos : fp.steps.back();
    }

    elapsed_[ia] = util::sat_add(elapsed_[ia], dur);
    pos_x_[ia] = end.x;
    pos_y_[ia] = end.y;
    if (elapsed_[ia] >= life) {
      ++result.crashed;  // halts mid-plan; position is wherever it died
      clock_[ia] = kNeverTime;
      queued_[ia] = 0;
      --n_queued;
    } else {
      clock_[ia] = util::sat_add(start, elapsed_[ia]);
    }
    if (two_level) refresh_blockmin(ia / kMinBlock);
  }

  // Earliest capture (ties: lowest agent, then lowest target) fills
  // finder/first_target in both modes.
  std::size_t n_found = 0;
  Time t_all = 0;
  Time first_time = kNeverTime;
  for (std::size_t ti = 0; ti < nt; ++ti) {
    if (best_t_[ti] == kNeverTime) continue;
    ++n_found;
    t_all = std::max(t_all, best_t_[ti]);
    if (collect) result.target_times[ti] = static_cast<double>(best_t_[ti]);
    if (best_t_[ti] < first_time ||
        (best_t_[ti] == first_time && finder_t_[ti] < result.finder)) {
      first_time = best_t_[ti];
      result.finder = finder_t_[ti];
      result.first_target = static_cast<int>(ti);
    }
  }
  const bool all_found = collect ? n_found == nt : n_found > 0;
  if (all_found && (collect || first_time != kNeverTime)) {
    result.found = true;
    result.time = static_cast<double>(collect ? t_all : first_time);
    const Time done = collect ? t_all : first_time;
    result.from_last_start =
        static_cast<double>(done > last_start ? done - last_start : 0);
  } else {
    result.found = false;
    result.time = static_cast<double>(config_.time_cap);
    result.from_last_start = static_cast<double>(config_.time_cap);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Lock-step backend: tick-for-tick the scalar loop, with the per-tick
// occupancy check (first target equal to the agent's new position) routed
// through the find_point kernel — an in-order scan either way.

TrialResult BatchRunner::run_step(const TrialEnvironment& env,
                                  const rng::Rng& trial_rng) {
  const StepStrategy& strategy = *strategy_.step;
  const int k = k_;
  const auto uk = static_cast<std::size_t>(k);

  if (config_.time_cap == kNeverTime) {
    throw std::invalid_argument(
        "run_trial: step strategies require a finite time_cap");
  }
  if (env.has_dynamic_targets()) return run_step_dynamic(env, trial_rng);

  const Time last_start = env.last_start();
  TrialResult result;
  result.last_start = static_cast<double>(last_start);
  if (detail::resolve_origin_target(env, k, config_.time_cap, &result)) {
    return result;
  }

  const auto start_of = [&](std::size_t ia) {
    return env.starts.empty() ? Time{0} : env.starts[ia];
  };
  const auto lifetime_of = [&](std::size_t ia) {
    return env.lifetimes.empty() ? kNeverTime : env.lifetimes[ia];
  };

  step_programs_.clear();
  rngs_.clear();
  pos_x_.assign(uk, 0);
  pos_y_.assign(uk, 0);
  crashed_.assign(uk, 0);
  for (int a = 0; a < k; ++a) {
    const auto ia = static_cast<std::size_t>(a);
    step_programs_.push_back(strategy.make_program(AgentContext{a, k}));
    rngs_.push_back(trial_rng.child(static_cast<std::uint64_t>(a)));
    if (lifetime_of(ia) <= 0) {
      crashed_[ia] = 1;  // dead on arrival
      ++result.crashed;
    }
  }

  const std::size_t nt = env.targets.size();
  tgt_x_.resize(nt);
  tgt_y_.resize(nt);
  for (std::size_t ti = 0; ti < nt; ++ti) {
    tgt_x_[ti] = env.targets[ti].x;
    tgt_y_[ti] = env.targets[ti].y;
  }

  for (Time t = 1; t <= config_.time_cap; ++t) {
    for (int a = 0; a < k; ++a) {
      const auto ia = static_cast<std::size_t>(a);
      if (crashed_[ia]) continue;
      if (t <= start_of(ia)) continue;  // not yet started: waits at source
      const Time active = t - start_of(ia);
      if (active > lifetime_of(ia)) {
        crashed_[ia] = 1;  // halts in place
        ++result.crashed;
        continue;
      }
      const grid::Point next =
          step_programs_[ia]->step(rngs_[ia], grid::Point{pos_x_[ia],
                                                          pos_y_[ia]});
      assert(grid::l1_dist(next, grid::Point{pos_x_[ia], pos_y_[ia]}) <= 1);
      pos_x_[ia] = next.x;
      pos_y_[ia] = next.y;
      ++result.segments;
      // For a handful of targets the in-order scalar scan beats the kernel
      // call; same first-match-in-order result either way.
      std::size_t ti = kNpos;
      if (nt < 8) {
        for (std::size_t i = 0; i < nt; ++i) {
          if (tgt_x_[i] == next.x && tgt_y_[i] == next.y) {
            ti = i;
            break;
          }
        }
      } else {
        ti = kernels_->find_point(tgt_x_.data(), tgt_y_.data(), nt, next.x,
                                  next.y);
      }
      if (ti != kNpos) {
        result.found = true;
        result.time = static_cast<double>(t);
        result.finder = a;
        result.first_target = static_cast<int>(ti);
        result.from_last_start =
            static_cast<double>(t > last_start ? t - last_start : 0);
        return result;
      }
    }
  }

  result.found = false;
  result.time = static_cast<double>(config_.time_cap);
  result.from_last_start = static_cast<double>(config_.time_cap);
  return result;
}

// ---------------------------------------------------------------------------
// Lock-step backend, dynamic variant: tick-for-tick the scalar
// run_step_trial_dynamic. The per-target liveness test, drifted position,
// and occupancy gate depend only on the tick — not the agent — so they are
// evaluated ONCE per tick into the target SoA (window_gate /
// drift_positions kernels) where the scalar loop recomputes them per
// (agent, target) pair; each agent's post-move test then becomes one gated
// occupancy scan (find_point_gated) or one dwell-contact advance
// (dwell_advance) over contiguous arrays. Identical values either way —
// this hoist plus the kernel scans are the batch path's speedup.

TrialResult BatchRunner::run_step_dynamic(const TrialEnvironment& env,
                                          const rng::Rng& trial_rng) {
  const StepStrategy& strategy = *strategy_.step;
  const int k = k_;
  const auto uk = static_cast<std::size_t>(k);

  const Time last_start = env.last_start();
  const std::size_t nt = env.targets.size();
  const bool collect = env.collect_all;
  const bool windows = env.has_target_windows();
  const bool drift = env.has_target_drift();
  const Time dwell = env.capture_dwell;
  TrialResult result;
  result.last_start = static_cast<double>(last_start);
  if (collect) result.target_times.assign(nt, -1.0);

  const auto start_of = [&](std::size_t ia) {
    return env.starts.empty() ? Time{0} : env.starts[ia];
  };
  const auto lifetime_of = [&](std::size_t ia) {
    return env.lifetimes.empty() ? kNeverTime : env.lifetimes[ia];
  };

  step_programs_.clear();
  rngs_.clear();
  pos_x_.assign(uk, 0);
  pos_y_.assign(uk, 0);
  crashed_.assign(uk, 0);
  for (int a = 0; a < k; ++a) {
    const auto ia = static_cast<std::size_t>(a);
    step_programs_.push_back(strategy.make_program(AgentContext{a, k}));
    rngs_.push_back(trial_rng.child(static_cast<std::uint64_t>(a)));
    if (lifetime_of(ia) <= 0) {
      crashed_[ia] = 1;  // dead on arrival
      ++result.crashed;
    }
  }

  if (collect && nt == 0) {
    // Zero spawned targets: vacuously all found at t = 0; nobody acts.
    result.found = true;
    result.time = 0;
    result.from_last_start = 0;
    return result;
  }

  tgt_x_.resize(nt);
  tgt_y_.resize(nt);
  for (std::size_t ti = 0; ti < nt; ++ti) {
    tgt_x_[ti] = env.targets[ti].x;
    tgt_y_[ti] = env.targets[ti].y;
  }
  if (windows) {
    app_.resize(nt);
    van_.resize(nt);
    for (std::size_t ti = 0; ti < nt; ++ti) {
      app_[ti] = detail::appear_of(env, ti);
      van_[ti] = detail::vanish_of(env, ti);
    }
  }
  if (drift) {
    drift_vx_.resize(nt);
    drift_vy_.resize(nt);
    cur_tx_.resize(nt);
    cur_ty_.resize(nt);
    for (std::size_t ti = 0; ti < nt; ++ti) {
      drift_vx_[ti] = env.target_drift[ti].vx;
      drift_vy_[ti] = env.target_drift[ti].vy;
    }
  }
  const std::int64_t* tx = drift ? cur_tx_.data() : tgt_x_.data();
  const std::int64_t* ty = drift ? cur_ty_.data() : tgt_y_.data();
  alive_.assign(nt, 1);
  found_.assign(nt, 0);
  found_at_.assign(nt, 0);
  if (dwell > 0) {
    held_.assign(uk * nt, 0);
    confirm_.resize(nt);
  } else {
    gate_.resize(nt);
  }

  std::size_t n_found = 0;
  int first_finder = -1;
  int first_ti = -1;

  // nt == 0 (zero-spawn windowed process, first-of-set mode) still sweeps
  // to the cap so crash/segment accounting matches the segment and plane
  // backends, which run their heaps out naturally.
  for (Time t = 1; t <= config_.time_cap && (nt == 0 || n_found < nt); ++t) {
    const double td = static_cast<double>(t);
    if (drift) {
      if (nt >= 8) {
        kernels_->drift_positions(tgt_x_.data(), tgt_y_.data(),
                                  drift_vx_.data(), drift_vy_.data(), nt, td,
                                  cur_tx_.data(), cur_ty_.data());
      } else {
        for (std::size_t ti = 0; ti < nt; ++ti) {
          cur_tx_[ti] = tgt_x_[ti] + std::llround(drift_vx_[ti] * td);
          cur_ty_[ti] = tgt_y_[ti] + std::llround(drift_vy_[ti] * td);
        }
      }
    }
    if (windows) {
      if (nt >= 8) {
        kernels_->window_gate(app_.data(), van_.data(), nt, td,
                              alive_.data());
      } else {
        for (std::size_t ti = 0; ti < nt; ++ti) {
          alive_[ti] = (app_[ti] <= td && td < van_[ti]) ? 1 : 0;
        }
      }
    }
    if (dwell == 0) {
      for (std::size_t ti = 0; ti < nt; ++ti) {
        gate_[ti] = static_cast<char>(alive_[ti] != 0 && found_[ti] == 0);
      }
    }

    for (int a = 0; a < k; ++a) {
      const auto ia = static_cast<std::size_t>(a);
      if (crashed_[ia]) continue;
      if (t <= start_of(ia)) continue;  // not yet started: waits at source
      const Time active = t - start_of(ia);
      if (active > lifetime_of(ia)) {
        crashed_[ia] = 1;  // halts in place
        ++result.crashed;
        continue;
      }
      const grid::Point next = step_programs_[ia]->step(
          rngs_[ia], grid::Point{pos_x_[ia], pos_y_[ia]});
      assert(grid::l1_dist(next, grid::Point{pos_x_[ia], pos_y_[ia]}) <= 1);
      pos_x_[ia] = next.x;
      pos_y_[ia] = next.y;
      ++result.segments;

      if (dwell > 0) {
        std::int64_t* held = held_.data() + ia * nt;
        std::size_t nc;
        // For a handful of targets the inline scan beats the kernel call
        // (same rationale and threshold as the static find_point path).
        if (nt >= 8) {
          nc = kernels_->dwell_advance(tx, ty, alive_.data(), found_.data(),
                                       nt, next.x, next.y, held, dwell + 1,
                                       confirm_.data());
        } else {
          nc = 0;
          for (std::size_t ti = 0; ti < nt; ++ti) {
            const std::int64_t dx = tx[ti] - next.x;
            const std::int64_t dy = ty[ti] - next.y;
            const std::int64_t l1 = (dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy);
            const bool in_disc = alive_[ti] != 0 && l1 <= 1;
            held[ti] = in_disc ? held[ti] + 1 : 0;
            if (found_[ti] == 0 && held[ti] >= dwell + 1) {
              confirm_[nc++] = static_cast<std::uint32_t>(ti);
            }
          }
        }
        for (std::size_t ci = 0; ci < nc; ++ci) {
          const std::size_t ti = confirm_[ci];
          found_[ti] = 1;
          found_at_[ti] = t;
          ++n_found;
          if (first_ti < 0) {
            first_finder = a;
            first_ti = static_cast<int>(ti);
          }
          if (collect) {
            result.target_times[ti] = static_cast<double>(t);
            continue;
          }
          result.found = true;
          result.time = static_cast<double>(t);
          result.finder = a;
          result.first_target = static_cast<int>(ti);
          result.from_last_start =
              static_cast<double>(t > last_start ? t - last_start : 0);
          return result;
        }
      } else {
        // One agent step can capture several co-located targets in collect
        // mode (the scalar loop keeps scanning), so the gated scan resumes
        // past each capture.
        std::size_t lo = 0;
        for (;;) {
          std::size_t ti = kNpos;
          if (nt - lo < 8) {
            for (std::size_t i = lo; i < nt; ++i) {
              if (gate_[i] != 0 && tx[i] == next.x && ty[i] == next.y) {
                ti = i;
                break;
              }
            }
          } else {
            const std::size_t rel = kernels_->find_point_gated(
                tx + lo, ty + lo, gate_.data() + lo, nt - lo, next.x, next.y);
            if (rel != kNpos) ti = lo + rel;
          }
          if (ti == kNpos) break;
          found_[ti] = 1;
          gate_[ti] = 0;
          found_at_[ti] = t;
          ++n_found;
          if (first_ti < 0) {
            first_finder = a;
            first_ti = static_cast<int>(ti);
          }
          if (!collect) {
            result.found = true;
            result.time = static_cast<double>(t);
            result.finder = a;
            result.first_target = static_cast<int>(ti);
            result.from_last_start =
                static_cast<double>(t > last_start ? t - last_start : 0);
            return result;
          }
          result.target_times[ti] = static_cast<double>(t);
          lo = ti + 1;
        }
      }
    }
  }

  result.finder = first_finder;
  result.first_target = first_ti;
  if (collect && n_found == nt) {
    Time t_all = 0;
    for (std::size_t ti = 0; ti < nt; ++ti) {
      t_all = std::max(t_all, found_at_[ti]);
    }
    result.found = true;
    result.time = static_cast<double>(t_all);
    result.from_last_start =
        static_cast<double>(t_all > last_start ? t_all - last_start : 0);
  } else {
    result.found = false;
    result.time = static_cast<double>(config_.time_cap);
    result.from_last_start = static_cast<double>(config_.time_cap);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Plane backend: the continuous min-clock sweep (plane/engine.cpp) with the
// clock heap replaced by an argmin_f64 scan (removed agents park at
// kPlaneNever, and the loop breaks on clock >= bound, so the parking value
// terminates it exactly when the empty heap would), line sight tests
// prefiltered by the line_candidates kernel (every candidate re-checked by
// the scalar quadratic), and the per-move spiral Newton solve memoized.

double BatchRunner::spiral_theta(double a, double s) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(s));
  std::memcpy(&bits, &s, sizeof(bits));
  const std::size_t slot =
      static_cast<std::size_t>((bits * 0x9E3779B97F4A7C15ULL) >> 58);
  ThetaMemoEntry& e = theta_memo_[slot];
  if (e.valid && e.s_bits == bits) return e.theta;
  e.s_bits = bits;
  e.theta = plane::spiral_theta_for_arc(a, s);
  e.valid = true;
  return e.theta;
}

TrialResult BatchRunner::run_plane(const TrialEnvironment& env,
                                   const rng::Rng& trial_rng) {
  const plane::PlaneStrategy& strategy = *strategy_.plane;
  const int k = k_;
  const auto uk = static_cast<std::size_t>(k);

  // Environment/config adaptation, exactly as the scalar backend bridge.
  plane_env_.targets = env.plane_targets;
  plane_env_.starts.assign(env.starts.begin(), env.starts.end());
  plane_env_.lifetimes.clear();
  plane_env_.lifetimes.reserve(env.lifetimes.size());
  for (const Time life : env.lifetimes) {
    plane_env_.lifetimes.push_back(life == kNeverTime
                                       ? plane::kPlaneNever
                                       : static_cast<plane::Time>(life));
  }

  plane::PlaneEngineConfig pconfig;
  pconfig.sight_radius = config_.sight_radius;
  pconfig.spiral_pitch = config_.spiral_pitch;
  pconfig.time_cap = config_.time_cap == kNeverTime
                         ? plane::kPlaneNever
                         : static_cast<plane::Time>(config_.time_cap);
  pconfig.max_segments_per_agent = config_.max_segments_per_agent;

  plane::detail::validate_plane_trial_args(k, plane_env_, pconfig);
  const double eps = pconfig.sight_radius;
  const double a_coef = pconfig.spiral_pitch / plane::kTwoPi;

  plane::PlaneTrialResult presult;
  presult.last_start = plane_env_.last_start();
  const bool resolved = plane::detail::resolve_home_target(
      plane_env_, k, eps, pconfig.time_cap, &presult);
  if (!resolved) {
    const auto start_of = [&](std::size_t ia) {
      return plane_env_.starts.empty() ? plane::Time{0}
                                       : plane_env_.starts[ia];
    };
    const auto lifetime_of = [&](std::size_t ia) {
      return plane_env_.lifetimes.empty() ? plane::kPlaneNever
                                          : plane_env_.lifetimes[ia];
    };

    plane_programs_.clear();
    rngs_.clear();
    for (int a = 0; a < k; ++a) {
      plane_programs_.push_back(strategy.make_program(a, k));
      rngs_.push_back(trial_rng.child(static_cast<std::uint64_t>(a)));
    }
    pclock_.assign(uk, plane::kPlaneNever);
    pelapsed_.assign(uk, 0.0);
    ppos_x_.assign(uk, 0.0);
    ppos_y_.assign(uk, 0.0);
    seg_count_.assign(uk, 0);
    for (int a = 0; a < k; ++a) {
      const auto ia = static_cast<std::size_t>(a);
      if (lifetime_of(ia) <= 0) {
        ++presult.crashed;  // dead on arrival: never acts
        continue;
      }
      pclock_[ia] = start_of(ia);
    }

    const std::size_t nt = plane_env_.targets.size();
    ptgt_x_.resize(nt);
    ptgt_y_.resize(nt);
    for (std::size_t ti = 0; ti < nt; ++ti) {
      ptgt_x_[ti] = plane_env_.targets[ti].x;
      ptgt_y_[ti] = plane_env_.targets[ti].y;
    }
    cand_.resize(nt);

    // Two-level min-clock advance, as in run_segment: identical pop order to
    // the flat argmin_f64 rescan at O(k/8 + 16) per pop instead of O(k).
    const bool two_level = uk > kFlatAdvance;
    const std::size_t n_min_blocks = (uk + kMinBlock - 1) / kMinBlock;
    const auto refresh_blockmin = [&](std::size_t b) {
      const std::size_t base = b * kMinBlock;
      const std::size_t len = std::min(kMinBlock, uk - base);
      pblockmin_[b] = pclock_[base + small_argmin(pclock_.data() + base, len)];
    };
    if (two_level) {
      pblockmin_.resize(n_min_blocks);
      for (std::size_t b = 0; b < n_min_blocks; ++b) refresh_blockmin(b);
    }
    const auto argmin_clock = [&]() -> std::size_t {
      if (!two_level) return small_argmin(pclock_.data(), uk);
      const std::size_t b =
          n_min_blocks > 2 * kFlatAdvance
              ? kernels_->argmin_f64(pblockmin_.data(), n_min_blocks)
              : small_argmin(pblockmin_.data(), n_min_blocks);
      const std::size_t base = b * kMinBlock;
      const std::size_t len = std::min(kMinBlock, uk - base);
      return base + small_argmin(pclock_.data() + base, len);
    };

    plane::Time best = plane::kPlaneNever;
    int finder = -1;
    int first_target = -1;

    for (;;) {
      const std::size_t ia = argmin_clock();
      const plane::Time abs_clock = pclock_[ia];
      // All other clocks are >= this one; once it reaches the bound, no
      // agent can improve the outcome. When every agent has been removed
      // the argmin is the kPlaneNever parking value, which also trips this.
      const plane::Time bound = std::min(pconfig.time_cap, best);
      if (abs_clock >= bound) break;

      const int a = static_cast<int>(ia);
      if (++seg_count_[ia] > pconfig.max_segments_per_agent) {
        throw std::runtime_error(
            "plane engine: agent exceeded segment budget without "
            "terminating");
      }
      ++presult.segments;

      const plane::Time start = start_of(ia);
      const plane::Time life = lifetime_of(ia);
      const plane::Vec2 pos{ppos_x_[ia], ppos_y_[ia]};

      const auto consider = [&](plane::Time hit, std::size_t ti) {
        const plane::Time when_active = pelapsed_[ia] + hit;
        if (when_active > life) return;  // only counts while still alive
        const plane::Time when_abs = start + when_active;
        if (when_abs > pconfig.time_cap) return;
        if (when_abs < best || (when_abs == best && a < finder)) {
          best = when_abs;
          finder = a;
          first_target = static_cast<int>(ti);
        }
      };

      const plane::PlaneOp op = plane_programs_[ia]->next(rngs_[ia]);
      plane::Time move_time = 0;
      plane::Vec2 end = pos;
      bool is_line = false;
      plane::LineMove line{pos, pos};
      plane::SpiralMove spiral{pos, pconfig.spiral_pitch, 0};

      if (const auto* sw = std::get_if<plane::SpiralSweep>(&op)) {
        spiral.duration = sw->duration;
        const double theta_end = spiral_theta(a_coef, spiral.duration);
        for (std::size_t ti = 0; ti < nt; ++ti) {
          const auto hit = plane::spiral_first_sighting_at(
              spiral, plane_env_.targets[ti], eps, theta_end);
          if (hit) consider(*hit, ti);
        }
        move_time = spiral.duration;
        end = plane::spiral_point_at(spiral.center, a_coef, theta_end);
      } else {
        is_line = true;
        if (const auto* go = std::get_if<plane::GoToPoint>(&op)) {
          line.to = go->target;
        } else {
          line.to = plane::kPlaneOrigin;  // ReturnHome
        }
        const plane::Vec2 d = line.to - line.from;
        const double len = d.norm();
        if (len == 0.0 || nt < 4) {
          // Degenerate move (no direction to prefilter along) or too few
          // targets for the prefilter kernel to pay for its call: the
          // scalar test covers every target directly.
          for (std::size_t ti = 0; ti < nt; ++ti) {
            const auto hit =
                plane::line_first_sighting(line, plane_env_.targets[ti], eps);
            if (hit) consider(*hit, ti);
          }
        } else {
          const double inv = 1.0 / len;
          const std::size_t nc = kernels_->line_candidates(
              ptgt_x_.data(), ptgt_y_.data(), nt, line.from.x, line.from.y,
              d.x * inv, d.y * inv, eps, cand_.data());
          for (std::size_t ci = 0; ci < nc; ++ci) {
            const std::size_t ti = cand_[ci];
            const auto hit =
                plane::line_first_sighting(line, plane_env_.targets[ti], eps);
            if (hit) consider(*hit, ti);
          }
        }
        move_time = len;
        end = line.to;
      }

      if (pelapsed_[ia] + move_time >= life) {
        // Fail-stop: truncate the trajectory at the remaining budget (the
        // rare path — build the Move variant and reuse the scalar clamp).
        const plane::Move move =
            is_line ? plane::Move{line} : plane::Move{spiral};
        const plane::Vec2 died_at =
            plane::move_position_at(move, life - pelapsed_[ia]);
        ppos_x_[ia] = died_at.x;
        ppos_y_[ia] = died_at.y;
        pelapsed_[ia] = life;
        ++presult.crashed;
        pclock_[ia] = plane::kPlaneNever;
      } else {
        pelapsed_[ia] += move_time;
        ppos_x_[ia] = end.x;
        ppos_y_[ia] = end.y;
        pclock_[ia] = start + pelapsed_[ia];
      }
      if (two_level) refresh_blockmin(ia / kMinBlock);
    }

    if (best != plane::kPlaneNever) {
      presult.found = true;
      presult.time = best;
      presult.finder = finder;
      presult.first_target = first_target;
      presult.from_last_start =
          best > presult.last_start ? best - presult.last_start : 0;
    } else {
      presult.found = false;
      presult.time = pconfig.time_cap;
      presult.finder = -1;
      presult.from_last_start = pconfig.time_cap;
    }
  }

  TrialResult result;
  result.time = presult.time;
  result.found = presult.found;
  result.finder = presult.finder;
  result.first_target = presult.first_target;
  result.segments = presult.segments;
  result.last_start = presult.last_start;
  result.from_last_start = presult.from_last_start;
  result.crashed = presult.crashed;
  return result;
}

}  // namespace ants::sim::batch
