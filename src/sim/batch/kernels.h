// The vectorizable primitives of the batch trial executor, as a function
// table selected by SIMD level (simd.h).
//
// Each kernel is a pure array operation over the batch runner's
// struct-of-arrays state, with scalar/SSE2/AVX2 implementations that are
// RESULT-identical by construction:
//
//   * argmin_* return the lowest index attaining the minimum — the
//     vector variants reduce the minimum value first, then locate its first
//     occurrence, so the heap's lowest-index tie-break is preserved bit for
//     bit.
//   * find_point returns the first index whose (x, y) pair equals the
//     probe — exactly the lock-step backend's in-order occupancy scan.
//   * line_candidates evaluates, per target, the same IEEE expression tree
//     the scalar sight test (plane::line_first_sighting) starts with — no
//     FMA contraction, same operation order — so the candidate set equals
//     the set the scalar loop would shortlist; every candidate is then
//     re-checked by the scalar test, making the prefilter byte-safe.
//
// Kernels never allocate and have no internal state; the dispatch level is
// chosen per batch by the runner via kernels_for(active_simd_level()).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/batch/simd.h"

namespace ants::sim::batch {

inline constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

struct Kernels {
  SimdLevel level = SimdLevel::kScalar;

  /// Index of the minimum of v[0..n), lowest index on ties. n >= 1.
  std::size_t (*argmin_i64)(const std::int64_t* v, std::size_t n);
  std::size_t (*argmin_f64)(const double* v, std::size_t n);

  /// First i with xs[i] == x && ys[i] == y, else kNpos.
  std::size_t (*find_point)(const std::int64_t* xs, const std::int64_t* ys,
                            std::size_t n, std::int64_t x, std::int64_t y);

  /// Sight-disc prefilter for a unit-direction line move from (fx, fy):
  /// writes the indices (ascending) of every target that could be sighted —
  /// start inside the disc (|w|^2 <= eps^2) or nonnegative quadratic
  /// discriminant ((w.u)^2 - (|w|^2 - eps^2) >= 0) — and returns the count.
  /// `out` must have room for n entries. Callers re-check candidates with
  /// plane::line_first_sighting (range test included there).
  std::size_t (*line_candidates)(const double* tx, const double* ty,
                                 std::size_t n, double fx, double fy,
                                 double ux, double uy, double eps,
                                 std::uint32_t* out);
};

/// The kernel table for `level` (clamping is the caller's concern; passing
/// an unsupported level returns that level's table regardless — only tests
/// that bypass active_simd_level() can do this, on hardware they control).
const Kernels& kernels_for(SimdLevel level) noexcept;

}  // namespace ants::sim::batch
