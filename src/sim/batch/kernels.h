// The vectorizable primitives of the batch trial executor, as a function
// table selected by SIMD level (simd.h).
//
// Each kernel is a pure array operation over the batch runner's
// struct-of-arrays state, with scalar/SSE2/AVX2 implementations that are
// RESULT-identical by construction:
//
//   * argmin_* return the lowest index attaining the minimum — the
//     vector variants reduce the minimum value first, then locate its first
//     occurrence, so the heap's lowest-index tie-break is preserved bit for
//     bit.
//   * find_point returns the first index whose (x, y) pair equals the
//     probe — exactly the lock-step backend's in-order occupancy scan.
//   * line_candidates evaluates, per target, the same IEEE expression tree
//     the scalar sight test (plane::line_first_sighting) starts with — no
//     FMA contraction, same operation order — so the candidate set equals
//     the set the scalar loop would shortlist; every candidate is then
//     re-checked by the scalar test, making the prefilter byte-safe.
//   * the dynamic-target kernels (window_gate, find_point_gated,
//     drift_positions, dwell_advance) compute exactly the per-target tests
//     of the scalar dynamic loops (sim/trial.cpp run_*_trial_dynamic):
//     drift_positions reproduces std::llround's half-away-from-zero
//     rounding bit for bit (trunc + exact fraction + ±1 adjust), and the
//     scan/advance kernels emit indices in ascending order so the scalar
//     lowest-target-index tie-break is preserved.
//
// Kernels never allocate and have no internal state; the dispatch level is
// chosen per batch by the runner via kernels_for(active_simd_level()).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/batch/simd.h"

namespace ants::sim::batch {

inline constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

struct Kernels {
  SimdLevel level = SimdLevel::kScalar;

  /// Index of the minimum of v[0..n), lowest index on ties. n >= 1.
  std::size_t (*argmin_i64)(const std::int64_t* v, std::size_t n);
  std::size_t (*argmin_f64)(const double* v, std::size_t n);

  /// First i with xs[i] == x && ys[i] == y, else kNpos.
  std::size_t (*find_point)(const std::int64_t* xs, const std::int64_t* ys,
                            std::size_t n, std::int64_t x, std::int64_t y);

  /// Sight-disc prefilter for a unit-direction line move from (fx, fy):
  /// writes the indices (ascending) of every target that could be sighted —
  /// start inside the disc (|w|^2 <= eps^2) or nonnegative quadratic
  /// discriminant ((w.u)^2 - (|w|^2 - eps^2) >= 0) — and returns the count.
  /// `out` must have room for n entries. Callers re-check candidates with
  /// plane::line_first_sighting (range test included there).
  std::size_t (*line_candidates)(const double* tx, const double* ty,
                                 std::size_t n, double fx, double fy,
                                 double ux, double uy, double eps,
                                 std::uint32_t* out);

  /// out[i] = 1 iff appear[i] <= t && t < vanish[i], else 0 — the scalar
  /// dynamic loops' per-target liveness test over the whole target block.
  void (*window_gate)(const double* appear, const double* vanish,
                      std::size_t n, double t, char* out);

  /// First i with gate[i] != 0 && xs[i] == x && ys[i] == y, else kNpos —
  /// find_point restricted to targets whose gate byte is set (alive and not
  /// yet found).
  std::size_t (*find_point_gated)(const std::int64_t* xs,
                                  const std::int64_t* ys, const char* gate,
                                  std::size_t n, std::int64_t x,
                                  std::int64_t y);

  /// ox[i] = bx[i] + llround(vx[i] * t) (likewise oy) — drifted-target
  /// positions at tick t. Vector variants match std::llround bit for bit.
  void (*drift_positions)(const std::int64_t* bx, const std::int64_t* by,
                          const double* vx, const double* vy, std::size_t n,
                          double t, std::int64_t* ox, std::int64_t* oy);

  /// Dwell-contact advance for one agent standing at (x, y): per target i,
  /// held[i] <- held[i] + 1 when alive[i] && |tx[i]-x| + |ty[i]-y| <= 1,
  /// else 0. Writes the indices (ascending) of every confirmable target
  /// (found[i] == 0 && held[i] >= need) to `out`, returns the count. `out`
  /// must have room for n entries. (held of already-found targets keeps
  /// advancing where the scalar loop freezes it — unobservable, since
  /// confirmation excludes them and nothing else reads held.)
  std::size_t (*dwell_advance)(const std::int64_t* tx, const std::int64_t* ty,
                               const char* alive, const char* found,
                               std::size_t n, std::int64_t x, std::int64_t y,
                               std::int64_t* held, std::int64_t need,
                               std::uint32_t* out);
};

/// The kernel table for `level` (clamping is the caller's concern; passing
/// an unsupported level returns that level's table regardless — only tests
/// that bypass active_simd_level() can do this, on hardware they control).
const Kernels& kernels_for(SimdLevel level) noexcept;

}  // namespace ants::sim::batch
