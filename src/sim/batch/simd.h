// Runtime SIMD dispatch for the batch trial kernels (sim/batch/).
//
// The batch executor's inner loops — min-clock argmin scans, lock-step
// occupancy checks, plane sight-disc prefilters — come in scalar, SSE2, and
// AVX2 variants (kernels.h). Which variant runs is decided once at runtime:
//
//   * detected_simd_level(): what this CPU supports (CPUID; scalar on
//     non-x86 builds).
//   * ANTS_SIMD_LEVEL=scalar|sse2|avx2: environment override, clamped to
//     the detected level — forcing avx2 on a non-AVX2 machine silently runs
//     the best available level, so CI can export the variable
//     unconditionally. Unrecognized values are ignored.
//   * force_simd_level(): programmatic override (same clamp) for tests that
//     compare dispatch paths in-process.
//
// Every level produces byte-identical trial results (test- and CI-enforced
// against the golden CSVs); dispatch is strictly an execution detail.
#pragma once

namespace ants::sim::batch {

enum class SimdLevel : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// "scalar" / "sse2" / "avx2".
const char* simd_level_name(SimdLevel level) noexcept;

/// Best level this CPU supports (computed once, then cached).
SimdLevel detected_simd_level() noexcept;

/// The level the batch kernels actually run at: detected, lowered by
/// ANTS_SIMD_LEVEL or force_simd_level if either asks for less.
SimdLevel active_simd_level() noexcept;

/// Overrides the active level for this process (clamped to detected).
/// Test hook; thread-safe but not synchronized with in-flight batches.
void force_simd_level(SimdLevel level) noexcept;

}  // namespace ants::sim::batch
