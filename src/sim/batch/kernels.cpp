#include "sim/batch/kernels.h"

#include <cmath>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define ANTS_BATCH_X86 1
#include <immintrin.h>
#endif

namespace ants::sim::batch {

namespace {

// --- scalar ----------------------------------------------------------------

std::size_t argmin_i64_scalar(const std::int64_t* v, std::size_t n) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (v[i] < v[best]) best = i;
  }
  return best;
}

std::size_t argmin_f64_scalar(const double* v, std::size_t n) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (v[i] < v[best]) best = i;
  }
  return best;
}

std::size_t find_point_scalar(const std::int64_t* xs, const std::int64_t* ys,
                              std::size_t n, std::int64_t x, std::int64_t y) {
  for (std::size_t i = 0; i < n; ++i) {
    if (xs[i] == x && ys[i] == y) return i;
  }
  return kNpos;
}

std::size_t line_candidates_scalar(const double* tx, const double* ty,
                                   std::size_t n, double fx, double fy,
                                   double ux, double uy, double eps,
                                   std::uint32_t* out) {
  // Mirrors the head of plane::line_first_sighting operation for operation
  // (w = from - target; |w|^2 vs eps^2; disc = (w.u)^2 - (|w|^2 - eps^2)),
  // so the pass set is the exact set the scalar test would shortlist.
  const double e2 = eps * eps;
  std::size_t m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double wx = fx - tx[i];
    const double wy = fy - ty[i];
    const double wn2 = wx * wx + wy * wy;
    const double b = wx * ux + wy * uy;
    const double disc = b * b - (wn2 - e2);
    if (wn2 <= e2 || disc >= 0.0) out[m++] = static_cast<std::uint32_t>(i);
  }
  return m;
}

void window_gate_scalar(const double* appear, const double* vanish,
                        std::size_t n, double t, char* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = (appear[i] <= t && t < vanish[i]) ? 1 : 0;
  }
}

std::size_t find_point_gated_scalar(const std::int64_t* xs,
                                    const std::int64_t* ys, const char* gate,
                                    std::size_t n, std::int64_t x,
                                    std::int64_t y) {
  for (std::size_t i = 0; i < n; ++i) {
    if (gate[i] != 0 && xs[i] == x && ys[i] == y) return i;
  }
  return kNpos;
}

void drift_positions_scalar(const std::int64_t* bx, const std::int64_t* by,
                            const double* vx, const double* vy, std::size_t n,
                            double t, std::int64_t* ox, std::int64_t* oy) {
  for (std::size_t i = 0; i < n; ++i) {
    ox[i] = bx[i] + std::llround(vx[i] * t);
    oy[i] = by[i] + std::llround(vy[i] * t);
  }
}

std::size_t dwell_advance_scalar(const std::int64_t* tx,
                                 const std::int64_t* ty, const char* alive,
                                 const char* found, std::size_t n,
                                 std::int64_t x, std::int64_t y,
                                 std::int64_t* held, std::int64_t need,
                                 std::uint32_t* out) {
  std::size_t m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t dx = tx[i] - x;
    const std::int64_t dy = ty[i] - y;
    const std::int64_t l1 = (dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy);
    const bool in_disc = alive[i] != 0 && l1 <= 1;
    held[i] = in_disc ? held[i] + 1 : 0;
    if (found[i] == 0 && held[i] >= need) {
      out[m++] = static_cast<std::uint32_t>(i);
    }
  }
  return m;
}

#if defined(ANTS_BATCH_X86)

// --- SSE2 (x86-64 baseline) ------------------------------------------------
//
// SSE2 has no 64-bit integer compare, so argmin_i64 stays scalar at this
// level; the f64 argmin, pair equality (via 32-bit halves), and the line
// prefilter do vectorize two-wide.

std::size_t argmin_f64_sse2(const double* v, std::size_t n) {
  if (n < 4) return argmin_f64_scalar(v, n);
  __m128d acc = _mm_loadu_pd(v);
  std::size_t i = 2;
  for (; i + 2 <= n; i += 2) acc = _mm_min_pd(acc, _mm_loadu_pd(v + i));
  alignas(16) double lanes[2];
  _mm_store_pd(lanes, acc);
  double m = lanes[1] < lanes[0] ? lanes[1] : lanes[0];
  for (; i < n; ++i) {
    if (v[i] < m) m = v[i];
  }
  // The reduced minimum is (numerically) one of the elements, so locating
  // its first occurrence reproduces the scalar lowest-index tie-break.
  std::size_t j = 0;
  while (v[j] != m) ++j;
  return j;
}

std::size_t find_point_sse2(const std::int64_t* xs, const std::int64_t* ys,
                            std::size_t n, std::int64_t x, std::int64_t y) {
  const __m128i px = _mm_set1_epi64x(x);
  const __m128i py = _mm_set1_epi64x(y);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i ex = _mm_cmpeq_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(xs + i)), px);
    const __m128i ey = _mm_cmpeq_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ys + i)), py);
    const int mask = _mm_movemask_epi8(_mm_and_si128(ex, ey));
    // A 64-bit lane matches iff both of its 32-bit halves compared equal.
    if ((mask & 0xFF) == 0xFF) return i;
    if ((mask >> 8) == 0xFF) return i + 1;
  }
  for (; i < n; ++i) {
    if (xs[i] == x && ys[i] == y) return i;
  }
  return kNpos;
}

std::size_t line_candidates_sse2(const double* tx, const double* ty,
                                 std::size_t n, double fx, double fy,
                                 double ux, double uy, double eps,
                                 std::uint32_t* out) {
  const double e2 = eps * eps;
  const __m128d vfx = _mm_set1_pd(fx);
  const __m128d vfy = _mm_set1_pd(fy);
  const __m128d vux = _mm_set1_pd(ux);
  const __m128d vuy = _mm_set1_pd(uy);
  const __m128d ve2 = _mm_set1_pd(e2);
  const __m128d zero = _mm_setzero_pd();
  std::size_t m = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // Discrete mul/add/sub intrinsics: no FMA contraction, so every lane
    // computes the identical IEEE value the scalar expression does.
    const __m128d wx = _mm_sub_pd(vfx, _mm_loadu_pd(tx + i));
    const __m128d wy = _mm_sub_pd(vfy, _mm_loadu_pd(ty + i));
    const __m128d wn2 =
        _mm_add_pd(_mm_mul_pd(wx, wx), _mm_mul_pd(wy, wy));
    const __m128d b =
        _mm_add_pd(_mm_mul_pd(wx, vux), _mm_mul_pd(wy, vuy));
    const __m128d disc =
        _mm_sub_pd(_mm_mul_pd(b, b), _mm_sub_pd(wn2, ve2));
    const __m128d pass =
        _mm_or_pd(_mm_cmple_pd(wn2, ve2), _mm_cmpge_pd(disc, zero));
    const int mask = _mm_movemask_pd(pass);
    if (mask & 1) out[m++] = static_cast<std::uint32_t>(i);
    if (mask & 2) out[m++] = static_cast<std::uint32_t>(i + 1);
  }
  for (; i < n; ++i) {
    const double wx = fx - tx[i];
    const double wy = fy - ty[i];
    const double wn2 = wx * wx + wy * wy;
    const double b = wx * ux + wy * uy;
    const double disc = b * b - (wn2 - e2);
    if (wn2 <= e2 || disc >= 0.0) out[m++] = static_cast<std::uint32_t>(i);
  }
  return m;
}

void window_gate_sse2(const double* appear, const double* vanish,
                      std::size_t n, double t, char* out) {
  const __m128d vt = _mm_set1_pd(t);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d ok =
        _mm_and_pd(_mm_cmple_pd(_mm_loadu_pd(appear + i), vt),
                   _mm_cmplt_pd(vt, _mm_loadu_pd(vanish + i)));
    const int mask = _mm_movemask_pd(ok);
    out[i] = static_cast<char>(mask & 1);
    out[i + 1] = static_cast<char>((mask >> 1) & 1);
  }
  for (; i < n; ++i) out[i] = (appear[i] <= t && t < vanish[i]) ? 1 : 0;
}

std::size_t find_point_gated_sse2(const std::int64_t* xs,
                                  const std::int64_t* ys, const char* gate,
                                  std::size_t n, std::int64_t x,
                                  std::int64_t y) {
  const __m128i px = _mm_set1_epi64x(x);
  const __m128i py = _mm_set1_epi64x(y);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i ex = _mm_cmpeq_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(xs + i)), px);
    const __m128i ey = _mm_cmpeq_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ys + i)), py);
    const int mask = _mm_movemask_epi8(_mm_and_si128(ex, ey));
    // A 64-bit lane matches iff both of its 32-bit halves compared equal;
    // the gate byte is checked only for matched lanes, in ascending order.
    if ((mask & 0xFF) == 0xFF && gate[i] != 0) return i;
    if ((mask >> 8) == 0xFF && gate[i + 1] != 0) return i + 1;
  }
  for (; i < n; ++i) {
    if (gate[i] != 0 && xs[i] == x && ys[i] == y) return i;
  }
  return kNpos;
}

// drift_positions and dwell_advance stay scalar at SSE2: both pivot on
// 64-bit integer compares/abs (and a bit-exact double->int64 round), none
// of which SSE2 offers — the same reason argmin_i64 is scalar here.

// --- AVX2 (compiled per-function via target attribute) ---------------------

__attribute__((target("avx2"))) std::size_t argmin_i64_avx2(
    const std::int64_t* v, std::size_t n) {
  if (n < 8) return argmin_i64_scalar(v, n);
  __m256i acc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v));
  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    // No min_epi64 below AVX-512: compare-and-blend instead.
    acc = _mm256_blendv_epi8(acc, x, _mm256_cmpgt_epi64(acc, x));
  }
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::int64_t m = lanes[0];
  for (int l = 1; l < 4; ++l) {
    if (lanes[l] < m) m = lanes[l];
  }
  for (; i < n; ++i) {
    if (v[i] < m) m = v[i];
  }
  std::size_t j = 0;
  while (v[j] != m) ++j;
  return j;
}

__attribute__((target("avx2"))) std::size_t argmin_f64_avx2(const double* v,
                                                            std::size_t n) {
  if (n < 8) return argmin_f64_scalar(v, n);
  __m256d acc = _mm256_loadu_pd(v);
  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) acc = _mm256_min_pd(acc, _mm256_loadu_pd(v + i));
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double m = lanes[0];
  for (int l = 1; l < 4; ++l) {
    if (lanes[l] < m) m = lanes[l];
  }
  for (; i < n; ++i) {
    if (v[i] < m) m = v[i];
  }
  std::size_t j = 0;
  while (v[j] != m) ++j;
  return j;
}

__attribute__((target("avx2"))) std::size_t find_point_avx2(
    const std::int64_t* xs, const std::int64_t* ys, std::size_t n,
    std::int64_t x, std::int64_t y) {
  const __m256i px = _mm256_set1_epi64x(x);
  const __m256i py = _mm256_set1_epi64x(y);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i ex = _mm256_cmpeq_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + i)), px);
    const __m256i ey = _mm256_cmpeq_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ys + i)), py);
    const int mask =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_and_si256(ex, ey)));
    if (mask != 0) return i + static_cast<std::size_t>(__builtin_ctz(mask));
  }
  for (; i < n; ++i) {
    if (xs[i] == x && ys[i] == y) return i;
  }
  return kNpos;
}

__attribute__((target("avx2"))) std::size_t line_candidates_avx2(
    const double* tx, const double* ty, std::size_t n, double fx, double fy,
    double ux, double uy, double eps, std::uint32_t* out) {
  const double e2 = eps * eps;
  const __m256d vfx = _mm256_set1_pd(fx);
  const __m256d vfy = _mm256_set1_pd(fy);
  const __m256d vux = _mm256_set1_pd(ux);
  const __m256d vuy = _mm256_set1_pd(uy);
  const __m256d ve2 = _mm256_set1_pd(e2);
  const __m256d zero = _mm256_setzero_pd();
  std::size_t m = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d wx = _mm256_sub_pd(vfx, _mm256_loadu_pd(tx + i));
    const __m256d wy = _mm256_sub_pd(vfy, _mm256_loadu_pd(ty + i));
    const __m256d wn2 =
        _mm256_add_pd(_mm256_mul_pd(wx, wx), _mm256_mul_pd(wy, wy));
    const __m256d b =
        _mm256_add_pd(_mm256_mul_pd(wx, vux), _mm256_mul_pd(wy, vuy));
    const __m256d disc =
        _mm256_sub_pd(_mm256_mul_pd(b, b), _mm256_sub_pd(wn2, ve2));
    const __m256d pass = _mm256_or_pd(_mm256_cmp_pd(wn2, ve2, _CMP_LE_OQ),
                                      _mm256_cmp_pd(disc, zero, _CMP_GE_OQ));
    int mask = _mm256_movemask_pd(pass);
    while (mask != 0) {
      const int lane = __builtin_ctz(mask);
      mask &= mask - 1;
      out[m++] = static_cast<std::uint32_t>(i + static_cast<std::size_t>(lane));
    }
  }
  for (; i < n; ++i) {
    const double wx = fx - tx[i];
    const double wy = fy - ty[i];
    const double wn2 = wx * wx + wy * wy;
    const double b = wx * ux + wy * uy;
    const double disc = b * b - (wn2 - e2);
    if (wn2 <= e2 || disc >= 0.0) out[m++] = static_cast<std::uint32_t>(i);
  }
  return m;
}

__attribute__((target("avx2"))) void window_gate_avx2(const double* appear,
                                                      const double* vanish,
                                                      std::size_t n, double t,
                                                      char* out) {
  const __m256d vt = _mm256_set1_pd(t);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d ok = _mm256_and_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(appear + i), vt, _CMP_LE_OQ),
        _mm256_cmp_pd(vt, _mm256_loadu_pd(vanish + i), _CMP_LT_OQ));
    const int mask = _mm256_movemask_pd(ok);
    out[i] = static_cast<char>(mask & 1);
    out[i + 1] = static_cast<char>((mask >> 1) & 1);
    out[i + 2] = static_cast<char>((mask >> 2) & 1);
    out[i + 3] = static_cast<char>((mask >> 3) & 1);
  }
  for (; i < n; ++i) out[i] = (appear[i] <= t && t < vanish[i]) ? 1 : 0;
}

__attribute__((target("avx2"))) std::size_t find_point_gated_avx2(
    const std::int64_t* xs, const std::int64_t* ys, const char* gate,
    std::size_t n, std::int64_t x, std::int64_t y) {
  const __m256i px = _mm256_set1_epi64x(x);
  const __m256i py = _mm256_set1_epi64x(y);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i ex = _mm256_cmpeq_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + i)), px);
    const __m256i ey = _mm256_cmpeq_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ys + i)), py);
    int mask =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_and_si256(ex, ey)));
    while (mask != 0) {
      const int lane = __builtin_ctz(mask);
      mask &= mask - 1;
      if (gate[i + static_cast<std::size_t>(lane)] != 0) {
        return i + static_cast<std::size_t>(lane);
      }
    }
  }
  for (; i < n; ++i) {
    if (gate[i] != 0 && xs[i] == x && ys[i] == y) return i;
  }
  return kNpos;
}

__attribute__((target("avx2"))) void drift_positions_avx2(
    const std::int64_t* bx, const std::int64_t* by, const double* vx,
    const double* vy, std::size_t n, double t, std::int64_t* ox,
    std::int64_t* oy) {
  // std::llround (round half AWAY from zero), emulated bit-exactly:
  // tr = trunc(p); frac = p - tr is exact (Sterbenz: tr is 0 or within a
  // factor of two of p); |frac| >= 0.5 adds copysign(1, p). The final
  // double->int64 conversion is per-lane scalar — there is no packed
  // cvtpd_epi64 below AVX-512 — on an integral-valued double, so exact.
  const __m256d vt = _mm256_set1_pd(t);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  alignas(32) double rounded[4];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    for (int axis = 0; axis < 2; ++axis) {
      const double* v = axis == 0 ? vx : vy;
      const std::int64_t* base = axis == 0 ? bx : by;
      std::int64_t* o = axis == 0 ? ox : oy;
      const __m256d p = _mm256_mul_pd(_mm256_loadu_pd(v + i), vt);
      const __m256d tr =
          _mm256_round_pd(p, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
      const __m256d frac = _mm256_sub_pd(p, tr);
      const __m256d afrac = _mm256_andnot_pd(sign_mask, frac);
      const __m256d bump =
          _mm256_and_pd(_mm256_cmp_pd(afrac, half, _CMP_GE_OQ),
                        _mm256_or_pd(one, _mm256_and_pd(sign_mask, p)));
      _mm256_store_pd(rounded, _mm256_add_pd(tr, bump));
      for (std::size_t l = 0; l < 4; ++l) {
        o[i + l] = base[i + l] + static_cast<std::int64_t>(rounded[l]);
      }
    }
  }
  for (; i < n; ++i) {
    ox[i] = bx[i] + std::llround(vx[i] * t);
    oy[i] = by[i] + std::llround(vy[i] * t);
  }
}

__attribute__((target("avx2"))) std::size_t dwell_advance_avx2(
    const std::int64_t* tx, const std::int64_t* ty, const char* alive,
    const char* found, std::size_t n, std::int64_t x, std::int64_t y,
    std::int64_t* held, std::int64_t need, std::uint32_t* out) {
  const __m256i px = _mm256_set1_epi64x(x);
  const __m256i py = _mm256_set1_epi64x(y);
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i vneed = _mm256_set1_epi64x(need);
  const __m256i zero = _mm256_setzero_si256();
  std::size_t m = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i dx = _mm256_sub_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tx + i)), px);
    const __m256i dy = _mm256_sub_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ty + i)), py);
    // |d| via sign-xor-sub (no abs_epi64 below AVX-512).
    const __m256i sx = _mm256_cmpgt_epi64(zero, dx);
    const __m256i sy = _mm256_cmpgt_epi64(zero, dy);
    const __m256i l1 =
        _mm256_add_epi64(_mm256_sub_epi64(_mm256_xor_si256(dx, sx), sx),
                         _mm256_sub_epi64(_mm256_xor_si256(dy, sy), sy));
    std::uint32_t abits;
    std::uint32_t fbits;
    std::memcpy(&abits, alive + i, 4);
    std::memcpy(&fbits, found + i, 4);
    const __m256i alv = _mm256_cmpgt_epi64(
        _mm256_cvtepi8_epi64(_mm_cvtsi32_si128(static_cast<int>(abits))),
        zero);
    const __m256i in_disc =
        _mm256_andnot_si256(_mm256_cmpgt_epi64(l1, one), alv);
    const __m256i hnew = _mm256_and_si256(
        _mm256_add_epi64(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(held + i)),
            one),
        in_disc);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(held + i), hnew);
    const __m256i fnd = _mm256_cmpgt_epi64(
        _mm256_cvtepi8_epi64(_mm_cvtsi32_si128(static_cast<int>(fbits))),
        zero);
    // Confirmable: NOT (held < need) AND NOT found.
    const __m256i blocked =
        _mm256_or_si256(_mm256_cmpgt_epi64(vneed, hnew), fnd);
    int mask = ~_mm256_movemask_pd(_mm256_castsi256_pd(blocked)) & 0xF;
    while (mask != 0) {
      const int lane = __builtin_ctz(mask);
      mask &= mask - 1;
      out[m++] = static_cast<std::uint32_t>(i + static_cast<std::size_t>(lane));
    }
  }
  for (; i < n; ++i) {
    const std::int64_t ddx = tx[i] - x;
    const std::int64_t ddy = ty[i] - y;
    const std::int64_t l1 = (ddx < 0 ? -ddx : ddx) + (ddy < 0 ? -ddy : ddy);
    const bool in_disc = alive[i] != 0 && l1 <= 1;
    held[i] = in_disc ? held[i] + 1 : 0;
    if (found[i] == 0 && held[i] >= need) {
      out[m++] = static_cast<std::uint32_t>(i);
    }
  }
  return m;
}

#endif  // ANTS_BATCH_X86

}  // namespace

const Kernels& kernels_for(SimdLevel level) noexcept {
  static const Kernels scalar{SimdLevel::kScalar,     argmin_i64_scalar,
                              argmin_f64_scalar,      find_point_scalar,
                              line_candidates_scalar, window_gate_scalar,
                              find_point_gated_scalar, drift_positions_scalar,
                              dwell_advance_scalar};
#if defined(ANTS_BATCH_X86)
  static const Kernels sse2{SimdLevel::kSse2,      argmin_i64_scalar,
                            argmin_f64_sse2,       find_point_sse2,
                            line_candidates_sse2,  window_gate_sse2,
                            find_point_gated_sse2, drift_positions_scalar,
                            dwell_advance_scalar};
  static const Kernels avx2{SimdLevel::kAvx2,      argmin_i64_avx2,
                            argmin_f64_avx2,       find_point_avx2,
                            line_candidates_avx2,  window_gate_avx2,
                            find_point_gated_avx2, drift_positions_avx2,
                            dwell_advance_avx2};
  switch (level) {
    case SimdLevel::kAvx2:
      return avx2;
    case SimdLevel::kSse2:
      return sse2;
    case SimdLevel::kScalar:
    default:
      return scalar;
  }
#else
  (void)level;
  return scalar;
#endif
}

}  // namespace ants::sim::batch
