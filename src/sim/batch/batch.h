// The batch trial executor: struct-of-arrays state + SIMD kernels.
//
// A sweep cell runs hundreds of trials of ONE (strategy, k) pair under the
// same engine config; the scalar executor (sim::run_trial) rebuilds its
// per-agent state vectors, heap, and plane environment from scratch for
// every trial. BatchRunner hoists that state into reusable contiguous
// arrays — per-agent clocks, positions, elapsed times, lifetimes in SoA
// layout, targets split into coordinate arrays — and drives the inner loops
// (min-clock advance, lock-step occupancy checks, plane sight-disc tests)
// through the runtime-dispatched kernels in kernels.h.
//
// Batching is strictly an execution detail. Per-trial seed derivation is
// unchanged — agent a still draws from trial_rng.child(a), environments
// from kScheduleStream/kCrashStream — and every kernel is result-identical
// to the scalar loop it replaces (see kernels.h), so
//
//     BatchRunner(strategy, k, config).run_one(env, trial_rng)
//       == run_trial(strategy, k, env, trial_rng, config)
//
// byte for byte, on every dispatch level (test- and CI-enforced against the
// golden CSVs).
//
// A runner is single-threaded and reusable: construct one per worker per
// (strategy, k) pair and feed it a block of trials. kTrialBlock is the
// chunk size the parallel drivers (scenario sweep, sim::Runner) hand one
// worker at a time — large enough to amortize runner reuse, small enough to
// keep work-stealing granular.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "plane/engine.h"
#include "sim/batch/kernels.h"
#include "sim/trial.h"

namespace ants::sim::batch {

/// Trials per work item when a parallel driver chunks a cell into blocks.
inline constexpr std::size_t kTrialBlock = 64;

class BatchRunner {
 public:
  /// Binds the runner to one (strategy, k, config) cell. The strategy must
  /// outlive the runner. Throws std::invalid_argument for the same argument
  /// errors run_trial would report on its first trial (null/ambiguous
  /// strategy, k < 1).
  BatchRunner(const TrialStrategy& strategy, int k,
              const EngineConfig& config = {});

  /// Runs one trial, byte-identical to
  /// run_trial(strategy, k, env, trial_rng, config).
  TrialResult run_one(const TrialEnvironment& env, const rng::Rng& trial_rng);

  /// Trials run_one delegated to the scalar executor since the last call,
  /// returned and reset. Grid backends never delegate; the one remaining
  /// case is a plane strategy under a dynamic target process (see run_one).
  /// Drained per block by the sweep driver into the batch_scalar_fallback
  /// metric.
  std::uint64_t take_scalar_fallbacks() noexcept {
    const std::uint64_t n = scalar_fallbacks_;
    scalar_fallbacks_ = 0;
    return n;
  }

  /// The dispatch level the last/next run_one uses (re-read from
  /// active_simd_level() at each call, so force_simd_level takes effect
  /// between trials).
  SimdLevel level() const noexcept { return kernels_->level; }

 private:
  TrialResult run_segment(const TrialEnvironment& env,
                          const rng::Rng& trial_rng);
  TrialResult run_step(const TrialEnvironment& env, const rng::Rng& trial_rng);
  TrialResult run_plane(const TrialEnvironment& env,
                        const rng::Rng& trial_rng);

  /// Dynamic-target variants (appear/vanish windows, drift, dwell capture,
  /// collect-all), mirroring sim/trial.cpp's run_*_trial_dynamic loops over
  /// the SoA workspaces with the per-tick target tests routed through the
  /// window_gate / drift_positions / find_point_gated / dwell_advance
  /// kernels.
  TrialResult run_segment_dynamic(const TrialEnvironment& env,
                                  const rng::Rng& trial_rng);
  TrialResult run_step_dynamic(const TrialEnvironment& env,
                               const rng::Rng& trial_rng);

  /// spiral_theta_for_arc(a, s) through a small direct-mapped memo. The
  /// Newton solve dominates the plane profile and strategies reuse a few
  /// distinct durations (phase budgets) across agents and trials; keying on
  /// the exact bit pattern of s returns bit-identical thetas. `a` is fixed
  /// per runner (derived from config.spiral_pitch), so it is not keyed.
  double spiral_theta(double a, double s);

  TrialStrategy strategy_;
  int k_;
  EngineConfig config_;
  const Kernels* kernels_;

  // --- reusable workspaces (grown once, reused across trials) -------------
  // Shared: per-agent rng streams, grid target SoA.
  std::vector<rng::Rng> rngs_;
  std::vector<std::int64_t> tgt_x_, tgt_y_;

  // Dynamic target processes (per-trial target state, SoA).
  std::vector<double> app_, van_;            ///< appear/vanish windows
  std::vector<double> drift_vx_, drift_vy_;  ///< drift velocities
  std::vector<std::int64_t> cur_tx_, cur_ty_;  ///< drifted positions @ tick
  std::vector<char> alive_;     ///< window gate @ tick (appear <= t < vanish)
  std::vector<char> found_;     ///< per-target found mask (collect-all)
  std::vector<char> gate_;      ///< alive && !found, occupancy-scan gate
  std::vector<std::int64_t> found_at_;  ///< per-target discovery tick
  std::vector<std::int64_t> best_t_;    ///< segment: per-target earliest hit
  std::vector<int> finder_t_;           ///< segment: per-target finder
  std::vector<std::int64_t> held_;      ///< dwell contact clocks, uk * nt
  std::vector<std::uint32_t> confirm_;  ///< dwell_advance output buffer

  // Segment backend.
  std::vector<std::unique_ptr<AgentProgram>> seg_programs_;
  std::vector<std::int64_t> clock_;    ///< abs clock; kNeverTime = removed
  std::vector<std::int64_t> elapsed_;  ///< active time in own program
  std::vector<std::int64_t> pos_x_, pos_y_;
  std::vector<std::int64_t> seg_count_;
  std::vector<char> queued_;  ///< mirrors heap membership (rare-path ties)
  std::vector<std::int64_t> blockmin_;  ///< two-level argmin: per-block minima

  // Lock-step backend.
  std::vector<std::unique_ptr<StepProgram>> step_programs_;
  std::vector<char> crashed_;

  // Plane backend.
  std::vector<std::unique_ptr<plane::PlaneAgentProgram>> plane_programs_;
  plane::PlaneTrialEnvironment plane_env_;
  std::vector<double> ptgt_x_, ptgt_y_;
  std::vector<double> pclock_;    ///< abs clock; kPlaneNever = removed
  std::vector<double> pelapsed_;
  std::vector<double> ppos_x_, ppos_y_;
  std::vector<double> pblockmin_;    ///< two-level argmin: per-block minima
  std::vector<std::uint32_t> cand_;  ///< line_candidates output buffer

  struct ThetaMemoEntry {
    std::uint64_t s_bits = 0;
    double theta = 0.0;
    bool valid = false;
  };
  std::array<ThetaMemoEntry, 64> theta_memo_{};

  std::uint64_t scalar_fallbacks_ = 0;
};

}  // namespace ants::sim::batch
