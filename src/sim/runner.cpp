#include "sim/runner.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>

#include "rng/splitmix64.h"
#include "sim/batch/batch.h"
#include "sim/metrics.h"
#include "telemetry/metrics.h"
#include "util/thread_pool.h"

namespace ants::sim {

RunStats make_run_stats(std::vector<double> times, std::int64_t found,
                        std::int64_t distance, int k) {
  RunStats rs;
  rs.distance = distance;
  rs.k = k;
  rs.success_rate =
      times.empty() ? 0.0
                    : static_cast<double>(found) /
                          static_cast<double>(times.size());
  rs.time = stats::Summary::from(times);
  rs.mean_competitiveness = competitiveness(rs.time.mean, distance, k);
  rs.median_competitiveness = competitiveness(rs.time.median, distance, k);
  rs.times = std::move(times);
  return rs;
}

AsyncRunStats run_env_trials(const TrialStrategy& strategy, int k,
                             std::int64_t distance,
                             const TargetProcess& targets,
                             const StartSchedule& schedule,
                             const CrashModel& crashes,
                             const RunConfig& config) {
  if (config.trials < 1) throw std::invalid_argument("run_env_trials: trials");
  if (distance < 1) throw std::invalid_argument("run_env_trials: distance");
  if ((strategy.step != nullptr || strategy.plane != nullptr) &&
      config.time_cap == kNeverTime) {
    throw std::invalid_argument(
        "run_env_trials: step and plane strategies require a finite "
        "time_cap");
  }
  const bool plane = strategy.plane != nullptr;
  if (plane ? !targets.plane : !targets.grid) {
    throw std::invalid_argument(
        "run_env_trials: target process does not cover the strategy's "
        "substrate");
  }

  const auto n = static_cast<std::size_t>(config.trials);
  std::vector<double> times(n);
  std::vector<double> from_last(n);
  std::vector<double> crashed(n);
  std::vector<double> last_starts(n);
  std::atomic<std::int64_t> found{0};
  std::atomic<std::int64_t> first_target_sum{0};

  EngineConfig engine_config;
  engine_config.time_cap = config.time_cap;

  // Base-model runs (the run_trials / run_step_trials wrappers) take the
  // executor's empty-starts/lifetimes fast path instead of drawing
  // all-zero/immortal vectors every trial — the sync hot path must not pay
  // two k-sized allocations per trial for axes it does not use.
  const bool base_model = dynamic_cast<const SyncStart*>(&schedule) &&
                          dynamic_cast<const NoCrash*>(&crashes);

  // Work items are blocks of kTrialBlock consecutive trials: each worker
  // amortizes one batch runner (SoA workspaces, SIMD kernels — sim/batch/)
  // across its blocks. Per-trial results are byte-identical to run_trial
  // (seed derivation untouched; batching is an execution detail).
  const std::size_t n_blocks =
      (n + batch::kTrialBlock - 1) / batch::kTrialBlock;
  std::vector<std::unique_ptr<batch::BatchRunner>> runners(
      util::parallel_workers(n_blocks, config.threads));

  util::parallel_for(
      n_blocks,
      [&](std::size_t block, unsigned worker) {
        std::unique_ptr<batch::BatchRunner>& runner = runners[worker];
        if (runner == nullptr) {
          runner =
              std::make_unique<batch::BatchRunner>(strategy, k, engine_config);
        }
        const std::size_t begin = block * batch::kTrialBlock;
        const std::size_t end = std::min(n, begin + batch::kTrialBlock);
        for (std::size_t trial = begin; trial < end; ++trial) {
          const std::int64_t t0 =
              config.trial_duration != nullptr ? telemetry::now_us() : 0;
          rng::Rng trial_rng(rng::mix_seed(config.seed, trial));
          TrialEnvironment env;
          if (plane) {
            targets.plane(trial_rng, distance, engine_config.time_cap, &env);
          } else {
            targets.grid(trial_rng, distance, engine_config.time_cap, &env);
          }
          if (!base_model) {
            env = draw_environment(k, std::move(env), schedule, crashes,
                                   trial_rng);
          }
          const TrialResult r = runner->run_one(env, trial_rng);
          times[trial] = r.time;
          from_last[trial] = r.from_last_start;
          crashed[trial] = static_cast<double>(r.crashed);
          last_starts[trial] = r.last_start;
          if (r.found) {
            found.fetch_add(1, std::memory_order_relaxed);
            first_target_sum.fetch_add(r.first_target,
                                       std::memory_order_relaxed);
          }
          if (config.trial_counter != nullptr) config.trial_counter->add();
          if (config.trial_duration != nullptr) {
            config.trial_duration->add_us(
                static_cast<double>(telemetry::now_us() - t0));
          }
        }
      },
      config.threads);

  AsyncRunStats rs;
  rs.base = make_run_stats(std::move(times), found.load(), distance, k);
  rs.from_last_start = stats::Summary::from(from_last);
  rs.mean_crashed = stats::Summary::from(crashed).mean;
  rs.mean_last_start = stats::Summary::from(last_starts).mean;
  rs.mean_first_target =
      found.load() > 0 ? static_cast<double>(first_target_sum.load()) /
                             static_cast<double>(found.load())
                       : -1.0;
  return rs;
}

RunStats run_trials(const Strategy& strategy, int k, std::int64_t distance,
                    const Placement& placement, const RunConfig& config) {
  if (config.trials < 1) throw std::invalid_argument("run_trials: trials");
  if (distance < 1) throw std::invalid_argument("run_trials: distance");
  TrialStrategy ts;
  ts.segment = &strategy;
  return run_env_trials(ts, k, distance, single_target(placement), SyncStart(),
                        NoCrash(), config)
      .base;
}

RunStats run_step_trials(const StepStrategy& strategy, int k,
                         std::int64_t distance, const Placement& placement,
                         const RunConfig& config) {
  if (config.trials < 1) throw std::invalid_argument("run_step_trials: trials");
  if (distance < 1) throw std::invalid_argument("run_step_trials: distance");
  if (config.time_cap == kNeverTime) {
    throw std::invalid_argument("run_step_trials: finite time_cap required");
  }
  TrialStrategy ts;
  ts.step = &strategy;
  return run_env_trials(ts, k, distance, single_target(placement), SyncStart(),
                        NoCrash(), config)
      .base;
}

AsyncRunStats run_async_trials(const Strategy& strategy, int k,
                               std::int64_t distance,
                               const Placement& placement,
                               const StartSchedule& schedule,
                               const CrashModel& crashes,
                               const RunConfig& config) {
  if (config.trials < 1) {
    throw std::invalid_argument("run_async_trials: trials");
  }
  if (distance < 1) throw std::invalid_argument("run_async_trials: distance");
  TrialStrategy ts;
  ts.segment = &strategy;
  return run_env_trials(ts, k, distance, single_target(placement), schedule,
                        crashes, config);
}

}  // namespace ants::sim
