#include "sim/runner.h"

#include <atomic>
#include <stdexcept>

#include "rng/splitmix64.h"
#include "sim/metrics.h"
#include "util/thread_pool.h"

namespace ants::sim {

RunStats make_run_stats(std::vector<double> times, std::int64_t found,
                        std::int64_t distance, int k) {
  RunStats rs;
  rs.distance = distance;
  rs.k = k;
  rs.success_rate =
      times.empty() ? 0.0
                    : static_cast<double>(found) /
                          static_cast<double>(times.size());
  rs.time = stats::Summary::from(times);
  rs.mean_competitiveness = competitiveness(rs.time.mean, distance, k);
  rs.median_competitiveness = competitiveness(rs.time.median, distance, k);
  rs.times = std::move(times);
  return rs;
}

RunStats run_trials(const Strategy& strategy, int k, std::int64_t distance,
                    const Placement& placement, const RunConfig& config) {
  if (config.trials < 1) throw std::invalid_argument("run_trials: trials");
  if (distance < 1) throw std::invalid_argument("run_trials: distance");

  std::vector<double> times(static_cast<std::size_t>(config.trials));
  std::atomic<std::int64_t> found{0};

  EngineConfig engine_config;
  engine_config.time_cap = config.time_cap;

  util::parallel_for(
      static_cast<std::size_t>(config.trials),
      [&](std::size_t trial) {
        rng::Rng trial_rng(rng::mix_seed(config.seed, trial));
        const grid::Point treasure = placement(trial_rng, distance);
        const SearchResult r =
            run_search(strategy, k, treasure, trial_rng, engine_config);
        times[trial] = static_cast<double>(r.time);
        if (r.found) found.fetch_add(1, std::memory_order_relaxed);
      },
      config.threads);

  return make_run_stats(std::move(times), found.load(), distance, k);
}

AsyncRunStats run_async_trials(const Strategy& strategy, int k,
                               std::int64_t distance,
                               const Placement& placement,
                               const StartSchedule& schedule,
                               const CrashModel& crashes,
                               const RunConfig& config) {
  if (config.trials < 1) {
    throw std::invalid_argument("run_async_trials: trials");
  }
  if (distance < 1) throw std::invalid_argument("run_async_trials: distance");

  const auto n = static_cast<std::size_t>(config.trials);
  std::vector<double> times(n);
  std::vector<double> from_last(n);
  std::vector<double> crashed(n);
  std::vector<double> last_starts(n);
  std::atomic<std::int64_t> found{0};

  EngineConfig engine_config;
  engine_config.time_cap = config.time_cap;

  util::parallel_for(
      n,
      [&](std::size_t trial) {
        rng::Rng trial_rng(rng::mix_seed(config.seed, trial));
        const grid::Point treasure = placement(trial_rng, distance);
        const AsyncSearchResult r = run_search_async(
            strategy, k, treasure, trial_rng, schedule, crashes,
            engine_config);
        times[trial] = static_cast<double>(r.base.time);
        from_last[trial] = static_cast<double>(r.from_last_start);
        crashed[trial] = static_cast<double>(r.crashed);
        last_starts[trial] = static_cast<double>(r.last_start);
        if (r.base.found) found.fetch_add(1, std::memory_order_relaxed);
      },
      config.threads);

  AsyncRunStats rs;
  rs.base = make_run_stats(std::move(times), found.load(), distance, k);
  rs.from_last_start = stats::Summary::from(from_last);
  rs.mean_crashed = stats::Summary::from(crashed).mean;
  rs.mean_last_start = stats::Summary::from(last_starts).mean;
  return rs;
}

RunStats run_step_trials(const StepStrategy& strategy, int k,
                         std::int64_t distance, const Placement& placement,
                         const RunConfig& config) {
  if (config.trials < 1) throw std::invalid_argument("run_step_trials: trials");
  if (distance < 1) throw std::invalid_argument("run_step_trials: distance");
  if (config.time_cap == kNeverTime) {
    throw std::invalid_argument("run_step_trials: finite time_cap required");
  }

  std::vector<double> times(static_cast<std::size_t>(config.trials));
  std::atomic<std::int64_t> found{0};

  util::parallel_for(
      static_cast<std::size_t>(config.trials),
      [&](std::size_t trial) {
        rng::Rng trial_rng(rng::mix_seed(config.seed, trial));
        const grid::Point treasure = placement(trial_rng, distance);
        const SearchResult r = run_step_search(strategy, k, treasure,
                                               trial_rng, config.time_cap);
        times[trial] = static_cast<double>(r.time);
        if (r.found) found.fetch_add(1, std::memory_order_relaxed);
      },
      config.threads);

  return make_run_stats(std::move(times), found.load(), distance, k);
}

}  // namespace ants::sim
