// Shared simulation vocabulary: discrete time, agent identity, outcomes.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace ants::sim {

/// Discrete simulation time: one unit per edge traversal (paper section 2).
using Time = std::int64_t;

/// "Never": larger than any saturated duration (durations cap at 2^62).
inline constexpr Time kNeverTime = std::numeric_limits<Time>::max();

/// Context handed to a strategy when instantiating one agent's program.
///
/// `k` is the true number of agents in the run. UNIFORM algorithms must not
/// read it (the whole point of the paper's section 3.2) — it exists for the
/// explicitly coordinated baselines (sector sweep) and for non-uniform
/// algorithms whose knowledge of k is the experiment's subject. Tests assert
/// that uniform strategies produce identical op streams for any k.
struct AgentContext {
  int agent_index = 0;
  int k = 1;
};

/// Result of one collaborative search run.
struct SearchResult {
  Time time = kNeverTime;     ///< first visit of the treasure (or cap)
  bool found = false;         ///< true iff some agent reached the treasure
  int finder = -1;            ///< index of the first agent to reach it
  std::int64_t segments = 0;  ///< total segments realized (cost accounting)
};

/// Result of one environment-aware trial (the unified executor in
/// sim/trial.h). Subsumes the former SearchResult/AsyncSearchResult pair:
/// `time` is always absolute (from t = 0, the first possible start), the
/// schedule/crash aggregates are zero under the paper's base model, and
/// `first_target` identifies the winning target of a multi-target race
/// (0 for the ordinary single-treasure hunt).
///
/// Time fields are doubles because the executor serves BOTH substrates: the
/// grid backends fill exact integer tick counts (every Time below 2^53 is
/// representable, and the aggregation layer always consumed these as
/// doubles), while the continuous-plane backend reports fractional
/// unit-speed arrival times.
struct TrialResult {
  double time = static_cast<double>(kNeverTime);  ///< absolute first-hit
                                                  ///< time (or the cap)
  bool found = false;         ///< true iff some target was reached in time
  int finder = -1;            ///< index of the first agent to reach one
  int first_target = -1;      ///< index of the first-discovered target
  std::int64_t segments = 0;  ///< segments realized / lock-steps taken
  double last_start = 0;      ///< latest start delay in the environment
  double from_last_start = 0; ///< max(0, time - last_start) if found
  int crashed = 0;            ///< agents that exhausted their lifetime

  /// Collect-all mode only (TrialEnvironment::collect_all; empty otherwise):
  /// one entry per spawned target, the absolute discovery time or -1 if the
  /// target was never found before the cap (or before it vanished). In this
  /// mode `time` is the time-to-ALL-found (censored at the cap), `found`
  /// means every spawned target was found, and finder/first_target describe
  /// the EARLIEST capture.
  std::vector<double> target_times;
};

}  // namespace ants::sim
