// Derived performance measures: the paper's yardsticks.
//
// Everything the experiments report is phrased against the universal lower
// bound Omega(D + D^2/k) (paper, section 2): an algorithm's competitiveness
// phi(k) is its expected time divided by (D + D^2/k), and its speed-up is
// T(1)/T(k).
#pragma once

#include <cstdint>

namespace ants::sim {

/// The optimal-order baseline D + D^2/k as a double (exact for all
/// experiment magnitudes; doubles carry 53 bits).
double optimal_time(std::int64_t distance, std::int64_t k) noexcept;

/// Competitiveness of a measured (mean) running time.
double competitiveness(double measured_time, std::int64_t distance,
                       std::int64_t k) noexcept;

/// Speed-up of a k-agent time against the single-agent time.
double speedup(double time_single, double time_k) noexcept;

/// log2(k)^power — the comparison curves for Theorems 3.3/4.1/4.2 tables
/// (natural choice of base: k is swept in powers of two; any base shifts
/// curves by a constant factor, which competitiveness plots ignore).
double log_power(std::int64_t k, double power) noexcept;

}  // namespace ants::sim
