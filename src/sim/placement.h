// Adversarial treasure placement policies.
//
// The paper's adversary fixes the treasure at an arbitrary node at distance
// D. Monte-Carlo experiments either pin it (axis/diagonal, worst-ish
// anisotropy probes) or redraw it uniformly on the distance-D ring every
// trial — the natural randomized adversary for rotation-invariant
// strategies. Experiment harnesses can also sweep `ring_fraction` placements
// to hunt for angular soft spots.
#pragma once

#include <functional>
#include <string>

#include "grid/point.h"
#include "rng/rng.h"

namespace ants::sim {

/// Draws the treasure node for a trial, given the adversary distance D >= 1.
using Placement =
    std::function<grid::Point(rng::Rng& rng, std::int64_t distance)>;

/// Treasure pinned on the +x axis: (D, 0).
Placement axis_placement();

/// Treasure pinned on the diagonal: (ceil(D/2), floor(D/2)).
Placement diagonal_placement();

/// Treasure drawn uniformly from the L1 ring of radius D each trial.
Placement uniform_ring_placement();

/// Treasure pinned at the given fraction f in [0,1) around the ring
/// (f = 0 is (D,0), f = 0.25 is (0,D), ...).
Placement ring_fraction_placement(double fraction);

// Name-based construction lives in scenario::make_placement (the placement
// axis registry in src/scenario/environment.h), which also covers the
// sweepable ring-fraction parameters — one registry, no divergent copies.

}  // namespace ants::sim
