#include "sim/trajectory.h"

#include <algorithm>
#include <stdexcept>

#include "sim/engine.h"
#include "sim/segment.h"

namespace ants::sim {

std::vector<TimedPoint> trace_program(const Strategy& strategy,
                                      AgentContext ctx, rng::Rng& rng,
                                      Time horizon) {
  if (horizon < 0) throw std::invalid_argument("trace: negative horizon");

  std::vector<TimedPoint> trace;
  trace.reserve(static_cast<std::size_t>(std::min<Time>(horizon + 1, 1 << 20)));

  const auto program = strategy.make_program(ctx);
  grid::Point pos = grid::kOrigin;
  Time clock = 0;
  trace.push_back({pos, 0});
  int consecutive_stalls = 0;

  while (clock < horizon) {
    const Segment seg = realize(program->next(rng), pos, grid::kOrigin);
    const Time budget = horizon - clock;
    for_each_visit(seg, budget, [&](grid::Point p, Time offset) {
      if (offset == 0) return;  // shared with the previous segment's end
      trace.push_back({p, clock + offset});
    });
    clock += std::min(budget, duration(seg));
    pos = end_position(seg);
    if (duration(seg) == 0) {
      if (++consecutive_stalls > 1000) break;
    } else {
      consecutive_stalls = 0;
    }
  }
  return trace;
}

std::string render_trace(const std::vector<TimedPoint>& trace,
                         std::int64_t extent, grid::Point treasure) {
  if (extent < 1) throw std::invalid_argument("render: extent >= 1");
  const std::int64_t side = 2 * extent + 1;
  std::string canvas(static_cast<std::size_t>(side * (side + 1)), ' ');
  for (std::int64_t row = 0; row < side; ++row) {
    canvas[static_cast<std::size_t>(row * (side + 1) + side)] = '\n';
  }

  const auto plot = [&](grid::Point p, char ch) {
    const std::int64_t col = p.x + extent;
    const std::int64_t row = extent - p.y;  // +y up
    if (col < 0 || col >= side || row < 0 || row >= side) return;
    canvas[static_cast<std::size_t>(row * (side + 1) + col)] = ch;
  };

  for (const auto& tp : trace) plot(tp.position, '#');
  plot(treasure, 'T');
  plot(grid::kOrigin, 'S');
  return canvas;
}

}  // namespace ants::sim
