// The unified, environment-aware trial executor.
//
// The paper's base model — simultaneous starts, immortal agents, a single
// treasure — is one point in an environment space this module makes
// explicit. A TrialEnvironment is the fully realized environment of ONE
// trial: the target set the agents race for, a start delay per agent, and a
// fail-stop lifetime per agent. draw_environment() realizes it from the
// declarative StartSchedule/CrashModel policies using dedicated child
// streams of the trial rng (kScheduleStream / kCrashStream), so enabling an
// environment axis never perturbs the agents' program randomness.
//
// run_trial() executes a trial under any environment with one of three
// backends, picked by the strategy family:
//
//   * segment backend (sim::Strategy) — the interleaved min-heap sweep with
//     the shrinking time bound (min over agents of the best hit so far),
//     shared identically by the synchronous and asynchronous paths; cost is
//     the number of realized segments, never grid steps.
//   * lock-step backend (sim::StepStrategy) — all agents advance one edge
//     per tick; not-yet-started agents wait at the source, agents whose
//     active time exceeds their lifetime halt in place. Requires a finite
//     time cap (random walks on Z^2 have infinite expected hitting time).
//   * plane backend (plane::PlaneStrategy) — the continuous model the grid
//     discretizes: unit-speed trajectories on R^2, targets are sight discs
//     (plane::run_plane_trial). The same StartSchedule/CrashModel draws
//     apply — integer delays and lifetimes read as continuous time units —
//     so a paired grid-vs-plane sweep perturbs both substrates identically.
//
// Under a sync/no-crash single-target environment all backends reproduce
// the historical run_search / run_step_search / run_plane_search results
// exactly (test-enforced byte-for-byte), so the legacy entry points are
// thin wrappers over this executor.
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "plane/engine.h"
#include "rng/rng.h"
#include "sim/async_engine.h"
#include "sim/engine.h"
#include "sim/placement.h"
#include "sim/program.h"
#include "sim/step_engine.h"
#include "sim/types.h"

namespace ants::sim {

/// Child-stream tags of the trial rng reserved for environment draws.
/// Agent programs use child(a) with a in [0, k); these constants are far
/// outside any realistic k and distinct from each other, so the stream
/// families never collide.
inline constexpr std::uint64_t kScheduleStream = 0x5C4ED11E00000001ULL;
inline constexpr std::uint64_t kCrashStream = 0xC7A5400000000002ULL;
/// Target-process draws (Poisson arrivals/lifetimes, drift headings) use
/// their own stream so enabling a dynamic target axis never perturbs the
/// agents' program randomness or the schedule/crash draws. Static target
/// processes keep drawing positions from the trial rng's MAIN stream,
/// exactly as the one-shot draws always have (byte-compat).
inline constexpr std::uint64_t kTargetStream = 0x7A26E7D800000003ULL;

/// Per-target drift velocity in cells (grid) or distance units (plane) per
/// time unit. A drifting grid target with base position `b` occupies
/// b + (llround(vx * t), llround(vy * t)) at tick t (absolute trial time),
/// so its position is O(1) to evaluate at any tick.
struct TargetDrift {
  double vx = 0;
  double vy = 0;
};

/// The fully realized environment of one trial. Exactly one target vector
/// is populated — `targets` for the grid backends, `plane_targets` for the
/// plane backend (continuous sight discs). Empty `starts` / `lifetimes` are
/// the base model (everybody at t = 0, immortal) without paying two k-sized
/// allocations on the synchronous hot path; non-empty vectors must have
/// exactly k entries.
///
/// The target-process fields below default to the classic static model
/// (every target present for the whole trial, instant capture, race ends at
/// the first find); when any of them is engaged the executors take their
/// generalized dynamic loops. Dynamic/collect environments detect a target
/// on ARRIVAL at it — the static-path origin-target special case (an agent
/// waking up on a source treasure) does not apply, and the spec layer never
/// places dynamic targets at the origin (distance >= 1).
struct TrialEnvironment {
  std::vector<grid::Point> targets;        ///< grid targets; first-of-set
  std::vector<plane::Vec2> plane_targets;  ///< plane sight-disc centers
  std::vector<Time> starts;      ///< per-agent start delays (empty = 0)
  std::vector<Time> lifetimes;   ///< per-agent lifetimes (empty = never)

  /// Absolute appear/vanish times, parallel to the populated target vector
  /// (empty = every target lives over the whole trial). A hit at absolute
  /// time T counts iff appear[ti] <= T < vanish[ti]. Doubles on both
  /// substrates: grid hit times are exact integers below 2^53, so the
  /// comparison stays exact there.
  std::vector<double> target_appear;
  std::vector<double> target_vanish;

  /// Set by windowed target processes (Poisson arrivals) even when the
  /// realization spawned ZERO targets, so an empty target vector stays a
  /// legitimate (vacuous) trial instead of a validation error.
  bool windowed = false;

  /// Per-target drift velocities, parallel to `targets` (empty = static).
  /// Step-level (lock-step) strategies only — segment/plane backends have
  /// no per-tick target position and reject drifting targets.
  std::vector<TargetDrift> target_drift;

  /// Capture policy: extra ticks of CONTINUOUS contact required beyond the
  /// first before a find confirms (0 = instant, the classic model). Contact
  /// on the grid is the L1-radius-1 disc around the target (the step-level
  /// analog of the plane sight disc; always-moving walkers could never hold
  /// an exact node for consecutive ticks); leaving the disc or the target
  /// vanishing resets the dwell progress. Step-level strategies only.
  Time capture_dwell = 0;

  /// false: the race ends at the first target found (classic).
  /// true: the trial runs until every spawned target is found (or the time
  /// cap); TrialResult::target_times records per-target discovery times and
  /// TrialResult::time becomes the time-to-all-found.
  bool collect_all = false;

  /// Latest start delay (0 for the base model).
  Time last_start() const noexcept;

  bool has_target_windows() const noexcept {
    return windowed || !target_appear.empty() || !target_vanish.empty();
  }
  bool has_target_drift() const noexcept { return !target_drift.empty(); }

  /// True when any target-process feature is engaged: appear/vanish
  /// windows, drift, dwell capture, or collect-all. Both executors route on
  /// this — the scalar executor into run_*_trial_dynamic, the batch
  /// executor (sim/batch/) into its dynamic SoA paths. It is NOT a
  /// scalar-only marker: the batch executor runs every grid dynamic
  /// environment natively; only plane windowed/collect cells still delegate
  /// to the scalar path (documented and counted at BatchRunner::run_one).
  bool has_dynamic_targets() const noexcept {
    return has_target_windows() || has_target_drift() || capture_dwell > 0 ||
           collect_all;
  }
};

/// The base-model environment around a single treasure.
TrialEnvironment single_target_environment(grid::Point treasure);

/// Realizes one trial's environment: start delays and lifetimes drawn from
/// the dedicated child streams of `trial_rng`, the target set(s) taken as
/// given (targets are placement draws, which consume the trial rng's main
/// stream exactly as the single-treasure path always has). The overload
/// taking a TrialEnvironment keeps whichever target vector is already
/// populated — grid or plane — and fills only starts/lifetimes.
TrialEnvironment draw_environment(int k, std::vector<grid::Point> targets,
                                  const StartSchedule& schedule,
                                  const CrashModel& crashes,
                                  const rng::Rng& trial_rng);
TrialEnvironment draw_environment(int k, TrialEnvironment env,
                                  const StartSchedule& schedule,
                                  const CrashModel& crashes,
                                  const rng::Rng& trial_rng);

/// A strategy for the unified executor: exactly one pointer set. The
/// scenario sweep builds this from its registry entry, so every engine
/// family funnels through the same run_trial call site.
struct TrialStrategy {
  const Strategy* segment = nullptr;
  const StepStrategy* step = nullptr;
  const plane::PlaneStrategy* plane = nullptr;
};

/// Runs one trial of `strategy` under `env`. Dispatches to the segment,
/// lock-step, or plane backend; throws std::invalid_argument on k < 1, an
/// empty (or wrong-substrate) target set — except that a windowed process
/// may legitimately spawn zero targets — environment vectors of the wrong
/// size, a null strategy, a step strategy without a finite config.time_cap,
/// or target drift / dwell capture with a non-step strategy. The plane backend reads config.sight_radius /
/// config.spiral_pitch and maps config.time_cap == kNeverTime to
/// plane::kPlaneNever; its times come back fractional, the grid backends'
/// as exact integers (TrialResult times are doubles for exactly this).
TrialResult run_trial(const TrialStrategy& strategy, int k,
                      const TrialEnvironment& env, const rng::Rng& trial_rng,
                      const EngineConfig& config = {});

/// Convenience overloads for direct engine-level use (tests, examples).
TrialResult run_trial(const Strategy& strategy, int k,
                      const TrialEnvironment& env, const rng::Rng& trial_rng,
                      const EngineConfig& config = {});
TrialResult run_trial(const StepStrategy& strategy, int k,
                      const TrialEnvironment& env, const rng::Rng& trial_rng,
                      const EngineConfig& config = {});
TrialResult run_trial(const plane::PlaneStrategy& strategy, int k,
                      const TrialEnvironment& env, const rng::Rng& trial_rng,
                      const EngineConfig& config = {});

/// Realizes the per-trial target state given the adversary distance D — the
/// process generalization of the old one-shot TargetDraw, and the hook the
/// scenario layer's `targets=` axis compiles into. A process owns target
/// state over TIME: it fills the environment's target vector plus any
/// appear/vanish windows and drift velocities for the trial's horizon
/// `time_cap`. Exactly one side is set, mirroring TrialStrategy: `grid`
/// feeds the segment/lock-step backends, `plane` the continuous backend.
///
/// Contract: static processes draw positions from `rng` (the trial rng's
/// MAIN stream — byte-identical to the historical one-shot draws); dynamic
/// processes draw EVERYTHING (inter-arrivals, positions, lifetimes,
/// headings) from rng.child(kTargetStream), so turning a dynamic axis on
/// never perturbs the agents' randomness.
struct TargetProcess {
  std::function<void(rng::Rng& rng, std::int64_t distance, Time time_cap,
                     TrialEnvironment* env)>
      grid;
  std::function<void(rng::Rng& rng, std::int64_t distance, Time time_cap,
                     TrialEnvironment* env)>
      plane;
};

/// The classic adversary as the trivial process: one static treasure per
/// trial from `placement`, present for the whole trial.
TargetProcess single_target(Placement placement);

/// The classic adversary on the plane: one static treasure per trial at
/// distance D in the direction drawn by `angle` (radians; e.g. rng.angle()
/// for the uniform ring adversary).
TargetProcess single_plane_target(std::function<double(rng::Rng&)> angle);

/// Poisson target process (grid): targets appear at the arrival times of a
/// rate-`rate` Poisson process on (0, time_cap], each at an independent
/// `placement` draw at distance D, and vanish after an Exponential lifetime
/// of mean `mean_life` (0 = immortal). Draws from rng.child(kTargetStream);
/// requires a finite time_cap. Per arrival the draw order is inter-arrival,
/// position, lifetime.
TargetProcess poisson_targets(double rate, double mean_life,
                              Placement placement);

/// Poisson target process on the plane: same arrival/lifetime machinery,
/// positions at distance D in the direction drawn by `angle`.
TargetProcess poisson_plane_targets(double rate, double mean_life,
                                    std::function<double(rng::Rng&)> angle);

/// Drifting target process (grid, step-level strategies only): one target
/// whose base position is a `placement` draw at distance D (from the target
/// stream) and which drifts at `speed` cells/tick in the fixed direction
/// `angle_turns` (fraction of a full turn in [0, 1)).
TargetProcess drifting_target(double speed, double angle_turns,
                              Placement placement);

namespace detail {

/// Shared between the scalar executor and the batch kernels (sim/batch/):
/// argument validation and the origin-target special case must behave
/// byte-identically on both paths, so they live in one place.

/// Throws std::invalid_argument exactly as run_trial documents.
void validate_trial_args(const TrialStrategy& strategy, int k,
                         const TrialEnvironment& env);

/// Handles a grid target sitting on the source node: every agent that ever
/// starts finds it the moment it wakes up, so the earliest ALIVE starter
/// (lowest index on ties) is the finder, provided its start is within
/// `time_cap`. Dead-on-arrival agents (lifetime <= 0) never act — they
/// cannot be credited with the find and they count into result->crashed,
/// exactly as on the non-origin path. Returns true iff a target was at the
/// origin (the result is then fully resolved).
bool resolve_origin_target(const TrialEnvironment& env, int k, Time time_cap,
                           TrialResult* result);

/// Target-window and drift evaluation shared verbatim by the scalar dynamic
/// loops and the batch executor's dynamic SoA paths: byte-identity between
/// the two depends on there being exactly one definition of each.

/// Vanish time of a target with no window: never.
inline constexpr double kNeverVanish =
    std::numeric_limits<double>::infinity();

/// Appear/vanish of target `ti`, with the empty-vector defaults (appear at
/// 0, never vanish) materialized.
double appear_of(const TrialEnvironment& env, std::size_t ti) noexcept;
double vanish_of(const TrialEnvironment& env, std::size_t ti) noexcept;

/// Smallest integer offset within a segment started at absolute time `base`
/// at which a hit can fall inside a target's appear window.
Time window_from_offset(double appear, Time base) noexcept;

/// Position of (possibly drifting) grid target `ti` at absolute tick `t`:
/// base + (llround(vx * t), llround(vy * t)).
grid::Point target_position_at(const TrialEnvironment& env, std::size_t ti,
                               Time t) noexcept;

}  // namespace detail

}  // namespace ants::sim
