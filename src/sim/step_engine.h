// Step-level strategy interface (random walks and their relatives), which
// have no useful segment structure: all k agents advance one edge per tick
// until some agent stands on the treasure or the cap is reached. Cost is
// O(k * cap) — these baselines are only run at small D, which is exactly
// the paper's point about random walks on Z^2.
//
// The lock-step execution loop lives in the unified executor (sim/trial.h),
// which also gives these strategies start schedules, fail-stop crashes, and
// multi-target races; run_step_search below is the historical
// single-treasure entry point, now a thin wrapper over it.
#pragma once

#include <memory>
#include <string>

#include "grid/point.h"
#include "rng/rng.h"
#include "sim/types.h"

namespace ants::sim {

/// Per-agent stepper: returns the next position (must be grid-adjacent to
/// `current` or equal to it — waiting is allowed).
class StepProgram {
 public:
  virtual ~StepProgram() = default;
  virtual grid::Point step(rng::Rng& rng, grid::Point current) = 0;
};

class StepStrategy {
 public:
  virtual ~StepStrategy() = default;
  virtual std::string name() const = 0;
  virtual std::unique_ptr<StepProgram> make_program(AgentContext ctx) const = 0;
};

/// Runs one lock-step trial with k agents starting at the origin; the search
/// succeeds when any agent occupies `treasure` at some tick <= time_cap.
SearchResult run_step_search(const StepStrategy& strategy, int k,
                             grid::Point treasure, const rng::Rng& trial_rng,
                             Time time_cap);

}  // namespace ants::sim
