// The collaborative-search engine (base model).
//
// Simulates k identical non-communicating agents, all starting at the source
// (origin) at time 0, until the first one visits the treasure. Because
// agents never interact, the run outcome is min over agents of each agent's
// private first-hit time; the executor exploits this by processing agents
// under a shrinking time bound (the best hit found so far, or the cap), so
// the cost of a trial is the number of SEGMENTS realized within the bound —
// polylogarithmic in D for the paper's algorithms — never the number of
// grid steps.
//
// run_search is the historical single-treasure entry point; since the
// engine unification it is a thin wrapper over sim::run_trial (sim/trial.h)
// under the trivial environment, and is test-pinned to the exact results it
// produced as a standalone engine.
//
// Determinism: agent a of a trial draws from trial_rng.child(a), so results
// are identical regardless of evaluation order or thread count.
#pragma once

#include "rng/rng.h"
#include "sim/program.h"
#include "sim/segment.h"
#include "sim/types.h"

namespace ants::sim {

struct EngineConfig {
  /// Hard stop: hits strictly later than time_cap count as "not found".
  Time time_cap = kNeverTime;
  /// Safety valve against non-terminating strategies: throws
  /// std::runtime_error if a single agent realizes this many segments
  /// without either hitting the treasure or exceeding the bound.
  std::int64_t max_segments_per_agent = 50'000'000;
  /// Continuous-plane backend knobs (plane::PlaneEngineConfig mirrors);
  /// ignored by the grid backends. time_cap == kNeverTime maps to
  /// plane::kPlaneNever.
  double sight_radius = 1.0;  ///< the paper's eps
  double spiral_pitch = 1.0;  ///< <= 2 * sight_radius for gap-free coverage
};

/// Realizes an op into a concrete segment given the agent's position.
Segment realize(const Op& op, grid::Point current, grid::Point source);

/// Runs one collaborative search trial.
SearchResult run_search(const Strategy& strategy, int k, grid::Point treasure,
                        const rng::Rng& trial_rng,
                        const EngineConfig& config = {});

/// First-hit time of a single agent's program under `bound` (exposed for
/// tests and the visitation tooling). Returns kNeverTime if the agent does
/// not hit at or before the bound.
Time single_agent_hit_time(AgentProgram& program, rng::Rng& rng,
                           grid::Point treasure, grid::Point source,
                           Time bound, std::int64_t max_segments,
                           std::int64_t* segments_out = nullptr);

}  // namespace ants::sim
