#include "sim/step_engine.h"

#include <cassert>
#include <stdexcept>
#include <vector>

namespace ants::sim {

SearchResult run_step_search(const StepStrategy& strategy, int k,
                             grid::Point treasure, const rng::Rng& trial_rng,
                             Time time_cap) {
  if (k < 1) throw std::invalid_argument("run_step_search: need k >= 1");
  if (time_cap == kNeverTime) {
    // Random-walk-style strategies have infinite expected hitting time on
    // Z^2 (see the paper's related-work discussion); an uncapped run is a
    // programming error.
    throw std::invalid_argument("run_step_search: finite time_cap required");
  }

  SearchResult result;

  if (treasure == grid::kOrigin) {
    result.found = true;
    result.time = 0;
    result.finder = 0;
    return result;
  }

  std::vector<std::unique_ptr<StepProgram>> programs;
  std::vector<rng::Rng> rngs;
  std::vector<grid::Point> pos(static_cast<std::size_t>(k), grid::kOrigin);
  programs.reserve(static_cast<std::size_t>(k));
  rngs.reserve(static_cast<std::size_t>(k));
  for (int a = 0; a < k; ++a) {
    programs.push_back(strategy.make_program(AgentContext{a, k}));
    rngs.push_back(trial_rng.child(static_cast<std::uint64_t>(a)));
  }

  for (Time t = 1; t <= time_cap; ++t) {
    for (int a = 0; a < k; ++a) {
      const auto ia = static_cast<std::size_t>(a);
      const grid::Point next = programs[ia]->step(rngs[ia], pos[ia]);
      assert(grid::l1_dist(next, pos[ia]) <= 1);
      pos[ia] = next;
      if (next == treasure) {
        result.found = true;
        result.time = t;
        result.finder = a;
        result.segments = t * k;
        return result;
      }
    }
  }

  result.found = false;
  result.time = time_cap;
  result.segments = time_cap * k;
  return result;
}

}  // namespace ants::sim
