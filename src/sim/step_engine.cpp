#include "sim/step_engine.h"

#include <stdexcept>

#include "sim/trial.h"

namespace ants::sim {

SearchResult run_step_search(const StepStrategy& strategy, int k,
                             grid::Point treasure, const rng::Rng& trial_rng,
                             Time time_cap) {
  if (k < 1) throw std::invalid_argument("run_step_search: need k >= 1");
  if (time_cap == kNeverTime) {
    // Random-walk-style strategies have infinite expected hitting time on
    // Z^2 (see the paper's related-work discussion); an uncapped run is a
    // programming error.
    throw std::invalid_argument("run_step_search: finite time_cap required");
  }

  EngineConfig config;
  config.time_cap = time_cap;
  const TrialResult r =
      run_trial(strategy, k, single_target_environment(treasure), trial_rng,
                config);
  SearchResult result;
  result.time = static_cast<Time>(r.time);
  result.found = r.found;
  result.finder = r.finder;
  // Historical accounting: this entry point always charged full k-agent
  // ticks (t * k), even for the tick the finder cut short. The unified
  // executor counts steps actually taken; keep the legacy figure here so
  // long-standing callers see unchanged numbers.
  result.segments = (r.found ? static_cast<Time>(r.time) : time_cap) * k;
  return result;
}

}  // namespace ants::sim
