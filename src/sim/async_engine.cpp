#include "sim/async_engine.h"

#include <stdexcept>
#include <utility>

#include "sim/trial.h"
#include "util/format.h"
#include "util/sat.h"

namespace ants::sim {

std::vector<Time> SyncStart::draw(int k, rng::Rng&) const {
  return std::vector<Time>(static_cast<std::size_t>(k), 0);
}

StaggeredStart::StaggeredStart(Time gap) : gap_(gap) {
  if (gap < 0) throw std::invalid_argument("StaggeredStart: gap must be >= 0");
}

std::string StaggeredStart::name() const {
  return "staggered(gap=" + std::to_string(gap_) + ")";
}

std::vector<Time> StaggeredStart::draw(int k, rng::Rng&) const {
  std::vector<Time> delays(static_cast<std::size_t>(k));
  for (int a = 0; a < k; ++a) {
    delays[static_cast<std::size_t>(a)] = util::sat_mul(gap_, a);
  }
  return delays;
}

UniformRandomStart::UniformRandomStart(Time max_delay) : max_delay_(max_delay) {
  if (max_delay < 0) {
    throw std::invalid_argument("UniformRandomStart: max_delay must be >= 0");
  }
}

std::string UniformRandomStart::name() const {
  return "uniform-start(max=" + std::to_string(max_delay_) + ")";
}

std::vector<Time> UniformRandomStart::draw(int k, rng::Rng& rng) const {
  std::vector<Time> delays(static_cast<std::size_t>(k));
  for (auto& d : delays) d = rng.uniform_int(0, max_delay_);
  return delays;
}

FixedStart::FixedStart(std::vector<Time> delays) : delays_(std::move(delays)) {
  for (const Time d : delays_) {
    if (d < 0) throw std::invalid_argument("FixedStart: delays must be >= 0");
  }
}

std::vector<Time> FixedStart::draw(int k, rng::Rng&) const {
  if (static_cast<std::size_t>(k) != delays_.size()) {
    throw std::invalid_argument("FixedStart: delay count != k");
  }
  return delays_;
}

std::vector<Time> NoCrash::draw_lifetimes(int k, rng::Rng&) const {
  return std::vector<Time>(static_cast<std::size_t>(k), kNeverTime);
}

DoaCrash::DoaCrash(double p) : p_(p) {
  if (p < 0 || p > 1) throw std::invalid_argument("DoaCrash: p must be in [0,1]");
}

std::string DoaCrash::name() const { return "doa(p=" + util::fmt_param(p_) + ")"; }

std::vector<Time> DoaCrash::draw_lifetimes(int k, rng::Rng& rng) const {
  std::vector<Time> lifetimes(static_cast<std::size_t>(k));
  for (auto& l : lifetimes) l = rng.bernoulli(p_) ? 0 : kNeverTime;
  return lifetimes;
}

ExponentialLifetime::ExponentialLifetime(double mean) : mean_(mean) {
  if (!(mean > 0)) {
    throw std::invalid_argument("ExponentialLifetime: mean must be > 0");
  }
}

std::string ExponentialLifetime::name() const {
  return "exp-life(mean=" + util::fmt_param(mean_) + ")";
}

std::vector<Time> ExponentialLifetime::draw_lifetimes(int k,
                                                      rng::Rng& rng) const {
  std::vector<Time> lifetimes(static_cast<std::size_t>(k));
  for (auto& l : lifetimes) {
    l = util::sat_from_double(rng.exponential(1.0 / mean_));
  }
  return lifetimes;
}

FixedLifetime::FixedLifetime(Time lifetime) : lifetime_(lifetime) {
  if (lifetime < 0) {
    throw std::invalid_argument("FixedLifetime: lifetime must be >= 0");
  }
}

std::string FixedLifetime::name() const {
  return "fixed-life(" + std::to_string(lifetime_) + ")";
}

std::vector<Time> FixedLifetime::draw_lifetimes(int k, rng::Rng&) const {
  return std::vector<Time>(static_cast<std::size_t>(k), lifetime_);
}

TrialResult run_search_async(const Strategy& strategy, int k,
                             grid::Point treasure, const rng::Rng& trial_rng,
                             const StartSchedule& schedule,
                             const CrashModel& crashes,
                             const EngineConfig& config) {
  if (k < 1) throw std::invalid_argument("run_search_async: need k >= 1");
  return run_trial(strategy, k,
                   draw_environment(k, {treasure}, schedule, crashes,
                                    trial_rng),
                   trial_rng, config);
}

}  // namespace ants::sim
