#include "sim/async_engine.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <utility>

#include "util/format.h"
#include "util/sat.h"

namespace ants::sim {

namespace {

// Child-stream tags for the trial rng. Agent programs use child(a) with
// a in [0, k); these constants are far outside any realistic k and distinct
// from each other, so the three stream families never collide.
constexpr std::uint64_t kScheduleStream = 0x5C4ED11E00000001ULL;
constexpr std::uint64_t kCrashStream = 0xC7A5400000000002ULL;

}  // namespace

std::vector<Time> SyncStart::draw(int k, rng::Rng&) const {
  return std::vector<Time>(static_cast<std::size_t>(k), 0);
}

StaggeredStart::StaggeredStart(Time gap) : gap_(gap) {
  if (gap < 0) throw std::invalid_argument("StaggeredStart: gap must be >= 0");
}

std::string StaggeredStart::name() const {
  return "staggered(gap=" + std::to_string(gap_) + ")";
}

std::vector<Time> StaggeredStart::draw(int k, rng::Rng&) const {
  std::vector<Time> delays(static_cast<std::size_t>(k));
  for (int a = 0; a < k; ++a) {
    delays[static_cast<std::size_t>(a)] = util::sat_mul(gap_, a);
  }
  return delays;
}

UniformRandomStart::UniformRandomStart(Time max_delay) : max_delay_(max_delay) {
  if (max_delay < 0) {
    throw std::invalid_argument("UniformRandomStart: max_delay must be >= 0");
  }
}

std::string UniformRandomStart::name() const {
  return "uniform-start(max=" + std::to_string(max_delay_) + ")";
}

std::vector<Time> UniformRandomStart::draw(int k, rng::Rng& rng) const {
  std::vector<Time> delays(static_cast<std::size_t>(k));
  for (auto& d : delays) d = rng.uniform_int(0, max_delay_);
  return delays;
}

FixedStart::FixedStart(std::vector<Time> delays) : delays_(std::move(delays)) {
  for (const Time d : delays_) {
    if (d < 0) throw std::invalid_argument("FixedStart: delays must be >= 0");
  }
}

std::vector<Time> FixedStart::draw(int k, rng::Rng&) const {
  if (static_cast<std::size_t>(k) != delays_.size()) {
    throw std::invalid_argument("FixedStart: delay count != k");
  }
  return delays_;
}

std::vector<Time> NoCrash::draw_lifetimes(int k, rng::Rng&) const {
  return std::vector<Time>(static_cast<std::size_t>(k), kNeverTime);
}

DoaCrash::DoaCrash(double p) : p_(p) {
  if (p < 0 || p > 1) throw std::invalid_argument("DoaCrash: p must be in [0,1]");
}

std::string DoaCrash::name() const { return "doa(p=" + util::fmt_param(p_) + ")"; }

std::vector<Time> DoaCrash::draw_lifetimes(int k, rng::Rng& rng) const {
  std::vector<Time> lifetimes(static_cast<std::size_t>(k));
  for (auto& l : lifetimes) l = rng.bernoulli(p_) ? 0 : kNeverTime;
  return lifetimes;
}

ExponentialLifetime::ExponentialLifetime(double mean) : mean_(mean) {
  if (!(mean > 0)) {
    throw std::invalid_argument("ExponentialLifetime: mean must be > 0");
  }
}

std::string ExponentialLifetime::name() const {
  return "exp-life(mean=" + util::fmt_param(mean_) + ")";
}

std::vector<Time> ExponentialLifetime::draw_lifetimes(int k,
                                                      rng::Rng& rng) const {
  std::vector<Time> lifetimes(static_cast<std::size_t>(k));
  for (auto& l : lifetimes) {
    l = util::sat_from_double(rng.exponential(1.0 / mean_));
  }
  return lifetimes;
}

FixedLifetime::FixedLifetime(Time lifetime) : lifetime_(lifetime) {
  if (lifetime < 0) {
    throw std::invalid_argument("FixedLifetime: lifetime must be >= 0");
  }
}

std::string FixedLifetime::name() const {
  return "fixed-life(" + std::to_string(lifetime_) + ")";
}

std::vector<Time> FixedLifetime::draw_lifetimes(int k, rng::Rng&) const {
  return std::vector<Time>(static_cast<std::size_t>(k), lifetime_);
}

AsyncSearchResult run_search_async(const Strategy& strategy, int k,
                                   grid::Point treasure,
                                   const rng::Rng& trial_rng,
                                   const StartSchedule& schedule,
                                   const CrashModel& crashes,
                                   const EngineConfig& config) {
  if (k < 1) throw std::invalid_argument("run_search_async: need k >= 1");

  rng::Rng sched_rng = trial_rng.child(kScheduleStream);
  rng::Rng crash_rng = trial_rng.child(kCrashStream);
  const std::vector<Time> starts = schedule.draw(k, sched_rng);
  const std::vector<Time> lifetimes = crashes.draw_lifetimes(k, crash_rng);

  AsyncSearchResult result;
  result.last_start = *std::max_element(starts.begin(), starts.end());

  // The source node itself needs no movement: any agent that ever starts
  // finds a treasure placed at the source the moment it wakes up.
  if (treasure == grid::kOrigin) {
    const auto first =
        std::min_element(starts.begin(), starts.end()) - starts.begin();
    result.base.found = true;
    result.base.time = starts[static_cast<std::size_t>(first)];
    result.base.finder = static_cast<int>(first);
    result.from_last_start = 0;
    return result;
  }

  // Same interleaved min-heap sweep as run_search (see engine.cpp for the
  // rationale), with two differences: an agent's heap key is its ABSOLUTE
  // clock start + elapsed, and an agent whose elapsed time reaches its
  // lifetime is retired instead of re-enqueued.
  struct AgentState {
    std::unique_ptr<AgentProgram> program;
    rng::Rng rng;
    grid::Point pos = grid::kOrigin;
    Time elapsed = 0;  ///< active time in the agent's own program
    std::int64_t segments = 0;
  };
  std::vector<AgentState> agents;
  agents.reserve(static_cast<std::size_t>(k));
  for (int a = 0; a < k; ++a) {
    agents.push_back(AgentState{
        strategy.make_program(AgentContext{a, k}),
        trial_rng.child(static_cast<std::uint64_t>(a)), grid::kOrigin, 0, 0});
  }

  using Entry = std::pair<Time, int>;  // (absolute clock, agent)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  for (int a = 0; a < k; ++a) {
    const auto ua = static_cast<std::size_t>(a);
    if (lifetimes[ua] <= 0) {
      ++result.crashed;  // dead on arrival: never acts
      continue;
    }
    queue.emplace(starts[ua], a);
  }

  Time best = kNeverTime;
  int finder = -1;

  while (!queue.empty()) {
    const auto [abs_clock, a] = queue.top();
    queue.pop();
    const Time bound =
        std::min(config.time_cap, best == kNeverTime ? best : best - 1);
    if (abs_clock > bound) break;

    const auto ua = static_cast<std::size_t>(a);
    AgentState& agent = agents[ua];
    if (++agent.segments > config.max_segments_per_agent) {
      throw std::runtime_error(
          "async engine: agent exceeded segment budget without terminating");
    }
    ++result.base.segments;

    const Segment seg =
        realize(agent.program->next(agent.rng), agent.pos, grid::kOrigin);
    if (const auto hit = hit_offset(seg, treasure)) {
      const Time when_active = util::sat_add(agent.elapsed, *hit);
      // A hit only counts while the agent is still alive.
      if (when_active <= lifetimes[ua]) {
        const Time when_abs = util::sat_add(starts[ua], when_active);
        if (when_abs <= config.time_cap &&
            (when_abs < best || (when_abs == best && a < finder))) {
          best = when_abs;
          finder = a;
        }
      }
    }
    agent.elapsed = util::sat_add(agent.elapsed, duration(seg));
    agent.pos = end_position(seg);
    if (agent.elapsed >= lifetimes[ua]) {
      ++result.crashed;  // halts mid-plan; position is wherever it died
      continue;
    }
    queue.emplace(util::sat_add(starts[ua], agent.elapsed), a);
  }

  if (best != kNeverTime) {
    result.base.found = true;
    result.base.time = best;
    result.base.finder = finder;
    result.from_last_start = best > result.last_start ? best - result.last_start : 0;
  } else {
    result.base.found = false;
    result.base.time = config.time_cap;
    result.base.finder = -1;
    result.from_last_start = config.time_cap;
  }
  return result;
}

}  // namespace ants::sim
