#include "sim/trial.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>
#include <queue>
#include <stdexcept>
#include <utility>

#include "util/sat.h"

namespace ants::sim {

namespace detail {

void validate_trial_args(const TrialStrategy& strategy, int k,
                         const TrialEnvironment& env) {
  const int set = (strategy.segment != nullptr ? 1 : 0) +
                  (strategy.step != nullptr ? 1 : 0) +
                  (strategy.plane != nullptr ? 1 : 0);
  if (set == 0) throw std::invalid_argument("run_trial: no strategy given");
  if (set > 1) {
    throw std::invalid_argument("run_trial: ambiguous strategy family");
  }
  if (k < 1) throw std::invalid_argument("run_trial: need k >= 1");
  // A windowed process (Poisson arrivals) may legitimately realize ZERO
  // targets in a trial; the static model still requires at least one.
  const std::size_t n_targets = strategy.plane != nullptr
                                    ? env.plane_targets.size()
                                    : env.targets.size();
  if (n_targets == 0 && !env.has_target_windows()) {
    if (strategy.plane != nullptr) {
      throw std::invalid_argument(
          "run_trial: plane backend needs >= 1 plane target");
    }
    throw std::invalid_argument("run_trial: need >= 1 target");
  }
  if (!env.target_appear.empty() && env.target_appear.size() != n_targets) {
    throw std::invalid_argument("run_trial: target_appear count != targets");
  }
  if (!env.target_vanish.empty() && env.target_vanish.size() != n_targets) {
    throw std::invalid_argument("run_trial: target_vanish count != targets");
  }
  if (!env.target_drift.empty() && env.target_drift.size() != n_targets) {
    throw std::invalid_argument("run_trial: target_drift count != targets");
  }
  if ((env.has_target_drift() || env.capture_dwell > 0) &&
      strategy.step == nullptr) {
    // Segment/plane backends have no per-tick target position or contact
    // history; drifting targets and dwell capture are lock-step features.
    throw std::invalid_argument(
        "run_trial: target drift / dwell capture require a step-level "
        "strategy");
  }
  const auto uk = static_cast<std::size_t>(k);
  if (!env.starts.empty() && env.starts.size() != uk) {
    throw std::invalid_argument("run_trial: starts count != k");
  }
  if (!env.lifetimes.empty() && env.lifetimes.size() != uk) {
    throw std::invalid_argument("run_trial: lifetimes count != k");
  }
}

/// Fills the shared result fields for a target sitting on the source node
/// (see trial.h). Matches the historical engines for the base model
/// (run_search: t = 0, finder 0); under a crash model, dead-on-arrival
/// agents are skipped as finder candidates and counted as crashed — a
/// lifetime <= 0 agent never acts, so crediting it with the find (and
/// leaving result->crashed at 0) made mean_crashed/survivors disagree with
/// the non-origin path.
bool resolve_origin_target(const TrialEnvironment& env, int k, Time time_cap,
                           TrialResult* result) {
  for (std::size_t ti = 0; ti < env.targets.size(); ++ti) {
    if (env.targets[ti] != grid::kOrigin) continue;
    int finder = -1;
    Time first_start = 0;
    for (int a = 0; a < k; ++a) {
      const auto ia = static_cast<std::size_t>(a);
      if (!env.lifetimes.empty() && env.lifetimes[ia] <= 0) {
        ++result->crashed;  // dead on arrival: never acts
        continue;
      }
      const Time start = env.starts.empty() ? Time{0} : env.starts[ia];
      if (finder == -1 || start < first_start) {
        finder = a;
        first_start = start;
      }
    }
    if (finder == -1 || first_start > time_cap) {
      // Everybody dead on arrival (or the earliest survivor wakes up past
      // the cap): nobody ever stands on the source target in time. Mirrors
      // the sweep loops' not-found outcome.
      result->found = false;
      result->time = static_cast<double>(time_cap);
      result->from_last_start = static_cast<double>(time_cap);
      return true;
    }
    result->found = true;
    result->time = static_cast<double>(first_start);
    result->finder = finder;
    result->first_target = static_cast<int>(ti);
    result->from_last_start = 0;
    return true;
  }
  return false;
}

double appear_of(const TrialEnvironment& env, std::size_t ti) noexcept {
  return env.target_appear.empty() ? 0.0 : env.target_appear[ti];
}

double vanish_of(const TrialEnvironment& env, std::size_t ti) noexcept {
  return env.target_vanish.empty() ? kNeverVanish : env.target_vanish[ti];
}

Time window_from_offset(double appear, Time base) noexcept {
  const double lo = appear - static_cast<double>(base);
  if (lo <= 0) return 0;
  return static_cast<Time>(std::ceil(lo));
}

grid::Point target_position_at(const TrialEnvironment& env, std::size_t ti,
                               Time t) noexcept {
  grid::Point p = env.targets[ti];
  if (!env.target_drift.empty()) {
    const TargetDrift& d = env.target_drift[ti];
    p.x += std::llround(d.vx * static_cast<double>(t));
    p.y += std::llround(d.vy * static_cast<double>(t));
  }
  return p;
}

}  // namespace detail

namespace {

using detail::appear_of;
using detail::kNeverVanish;
using detail::target_position_at;
using detail::vanish_of;
using detail::window_from_offset;

/// Segment backend, generalized over appear/vanish windows and collect-all.
/// A separate loop from the static path so the classic model stays
/// byte-identical instruction-for-instruction; target detection is on
/// ARRIVAL (no origin-target special case — see TrialEnvironment docs).
/// Drift and dwell were rejected by validate_trial_args for this family.
TrialResult run_segment_trial_dynamic(const Strategy& strategy, int k,
                                      const TrialEnvironment& env,
                                      const rng::Rng& trial_rng,
                                      const EngineConfig& config) {
  const Time last_start = env.last_start();
  const std::size_t nt = env.targets.size();
  const bool collect = env.collect_all;
  TrialResult result;
  result.last_start = static_cast<double>(last_start);
  if (collect) result.target_times.assign(nt, -1.0);
  if (collect && nt == 0) {
    // Zero spawned targets: vacuously all found at t = 0; nobody acts.
    result.found = true;
    result.time = 0;
    result.from_last_start = 0;
    for (int a = 0; a < k; ++a) {
      if (!env.lifetimes.empty() &&
          env.lifetimes[static_cast<std::size_t>(a)] <= 0) {
        ++result.crashed;
      }
    }
    return result;
  }

  const auto start_of = [&](int a) {
    return env.starts.empty() ? Time{0}
                              : env.starts[static_cast<std::size_t>(a)];
  };
  const auto lifetime_of = [&](int a) {
    return env.lifetimes.empty()
               ? kNeverTime
               : env.lifetimes[static_cast<std::size_t>(a)];
  };

  struct AgentState {
    std::unique_ptr<AgentProgram> program;
    rng::Rng rng;
    grid::Point pos = grid::kOrigin;
    Time elapsed = 0;
    std::int64_t segments = 0;
  };
  std::vector<AgentState> agents;
  agents.reserve(static_cast<std::size_t>(k));
  for (int a = 0; a < k; ++a) {
    agents.push_back(AgentState{
        strategy.make_program(AgentContext{a, k}),
        trial_rng.child(static_cast<std::uint64_t>(a)), grid::kOrigin, 0, 0});
  }

  using Entry = std::pair<Time, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  for (int a = 0; a < k; ++a) {
    if (lifetime_of(a) <= 0) {
      ++result.crashed;
      continue;
    }
    queue.emplace(start_of(a), a);
  }

  // Per-target earliest hit; in collect-first mode only slot semantics
  // differ (the race collapses to a single best across targets).
  std::vector<Time> best_t(nt, kNeverTime);
  std::vector<int> finder_t(nt, -1);
  Time best_first = kNeverTime;  // collect-first race bound

  while (!queue.empty()) {
    const auto [abs_clock, a] = queue.top();
    queue.pop();
    // The bound below which a pop can still improve the outcome: in the
    // first-find race it is the classic best - 1; in collect-all it is the
    // loosest per-target bound (an unfound target keeps the cap open).
    Time bound = config.time_cap;
    if (!collect) {
      bound = std::min(bound, best_first == kNeverTime ? best_first
                                                       : best_first - 1);
    } else {
      Time loosest = 0;
      for (std::size_t ti = 0; ti < nt; ++ti) {
        loosest = std::max(loosest, best_t[ti] == kNeverTime
                                        ? config.time_cap
                                        : best_t[ti] - 1);
      }
      bound = std::min(bound, loosest);
    }
    if (abs_clock > bound) break;

    AgentState& agent = agents[static_cast<std::size_t>(a)];
    if (++agent.segments > config.max_segments_per_agent) {
      throw std::runtime_error(
          "run_trial: agent exceeded segment budget without terminating");
    }
    ++result.segments;

    const Segment seg =
        realize(agent.program->next(agent.rng), agent.pos, grid::kOrigin);
    const Time base = util::sat_add(start_of(a), agent.elapsed);
    for (std::size_t ti = 0; ti < nt; ++ti) {
      const Time from = window_from_offset(appear_of(env, ti), base);
      const auto hit = hit_offset_from(seg, env.targets[ti], from);
      if (!hit) continue;
      const Time when_active = util::sat_add(agent.elapsed, *hit);
      if (when_active > lifetime_of(a)) continue;
      const Time when_abs = util::sat_add(start_of(a), when_active);
      if (when_abs > config.time_cap) continue;
      // The first in-window visit at or past vanish means every later
      // revisit is as well (the live window is one interval).
      if (static_cast<double>(when_abs) >= vanish_of(env, ti)) continue;
      if (when_abs < best_t[ti] ||
          (when_abs == best_t[ti] && a < finder_t[ti])) {
        best_t[ti] = when_abs;
        finder_t[ti] = a;
      }
      if (when_abs < best_first) best_first = when_abs;
    }
    agent.elapsed = util::sat_add(agent.elapsed, duration(seg));
    agent.pos = end_position(seg);
    if (agent.elapsed >= lifetime_of(a)) {
      ++result.crashed;
      continue;
    }
    queue.emplace(util::sat_add(start_of(a), agent.elapsed), a);
  }

  // Earliest capture (ties: lowest agent, then lowest target) fills
  // finder/first_target in both modes.
  std::size_t n_found = 0;
  Time t_all = 0;
  Time first_time = kNeverTime;
  for (std::size_t ti = 0; ti < nt; ++ti) {
    if (best_t[ti] == kNeverTime) continue;
    ++n_found;
    t_all = std::max(t_all, best_t[ti]);
    if (collect) result.target_times[ti] = static_cast<double>(best_t[ti]);
    if (best_t[ti] < first_time ||
        (best_t[ti] == first_time && finder_t[ti] < result.finder)) {
      first_time = best_t[ti];
      result.finder = finder_t[ti];
      result.first_target = static_cast<int>(ti);
    }
  }
  const bool all_found = collect ? n_found == nt : n_found > 0;
  if (all_found && (collect || first_time != kNeverTime)) {
    result.found = true;
    result.time = static_cast<double>(collect ? t_all : first_time);
    const Time done = collect ? t_all : first_time;
    result.from_last_start =
        static_cast<double>(done > last_start ? done - last_start : 0);
  } else {
    result.found = false;
    result.time = static_cast<double>(config.time_cap);
    result.from_last_start = static_cast<double>(config.time_cap);
  }
  return result;
}

/// Segment backend: the interleaved min-heap sweep of the historical
/// engines, generalized over starts/lifetimes/target sets. Agents are
/// interleaved by ABSOLUTE clock (start + active time, smallest first)
/// rather than processed to completion one at a time: with deterministic
/// partitioned strategies (e.g. the sector sweep) only ONE agent ever
/// reaches a target, so any agent processed before it under an infinite
/// bound would never terminate. Interleaving guarantees the eventual finder
/// sets the bound after simulating at most its own hit time, and every
/// other agent stops as soon as its clock passes that bound.
TrialResult run_segment_trial(const Strategy& strategy, int k,
                              const TrialEnvironment& env,
                              const rng::Rng& trial_rng,
                              const EngineConfig& config) {
  if (env.has_target_windows() || env.collect_all) {
    return run_segment_trial_dynamic(strategy, k, env, trial_rng, config);
  }
  const Time last_start = env.last_start();
  TrialResult result;
  result.last_start = static_cast<double>(last_start);
  if (detail::resolve_origin_target(env, k, config.time_cap, &result)) {
    return result;
  }

  const auto start_of = [&](int a) {
    return env.starts.empty() ? Time{0}
                              : env.starts[static_cast<std::size_t>(a)];
  };
  const auto lifetime_of = [&](int a) {
    return env.lifetimes.empty()
               ? kNeverTime
               : env.lifetimes[static_cast<std::size_t>(a)];
  };

  struct AgentState {
    std::unique_ptr<AgentProgram> program;
    rng::Rng rng;
    grid::Point pos = grid::kOrigin;
    Time elapsed = 0;  ///< active time in the agent's own program
    std::int64_t segments = 0;
  };
  std::vector<AgentState> agents;
  agents.reserve(static_cast<std::size_t>(k));
  for (int a = 0; a < k; ++a) {
    agents.push_back(AgentState{
        strategy.make_program(AgentContext{a, k}),
        trial_rng.child(static_cast<std::uint64_t>(a)), grid::kOrigin, 0, 0});
  }

  // Min-heap of (absolute clock, agent index); lower index wins ties so the
  // outcome is deterministic and matches the brute-force reference order.
  using Entry = std::pair<Time, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  for (int a = 0; a < k; ++a) {
    if (lifetime_of(a) <= 0) {
      ++result.crashed;  // dead on arrival: never acts
      continue;
    }
    queue.emplace(start_of(a), a);
  }

  Time best = kNeverTime;
  int finder = -1;
  int first_target = -1;

  while (!queue.empty()) {
    const auto [abs_clock, a] = queue.top();
    queue.pop();
    // All other clocks are >= this one; once it exceeds the bound (the best
    // hit so far, or the cap), no agent can improve the outcome.
    const Time bound =
        std::min(config.time_cap, best == kNeverTime ? best : best - 1);
    if (abs_clock > bound) break;

    AgentState& agent = agents[static_cast<std::size_t>(a)];
    if (++agent.segments > config.max_segments_per_agent) {
      throw std::runtime_error(
          "run_trial: agent exceeded segment budget without terminating");
    }
    ++result.segments;

    const Segment seg =
        realize(agent.program->next(agent.rng), agent.pos, grid::kOrigin);
    for (std::size_t ti = 0; ti < env.targets.size(); ++ti) {
      const auto hit = hit_offset(seg, env.targets[ti]);
      if (!hit) continue;
      const Time when_active = util::sat_add(agent.elapsed, *hit);
      // A hit only counts while the agent is still alive.
      if (when_active > lifetime_of(a)) continue;
      const Time when_abs = util::sat_add(start_of(a), when_active);
      if (when_abs > config.time_cap) continue;
      // Earliest hit wins; exact ties go to the lowest agent index, then to
      // the lowest target index — the historical engines' rule.
      if (when_abs < best || (when_abs == best && a < finder)) {
        best = when_abs;
        finder = a;
        first_target = static_cast<int>(ti);
      }
    }
    agent.elapsed = util::sat_add(agent.elapsed, duration(seg));
    agent.pos = end_position(seg);
    if (agent.elapsed >= lifetime_of(a)) {
      ++result.crashed;  // halts mid-plan; position is wherever it died
      continue;
    }
    queue.emplace(util::sat_add(start_of(a), agent.elapsed), a);
  }

  if (best != kNeverTime) {
    result.found = true;
    result.time = static_cast<double>(best);
    result.finder = finder;
    result.first_target = first_target;
    result.from_last_start =
        static_cast<double>(best > last_start ? best - last_start : 0);
  } else {
    result.found = false;
    result.time = static_cast<double>(config.time_cap);
    result.from_last_start = static_cast<double>(config.time_cap);
  }
  return result;
}

/// Lock-step backend, generalized over appear/vanish windows, drifting
/// targets, dwell capture, and collect-all. A separate loop from the static
/// path so the classic model stays tick-for-tick identical. Contact under a
/// dwell policy is the L1-radius-1 disc (see TrialEnvironment docs); a find
/// confirms when an (agent, target) pair holds contact for capture_dwell + 1
/// consecutive post-move ticks, and losing contact — moving out of the disc
/// or the target vanishing — resets that pair's progress.
TrialResult run_step_trial_dynamic(const StepStrategy& strategy, int k,
                                   const TrialEnvironment& env,
                                   const rng::Rng& trial_rng,
                                   const EngineConfig& config) {
  const Time last_start = env.last_start();
  const std::size_t nt = env.targets.size();
  const bool collect = env.collect_all;
  const bool windows = env.has_target_windows();
  const Time dwell = env.capture_dwell;
  const auto uk = static_cast<std::size_t>(k);
  TrialResult result;
  result.last_start = static_cast<double>(last_start);
  if (collect) result.target_times.assign(nt, -1.0);

  const auto start_of = [&](int a) {
    return env.starts.empty() ? Time{0}
                              : env.starts[static_cast<std::size_t>(a)];
  };
  const auto lifetime_of = [&](int a) {
    return env.lifetimes.empty()
               ? kNeverTime
               : env.lifetimes[static_cast<std::size_t>(a)];
  };

  std::vector<std::unique_ptr<StepProgram>> programs;
  std::vector<rng::Rng> rngs;
  std::vector<grid::Point> pos(uk, grid::kOrigin);
  std::vector<char> crashed(uk, 0);
  programs.reserve(uk);
  rngs.reserve(uk);
  for (int a = 0; a < k; ++a) {
    programs.push_back(strategy.make_program(AgentContext{a, k}));
    rngs.push_back(trial_rng.child(static_cast<std::uint64_t>(a)));
    if (lifetime_of(a) <= 0) {
      crashed[static_cast<std::size_t>(a)] = 1;
      ++result.crashed;
    }
  }

  if (collect && nt == 0) {
    // Zero spawned targets: vacuously all found at t = 0; nobody acts.
    result.found = true;
    result.time = 0;
    result.from_last_start = 0;
    return result;
  }

  std::vector<char> target_found(nt, 0);
  std::vector<Time> found_at(nt, 0);
  // Consecutive-contact counters per (agent, target) pair, dwell mode only.
  std::vector<Time> contact(dwell > 0 ? uk * nt : 0, 0);
  std::size_t n_found = 0;
  int first_finder = -1;
  int first_ti = -1;

  // nt == 0 (zero-spawn windowed process, first-of-set mode) still sweeps
  // to the cap so crash/segment accounting matches the segment and plane
  // backends, which run their heaps out naturally.
  for (Time t = 1; t <= config.time_cap && (nt == 0 || n_found < nt); ++t) {
    for (int a = 0; a < k; ++a) {
      const auto ia = static_cast<std::size_t>(a);
      if (crashed[ia]) continue;
      if (t <= start_of(a)) continue;
      const Time active = t - start_of(a);
      if (active > lifetime_of(a)) {
        crashed[ia] = 1;
        ++result.crashed;
        continue;
      }
      const grid::Point next = programs[ia]->step(rngs[ia], pos[ia]);
      assert(grid::l1_dist(next, pos[ia]) <= 1);
      pos[ia] = next;
      ++result.segments;
      for (std::size_t ti = 0; ti < nt; ++ti) {
        if (target_found[ti]) continue;
        const bool alive =
            !windows || (appear_of(env, ti) <= static_cast<double>(t) &&
                         static_cast<double>(t) < vanish_of(env, ti));
        const grid::Point tp = target_position_at(env, ti, t);
        if (dwell > 0) {
          const bool in_disc = alive && grid::l1_dist(next, tp) <= 1;
          Time& held = contact[ia * nt + ti];
          held = in_disc ? held + 1 : 0;
          if (held < dwell + 1) continue;
        } else if (!alive || next != tp) {
          continue;
        }
        target_found[ti] = 1;
        found_at[ti] = t;
        ++n_found;
        if (first_ti < 0) {
          first_finder = a;
          first_ti = static_cast<int>(ti);
        }
        if (collect) result.target_times[ti] = static_cast<double>(t);
        if (!collect) {
          result.found = true;
          result.time = static_cast<double>(t);
          result.finder = a;
          result.first_target = static_cast<int>(ti);
          result.from_last_start =
              static_cast<double>(t > last_start ? t - last_start : 0);
          return result;
        }
      }
    }
  }

  result.finder = first_finder;
  result.first_target = first_ti;
  if (collect && n_found == nt) {
    Time t_all = 0;
    for (std::size_t ti = 0; ti < nt; ++ti) {
      t_all = std::max(t_all, found_at[ti]);
    }
    result.found = true;
    result.time = static_cast<double>(t_all);
    result.from_last_start =
        static_cast<double>(t_all > last_start ? t_all - last_start : 0);
  } else {
    result.found = false;
    result.time = static_cast<double>(config.time_cap);
    result.from_last_start = static_cast<double>(config.time_cap);
  }
  return result;
}

/// Lock-step backend: every alive, started agent advances one edge per
/// tick. Under a sync/no-crash single-target environment this is
/// tick-for-tick the historical run_step_search loop (agents move in index
/// order within a tick, the first to stand on a target wins).
TrialResult run_step_trial(const StepStrategy& strategy, int k,
                           const TrialEnvironment& env,
                           const rng::Rng& trial_rng,
                           const EngineConfig& config) {
  if (config.time_cap == kNeverTime) {
    // Random-walk-style strategies have infinite expected hitting time on
    // Z^2 (see the paper's related-work discussion); an uncapped run is a
    // programming error.
    throw std::invalid_argument(
        "run_trial: step strategies require a finite time_cap");
  }
  if (env.has_dynamic_targets()) {
    return run_step_trial_dynamic(strategy, k, env, trial_rng, config);
  }

  const Time last_start = env.last_start();
  TrialResult result;
  result.last_start = static_cast<double>(last_start);
  if (detail::resolve_origin_target(env, k, config.time_cap, &result)) {
    return result;
  }

  const auto start_of = [&](int a) {
    return env.starts.empty() ? Time{0}
                              : env.starts[static_cast<std::size_t>(a)];
  };
  const auto lifetime_of = [&](int a) {
    return env.lifetimes.empty()
               ? kNeverTime
               : env.lifetimes[static_cast<std::size_t>(a)];
  };

  std::vector<std::unique_ptr<StepProgram>> programs;
  std::vector<rng::Rng> rngs;
  std::vector<grid::Point> pos(static_cast<std::size_t>(k), grid::kOrigin);
  std::vector<char> crashed(static_cast<std::size_t>(k), 0);
  programs.reserve(static_cast<std::size_t>(k));
  rngs.reserve(static_cast<std::size_t>(k));
  for (int a = 0; a < k; ++a) {
    programs.push_back(strategy.make_program(AgentContext{a, k}));
    rngs.push_back(trial_rng.child(static_cast<std::uint64_t>(a)));
    if (lifetime_of(a) <= 0) {
      crashed[static_cast<std::size_t>(a)] = 1;  // dead on arrival
      ++result.crashed;
    }
  }

  for (Time t = 1; t <= config.time_cap; ++t) {
    for (int a = 0; a < k; ++a) {
      const auto ia = static_cast<std::size_t>(a);
      if (crashed[ia]) continue;
      if (t <= start_of(a)) continue;  // not yet started: waits at the source
      const Time active = t - start_of(a);
      if (active > lifetime_of(a)) {
        crashed[ia] = 1;  // halts in place; does not "unvisit" anything
        ++result.crashed;
        continue;
      }
      const grid::Point next = programs[ia]->step(rngs[ia], pos[ia]);
      assert(grid::l1_dist(next, pos[ia]) <= 1);
      pos[ia] = next;
      ++result.segments;
      for (std::size_t ti = 0; ti < env.targets.size(); ++ti) {
        if (next != env.targets[ti]) continue;
        result.found = true;
        result.time = static_cast<double>(t);
        result.finder = a;
        result.first_target = static_cast<int>(ti);
        result.from_last_start =
            static_cast<double>(t > last_start ? t - last_start : 0);
        return result;
      }
    }
  }

  result.found = false;
  result.time = static_cast<double>(config.time_cap);
  result.from_last_start = static_cast<double>(config.time_cap);
  return result;
}

/// Plane backend: adapts the trial environment and engine config to the
/// continuous executor (plane::run_plane_trial). Integer start delays and
/// lifetimes read as continuous time units, so the same schedule/crash
/// draws perturb both substrates identically; fractional sighting times
/// come back through TrialResult's double fields untouched.
TrialResult run_plane_backend_trial(const plane::PlaneStrategy& strategy,
                                    int k, const TrialEnvironment& env,
                                    const rng::Rng& trial_rng,
                                    const EngineConfig& config) {
  plane::PlaneTrialEnvironment plane_env;
  plane_env.targets = env.plane_targets;
  plane_env.starts.assign(env.starts.begin(), env.starts.end());
  plane_env.lifetimes.reserve(env.lifetimes.size());
  for (const Time life : env.lifetimes) {
    plane_env.lifetimes.push_back(life == kNeverTime
                                      ? plane::kPlaneNever
                                      : static_cast<plane::Time>(life));
  }
  plane_env.target_appear = env.target_appear;
  plane_env.target_vanish = env.target_vanish;
  plane_env.windowed = env.windowed;
  plane_env.collect_all = env.collect_all;

  plane::PlaneEngineConfig plane_config;
  plane_config.sight_radius = config.sight_radius;
  plane_config.spiral_pitch = config.spiral_pitch;
  plane_config.time_cap = config.time_cap == kNeverTime
                              ? plane::kPlaneNever
                              : static_cast<plane::Time>(config.time_cap);
  plane_config.max_segments_per_agent = config.max_segments_per_agent;

  const plane::PlaneTrialResult r =
      plane::run_plane_trial(strategy, k, plane_env, trial_rng, plane_config);
  TrialResult result;
  result.time = r.time;
  result.found = r.found;
  result.finder = r.finder;
  result.first_target = r.first_target;
  result.segments = r.segments;
  result.last_start = r.last_start;
  result.from_last_start = r.from_last_start;
  result.crashed = r.crashed;
  result.target_times = r.target_times;
  return result;
}

}  // namespace

Time TrialEnvironment::last_start() const noexcept {
  if (starts.empty()) return 0;
  return *std::max_element(starts.begin(), starts.end());
}

TrialEnvironment single_target_environment(grid::Point treasure) {
  TrialEnvironment env;
  env.targets = {treasure};
  return env;
}

TrialEnvironment draw_environment(int k, std::vector<grid::Point> targets,
                                  const StartSchedule& schedule,
                                  const CrashModel& crashes,
                                  const rng::Rng& trial_rng) {
  TrialEnvironment env;
  env.targets = std::move(targets);
  return draw_environment(k, std::move(env), schedule, crashes, trial_rng);
}

TrialEnvironment draw_environment(int k, TrialEnvironment env,
                                  const StartSchedule& schedule,
                                  const CrashModel& crashes,
                                  const rng::Rng& trial_rng) {
  if (k < 1) throw std::invalid_argument("draw_environment: need k >= 1");
  rng::Rng sched_rng = trial_rng.child(kScheduleStream);
  rng::Rng crash_rng = trial_rng.child(kCrashStream);
  env.starts = schedule.draw(k, sched_rng);
  env.lifetimes = crashes.draw_lifetimes(k, crash_rng);
  return env;
}

TrialResult run_trial(const TrialStrategy& strategy, int k,
                      const TrialEnvironment& env, const rng::Rng& trial_rng,
                      const EngineConfig& config) {
  detail::validate_trial_args(strategy, k, env);
  if (strategy.plane != nullptr) {
    return run_plane_backend_trial(*strategy.plane, k, env, trial_rng,
                                   config);
  }
  if (strategy.step != nullptr) {
    return run_step_trial(*strategy.step, k, env, trial_rng, config);
  }
  return run_segment_trial(*strategy.segment, k, env, trial_rng, config);
}

TrialResult run_trial(const Strategy& strategy, int k,
                      const TrialEnvironment& env, const rng::Rng& trial_rng,
                      const EngineConfig& config) {
  TrialStrategy s;
  s.segment = &strategy;
  return run_trial(s, k, env, trial_rng, config);
}

TrialResult run_trial(const StepStrategy& strategy, int k,
                      const TrialEnvironment& env, const rng::Rng& trial_rng,
                      const EngineConfig& config) {
  TrialStrategy s;
  s.step = &strategy;
  return run_trial(s, k, env, trial_rng, config);
}

TrialResult run_trial(const plane::PlaneStrategy& strategy, int k,
                      const TrialEnvironment& env, const rng::Rng& trial_rng,
                      const EngineConfig& config) {
  TrialStrategy s;
  s.plane = &strategy;
  return run_trial(s, k, env, trial_rng, config);
}

TargetProcess single_target(Placement placement) {
  TargetProcess process;
  process.grid = [placement = std::move(placement)](
                     rng::Rng& rng, std::int64_t distance, Time /*time_cap*/,
                     TrialEnvironment* env) {
    env->targets.push_back(placement(rng, distance));
  };
  return process;
}

TargetProcess single_plane_target(std::function<double(rng::Rng&)> angle) {
  TargetProcess process;
  process.plane = [angle = std::move(angle)](rng::Rng& rng,
                                             std::int64_t distance,
                                             Time /*time_cap*/,
                                             TrialEnvironment* env) {
    env->plane_targets.push_back(plane::unit(angle(rng)) *
                                 static_cast<double>(distance));
  };
  return process;
}

namespace {

/// Shared Poisson arrival/lifetime machinery: positions are appended by
/// `spawn`, which must consume exactly one position draw per call. All
/// randomness comes from the target stream; draw order per arrival is
/// inter-arrival, position, lifetime.
template <typename SpawnFn>
void realize_poisson(double rate, double mean_life, Time time_cap,
                     const rng::Rng& trial_rng, TrialEnvironment* env,
                     SpawnFn&& spawn) {
  if (time_cap == kNeverTime) {
    throw std::invalid_argument(
        "poisson targets: need a finite time_cap horizon");
  }
  env->windowed = true;  // zero arrivals is a legitimate realization
  rng::Rng target_rng = trial_rng.child(kTargetStream);
  const double horizon = static_cast<double>(time_cap);
  double t = 0;
  while (true) {
    t += target_rng.exponential(rate);
    if (!(t <= horizon)) break;
    spawn(target_rng);
    env->target_appear.push_back(t);
    env->target_vanish.push_back(
        mean_life > 0 ? t + target_rng.exponential(1.0 / mean_life)
                      : kNeverVanish);
  }
}

}  // namespace

TargetProcess poisson_targets(double rate, double mean_life,
                              Placement placement) {
  if (!(rate > 0)) {
    throw std::invalid_argument("poisson targets: need rate > 0");
  }
  TargetProcess process;
  process.grid = [rate, mean_life, placement = std::move(placement)](
                     rng::Rng& rng, std::int64_t distance, Time time_cap,
                     TrialEnvironment* env) {
    realize_poisson(rate, mean_life, time_cap, rng, env,
                    [&](rng::Rng& target_rng) {
                      env->targets.push_back(placement(target_rng, distance));
                    });
  };
  return process;
}

TargetProcess poisson_plane_targets(double rate, double mean_life,
                                    std::function<double(rng::Rng&)> angle) {
  if (!(rate > 0)) {
    throw std::invalid_argument("poisson targets: need rate > 0");
  }
  TargetProcess process;
  process.plane = [rate, mean_life, angle = std::move(angle)](
                      rng::Rng& rng, std::int64_t distance, Time time_cap,
                      TrialEnvironment* env) {
    realize_poisson(rate, mean_life, time_cap, rng, env,
                    [&](rng::Rng& target_rng) {
                      env->plane_targets.push_back(
                          plane::unit(angle(target_rng)) *
                          static_cast<double>(distance));
                    });
  };
  return process;
}

TargetProcess drifting_target(double speed, double angle_turns,
                              Placement placement) {
  TargetProcess process;
  process.grid = [speed, angle_turns, placement = std::move(placement)](
                     rng::Rng& rng, std::int64_t distance, Time /*time_cap*/,
                     TrialEnvironment* env) {
    rng::Rng target_rng = rng.child(kTargetStream);
    const double heading = plane::kTwoPi * angle_turns;
    env->targets.push_back(placement(target_rng, distance));
    env->target_drift.push_back(
        TargetDrift{speed * std::cos(heading), speed * std::sin(heading)});
  };
  return process;
}

}  // namespace ants::sim
