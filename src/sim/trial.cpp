#include "sim/trial.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <queue>
#include <stdexcept>
#include <utility>

#include "util/sat.h"

namespace ants::sim {

namespace detail {

void validate_trial_args(const TrialStrategy& strategy, int k,
                         const TrialEnvironment& env) {
  const int set = (strategy.segment != nullptr ? 1 : 0) +
                  (strategy.step != nullptr ? 1 : 0) +
                  (strategy.plane != nullptr ? 1 : 0);
  if (set == 0) throw std::invalid_argument("run_trial: no strategy given");
  if (set > 1) {
    throw std::invalid_argument("run_trial: ambiguous strategy family");
  }
  if (k < 1) throw std::invalid_argument("run_trial: need k >= 1");
  if (strategy.plane != nullptr) {
    if (env.plane_targets.empty()) {
      throw std::invalid_argument(
          "run_trial: plane backend needs >= 1 plane target");
    }
  } else if (env.targets.empty()) {
    throw std::invalid_argument("run_trial: need >= 1 target");
  }
  const auto uk = static_cast<std::size_t>(k);
  if (!env.starts.empty() && env.starts.size() != uk) {
    throw std::invalid_argument("run_trial: starts count != k");
  }
  if (!env.lifetimes.empty() && env.lifetimes.size() != uk) {
    throw std::invalid_argument("run_trial: lifetimes count != k");
  }
}

/// Fills the shared result fields for a target sitting on the source node
/// (see trial.h). Matches the historical engines for the base model
/// (run_search: t = 0, finder 0); under a crash model, dead-on-arrival
/// agents are skipped as finder candidates and counted as crashed — a
/// lifetime <= 0 agent never acts, so crediting it with the find (and
/// leaving result->crashed at 0) made mean_crashed/survivors disagree with
/// the non-origin path.
bool resolve_origin_target(const TrialEnvironment& env, int k, Time time_cap,
                           TrialResult* result) {
  for (std::size_t ti = 0; ti < env.targets.size(); ++ti) {
    if (env.targets[ti] != grid::kOrigin) continue;
    int finder = -1;
    Time first_start = 0;
    for (int a = 0; a < k; ++a) {
      const auto ia = static_cast<std::size_t>(a);
      if (!env.lifetimes.empty() && env.lifetimes[ia] <= 0) {
        ++result->crashed;  // dead on arrival: never acts
        continue;
      }
      const Time start = env.starts.empty() ? Time{0} : env.starts[ia];
      if (finder == -1 || start < first_start) {
        finder = a;
        first_start = start;
      }
    }
    if (finder == -1 || first_start > time_cap) {
      // Everybody dead on arrival (or the earliest survivor wakes up past
      // the cap): nobody ever stands on the source target in time. Mirrors
      // the sweep loops' not-found outcome.
      result->found = false;
      result->time = static_cast<double>(time_cap);
      result->from_last_start = static_cast<double>(time_cap);
      return true;
    }
    result->found = true;
    result->time = static_cast<double>(first_start);
    result->finder = finder;
    result->first_target = static_cast<int>(ti);
    result->from_last_start = 0;
    return true;
  }
  return false;
}

}  // namespace detail

namespace {

/// Segment backend: the interleaved min-heap sweep of the historical
/// engines, generalized over starts/lifetimes/target sets. Agents are
/// interleaved by ABSOLUTE clock (start + active time, smallest first)
/// rather than processed to completion one at a time: with deterministic
/// partitioned strategies (e.g. the sector sweep) only ONE agent ever
/// reaches a target, so any agent processed before it under an infinite
/// bound would never terminate. Interleaving guarantees the eventual finder
/// sets the bound after simulating at most its own hit time, and every
/// other agent stops as soon as its clock passes that bound.
TrialResult run_segment_trial(const Strategy& strategy, int k,
                              const TrialEnvironment& env,
                              const rng::Rng& trial_rng,
                              const EngineConfig& config) {
  const Time last_start = env.last_start();
  TrialResult result;
  result.last_start = static_cast<double>(last_start);
  if (detail::resolve_origin_target(env, k, config.time_cap, &result)) {
    return result;
  }

  const auto start_of = [&](int a) {
    return env.starts.empty() ? Time{0}
                              : env.starts[static_cast<std::size_t>(a)];
  };
  const auto lifetime_of = [&](int a) {
    return env.lifetimes.empty()
               ? kNeverTime
               : env.lifetimes[static_cast<std::size_t>(a)];
  };

  struct AgentState {
    std::unique_ptr<AgentProgram> program;
    rng::Rng rng;
    grid::Point pos = grid::kOrigin;
    Time elapsed = 0;  ///< active time in the agent's own program
    std::int64_t segments = 0;
  };
  std::vector<AgentState> agents;
  agents.reserve(static_cast<std::size_t>(k));
  for (int a = 0; a < k; ++a) {
    agents.push_back(AgentState{
        strategy.make_program(AgentContext{a, k}),
        trial_rng.child(static_cast<std::uint64_t>(a)), grid::kOrigin, 0, 0});
  }

  // Min-heap of (absolute clock, agent index); lower index wins ties so the
  // outcome is deterministic and matches the brute-force reference order.
  using Entry = std::pair<Time, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  for (int a = 0; a < k; ++a) {
    if (lifetime_of(a) <= 0) {
      ++result.crashed;  // dead on arrival: never acts
      continue;
    }
    queue.emplace(start_of(a), a);
  }

  Time best = kNeverTime;
  int finder = -1;
  int first_target = -1;

  while (!queue.empty()) {
    const auto [abs_clock, a] = queue.top();
    queue.pop();
    // All other clocks are >= this one; once it exceeds the bound (the best
    // hit so far, or the cap), no agent can improve the outcome.
    const Time bound =
        std::min(config.time_cap, best == kNeverTime ? best : best - 1);
    if (abs_clock > bound) break;

    AgentState& agent = agents[static_cast<std::size_t>(a)];
    if (++agent.segments > config.max_segments_per_agent) {
      throw std::runtime_error(
          "run_trial: agent exceeded segment budget without terminating");
    }
    ++result.segments;

    const Segment seg =
        realize(agent.program->next(agent.rng), agent.pos, grid::kOrigin);
    for (std::size_t ti = 0; ti < env.targets.size(); ++ti) {
      const auto hit = hit_offset(seg, env.targets[ti]);
      if (!hit) continue;
      const Time when_active = util::sat_add(agent.elapsed, *hit);
      // A hit only counts while the agent is still alive.
      if (when_active > lifetime_of(a)) continue;
      const Time when_abs = util::sat_add(start_of(a), when_active);
      if (when_abs > config.time_cap) continue;
      // Earliest hit wins; exact ties go to the lowest agent index, then to
      // the lowest target index — the historical engines' rule.
      if (when_abs < best || (when_abs == best && a < finder)) {
        best = when_abs;
        finder = a;
        first_target = static_cast<int>(ti);
      }
    }
    agent.elapsed = util::sat_add(agent.elapsed, duration(seg));
    agent.pos = end_position(seg);
    if (agent.elapsed >= lifetime_of(a)) {
      ++result.crashed;  // halts mid-plan; position is wherever it died
      continue;
    }
    queue.emplace(util::sat_add(start_of(a), agent.elapsed), a);
  }

  if (best != kNeverTime) {
    result.found = true;
    result.time = static_cast<double>(best);
    result.finder = finder;
    result.first_target = first_target;
    result.from_last_start =
        static_cast<double>(best > last_start ? best - last_start : 0);
  } else {
    result.found = false;
    result.time = static_cast<double>(config.time_cap);
    result.from_last_start = static_cast<double>(config.time_cap);
  }
  return result;
}

/// Lock-step backend: every alive, started agent advances one edge per
/// tick. Under a sync/no-crash single-target environment this is
/// tick-for-tick the historical run_step_search loop (agents move in index
/// order within a tick, the first to stand on a target wins).
TrialResult run_step_trial(const StepStrategy& strategy, int k,
                           const TrialEnvironment& env,
                           const rng::Rng& trial_rng,
                           const EngineConfig& config) {
  if (config.time_cap == kNeverTime) {
    // Random-walk-style strategies have infinite expected hitting time on
    // Z^2 (see the paper's related-work discussion); an uncapped run is a
    // programming error.
    throw std::invalid_argument(
        "run_trial: step strategies require a finite time_cap");
  }

  const Time last_start = env.last_start();
  TrialResult result;
  result.last_start = static_cast<double>(last_start);
  if (detail::resolve_origin_target(env, k, config.time_cap, &result)) {
    return result;
  }

  const auto start_of = [&](int a) {
    return env.starts.empty() ? Time{0}
                              : env.starts[static_cast<std::size_t>(a)];
  };
  const auto lifetime_of = [&](int a) {
    return env.lifetimes.empty()
               ? kNeverTime
               : env.lifetimes[static_cast<std::size_t>(a)];
  };

  std::vector<std::unique_ptr<StepProgram>> programs;
  std::vector<rng::Rng> rngs;
  std::vector<grid::Point> pos(static_cast<std::size_t>(k), grid::kOrigin);
  std::vector<char> crashed(static_cast<std::size_t>(k), 0);
  programs.reserve(static_cast<std::size_t>(k));
  rngs.reserve(static_cast<std::size_t>(k));
  for (int a = 0; a < k; ++a) {
    programs.push_back(strategy.make_program(AgentContext{a, k}));
    rngs.push_back(trial_rng.child(static_cast<std::uint64_t>(a)));
    if (lifetime_of(a) <= 0) {
      crashed[static_cast<std::size_t>(a)] = 1;  // dead on arrival
      ++result.crashed;
    }
  }

  for (Time t = 1; t <= config.time_cap; ++t) {
    for (int a = 0; a < k; ++a) {
      const auto ia = static_cast<std::size_t>(a);
      if (crashed[ia]) continue;
      if (t <= start_of(a)) continue;  // not yet started: waits at the source
      const Time active = t - start_of(a);
      if (active > lifetime_of(a)) {
        crashed[ia] = 1;  // halts in place; does not "unvisit" anything
        ++result.crashed;
        continue;
      }
      const grid::Point next = programs[ia]->step(rngs[ia], pos[ia]);
      assert(grid::l1_dist(next, pos[ia]) <= 1);
      pos[ia] = next;
      ++result.segments;
      for (std::size_t ti = 0; ti < env.targets.size(); ++ti) {
        if (next != env.targets[ti]) continue;
        result.found = true;
        result.time = static_cast<double>(t);
        result.finder = a;
        result.first_target = static_cast<int>(ti);
        result.from_last_start =
            static_cast<double>(t > last_start ? t - last_start : 0);
        return result;
      }
    }
  }

  result.found = false;
  result.time = static_cast<double>(config.time_cap);
  result.from_last_start = static_cast<double>(config.time_cap);
  return result;
}

/// Plane backend: adapts the trial environment and engine config to the
/// continuous executor (plane::run_plane_trial). Integer start delays and
/// lifetimes read as continuous time units, so the same schedule/crash
/// draws perturb both substrates identically; fractional sighting times
/// come back through TrialResult's double fields untouched.
TrialResult run_plane_backend_trial(const plane::PlaneStrategy& strategy,
                                    int k, const TrialEnvironment& env,
                                    const rng::Rng& trial_rng,
                                    const EngineConfig& config) {
  plane::PlaneTrialEnvironment plane_env;
  plane_env.targets = env.plane_targets;
  plane_env.starts.assign(env.starts.begin(), env.starts.end());
  plane_env.lifetimes.reserve(env.lifetimes.size());
  for (const Time life : env.lifetimes) {
    plane_env.lifetimes.push_back(life == kNeverTime
                                      ? plane::kPlaneNever
                                      : static_cast<plane::Time>(life));
  }

  plane::PlaneEngineConfig plane_config;
  plane_config.sight_radius = config.sight_radius;
  plane_config.spiral_pitch = config.spiral_pitch;
  plane_config.time_cap = config.time_cap == kNeverTime
                              ? plane::kPlaneNever
                              : static_cast<plane::Time>(config.time_cap);
  plane_config.max_segments_per_agent = config.max_segments_per_agent;

  const plane::PlaneTrialResult r =
      plane::run_plane_trial(strategy, k, plane_env, trial_rng, plane_config);
  TrialResult result;
  result.time = r.time;
  result.found = r.found;
  result.finder = r.finder;
  result.first_target = r.first_target;
  result.segments = r.segments;
  result.last_start = r.last_start;
  result.from_last_start = r.from_last_start;
  result.crashed = r.crashed;
  return result;
}

}  // namespace

Time TrialEnvironment::last_start() const noexcept {
  if (starts.empty()) return 0;
  return *std::max_element(starts.begin(), starts.end());
}

TrialEnvironment single_target_environment(grid::Point treasure) {
  TrialEnvironment env;
  env.targets = {treasure};
  return env;
}

TrialEnvironment draw_environment(int k, std::vector<grid::Point> targets,
                                  const StartSchedule& schedule,
                                  const CrashModel& crashes,
                                  const rng::Rng& trial_rng) {
  TrialEnvironment env;
  env.targets = std::move(targets);
  return draw_environment(k, std::move(env), schedule, crashes, trial_rng);
}

TrialEnvironment draw_environment(int k, TrialEnvironment env,
                                  const StartSchedule& schedule,
                                  const CrashModel& crashes,
                                  const rng::Rng& trial_rng) {
  if (k < 1) throw std::invalid_argument("draw_environment: need k >= 1");
  rng::Rng sched_rng = trial_rng.child(kScheduleStream);
  rng::Rng crash_rng = trial_rng.child(kCrashStream);
  env.starts = schedule.draw(k, sched_rng);
  env.lifetimes = crashes.draw_lifetimes(k, crash_rng);
  return env;
}

TrialResult run_trial(const TrialStrategy& strategy, int k,
                      const TrialEnvironment& env, const rng::Rng& trial_rng,
                      const EngineConfig& config) {
  detail::validate_trial_args(strategy, k, env);
  if (strategy.plane != nullptr) {
    return run_plane_backend_trial(*strategy.plane, k, env, trial_rng,
                                   config);
  }
  if (strategy.step != nullptr) {
    return run_step_trial(*strategy.step, k, env, trial_rng, config);
  }
  return run_segment_trial(*strategy.segment, k, env, trial_rng, config);
}

TrialResult run_trial(const Strategy& strategy, int k,
                      const TrialEnvironment& env, const rng::Rng& trial_rng,
                      const EngineConfig& config) {
  TrialStrategy s;
  s.segment = &strategy;
  return run_trial(s, k, env, trial_rng, config);
}

TrialResult run_trial(const StepStrategy& strategy, int k,
                      const TrialEnvironment& env, const rng::Rng& trial_rng,
                      const EngineConfig& config) {
  TrialStrategy s;
  s.step = &strategy;
  return run_trial(s, k, env, trial_rng, config);
}

TrialResult run_trial(const plane::PlaneStrategy& strategy, int k,
                      const TrialEnvironment& env, const rng::Rng& trial_rng,
                      const EngineConfig& config) {
  TrialStrategy s;
  s.plane = &strategy;
  return run_trial(s, k, env, trial_rng, config);
}

TargetDraw single_target(Placement placement) {
  TargetDraw draw;
  draw.grid = [placement = std::move(placement)](rng::Rng& rng,
                                                 std::int64_t distance) {
    return std::vector<grid::Point>{placement(rng, distance)};
  };
  return draw;
}

TargetDraw single_plane_target(std::function<double(rng::Rng&)> angle) {
  TargetDraw draw;
  draw.plane = [angle = std::move(angle)](rng::Rng& rng,
                                          std::int64_t distance) {
    return std::vector<plane::Vec2>{plane::unit(angle(rng)) *
                                    static_cast<double>(distance)};
  };
  return draw;
}

}  // namespace ants::sim
