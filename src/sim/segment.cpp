#include "sim/segment.h"

#include <cassert>

namespace ants::sim {

namespace {

struct DurationVisitor {
  Time operator()(const WalkSegment& w) const noexcept {
    return w.path.length();
  }
  Time operator()(const SpiralSegment& s) const noexcept { return s.duration; }
  Time operator()(const PathSegment& p) const noexcept {
    return static_cast<Time>(p.steps.size());
  }
};

struct EndVisitor {
  grid::Point operator()(const WalkSegment& w) const noexcept {
    return w.path.to();
  }
  grid::Point operator()(const SpiralSegment& s) const noexcept {
    return s.center + grid::spiral_point(s.duration);
  }
  grid::Point operator()(const PathSegment& p) const noexcept {
    return p.steps.empty() ? p.start : p.steps.back();
  }
};

struct HitVisitor {
  grid::Point target;

  std::optional<Time> operator()(const WalkSegment& w) const noexcept {
    return w.path.index_of(target);
  }

  std::optional<Time> operator()(const SpiralSegment& s) const noexcept {
    const std::int64_t idx = grid::spiral_index(target - s.center);
    if (idx > s.duration) return std::nullopt;
    return idx;
  }

  std::optional<Time> operator()(const PathSegment& p) const noexcept {
    if (p.start == target) return 0;
    for (std::size_t i = 0; i < p.steps.size(); ++i) {
      if (p.steps[i] == target) return static_cast<Time>(i + 1);
    }
    return std::nullopt;
  }
};

}  // namespace

Time duration(const Segment& seg) noexcept {
  return std::visit(DurationVisitor{}, seg);
}

grid::Point end_position(const Segment& seg) noexcept {
  return std::visit(EndVisitor{}, seg);
}

std::optional<Time> hit_offset(const Segment& seg,
                               grid::Point target) noexcept {
  return std::visit(HitVisitor{target}, seg);
}

std::optional<Time> hit_offset_from(const Segment& seg, grid::Point target,
                                    Time from) noexcept {
  if (from <= 0) return hit_offset(seg, target);
  if (const auto* p = std::get_if<PathSegment>(&seg)) {
    // Paths may revisit: scan for the first match at offset >= from
    // (offset i + 1 is steps[i]; offset 0 is the start, already < from).
    for (std::size_t i = static_cast<std::size_t>(from - 1);
         i < p->steps.size(); ++i) {
      if (p->steps[i] == target) return static_cast<Time>(i + 1);
    }
    return std::nullopt;
  }
  // Walks and spirals visit each node at most once.
  const auto hit = hit_offset(seg, target);
  if (hit && *hit >= from) return hit;
  return std::nullopt;
}

}  // namespace ants::sim
