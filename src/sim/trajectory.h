// Trajectory tracing: materializes an agent's full step-by-step path.
//
// Only for visualization, examples, and tests (the engine never materializes
// paths). Also provides an ASCII rendering used by the trajectory_dump
// example to eyeball search patterns — the paper's section 6 describes
// desert-ant trajectories as "a long straight path ... and a second more
// tortuous path within a small confined area"; the renders make the
// harmonic algorithm's matching structure visible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grid/point.h"
#include "rng/rng.h"
#include "sim/program.h"
#include "sim/types.h"

namespace ants::sim {

struct TimedPoint {
  grid::Point position;
  Time time = 0;
};

/// Runs one agent program for `horizon` steps and returns every visited
/// (position, time), in order, starting with the source at time 0.
std::vector<TimedPoint> trace_program(const Strategy& strategy,
                                      AgentContext ctx, rng::Rng& rng,
                                      Time horizon);

/// Renders the trace into a character raster of the window
/// [-extent, extent]^2: source 'S', treasure 'T' (if inside), visited '#',
/// with one text row per y (top = +extent). Cells outside the window are
/// dropped.
std::string render_trace(const std::vector<TimedPoint>& trace,
                         std::int64_t extent, grid::Point treasure);

}  // namespace ants::sim
