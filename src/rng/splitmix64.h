// SplitMix64 (Steele, Lea, Flood 2014): a tiny, statistically solid 64-bit
// generator. Used here (a) to expand user seeds into xoshiro state and
// (b) to derive independent per-trial / per-agent seed streams by mixing
// (master_seed, index) pairs, which is what makes Monte-Carlo runs
// reproducible regardless of thread count.
#pragma once

#include <cstdint>

namespace ants::rng {

class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t operator()() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

 private:
  std::uint64_t state_;
};

/// Stateless mix of two words; the canonical way this library derives child
/// seeds: seed_for(trial) = mix(master, trial), seed_for(agent within trial)
/// = mix(trial_seed, agent_index). Passing the same pair always yields the
/// same stream, and distinct pairs yield (statistically) independent ones.
constexpr std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) noexcept {
  SplitMix64 sm(a ^ (0x9E3779B97F4A7C15ULL + (b << 6) + (b >> 2)));
  sm();
  std::uint64_t out = sm();
  // One more scramble so (a,b) and (b,a) diverge decisively.
  SplitMix64 sm2(out + b);
  return sm2();
}

}  // namespace ants::rng
