// xoshiro256** 1.0 (Blackman & Vigna 2018) - the library's workhorse
// generator: 256-bit state, passes BigCrush, ~1ns per draw. Seeded via
// SplitMix64 per the authors' recommendation so that low-entropy user seeds
// still produce well-mixed state.
#pragma once

#include <cstdint>

#include "rng/splitmix64.h"

namespace ants::rng {

class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256ss(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm();
  }

  constexpr std::uint64_t operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Equivalent to 2^128 calls; used to give logically parallel streams.
  constexpr void jump() noexcept {
    constexpr std::uint64_t kJump[] = {0x180EC6D33CFD0ABAULL,
                                       0xD5A61266F0C9392CULL,
                                       0xA9582618E03FC9AAULL,
                                       0x39ABDC4529B1661CULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (const std::uint64_t word : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (word & (1ULL << b)) {
          s0 ^= s_[0];
          s1 ^= s_[1];
          s2 ^= s_[2];
          s3 ^= s_[3];
        }
        (*this)();
      }
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
  }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace ants::rng
