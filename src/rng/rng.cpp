#include "rng/rng.h"

#include <cassert>
#include <cmath>

namespace ants::rng {

std::uint64_t Rng::uniform_u64(std::uint64_t n) noexcept {
  assert(n >= 1);
  // Lemire's multiply-shift rejection method: unbiased and branch-light.
  std::uint64_t x = bits();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = bits();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  const std::uint64_t draw = span == 0 ? bits() : uniform_u64(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

double Rng::uniform_unit() noexcept {
  return static_cast<double>(bits() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform_unit();
}

double Rng::uniform_positive_unit() noexcept {
  // (bits >> 11) + 1 is in [1, 2^53], so the result is in (0, 1].
  return static_cast<double>((bits() >> 11) + 1) * 0x1.0p-53;
}

double Rng::angle() noexcept {
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return kTwoPi * uniform_unit();
}

double Rng::exponential(double lambda) noexcept {
  assert(lambda > 0);
  return -std::log(uniform_positive_unit()) / lambda;
}

double Rng::pareto(double xm, double alpha) noexcept {
  assert(xm > 0 && alpha > 0);
  return xm / std::pow(uniform_positive_unit(), 1.0 / alpha);
}

std::int64_t Rng::geometric(double p) noexcept {
  assert(p > 0 && p <= 1);
  if (p >= 1.0) return 0;
  const double u = uniform_positive_unit();
  return static_cast<std::int64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

double Rng::normal() noexcept {
  // Box-Muller; the sine twin is discarded to keep the generator stateless.
  const double u = uniform_positive_unit();
  const double v = uniform_unit();
  return std::sqrt(-2.0 * std::log(u)) *
         std::cos(6.283185307179586476925286766559 * v);
}

}  // namespace ants::rng
