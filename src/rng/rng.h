// Rng: the single randomness facade handed to agent programs and samplers.
//
// Wraps xoshiro256** with the handful of exact distributions the paper's
// algorithms need: unbounded uniform integers (Lemire rejection, no modulo
// bias), uniform reals, fair coins/directions, exponentials and Pareto
// variates for the baselines. Child streams (per agent, per trial) are
// derived with mix_seed so that every entity owns an independent,
// reproducible stream.
#pragma once

#include <cstdint>

#include "rng/splitmix64.h"
#include "rng/xoshiro256ss.h"

namespace ants::rng {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : gen_(seed), seed_(seed) {}

  std::uint64_t seed() const noexcept { return seed_; }

  /// Raw 64 random bits.
  std::uint64_t bits() noexcept { return gen_(); }

  /// Uniform integer in [0, n), n >= 1. Unbiased (rejection sampling).
  std::uint64_t uniform_u64(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform_unit() noexcept;

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) noexcept;

  /// Uniform double in (0, 1]; safe as a log() argument.
  double uniform_positive_unit() noexcept;

  /// Fair coin.
  bool coin() noexcept { return (bits() & 1ULL) != 0; }

  /// Bernoulli(p).
  bool bernoulli(double p) noexcept { return uniform_unit() < p; }

  /// Uniform in {0,1,2,3}: the four grid directions (+x,+y,-x,-y).
  int direction4() noexcept { return static_cast<int>(bits() >> 62); }

  /// Uniform angle in [0, 2*pi).
  double angle() noexcept;

  /// Exponential with rate lambda > 0.
  double exponential(double lambda) noexcept;

  /// Pareto with scale xm > 0 and shape alpha > 0:
  /// P(X > x) = (xm/x)^alpha for x >= xm. Heavy-tailed Levy step lengths.
  double pareto(double xm, double alpha) noexcept;

  /// Geometric: number of failures before first success, p in (0, 1].
  std::int64_t geometric(double p) noexcept;

  /// Standard normal N(0, 1) (Box-Muller; one fresh pair per call).
  double normal() noexcept;

  /// Independent child stream identified by `index` (agent id, trial id...).
  Rng child(std::uint64_t index) const noexcept {
    return Rng(mix_seed(seed_, index));
  }

 private:
  Xoshiro256ss gen_;
  std::uint64_t seed_;
};

}  // namespace ants::rng
