#include "rng/power_law.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ants::rng {

namespace {

// Octaves at or below this many terms are summed exactly.
constexpr std::int64_t kExactTermLimit = std::int64_t{1} << 18;

}  // namespace

DiscretePowerLaw::DiscretePowerLaw(double exponent, std::int64_t r_max)
    : exponent_(exponent), r_max_(r_max) {
  if (!(exponent > 1.0)) {
    throw std::invalid_argument("power-law exponent must exceed 1");
  }
  if (r_max < 1) throw std::invalid_argument("power-law r_max must be >= 1");

  for (std::int64_t lo = 1; lo <= r_max_; lo <<= 1) {
    const std::int64_t hi = std::min(r_max_ + 1, lo << 1);  // [lo, hi)
    const double w = (hi - lo) <= kExactTermLimit
                         ? octave_weight_exact(lo, hi)
                         : octave_weight_integral(lo, hi);
    total_ += w;
    octave_lo_.push_back(lo);
    cum_weight_.push_back(total_);
  }
}

double DiscretePowerLaw::octave_weight_exact(std::int64_t lo,
                                             std::int64_t hi) const {
  // Sum small-to-large magnitudes... terms are decreasing in r, so iterate
  // from hi-1 down to lo to add the tiny ones first (better rounding).
  double w = 0;
  for (std::int64_t r = hi - 1; r >= lo; --r) {
    w += std::pow(static_cast<double>(r), -exponent_);
  }
  return w;
}

double DiscretePowerLaw::octave_weight_integral(std::int64_t lo,
                                                std::int64_t hi) const {
  // Euler-Maclaurin: sum_{r=lo}^{hi-1} f(r)
  //   ~ int_lo^hi f + (f(lo) - f(hi))/2 + (f'(hi) - f'(lo))/12,
  // with f(x) = x^-e, f' = -e x^-(e+1). For lo >= 2^18 the next term is
  // O(lo^-(e+3)), i.e. < 1e-12 relative.
  const double e = exponent_;
  const auto f = [e](double x) { return std::pow(x, -e); };
  const auto fp = [e](double x) { return -e * std::pow(x, -(e + 1)); };
  const auto a = static_cast<double>(lo);
  const auto b = static_cast<double>(hi);
  const double integral = (std::pow(a, 1 - e) - std::pow(b, 1 - e)) / (e - 1);
  return integral + (f(a) - f(b)) / 2 + (fp(b) - fp(a)) / 12;
}

std::int64_t DiscretePowerLaw::sample(Rng& rng) const {
  // Octave by inversion over the cumulative weights.
  const double u = rng.uniform_unit() * total_;
  const auto it = std::lower_bound(cum_weight_.begin(), cum_weight_.end(), u);
  const std::size_t o = it == cum_weight_.end()
                            ? cum_weight_.size() - 1
                            : static_cast<std::size_t>(it - cum_weight_.begin());
  const std::int64_t lo = octave_lo_[o];
  const std::int64_t hi = std::min(r_max_ + 1, lo << 1);

  // Radius inside the octave by rejection: proposal uniform on [lo, hi),
  // acceptance (lo/r)^e in (2^-e, 1]. Expected iterations < 2^e.
  for (;;) {
    const std::int64_t r = lo + static_cast<std::int64_t>(rng.uniform_u64(
                                    static_cast<std::uint64_t>(hi - lo)));
    const double accept = std::pow(static_cast<double>(lo) / r, exponent_);
    if (rng.uniform_unit() < accept) return r;
  }
}

double DiscretePowerLaw::pmf(std::int64_t r) const {
  if (r < 1 || r > r_max_) return 0;
  return std::pow(static_cast<double>(r), -exponent_) / total_;
}

double DiscretePowerLaw::cdf(std::int64_t r) const {
  if (r < 1) return 0;
  r = std::min(r, r_max_);
  double acc = 0;
  // Whole octaves below r from the precomputed table, partial octave exactly.
  std::size_t o = 0;
  while (o < octave_lo_.size()) {
    const std::int64_t lo = octave_lo_[o];
    const std::int64_t hi = std::min(r_max_ + 1, lo << 1);
    if (hi - 1 <= r) {
      acc = cum_weight_[o];
      ++o;
    } else {
      for (std::int64_t q = lo; q <= r; ++q) {
        acc += std::pow(static_cast<double>(q), -exponent_);
      }
      break;
    }
  }
  return acc / total_;
}

}  // namespace ants::rng
