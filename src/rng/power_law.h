// Discrete power-law radius sampler: P(r) proportional to r^(-exponent) on
// r in [1, r_max].
//
// This is the distance distribution of the harmonic algorithm (Alg. 2 of the
// paper): p(u) = c / d(u)^(2+delta) over nodes u, and the L1 ring at radius r
// carries 4r nodes, so the radius law is P(r) proportional to r^(-(1+delta)).
//
// Sampling is exact (up to IEEE rounding in the octave weights): radii are
// grouped into octaves [2^o, 2^(o+1)); an octave is drawn by inversion over
// precomputed weights, then the radius inside the octave by uniform proposal
// + rejection with acceptance (2^o / r)^exponent, which is >= 2^-exponent.
// Octave weights are exact sums for octaves with <= 2^18 terms and
// Euler-Maclaurin-corrected integrals beyond (relative error < 1e-12 there).
//
// The truncation at r_max (default 2^45) is a simulation artifact, not a
// model change: a trip to radius r costs >= r steps, so every truncated
// sample lies beyond any experiment's time bound; see DESIGN.md section 3.4.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/rng.h"

namespace ants::rng {

class DiscretePowerLaw {
 public:
  /// exponent > 1 so the untruncated series converges; r_max >= 1.
  explicit DiscretePowerLaw(double exponent,
                            std::int64_t r_max = std::int64_t{1} << 45);

  std::int64_t sample(Rng& rng) const;

  /// Normalized mass of radius r (0 outside [1, r_max]).
  double pmf(std::int64_t r) const;

  /// P(X <= r); exact summation, O(min(r, 2^18) + #octaves). Test helper.
  double cdf(std::int64_t r) const;

  double exponent() const { return exponent_; }
  std::int64_t r_max() const { return r_max_; }
  /// Unnormalized total weight sum_{r=1}^{r_max} r^-exponent.
  double total_weight() const { return total_; }

 private:
  double octave_weight_exact(std::int64_t lo, std::int64_t hi) const;
  double octave_weight_integral(std::int64_t lo, std::int64_t hi) const;

  double exponent_;
  std::int64_t r_max_;
  std::vector<std::int64_t> octave_lo_;  // first radius of each octave
  std::vector<double> cum_weight_;       // inclusive cumulative octave weights
  double total_ = 0;
};

}  // namespace ants::rng
