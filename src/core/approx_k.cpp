#include "core/approx_k.h"

#include "util/format.h"

#include <cmath>
#include <optional>
#include <stdexcept>

namespace ants::core {

namespace {

// Each agent owns a KnownK program constructed from its private estimate;
// the wrapper forwards ops, so an ApproxK agent is exactly an A_{k_a/rho}
// agent as the corollary prescribes. The estimate is the agent's input,
// drawn lazily from its private stream so that log-uniform assignments vary
// across trials yet stay reproducible.
class ApproxKProgram final : public sim::AgentProgram {
 public:
  explicit ApproxKProgram(const ApproxKStrategy& outer) : outer_(outer) {}

  sim::Op next(rng::Rng& rng) override {
    if (!inner_) {
      inner_strategy_.emplace(
          outer_.parameter_for_estimate(outer_.draw_estimate(rng)));
      inner_ = inner_strategy_->make_program(sim::AgentContext{});
    }
    return inner_->next(rng);
  }

 private:
  const ApproxKStrategy& outer_;
  std::optional<KnownKStrategy> inner_strategy_;
  std::unique_ptr<sim::AgentProgram> inner_;
};

}  // namespace

ApproxKStrategy::ApproxKStrategy(std::int64_t k_true, double rho,
                                 ApproxMode mode)
    : k_true_(k_true), rho_(rho), mode_(mode) {
  if (k_true < 1) throw std::invalid_argument("ApproxK: k_true >= 1");
  if (!(rho >= 1.0)) throw std::invalid_argument("ApproxK: rho >= 1");
}

std::string ApproxKStrategy::name() const {
  const char* mode = mode_ == ApproxMode::kUnder  ? "under"
                     : mode_ == ApproxMode::kOver ? "over"
                                                  : "loguniform";
  return "approx-k(rho=" + util::fmt_param(rho_) + "," + mode + ")";
}

std::int64_t ApproxKStrategy::parameter_for_estimate(double k_a) const noexcept {
  const double parameter = k_a / rho_;
  return parameter < 1.0 ? 1 : static_cast<std::int64_t>(parameter);
}

double ApproxKStrategy::draw_estimate(rng::Rng& rng) const {
  const auto k = static_cast<double>(k_true_);
  switch (mode_) {
    case ApproxMode::kUnder:
      return k / rho_;
    case ApproxMode::kOver:
      return k * rho_;
    case ApproxMode::kLogUniform: {
      const double lo = std::log(k / rho_);
      const double hi = std::log(k * rho_);
      return std::exp(rng.uniform_real(lo, hi));
    }
  }
  return k;  // unreachable
}

std::unique_ptr<sim::AgentProgram> ApproxKStrategy::make_program(
    sim::AgentContext /*ctx*/) const {
  return std::make_unique<ApproxKProgram>(*this);
}

}  // namespace ants::core
