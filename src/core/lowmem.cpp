#include "core/lowmem.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/params.h"
#include "core/uniform.h"
#include "grid/ball.h"
#include "util/format.h"
#include "util/sat.h"

namespace ants::core {

namespace {

/// Exponents up to this are simulated flip by flip (mean 2^13 flips at the
/// threshold); larger ones use the O(1) renewal-decomposition sampler below.
constexpr int kExactCounterExponent = 12;

}  // namespace

std::int64_t randomized_counter_steps(rng::Rng& rng, int exponent,
                                      std::int64_t cap) {
  if (exponent < 0) throw std::invalid_argument("counter: exponent >= 0");
  if (cap < 0) throw std::invalid_argument("counter: cap >= 0");
  if (exponent == 0) return 0;

  if (exponent <= kExactCounterExponent) {
    std::int64_t steps = 0;
    int run = 0;  // the agent's entire mutable state: O(log exponent) bits
    while (run < exponent) {
      if (steps >= cap) return cap;
      ++steps;
      run = rng.coin() ? run + 1 : 0;
    }
    return steps;
  }

  // The AGENT flips one coin per step; the SIMULATOR must not, or a single
  // l = 30 draw would cost 2^31 flips. Renewal decomposition of the waiting
  // time T_l for l consecutive heads: each failed attempt is a head-run of
  // length J < l followed by a tail (cost J + 1 flips, J truncated
  // geometric on [0, l-1]), the final success costs l flips, and the number
  // of failed attempts N is Geometric(2^-l). So
  //     T_l = l + N + sum_{i=1..N} J_i.
  // N is sampled exactly (it carries virtually all the variance: sd(N) ~
  // 2^l while sd(sum J) ~ 2^(l/2)); the J-sum is replaced by its CLT normal
  // with the exact truncated-geometric moments. The approximation error is
  // O(2^(l/2)) on a Theta(2^l) quantity — invisible to every consumer, and
  // the distributional tests cover both regimes.
  const double p = std::exp2(-exponent);  // success probability per attempt
  const std::int64_t n = rng.geometric(p);
  double mu = 0, second = 0;  // E[J], E[J^2] of the truncated geometric
  {
    const double norm = 1.0 - std::exp2(-exponent);
    for (int j = 0; j < exponent && j < 64; ++j) {
      const double pj = std::exp2(-(j + 1)) / norm;
      mu += j * pj;
      second += static_cast<double>(j) * j * pj;
    }
  }
  const double nd = static_cast<double>(n);
  const double mean = static_cast<double>(exponent) + nd + nd * mu;
  const double var = nd * std::max(0.0, second - mu * mu);
  const double t = mean + std::sqrt(var) * rng.normal();
  const double lo = static_cast<double>(exponent);
  const double hi = static_cast<double>(cap);
  return static_cast<std::int64_t>(std::llround(std::clamp(t, lo, hi)));
}

namespace {

/// Counter draw scaled to mean ~2^exponent (the raw counter's mean is
/// 2^(exponent+1) - 2), clamped to [1, limit].
std::int64_t counter_scaled(rng::Rng& rng, int exponent, std::int64_t limit) {
  const std::int64_t cap =
      util::sat_mul(2, limit);  // raw cap so steps/2 <= limit
  const std::int64_t raw = randomized_counter_steps(rng, exponent, cap);
  return std::clamp<std::int64_t>(raw / 2, 1, limit);
}

// Algorithm 1's triple loop with counters instead of registers.
class LowMemUniformProgram final : public sim::AgentProgram {
 public:
  explicit LowMemUniformProgram(const LowMemUniformStrategy& strategy)
      : strategy_(strategy) {}

  sim::Op next(rng::Rng& rng) override {
    switch (step_) {
      case Step::kGoTo: {
        step_ = Step::kSpiral;
        const std::int64_t radius = counter_scaled(
            rng, strategy_.walk_exponent(i_, j_), kMaxBallRadius);
        return sim::GoTo{grid::uniform_ring_point(rng, radius)};
      }
      case Step::kSpiral: {
        step_ = Step::kReturn;
        const std::int64_t budget = counter_scaled(
            rng, strategy_.spiral_exponent(i_, j_), util::kTimeCap);
        return sim::SpiralFor{budget};
      }
      default:
        step_ = Step::kGoTo;
        advance();
        return sim::ReturnToSource{};
    }
  }

 private:
  enum class Step { kGoTo, kSpiral, kReturn };

  void advance() {
    if (j_ < i_) {
      ++j_;
      return;
    }
    j_ = 0;
    if (i_ < l_) {
      ++i_;
      return;
    }
    i_ = 0;
    ++l_;
  }

  const LowMemUniformStrategy& strategy_;
  int l_ = 0;
  int i_ = 0;
  int j_ = 0;
  Step step_ = Step::kGoTo;
};

// Algorithm 2 with a coin-flip power law and counter-based trip lengths.
class LowMemHarmonicProgram final : public sim::AgentProgram {
 public:
  explicit LowMemHarmonicProgram(double delta) : continue_p_(std::exp2(-delta)),
                                                 delta_(delta) {}

  sim::Op next(rng::Rng& rng) override {
    switch (step_) {
      case Step::kGoTo: {
        step_ = Step::kSpiral;
        // Dyadic power law: P(scale >= l) = 2^(-delta l) matches the mass
        // the harmonic density p(u) ~ d^-(2+delta) puts at distance ~2^l
        // (the ~2^(2l) nodes there each get ~2^(-(2+delta) l)).
        scale_ = 0;
        while (scale_ < kMaxRadiusExponent && rng.uniform_unit() < continue_p_) {
          ++scale_;
        }
        const std::int64_t radius =
            counter_scaled(rng, scale_, kMaxBallRadius);
        return sim::GoTo{grid::uniform_ring_point(rng, radius)};
      }
      case Step::kSpiral: {
        step_ = Step::kReturn;
        // t(u) = d(u)^(2+delta) becomes a counter at exponent
        // ceil((2+delta) * scale): the agent re-uses the 5-bit scale it
        // drew, never the exact realized distance.
        const int exponent = static_cast<int>(
            std::ceil((2.0 + delta_) * static_cast<double>(scale_)));
        const std::int64_t budget =
            counter_scaled(rng, std::min(exponent, 62), util::kTimeCap);
        return sim::SpiralFor{budget};
      }
      default:
        step_ = Step::kGoTo;
        return sim::ReturnToSource{};
    }
  }

 private:
  enum class Step { kGoTo, kSpiral, kReturn };

  double continue_p_;
  double delta_;
  int scale_ = 0;  // the drawn dyadic scale: <= 5 bits
  Step step_ = Step::kGoTo;
};

}  // namespace

LowMemUniformStrategy::LowMemUniformStrategy(double eps) : eps_(eps) {
  if (!(eps >= 0.0)) throw std::invalid_argument("LowMemUniform: eps >= 0");
}

std::string LowMemUniformStrategy::name() const {
  return "lowmem-uniform(eps=" + util::fmt_param(eps_) + ")";
}

std::unique_ptr<sim::AgentProgram> LowMemUniformStrategy::make_program(
    sim::AgentContext /*ctx*/) const {
  return std::make_unique<LowMemUniformProgram>(*this);
}

int LowMemUniformStrategy::walk_exponent(int stage_i, int phase_j) const
    noexcept {
  // round(log2(D_ij)) with D_ij the exact Algorithm 1 radius; >= 0.
  const UniformStrategy exact(eps_);
  const double d = static_cast<double>(exact.ball_radius(stage_i, phase_j));
  return std::max(0, static_cast<int>(std::lround(std::log2(d))));
}

int LowMemUniformStrategy::spiral_exponent(int stage_i, int phase_j) const
    noexcept {
  const UniformStrategy exact(eps_);
  const double t = static_cast<double>(exact.spiral_budget(stage_i, phase_j));
  return std::max(0, static_cast<int>(std::lround(std::log2(t))));
}

LowMemHarmonicStrategy::LowMemHarmonicStrategy(double delta) : delta_(delta) {
  if (!(delta > 0.0)) throw std::invalid_argument("LowMemHarmonic: delta > 0");
}

std::string LowMemHarmonicStrategy::name() const {
  return "lowmem-harmonic(delta=" + util::fmt_param(delta_) + ")";
}

std::unique_ptr<sim::AgentProgram> LowMemHarmonicStrategy::make_program(
    sim::AgentContext /*ctx*/) const {
  return std::make_unique<LowMemHarmonicProgram>(delta_);
}

double LowMemHarmonicStrategy::scale_continue_probability() const noexcept {
  return std::exp2(-delta_);
}

}  // namespace ants::core
