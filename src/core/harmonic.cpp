#include "core/harmonic.h"

#include "util/format.h"

#include <cmath>
#include <stdexcept>

#include "grid/ball.h"
#include "util/sat.h"

namespace ants::core {

namespace {

class HarmonicProgram final : public sim::AgentProgram {
 public:
  explicit HarmonicProgram(const HarmonicStrategy& strategy)
      : strategy_(strategy) {}

  sim::Op next(rng::Rng& rng) override {
    switch (step_) {
      case Step::kGoTo: {
        step_ = Step::kSpiral;
        radius_ = strategy_.radius_law().sample(rng);
        return sim::GoTo{grid::uniform_ring_point(rng, radius_)};
      }
      case Step::kSpiral:
        step_ = Step::kReturn;
        return sim::SpiralFor{strategy_.spiral_budget(radius_)};
      default:
        step_ = Step::kGoTo;
        return sim::ReturnToSource{};
    }
  }

 private:
  enum class Step { kGoTo, kSpiral, kReturn };

  const HarmonicStrategy& strategy_;
  std::int64_t radius_ = 1;
  Step step_ = Step::kGoTo;
};

}  // namespace

HarmonicStrategy::HarmonicStrategy(double delta)
    : delta_(delta), law_(1.0 + delta) {
  if (!(delta > 0.0)) throw std::invalid_argument("Harmonic: delta > 0");
}

std::string HarmonicStrategy::name() const {
  return "harmonic(delta=" + util::fmt_param(delta_) + ")";
}

std::unique_ptr<sim::AgentProgram> HarmonicStrategy::make_program(
    sim::AgentContext /*ctx*/) const {
  // Uniform algorithm: identical program for every agent, no use of ctx.k.
  return std::make_unique<HarmonicProgram>(*this);
}

sim::Time HarmonicStrategy::spiral_budget(std::int64_t radius) const noexcept {
  const double t = std::pow(static_cast<double>(radius), 2.0 + delta_);
  const std::int64_t budget = util::sat_from_double(t);
  return budget < 1 ? 1 : budget;
}

}  // namespace ants::core
