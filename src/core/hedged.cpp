#include "core/hedged.h"

#include "util/format.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/params.h"
#include "grid/ball.h"
#include "util/sat.h"

namespace ants::core {

namespace {

class HedgedProgram final : public sim::AgentProgram {
 public:
  explicit HedgedProgram(const HedgedApproxStrategy& strategy)
      : strategy_(strategy) {}

  sim::Op next(rng::Rng& rng) override {
    switch (step_) {
      case Step::kGoTo: {
        step_ = Step::kSpiral;
        return sim::GoTo{
            grid::uniform_ball_point(rng, strategy_.ball_radius(i_))};
      }
      case Step::kSpiral: {
        step_ = Step::kReturn;
        const int j = strategy_.candidate_exponents()[candidate_];
        return sim::SpiralFor{strategy_.spiral_budget(i_, j)};
      }
      default:
        step_ = Step::kGoTo;
        advance();
        return sim::ReturnToSource{};
    }
  }

 private:
  enum class Step { kGoTo, kSpiral, kReturn };

  void advance() {
    // Innermost: candidate guesses; then phases i in [1, stage]; then
    // unbounded stages — exactly A_k's schedule with a candidate loop
    // spliced in.
    if (candidate_ + 1 < strategy_.candidate_exponents().size()) {
      ++candidate_;
      return;
    }
    candidate_ = 0;
    if (i_ < stage_) {
      ++i_;
      return;
    }
    i_ = 1;
    ++stage_;
  }

  const HedgedApproxStrategy& strategy_;
  int stage_ = 1;
  int i_ = 1;
  std::size_t candidate_ = 0;
  Step step_ = Step::kGoTo;
};

}  // namespace

HedgedApproxStrategy::HedgedApproxStrategy(double k_estimate, double eps)
    : k_estimate_(k_estimate), eps_(eps) {
  if (!(k_estimate >= 1.0)) {
    throw std::invalid_argument("Hedged: k_estimate >= 1");
  }
  if (!(eps >= 0.0 && eps <= 1.0)) {
    throw std::invalid_argument("Hedged: eps in [0, 1]");
  }
  const double log_k = std::log2(k_estimate);
  const int j_hi = static_cast<int>(std::ceil(log_k));
  const int j_lo =
      std::max(0, static_cast<int>(std::floor((1.0 - eps) * log_k)));
  for (int j = j_lo; j <= j_hi; ++j) candidates_.push_back(j);
}

std::string HedgedApproxStrategy::name() const {
  return "hedged(k~=" + std::to_string(static_cast<long long>(k_estimate_)) +
         ",eps=" + util::fmt_param(eps_) + ")";
}

std::unique_ptr<sim::AgentProgram> HedgedApproxStrategy::make_program(
    sim::AgentContext /*ctx*/) const {
  return std::make_unique<HedgedProgram>(*this);
}

std::int64_t HedgedApproxStrategy::ball_radius(int phase_i) const noexcept {
  return util::pow2(std::min(phase_i, kMaxRadiusExponent));
}

sim::Time HedgedApproxStrategy::spiral_budget(int phase_i,
                                              int candidate_exponent) const
    noexcept {
  // A_k's t_i = 2^(2i+2)/k with k = 2^j: 2^(2i+2-j), clamped/saturated.
  const int exponent = 2 * phase_i + 2 - candidate_exponent;
  if (exponent <= 0) return 1;
  if (exponent >= 62) return util::kTimeCap;
  return util::pow2(exponent);
}

}  // namespace ants::core
