#include "core/known_k.h"

#include <algorithm>
#include <stdexcept>

#include "core/params.h"
#include "grid/ball.h"
#include "util/sat.h"

namespace ants::core {

namespace {

class KnownKProgram final : public sim::AgentProgram {
 public:
  explicit KnownKProgram(const KnownKStrategy& strategy)
      : strategy_(strategy) {}

  sim::Op next(rng::Rng& rng) override {
    switch (step_) {
      case Step::kGoTo: {
        step_ = Step::kSpiral;
        const std::int64_t radius = strategy_.ball_radius(i_);
        return sim::GoTo{grid::uniform_ball_point(rng, radius)};
      }
      case Step::kSpiral:
        step_ = Step::kReturn;
        return sim::SpiralFor{strategy_.spiral_budget(i_)};
      default:
        step_ = Step::kGoTo;
        advance_phase();
        return sim::ReturnToSource{};
    }
  }

 private:
  enum class Step { kGoTo, kSpiral, kReturn };

  void advance_phase() {
    if (i_ < j_) {
      ++i_;
    } else {
      ++j_;
      i_ = 1;
    }
  }

  const KnownKStrategy& strategy_;
  int j_ = 1;  // stage
  int i_ = 1;  // phase within stage
  Step step_ = Step::kGoTo;
};

}  // namespace

KnownKStrategy::KnownKStrategy(std::int64_t k_belief) : k_belief_(k_belief) {
  if (k_belief < 1) throw std::invalid_argument("KnownK: k_belief >= 1");
}

std::string KnownKStrategy::name() const {
  return "known-k(k=" + std::to_string(k_belief_) + ")";
}

std::unique_ptr<sim::AgentProgram> KnownKStrategy::make_program(
    sim::AgentContext /*ctx*/) const {
  // Identical agents: the program depends only on the strategy parameters.
  return std::make_unique<KnownKProgram>(*this);
}

sim::Time KnownKStrategy::spiral_budget(int phase_i) const noexcept {
  // t_i = 2^(2i+2) / k, clamped to >= 1 so a phase always searches at least
  // the chosen node, and saturated for unreachably large i.
  const int exponent = 2 * phase_i + 2;
  const std::int64_t numerator =
      exponent >= 62 ? util::kTimeCap : util::pow2(exponent);
  return std::max<std::int64_t>(1, numerator / k_belief_);
}

std::int64_t KnownKStrategy::ball_radius(int phase_i) const noexcept {
  return util::pow2(std::min(phase_i, kMaxRadiusExponent));
}

}  // namespace ants::core
