#include "core/competitive.h"

#include <cmath>
#include <stdexcept>

#include "sim/metrics.h"

namespace ants::core {

stats::LinearFit fit_log_exponent(const std::vector<CompetitivePoint>& curve) {
  std::vector<double> x, y;
  for (const auto& pt : curve) {
    if (pt.k < 4 || pt.phi <= 0) continue;
    x.push_back(std::log(std::log2(static_cast<double>(pt.k))));
    y.push_back(std::log(pt.phi));
  }
  if (x.size() < 2) {
    throw std::invalid_argument("fit_log_exponent: need >= 2 points k >= 4");
  }
  return stats::fit_linear(x, y);
}

double ratio_to_log_power(double phi, std::int64_t k, double power) {
  return phi / sim::log_power(k, power);
}

}  // namespace ants::core
