// Algorithm 1 of the paper: the uniform search algorithm A_uniform
// (Theorem 3.3), which assumes NOTHING about the number of agents.
//
//   for big-stage l = 0, 1, ...:
//     for stage i = 0..l:
//       for phase j = 0..i:
//         k_j   = 2^j                      (the guess "k ~ 2^j")
//         D_ij  = sqrt(2^(i+j) / j^(1+eps))
//         go to a node chosen uniformly at random in B(D_ij)
//         spiral-search for t_ij = 2^(i+2) / j^(1+eps) time
//         return to the source
//
// Theorem 3.3: for every constant eps > 0 this is O(log^(1+eps) k)-
// competitive; Theorem 4.1 shows no uniform algorithm is O(log k)-
// competitive, so the family is essentially tight as eps -> 0.
//
// Divisions use j^ = max(j, 1) (the paper's j = 0 term would divide by
// zero; see DESIGN.md section 3.3). eps = 0 is deliberately allowed so
// experiment E4 can probe the non-convergent boundary the lower bound
// forbids.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/program.h"
#include "sim/types.h"

namespace ants::core {

class UniformStrategy final : public sim::Strategy {
 public:
  /// eps >= 0; the theorem requires eps > 0, eps = 0 is the probe case.
  explicit UniformStrategy(double eps);

  std::string name() const override;
  std::unique_ptr<sim::AgentProgram> make_program(
      sim::AgentContext ctx) const override;

  double eps() const noexcept { return eps_; }

  /// Schedule closed forms, exposed for tests against the pseudocode.
  std::int64_t ball_radius(int stage_i, int phase_j) const noexcept;
  sim::Time spiral_budget(int stage_i, int phase_j) const noexcept;

 private:
  double eps_;
};

}  // namespace ants::core
