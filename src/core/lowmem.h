// Low-memory agents: the paper's section 6 memory remark, made executable.
//
// "Going in a straight line for a distance of d = 2^l can be implemented
//  using O(log log d) memory bits, by employing a randomized counting
//  technique."
//
// The technique is the classic consecutive-heads counter: walk one step per
// fair-coin flip and stop at the first run of l consecutive heads. The only
// mutable state is the current run length — an integer in [0, l], i.e.
// O(log l) = O(log log d) bits — and the expected number of steps is
// 2^(l+1) - 2 = Theta(2^l). The walk length is a random variable, not an
// exact register, so strategies built on it pay a constant-factor
// competitiveness penalty; the ablation bench abl_lowmem measures it.
//
// Built on top of the counter:
//
//  * LowMemUniformStrategy — Algorithm 1 with every exact quantity replaced
//    by a coin-flip equivalent: walk distances AND spiral budgets are drawn
//    from randomized counters with matching dyadic exponents. The agent's
//    entire arithmetic is "pick a uniform direction (compass), flip coins,
//    count a short run" — the capabilities section 6 credits desert ants
//    and honeybees with.
//  * LowMemHarmonicStrategy — Algorithm 2 where the power-law radius draw
//    itself comes from coin flips: the dyadic scale l is geometric
//    (P(scale >= l+1 | >= l) = 2^-delta), matching P(d ~ 2^l) ~ 2^(-delta l)
//    ... i.e. p(u) ~ 1/d^(2+delta) aggregated over the ~2^(2l) nodes at
//    scale l; the walk and the spiral budget are randomized counters at
//    exponents l and ceil((2+delta) l).
//
// Both strategies remain UNIFORM (no knowledge of k anywhere).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "rng/rng.h"
#include "sim/program.h"
#include "sim/types.h"

namespace ants::core {

/// Steps taken by the consecutive-heads randomized counter targeting a run
/// of `exponent` heads (exponent >= 0), capped at `cap` so a single unlucky
/// draw cannot exceed any simulation horizon. E[steps] = 2^(exponent+1) - 2
/// (uncapped); the AGENT's mutable state during the walk is one run-length
/// integer. The SIMULATOR samples the waiting-time distribution directly —
/// flip-by-flip for small exponents, an O(1) renewal/CLT sampler beyond
/// (see lowmem.cpp) — so a draw never costs 2^exponent host work.
std::int64_t randomized_counter_steps(rng::Rng& rng, int exponent,
                                      std::int64_t cap);

/// Algorithm 1 on coin-flip arithmetic (O(log log) bits of mutable state
/// per in-flight quantity). eps >= 0 as in UniformStrategy.
class LowMemUniformStrategy final : public sim::Strategy {
 public:
  explicit LowMemUniformStrategy(double eps);

  std::string name() const override;
  std::unique_ptr<sim::AgentProgram> make_program(
      sim::AgentContext ctx) const override;

  double eps() const noexcept { return eps_; }

  /// Dyadic exponents the counters target (exposed for tests): the walk
  /// exponent is round(log2(D_ij)) and the spiral exponent round(log2(t_ij)),
  /// with D_ij, t_ij the exact Algorithm 1 closed forms.
  int walk_exponent(int stage_i, int phase_j) const noexcept;
  int spiral_exponent(int stage_i, int phase_j) const noexcept;

 private:
  double eps_;
};

/// Algorithm 2 on coin-flip arithmetic. delta > 0 as in HarmonicStrategy.
class LowMemHarmonicStrategy final : public sim::Strategy {
 public:
  explicit LowMemHarmonicStrategy(double delta);

  std::string name() const override;
  std::unique_ptr<sim::AgentProgram> make_program(
      sim::AgentContext ctx) const override;

  double delta() const noexcept { return delta_; }

  /// P(scale advances past l) per coin round: 2^(-delta).
  double scale_continue_probability() const noexcept;

 private:
  double delta_;
};

}  // namespace ants::core
