// Hedged search under one-sided k^eps-approximate knowledge (the upper-bound
// companion to Theorem 4.2).
//
// Setting (paper, section 4.2): each agent receives an estimate k~ with
// k~^(1-eps) <= k <= k~, i.e. the true k lies somewhere in a window of
// eps * log2(k~) octaves below the estimate. Theorem 4.2 proves ANY
// algorithm in this setting is Omega(eps * log k)-competitive.
//
// This strategy shows the bound is achievable (up to constants) by hedging:
// it runs the A_k phase schedule simultaneously for every candidate
// k_c = 2^j with j in [floor((1-eps) log2 k~), ceil(log2 k~)] — the
// candidate matching the true k gives the Theorem 3.1 guarantee, while
// cycling through all |candidates| = Theta(eps log k~) of them dilutes time
// by exactly that factor. Together with the paper's lower bound this pins
// the competitiveness of the estimate regime at Theta(eps log k).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/program.h"
#include "sim/types.h"

namespace ants::core {

class HedgedApproxStrategy final : public sim::Strategy {
 public:
  /// k_estimate >= 1 is the one-sided estimate k~; eps in [0, 1].
  HedgedApproxStrategy(double k_estimate, double eps);

  std::string name() const override;
  std::unique_ptr<sim::AgentProgram> make_program(
      sim::AgentContext ctx) const override;

  /// Candidate exponents j (k_c = 2^j) in cycling order; never empty.
  const std::vector<int>& candidate_exponents() const noexcept {
    return candidates_;
  }

  std::int64_t ball_radius(int phase_i) const noexcept;
  sim::Time spiral_budget(int phase_i, int candidate_exponent) const noexcept;

 private:
  double k_estimate_;
  double eps_;
  std::vector<int> candidates_;
};

}  // namespace ants::core
