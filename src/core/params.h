// Shared numeric guard rails for the core algorithms.
#pragma once

#include <cstdint>

#include "util/math.h"

namespace ants::core {

/// Ball radii used for "go to a uniform node of B(r)" are capped at 2^30.
///
/// Rationale: |B(r)| = 2r^2 + 2r + 1 must fit in int64 for exact uniform
/// sampling (2^30 gives ~2^61). Reaching a phase with radius 2^30 requires
/// the agent to have already walked >= 2^30 steps, three orders of magnitude
/// beyond any experiment horizon in this repository, so the cap is
/// unobservable; it exists to make the implementation total rather than to
/// change the algorithm.
inline constexpr int kMaxRadiusExponent = 30;
inline constexpr std::int64_t kMaxBallRadius =
    std::int64_t{1} << kMaxRadiusExponent;

/// Clamp a real-valued radius into [1, kMaxBallRadius].
std::int64_t clamp_radius(double r) noexcept;

}  // namespace ants::core
