// Competitive-curve analysis shared by the experiment harnesses: given
// measured competitiveness phi(k) at swept k values, quantify how phi grows
// — the quantity Theorems 3.3/4.1/4.2 are about.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/regression.h"

namespace ants::core {

/// One measured point of a competitiveness curve.
struct CompetitivePoint {
  std::int64_t k = 1;
  double phi = 0;
};

/// Fits phi(k) ~ a * (log2 k)^p over points with k >= 4 (smaller k make
/// log log k degenerate) and returns the fit in (p = slope) form.
/// Theorem 3.3 predicts p <= 1 + eps for A_uniform(eps); Theorem 4.1
/// predicts p > 1 for every uniform algorithm as k grows.
stats::LinearFit fit_log_exponent(const std::vector<CompetitivePoint>& curve);

/// phi / (log2 k)^power columns for the tables (clamps log2 k below 1).
double ratio_to_log_power(double phi, std::int64_t k, double power);

}  // namespace ants::core
