// Corollary 3.2: searching with a rho-approximation of k.
//
// Each agent a receives an input k_a with k/rho <= k_a <= k*rho and runs
// Algorithm A_k with parameter k_a / rho (so its parameter is always <= k,
// inflating spiral budgets by at most rho^2); the corollary shows the
// expected running time grows by at most a rho^2 factor, i.e. the algorithm
// is O(1)-competitive for constant rho.
//
// The strategy models how the adversary (or nature) assigns the estimates:
//   kUnder      every agent receives k/rho (worst case, longest spirals)
//   kOver       every agent receives k*rho
//   kLogUniform each agent draws k_a log-uniformly from [k/rho, k*rho]
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/known_k.h"
#include "sim/program.h"

namespace ants::core {

enum class ApproxMode { kUnder, kOver, kLogUniform };

class ApproxKStrategy final : public sim::Strategy {
 public:
  /// `k_true` is the real agent count the estimates bracket; rho >= 1.
  ApproxKStrategy(std::int64_t k_true, double rho, ApproxMode mode);

  std::string name() const override;
  std::unique_ptr<sim::AgentProgram> make_program(
      sim::AgentContext ctx) const override;

  /// The A_k parameter (k_a / rho, clamped to >= 1) an agent would use for a
  /// given estimate; exposed for tests.
  std::int64_t parameter_for_estimate(double k_a) const noexcept;

  /// Draws one agent's estimate k_a per the mode (consumes rng only in the
  /// log-uniform mode).
  double draw_estimate(rng::Rng& rng) const;

  double rho() const noexcept { return rho_; }

 private:
  std::int64_t k_true_;
  double rho_;
  ApproxMode mode_;
};

}  // namespace ants::core
