// Section 5 remark, made concrete: single-sweep ("constant probability")
// variants of the paper's algorithms.
//
// The paper observes that if one only demands that the treasure be found
// with some constant probability — instead of bounding the EXPECTED running
// time — one loop of each algorithm can be dropped ("it is possible to avoid
// one of the loops of the algorithms. However, a sequence of iterations
// still needs to be performed").
//
// * SingleSweepKnownK drops A_k's outer stage loop: phases i = 1, 2, 3, ...
//   each run exactly ONCE (go to uniform B(2^i), spiral 2^(2i+2)/k, return).
//   Every phase i >= log D hits with probability Theta(1/k) per agent —
//   Theta(1) for the k-agent party — so the treasure is found within the
//   optimal O(D + D^2/k) budget with constant probability. What repetition
//   bought in A_k is the boost from "constant probability" to "bounded
//   expectation": a missed phase here is gone forever, and since phase costs
//   quadruple while the per-phase failure probability is a constant, the
//   EXPECTED time of the single sweep can genuinely diverge. Experiment E10
//   measures exactly this gap.
//
// * SingleSweepUniform drops Algorithm 1's big-stage loop: stages
//   i = 0, 1, 2, ... each run once (with their inner phase loop j = 0..i
//   intact). Same story against the full A_uniform.
//
// Both remain legal strategies for the engine (programs are infinite); they
// are simply not expectation-optimal.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/uniform.h"
#include "sim/program.h"
#include "sim/types.h"

namespace ants::core {

class SingleSweepKnownK final : public sim::Strategy {
 public:
  /// `k_belief` >= 1: the number of agents each agent assumes.
  explicit SingleSweepKnownK(std::int64_t k_belief);

  std::string name() const override;
  std::unique_ptr<sim::AgentProgram> make_program(
      sim::AgentContext ctx) const override;

  std::int64_t k_belief() const noexcept { return k_belief_; }

  /// Same per-phase schedule as A_k (tested against KnownKStrategy).
  sim::Time spiral_budget(int phase_i) const noexcept;
  std::int64_t ball_radius(int phase_i) const noexcept;

 private:
  std::int64_t k_belief_;
};

class SingleSweepUniform final : public sim::Strategy {
 public:
  /// eps >= 0, as in UniformStrategy.
  explicit SingleSweepUniform(double eps);

  std::string name() const override;
  std::unique_ptr<sim::AgentProgram> make_program(
      sim::AgentContext ctx) const override;

  double eps() const noexcept { return inner_.eps(); }

  /// Schedule closed forms are shared with the full uniform algorithm.
  std::int64_t ball_radius(int stage_i, int phase_j) const noexcept {
    return inner_.ball_radius(stage_i, phase_j);
  }
  sim::Time spiral_budget(int stage_i, int phase_j) const noexcept {
    return inner_.spiral_budget(stage_i, phase_j);
  }

 private:
  UniformStrategy inner_;  ///< parameter holder for the shared closed forms
};

}  // namespace ants::core
