// Algorithm 2 of the paper: the harmonic search algorithm (Theorem 5.1).
//
// Each agent repeats three actions forever:
//   1. go to a node u with probability p(u) = c / d(u)^(2+delta)
//   2. spiral-search for t(u) = d(u)^(2+delta) time
//   3. return to the source
//
// Decomposed by radius, step 1 samples the L1 radius r with
// P(r) ∝ ring_size(r) * r^-(2+delta) = 4 r^-(1+delta) and then picks a node
// uniformly on that ring (rng/power_law.h does the radius draw exactly).
//
// Theorem 5.1 (delta in (0, 0.8]): for every eps > 0 there is an alpha such
// that if k > alpha * D^delta, then with probability >= 1 - eps the search
// takes O(D + D^(2+delta)/k) time. Trip costs are heavy-tailed with infinite
// mean, so experiments report quantiles and success probabilities.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "rng/power_law.h"
#include "sim/program.h"
#include "sim/types.h"

namespace ants::core {

class HarmonicStrategy final : public sim::Strategy {
 public:
  /// The paper analyzes delta in (0, 0.8]; any delta > 0 is accepted (the
  /// upper limit only tightens constants in the proof).
  explicit HarmonicStrategy(double delta);

  std::string name() const override;
  std::unique_ptr<sim::AgentProgram> make_program(
      sim::AgentContext ctx) const override;

  double delta() const noexcept { return delta_; }
  const rng::DiscretePowerLaw& radius_law() const noexcept { return law_; }

  /// Spiral budget t(u) = d(u)^(2+delta), saturated at 2^62.
  sim::Time spiral_budget(std::int64_t radius) const noexcept;

 private:
  double delta_;
  rng::DiscretePowerLaw law_;
};

}  // namespace ants::core
