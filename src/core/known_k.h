// Algorithm 3 of the paper (Appendix A): the non-uniform algorithm A_k.
//
//   for stage j = 1, 2, ...:
//     for phase i = 1..j:
//       go to a node u chosen uniformly at random in B(2^i)
//       spiral-search for t_i = 2^(2i+2) / k time
//       return to the source
//
// Theorem 3.1: with agents knowing k, E[T] = O(D + D^2/k) — asymptotically
// optimal. The k the STRATEGY is constructed with is the agents' belief;
// experiments about approximate knowledge deliberately construct it with a
// value different from the true agent count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/program.h"

namespace ants::core {

class KnownKStrategy final : public sim::Strategy {
 public:
  /// `k_belief` >= 1: the number of agents each agent assumes.
  explicit KnownKStrategy(std::int64_t k_belief);

  std::string name() const override;
  std::unique_ptr<sim::AgentProgram> make_program(
      sim::AgentContext ctx) const override;

  std::int64_t k_belief() const noexcept { return k_belief_; }

  /// Spiral budget of phase i: max(1, 2^(2i+2)/k), saturated. Exposed so
  /// tests can pin the schedule against the paper's pseudocode.
  sim::Time spiral_budget(int phase_i) const noexcept;

  /// Ball radius of phase i: min(2^i, 2^30).
  std::int64_t ball_radius(int phase_i) const noexcept;

 private:
  std::int64_t k_belief_;
};

}  // namespace ants::core
