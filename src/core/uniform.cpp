#include "core/uniform.h"

#include "util/format.h"

#include <cmath>
#include <stdexcept>

#include "core/params.h"
#include "grid/ball.h"
#include "util/sat.h"

namespace ants::core {

namespace {

class UniformProgram final : public sim::AgentProgram {
 public:
  explicit UniformProgram(const UniformStrategy& strategy)
      : strategy_(strategy) {}

  sim::Op next(rng::Rng& rng) override {
    switch (step_) {
      case Step::kGoTo: {
        step_ = Step::kSpiral;
        const std::int64_t radius = strategy_.ball_radius(i_, j_);
        return sim::GoTo{grid::uniform_ball_point(rng, radius)};
      }
      case Step::kSpiral:
        step_ = Step::kReturn;
        return sim::SpiralFor{strategy_.spiral_budget(i_, j_)};
      default:
        step_ = Step::kGoTo;
        advance();
        return sim::ReturnToSource{};
    }
  }

 private:
  enum class Step { kGoTo, kSpiral, kReturn };

  void advance() {
    // Innermost to outermost: phase j in [0, i], stage i in [0, l],
    // big-stage l unbounded.
    if (j_ < i_) {
      ++j_;
      return;
    }
    j_ = 0;
    if (i_ < l_) {
      ++i_;
      return;
    }
    i_ = 0;
    ++l_;
  }

  const UniformStrategy& strategy_;
  int l_ = 0;  // big-stage
  int i_ = 0;  // stage
  int j_ = 0;  // phase
  Step step_ = Step::kGoTo;
};

/// j^(1+eps) with the paper's j = 0 fixed up to 1.
double phase_divisor(int j, double eps) noexcept {
  const double jj = j < 1 ? 1.0 : static_cast<double>(j);
  return std::pow(jj, 1.0 + eps);
}

}  // namespace

UniformStrategy::UniformStrategy(double eps) : eps_(eps) {
  if (!(eps >= 0.0)) throw std::invalid_argument("Uniform: eps >= 0");
}

std::string UniformStrategy::name() const {
  return "uniform(eps=" + util::fmt_param(eps_) + ")";
}

std::unique_ptr<sim::AgentProgram> UniformStrategy::make_program(
    sim::AgentContext /*ctx*/) const {
  // Uniform algorithm: identical program for every agent, no use of ctx.k.
  return std::make_unique<UniformProgram>(*this);
}

std::int64_t UniformStrategy::ball_radius(int stage_i, int phase_j) const
    noexcept {
  // D_ij = sqrt(2^(i+j) / j^(1+eps)); exact enough in double for all
  // reachable stages (2^(i+j) <= 2^120 is far beyond any horizon anyway).
  const double d = std::sqrt(std::ldexp(1.0, stage_i + phase_j) /
                             phase_divisor(phase_j, eps_));
  return clamp_radius(d);
}

sim::Time UniformStrategy::spiral_budget(int stage_i, int phase_j) const
    noexcept {
  // t_ij = 2^(i+2) / j^(1+eps), clamped to >= 1 and saturated above.
  const double t =
      std::ldexp(1.0, stage_i + 2) / phase_divisor(phase_j, eps_);
  const std::int64_t budget = util::sat_from_double(t);
  return budget < 1 ? 1 : budget;
}

}  // namespace ants::core
