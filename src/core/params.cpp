#include "core/params.h"

#include <cmath>

namespace ants::core {

std::int64_t clamp_radius(double r) noexcept {
  if (!(r >= 1.0)) return 1;  // also catches NaN
  if (r >= static_cast<double>(kMaxBallRadius)) return kMaxBallRadius;
  return static_cast<std::int64_t>(r);
}

}  // namespace ants::core
