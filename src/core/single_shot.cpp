#include "core/single_shot.h"

#include <algorithm>
#include <stdexcept>

#include "core/params.h"
#include "grid/ball.h"
#include "util/format.h"
#include "util/sat.h"

namespace ants::core {

namespace {

// Phases i = 1, 2, 3, ... each exactly once (A_k without the stage loop).
class SweepKnownKProgram final : public sim::AgentProgram {
 public:
  explicit SweepKnownKProgram(const SingleSweepKnownK& strategy)
      : strategy_(strategy) {}

  sim::Op next(rng::Rng& rng) override {
    switch (step_) {
      case Step::kGoTo: {
        step_ = Step::kSpiral;
        const std::int64_t radius = strategy_.ball_radius(i_);
        return sim::GoTo{grid::uniform_ball_point(rng, radius)};
      }
      case Step::kSpiral:
        step_ = Step::kReturn;
        return sim::SpiralFor{strategy_.spiral_budget(i_)};
      default:
        step_ = Step::kGoTo;
        ++i_;  // the single sweep: no outer loop to reset i
        return sim::ReturnToSource{};
    }
  }

 private:
  enum class Step { kGoTo, kSpiral, kReturn };

  const SingleSweepKnownK& strategy_;
  int i_ = 1;
  Step step_ = Step::kGoTo;
};

// Stages i = 0, 1, 2, ... each exactly once, inner phases j = 0..i intact
// (Algorithm 1 without the big-stage loop).
class SweepUniformProgram final : public sim::AgentProgram {
 public:
  explicit SweepUniformProgram(const SingleSweepUniform& strategy)
      : strategy_(strategy) {}

  sim::Op next(rng::Rng& rng) override {
    switch (step_) {
      case Step::kGoTo: {
        step_ = Step::kSpiral;
        const std::int64_t radius = strategy_.ball_radius(i_, j_);
        return sim::GoTo{grid::uniform_ball_point(rng, radius)};
      }
      case Step::kSpiral:
        step_ = Step::kReturn;
        return sim::SpiralFor{strategy_.spiral_budget(i_, j_)};
      default:
        step_ = Step::kGoTo;
        advance();
        return sim::ReturnToSource{};
    }
  }

 private:
  enum class Step { kGoTo, kSpiral, kReturn };

  void advance() {
    if (j_ < i_) {
      ++j_;
    } else {
      j_ = 0;
      ++i_;  // the single sweep: stages never repeat
    }
  }

  const SingleSweepUniform& strategy_;
  int i_ = 0;
  int j_ = 0;
  Step step_ = Step::kGoTo;
};

}  // namespace

SingleSweepKnownK::SingleSweepKnownK(std::int64_t k_belief)
    : k_belief_(k_belief) {
  if (k_belief < 1) {
    throw std::invalid_argument("SingleSweepKnownK: k_belief >= 1");
  }
}

std::string SingleSweepKnownK::name() const {
  return "sweep-known-k(k=" + std::to_string(k_belief_) + ")";
}

std::unique_ptr<sim::AgentProgram> SingleSweepKnownK::make_program(
    sim::AgentContext /*ctx*/) const {
  return std::make_unique<SweepKnownKProgram>(*this);
}

sim::Time SingleSweepKnownK::spiral_budget(int phase_i) const noexcept {
  // Identical to KnownKStrategy::spiral_budget: t_i = 2^(2i+2)/k, >= 1.
  const int exponent = 2 * phase_i + 2;
  const std::int64_t numerator =
      exponent >= 62 ? util::kTimeCap : util::pow2(exponent);
  return std::max<std::int64_t>(1, numerator / k_belief_);
}

std::int64_t SingleSweepKnownK::ball_radius(int phase_i) const noexcept {
  return util::pow2(std::min(phase_i, kMaxRadiusExponent));
}

SingleSweepUniform::SingleSweepUniform(double eps) : inner_(eps) {}

std::string SingleSweepUniform::name() const {
  return "sweep-uniform(eps=" + util::fmt_param(inner_.eps()) + ")";
}

std::unique_ptr<sim::AgentProgram> SingleSweepUniform::make_program(
    sim::AgentContext /*ctx*/) const {
  return std::make_unique<SweepUniformProgram>(*this);
}

}  // namespace ants::core
