#include "stats/regression.h"

#include <cmath>
#include <stdexcept>

namespace ants::stats {

LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y) {
  if (x.size() != y.size()) throw std::invalid_argument("size mismatch");
  if (x.size() < 2) throw std::invalid_argument("need >= 2 points");
  const auto n = static_cast<double>(x.size());

  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;

  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0) throw std::invalid_argument("x is constant");

  LinearFit fit;
  fit.n = x.size();
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

LinearFit fit_power_law(const std::vector<double>& x,
                        const std::vector<double>& y) {
  if (x.size() != y.size()) throw std::invalid_argument("size mismatch");
  std::vector<double> lx, ly;
  lx.reserve(x.size());
  ly.reserve(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0 || y[i] <= 0) {
      throw std::invalid_argument("power-law fit needs positive data");
    }
    lx.push_back(std::log(x[i]));
    ly.push_back(std::log(y[i]));
  }
  return fit_linear(lx, ly);
}

}  // namespace ants::stats
