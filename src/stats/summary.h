// Descriptive statistics for Monte-Carlo trial results.
//
// Two entry points: Accumulator for streaming (Welford) aggregation inside
// the runner, and Summary::from for a full vector when quantiles are needed.
// Heavy-tailed experiments (harmonic algorithm) must report medians and
// quantiles, not just means — see DESIGN.md section 3.4 — so Summary always
// carries order statistics.
#pragma once

#include <cstddef>
#include <vector>

namespace ants::stats {

/// Welford online mean/variance; numerically stable for any trial count.
class Accumulator {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Standard error of the mean.
  double std_error() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

struct Summary {
  std::size_t n = 0;
  double mean = 0;
  double stddev = 0;
  double std_error = 0;
  double min = 0;
  double max = 0;
  double median = 0;
  double q25 = 0;
  double q75 = 0;
  double q95 = 0;

  /// Half-width of the normal-approximation 95% confidence interval of the
  /// mean (1.96 * std_error).
  double ci95_half() const noexcept { return 1.96 * std_error; }

  /// Builds the summary; sorts a copy of the samples for the quantiles.
  static Summary from(std::vector<double> samples);
};

/// Linear-interpolation quantile of a SORTED sample, q in [0, 1].
double quantile_sorted(const std::vector<double>& sorted, double q);

}  // namespace ants::stats
