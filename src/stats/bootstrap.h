// Percentile-bootstrap confidence intervals.
//
// Normal-approximation CIs are misleading for the library's heavy-tailed
// search-time distributions; the experiment harnesses bootstrap medians and
// means instead when they need honest uncertainty bands.
#pragma once

#include <functional>
#include <vector>

#include "rng/rng.h"

namespace ants::stats {

struct BootstrapCI {
  double point = 0;  ///< statistic on the original sample
  double lo = 0;     ///< lower percentile bound
  double hi = 0;     ///< upper percentile bound
};

/// Generic percentile bootstrap: resamples `samples` with replacement
/// `iterations` times and returns the [alpha/2, 1-alpha/2] percentiles of
/// the statistic. The statistic receives the resampled vector.
BootstrapCI bootstrap_ci(
    const std::vector<double>& samples,
    const std::function<double(const std::vector<double>&)>& statistic,
    rng::Rng& rng, int iterations = 1000, double alpha = 0.05);

/// Bootstrap CI of the mean.
BootstrapCI bootstrap_mean(const std::vector<double>& samples, rng::Rng& rng,
                           int iterations = 1000, double alpha = 0.05);

/// Bootstrap CI of the median.
BootstrapCI bootstrap_median(const std::vector<double>& samples, rng::Rng& rng,
                             int iterations = 1000, double alpha = 0.05);

}  // namespace ants::stats
