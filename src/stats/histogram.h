// Fixed-bin histograms (linear or base-2 logarithmic) used by the
// trajectory/visitation analyses, the distribution tests, and the run
// telemetry's duration sketches (src/telemetry/metrics.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ants::stats {

/// Linear histogram over [lo, hi) with `bins` equal-width bins; values
/// outside the range land in saturated edge bins and are counted separately.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  /// Counts `n` samples directly into bin `bin` (used to rebuild a
  /// serialized histogram, e.g. a telemetry sketch read back from a shard
  /// artifact). Throws std::out_of_range on a bad bin index.
  void add_count(std::size_t bin, std::uint64_t n);

  /// Restores saturation counters alongside add_count: a sparse (bin,
  /// count) serialization lands clipped samples back in the edge bins, but
  /// cannot know how many of them were out-of-range. Bumps only
  /// underflow/overflow — never the bin counts or the total, which already
  /// include these samples via add_count.
  void add_saturation(std::uint64_t under, std::uint64_t over) noexcept {
    underflow_ += under;
    overflow_ += over;
  }

  /// Bin-wise sum of another histogram with the IDENTICAL binning (same lo,
  /// hi, and bin count — throws std::invalid_argument otherwise). Exact:
  /// merging shard sketches then asking for a quantile equals asking the
  /// single-run sketch, which is what lets sharded sweeps aggregate
  /// distributions without raw samples.
  void merge(const Histogram& other);

  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// The p-quantile (p in [0, 1]) with linear interpolation inside the
  /// winning bin. Resolution is one bin width; saturated out-of-range
  /// samples read as their edge bin. Returns NaN for an empty histogram;
  /// throws std::invalid_argument on p outside [0, 1].
  double quantile(double p) const;

  /// Plain-text rendering with proportional bars (for examples and
  /// `search_lab report --hist`). An empty histogram renders as a single
  /// "(empty)" line instead of a wall of zero-count bins; saturated
  /// underflow/overflow counts are annotated when present.
  std::string render(std::size_t max_width = 50) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Histogram over power-of-two buckets [2^i, 2^(i+1)); bucket(0) also counts
/// values < 1. Natural for dyadic-annulus visitation accounting.
class Log2Histogram {
 public:
  /// Grows the bucket vector on demand, so allocation can throw — which is
  /// why this is NOT noexcept (it used to be declared so, turning a rare
  /// bad_alloc into std::terminate).
  void add(double x);

  std::size_t max_bucket() const noexcept;
  std::uint64_t count(std::size_t bucket) const noexcept;
  std::uint64_t total() const noexcept { return total_; }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace ants::stats
