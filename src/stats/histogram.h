// Fixed-bin histograms (linear or base-2 logarithmic) used by the
// trajectory/visitation analyses and the distribution tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ants::stats {

/// Linear histogram over [lo, hi) with `bins` equal-width bins; values
/// outside the range land in saturated edge bins and are counted separately.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Plain-text rendering with proportional bars (for examples).
  std::string render(std::size_t max_width = 50) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Histogram over power-of-two buckets [2^i, 2^(i+1)); bucket(0) also counts
/// values < 1. Natural for dyadic-annulus visitation accounting.
class Log2Histogram {
 public:
  void add(double x) noexcept;

  std::size_t max_bucket() const noexcept;
  std::uint64_t count(std::size_t bucket) const noexcept;
  std::uint64_t total() const noexcept { return total_; }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace ants::stats
