#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ants::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)) {
  if (!(hi > lo)) throw std::invalid_argument("histogram needs hi > lo");
  if (bins == 0) throw std::invalid_argument("histogram needs >= 1 bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    ++counts_.front();
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    ++counts_.back();
    return;
  }
  const auto bin = std::min(
      counts_.size() - 1, static_cast<std::size_t>((x - lo_) / width_));
  ++counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

std::string Histogram::render(std::size_t max_width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char label[64];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    std::snprintf(label, sizeof(label), "[%10.1f, %10.1f) %8llu ", bin_lo(b),
                  bin_hi(b), static_cast<unsigned long long>(counts_[b]));
    out += label;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

void Log2Histogram::add(double x) noexcept {
  ++total_;
  std::size_t bucket = 0;
  if (x >= 1) {
    bucket = static_cast<std::size_t>(std::floor(std::log2(x)));
  }
  if (bucket >= counts_.size()) counts_.resize(bucket + 1, 0);
  ++counts_[bucket];
}

std::size_t Log2Histogram::max_bucket() const noexcept {
  return counts_.empty() ? 0 : counts_.size() - 1;
}

std::uint64_t Log2Histogram::count(std::size_t bucket) const noexcept {
  return bucket < counts_.size() ? counts_[bucket] : 0;
}

}  // namespace ants::stats
