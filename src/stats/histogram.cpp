#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ants::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)) {
  if (!(hi > lo)) throw std::invalid_argument("histogram needs hi > lo");
  if (bins == 0) throw std::invalid_argument("histogram needs >= 1 bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    ++counts_.front();
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    ++counts_.back();
    return;
  }
  const auto bin = std::min(
      counts_.size() - 1, static_cast<std::size_t>((x - lo_) / width_));
  ++counts_[bin];
}

void Histogram::add_count(std::size_t bin, std::uint64_t n) {
  counts_.at(bin) += n;
  total_ += n;
}

void Histogram::merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ ||
      other.counts_.size() != counts_.size()) {
    throw std::invalid_argument(
        "Histogram::merge: binning mismatch (merge requires identical "
        "lo/hi/bins)");
  }
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += other.counts_[b];
  }
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

double Histogram::quantile(double p) const {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("Histogram::quantile: p outside [0, 1]");
  }
  if (total_ == 0) return std::nan("");
  // The rank is continuous in [0, total]; walk the cumulative counts and
  // interpolate inside the bin that crosses it. p = 0 and p = 1 resolve to
  // the edges of the first/last occupied bin.
  const double rank = p * static_cast<double>(total_);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const double before = static_cast<double>(cum);
    cum += counts_[b];
    if (rank <= static_cast<double>(cum)) {
      const double frac =
          counts_[b] == 0
              ? 0.0
              : (rank - before) / static_cast<double>(counts_[b]);
      return bin_lo(b) + width_ * std::min(1.0, std::max(0.0, frac));
    }
  }
  // Numerically unreachable (rank <= total by construction); return the
  // upper edge of the last occupied bin.
  for (std::size_t b = counts_.size(); b-- > 0;) {
    if (counts_[b] != 0) return bin_hi(b);
  }
  return std::nan("");
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

std::string Histogram::render(std::size_t max_width) const {
  // An empty histogram used to render as a full wall of zero-count bins —
  // indistinguishable at a glance from real all-zero data and useless in a
  // report. Say so instead.
  if (total_ == 0) return "(empty: 0 samples)\n";
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char label[96];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    std::snprintf(label, sizeof(label), "[%10.1f, %10.1f) %8llu ", bin_lo(b),
                  bin_hi(b), static_cast<unsigned long long>(counts_[b]));
    out += label;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    out.append(bar, '#');
    out += '\n';
  }
  // Saturated samples sit inside the edge bins' counts; the bin labels
  // alone would misread them as in-range values.
  if (underflow_ > 0 || overflow_ > 0) {
    std::snprintf(label, sizeof(label),
                  "(saturated: %llu below lo, %llu at/above hi)\n",
                  static_cast<unsigned long long>(underflow_),
                  static_cast<unsigned long long>(overflow_));
    out += label;
  }
  return out;
}

void Log2Histogram::add(double x) {
  ++total_;
  std::size_t bucket = 0;
  if (x >= 1) {
    bucket = static_cast<std::size_t>(std::floor(std::log2(x)));
  }
  if (bucket >= counts_.size()) counts_.resize(bucket + 1, 0);
  ++counts_[bucket];
}

std::size_t Log2Histogram::max_bucket() const noexcept {
  return counts_.empty() ? 0 : counts_.size() - 1;
}

std::uint64_t Log2Histogram::count(std::size_t bucket) const noexcept {
  return bucket < counts_.size() ? counts_[bucket] : 0;
}

}  // namespace ants::stats
