#include "stats/summary.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ants::stats {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::std_error() const noexcept {
  return n_ >= 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  assert(!sorted.empty());
  assert(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary Summary::from(std::vector<double> samples) {
  Summary s;
  s.n = samples.size();
  if (samples.empty()) return s;

  Accumulator acc;
  for (const double x : samples) acc.add(x);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.std_error = acc.std_error();
  s.min = acc.min();
  s.max = acc.max();

  std::sort(samples.begin(), samples.end());
  s.median = quantile_sorted(samples, 0.5);
  s.q25 = quantile_sorted(samples, 0.25);
  s.q75 = quantile_sorted(samples, 0.75);
  s.q95 = quantile_sorted(samples, 0.95);
  return s;
}

}  // namespace ants::stats
