#include "stats/bootstrap.h"

#include <algorithm>
#include <stdexcept>

#include "stats/summary.h"

namespace ants::stats {

BootstrapCI bootstrap_ci(
    const std::vector<double>& samples,
    const std::function<double(const std::vector<double>&)>& statistic,
    rng::Rng& rng, int iterations, double alpha) {
  if (samples.empty()) throw std::invalid_argument("bootstrap: no samples");
  if (iterations < 1) throw std::invalid_argument("bootstrap: iterations");

  BootstrapCI ci;
  ci.point = statistic(samples);

  std::vector<double> stats;
  stats.reserve(static_cast<std::size_t>(iterations));
  std::vector<double> resample(samples.size());
  for (int it = 0; it < iterations; ++it) {
    for (auto& v : resample) {
      v = samples[rng.uniform_u64(samples.size())];
    }
    stats.push_back(statistic(resample));
  }
  std::sort(stats.begin(), stats.end());
  ci.lo = quantile_sorted(stats, alpha / 2);
  ci.hi = quantile_sorted(stats, 1 - alpha / 2);
  return ci;
}

namespace {

double mean_of(const std::vector<double>& v) {
  double s = 0;
  for (const double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double median_of(const std::vector<double>& v) {
  std::vector<double> copy = v;
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, 0.5);
}

}  // namespace

BootstrapCI bootstrap_mean(const std::vector<double>& samples, rng::Rng& rng,
                           int iterations, double alpha) {
  return bootstrap_ci(samples, mean_of, rng, iterations, alpha);
}

BootstrapCI bootstrap_median(const std::vector<double>& samples, rng::Rng& rng,
                             int iterations, double alpha) {
  return bootstrap_ci(samples, median_of, rng, iterations, alpha);
}

}  // namespace ants::stats
