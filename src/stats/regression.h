// Ordinary least squares on (x, y) pairs, plus the log-log convenience
// wrapper the scaling experiments use to extract empirical exponents
// (e.g. "does T(D, k) scale like D^2/k?" becomes "is the fitted log-log
// slope 2 in D and -1 in k?").
#pragma once

#include <cstddef>
#include <vector>

namespace ants::stats {

struct LinearFit {
  double slope = 0;
  double intercept = 0;
  double r_squared = 0;
  std::size_t n = 0;
};

/// OLS fit y ~ intercept + slope * x; requires >= 2 points and non-constant x.
LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y);

/// Fits y ~ c * x^p by OLS on (ln x, ln y); all inputs must be positive.
/// Returned slope is the exponent p, intercept is ln(c).
LinearFit fit_power_law(const std::vector<double>& x,
                        const std::vector<double>& y);

}  // namespace ants::stats
