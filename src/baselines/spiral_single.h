// The single-agent square spiral: the two-dimensional cow-path solution
// Baeza-Yates et al. [7] proved optimal (up to lower-order terms) for one
// searcher with unknown D — time Theta(D^2).
//
// As a k-agent strategy it is also the degenerate "identical deterministic
// agents" baseline: all k agents trace the same spiral, so the speed-up is
// exactly 1 — the paper's point that deterministic identical agents cannot
// collaborate without coordination or randomness (E8 shows the flat line).
#pragma once

#include <memory>
#include <string>

#include "sim/program.h"

namespace ants::baselines {

class SpiralSingleStrategy final : public sim::Strategy {
 public:
  SpiralSingleStrategy() = default;

  std::string name() const override { return "spiral"; }
  std::unique_ptr<sim::AgentProgram> make_program(
      sim::AgentContext ctx) const override;
};

}  // namespace ants::baselines
