#include "baselines/levy.h"

#include "util/format.h"

#include <cmath>
#include <stdexcept>

#include "util/sat.h"

namespace ants::baselines {

namespace {

// Flights are truncated at a huge-but-finite length so coordinates stay
// comfortably inside int64 (a 2^40-step flight already exceeds every
// experiment horizon).
constexpr double kMaxFlight = 1099511627776.0;  // 2^40

class LevyProgram final : public sim::AgentProgram {
 public:
  explicit LevyProgram(const LevyStrategy& strategy) : strategy_(strategy) {}

  sim::Op next(rng::Rng& rng) override {
    switch (step_) {
      case Step::kFly: {
        // Pareto(1, mu-1) gives the flight-length tail P(L > x) = x^-(mu-1),
        // i.e. density ~ x^-mu.
        double len = rng.pareto(1.0, strategy_.mu() - 1.0);
        if (len > kMaxFlight) len = kMaxFlight;
        const double theta = rng.angle();
        const auto dx =
            static_cast<std::int64_t>(std::llround(len * std::cos(theta)));
        const auto dy =
            static_cast<std::int64_t>(std::llround(len * std::sin(theta)));
        target_ = anchor_ + grid::Point{dx, dy};
        if (strategy_.scan_time() > 0) {
          step_ = Step::kScan;
        } else if (strategy_.loop()) {
          step_ = Step::kReturn;
        } else {
          anchor_ = target_;  // chain flights endpoint-to-endpoint
        }
        return sim::GoTo{target_};
      }
      case Step::kScan:
        if (strategy_.loop()) {
          step_ = Step::kReturn;
        } else {
          step_ = Step::kFly;
          anchor_ = target_;
        }
        return sim::SpiralFor{strategy_.scan_time()};
      default:  // kReturn
        step_ = Step::kFly;
        anchor_ = grid::kOrigin;
        return sim::ReturnToSource{};
    }
  }

 private:
  enum class Step { kFly, kScan, kReturn };

  const LevyStrategy& strategy_;
  grid::Point anchor_ = grid::kOrigin;  // where the next flight starts
  grid::Point target_ = grid::kOrigin;
  Step step_ = Step::kFly;
};

}  // namespace

LevyStrategy::LevyStrategy(double mu, bool loop, sim::Time scan_time)
    : mu_(mu), loop_(loop), scan_time_(scan_time) {
  if (!(mu > 1.0 && mu <= 3.0)) {
    throw std::invalid_argument("Levy: mu in (1, 3]");
  }
  if (scan_time < 0) throw std::invalid_argument("Levy: scan_time >= 0");
}

std::string LevyStrategy::name() const {
  return std::string("levy(mu=") + util::fmt_param(mu_) +
         (loop_ ? ",loop" : ",free") +
         (scan_time_ > 0 ? ",scan=" + std::to_string(scan_time_) : "") + ")";
}

std::unique_ptr<sim::AgentProgram> LevyStrategy::make_program(
    sim::AgentContext /*ctx*/) const {
  return std::make_unique<LevyProgram>(*this);
}

}  // namespace ants::baselines
