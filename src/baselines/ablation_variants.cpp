#include "baselines/ablation_variants.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/known_k.h"
#include "grid/ball.h"
#include "util/sat.h"

namespace ants::baselines {

namespace {

/// Materializes a `steps`-long simple random walk as successive positions
/// starting AFTER `from` (FollowPath convention).
std::vector<grid::Point> random_walk_steps(rng::Rng& rng, grid::Point from,
                                           sim::Time steps) {
  std::vector<grid::Point> path;
  path.reserve(static_cast<std::size_t>(steps));
  grid::Point pos = from;
  for (sim::Time t = 0; t < steps; ++t) {
    pos = pos + grid::kDirections[rng.direction4()];
    path.push_back(pos);
  }
  return path;
}

// A_k's schedule via a borrowed KnownKStrategy; local search is a
// materialized random walk instead of a spiral.
class RandomLocalProgram final : public sim::AgentProgram {
 public:
  explicit RandomLocalProgram(std::int64_t k_belief) : schedule_(k_belief) {}

  sim::Op next(rng::Rng& rng) override {
    switch (step_) {
      case Step::kGoTo: {
        step_ = Step::kLocal;
        const std::int64_t radius = schedule_.ball_radius(i_);
        target_ = grid::uniform_ball_point(rng, radius);
        return sim::GoTo{target_};
      }
      case Step::kLocal: {
        step_ = Step::kReturn;
        // Same step budget as the spiral would get; capped to keep the
        // materialized path affordable (the ablation is run at small i).
        const sim::Time budget =
            std::min<sim::Time>(schedule_.spiral_budget(i_), 1 << 22);
        return sim::FollowPath{random_walk_steps(rng, target_, budget)};
      }
      default:
        step_ = Step::kGoTo;
        if (i_ < j_) {
          ++i_;
        } else {
          ++j_;
          i_ = 1;
        }
        return sim::ReturnToSource{};
    }
  }

 private:
  enum class Step { kGoTo, kLocal, kReturn };

  core::KnownKStrategy schedule_;
  grid::Point target_{};
  int j_ = 1;
  int i_ = 1;
  Step step_ = Step::kGoTo;
};

// A_k minus the ReturnToSource op.
class NoReturnProgram final : public sim::AgentProgram {
 public:
  explicit NoReturnProgram(std::int64_t k_belief) : schedule_(k_belief) {}

  sim::Op next(rng::Rng& rng) override {
    if (go_phase_) {
      go_phase_ = false;
      const std::int64_t radius = schedule_.ball_radius(i_);
      return sim::GoTo{grid::uniform_ball_point(rng, radius)};
    }
    go_phase_ = true;
    const sim::Time budget = schedule_.spiral_budget(i_);
    if (i_ < j_) {
      ++i_;
    } else {
      ++j_;
      i_ = 1;
    }
    return sim::SpiralFor{budget};
  }

 private:
  core::KnownKStrategy schedule_;
  bool go_phase_ = true;
  int j_ = 1;
  int i_ = 1;
};

}  // namespace

KnownKRandomLocalStrategy::KnownKRandomLocalStrategy(std::int64_t k_belief)
    : k_belief_(k_belief) {
  if (k_belief < 1) {
    throw std::invalid_argument("KnownKRandomLocal: k_belief >= 1");
  }
}

std::string KnownKRandomLocalStrategy::name() const {
  return "known-k-rw-local(k=" + std::to_string(k_belief_) + ")";
}

std::unique_ptr<sim::AgentProgram> KnownKRandomLocalStrategy::make_program(
    sim::AgentContext /*ctx*/) const {
  return std::make_unique<RandomLocalProgram>(k_belief_);
}

KnownKNoReturnStrategy::KnownKNoReturnStrategy(std::int64_t k_belief)
    : k_belief_(k_belief) {
  if (k_belief < 1) {
    throw std::invalid_argument("KnownKNoReturn: k_belief >= 1");
  }
}

std::string KnownKNoReturnStrategy::name() const {
  return "known-k-no-return(k=" + std::to_string(k_belief_) + ")";
}

std::unique_ptr<sim::AgentProgram> KnownKNoReturnStrategy::make_program(
    sim::AgentContext /*ctx*/) const {
  return std::make_unique<NoReturnProgram>(k_belief_);
}

}  // namespace ants::baselines
