#include "baselines/random_walk.h"

namespace ants::baselines {

namespace {

class RandomWalkProgram final : public sim::StepProgram {
 public:
  grid::Point step(rng::Rng& rng, grid::Point current) override {
    return current + grid::kDirections[rng.direction4()];
  }
};

}  // namespace

std::unique_ptr<sim::StepProgram> RandomWalkStrategy::make_program(
    sim::AgentContext /*ctx*/) const {
  return std::make_unique<RandomWalkProgram>();
}

}  // namespace ants::baselines
