// Ablation variants of A_k: surgically altered versions of the paper's
// non-uniform algorithm that isolate single design choices.
//
//  * KnownKRandomLocalStrategy — the spiral search of each phase is replaced
//    by a simple random walk of the SAME step budget around the chosen
//    node. Tests the paper's implicit claim (section 1/related work) that
//    SYSTEMATIC local search matters: a t-step spiral covers Theta(t)
//    distinct nodes while a t-step random walk covers only Theta(t/log t)
//    and keeps revisiting, so the per-phase hit probability collapses and
//    competitiveness inflates (bench/abl_local_search.cpp).
//
//  * KnownKNoReturnStrategy — atomic procedure (4), "return to the source",
//    is dropped: each trip starts from wherever the previous spiral ended.
//    The return legs cost Theta(2^i) per phase, the same order as the
//    travel out, so dropping them can only change constants — but the
//    return step is what keeps an ant's navigation state bounded (path
//    integration home resets odometry). The bench quantifies how little
//    time the return legs actually cost (bench/abl_return_policy.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/program.h"
#include "sim/types.h"

namespace ants::baselines {

/// A_k with random-walk local search of equal budget (ablation).
class KnownKRandomLocalStrategy final : public sim::Strategy {
 public:
  explicit KnownKRandomLocalStrategy(std::int64_t k_belief);

  std::string name() const override;
  std::unique_ptr<sim::AgentProgram> make_program(
      sim::AgentContext ctx) const override;

  std::int64_t k_belief() const noexcept { return k_belief_; }

 private:
  std::int64_t k_belief_;
};

/// A_k without the return-to-source leg (ablation).
class KnownKNoReturnStrategy final : public sim::Strategy {
 public:
  explicit KnownKNoReturnStrategy(std::int64_t k_belief);

  std::string name() const override;
  std::unique_ptr<sim::AgentProgram> make_program(
      sim::AgentContext ctx) const override;

  std::int64_t k_belief() const noexcept { return k_belief_; }

 private:
  std::int64_t k_belief_;
};

}  // namespace ants::baselines
