// k independent simple random walkers — the natural memoryless baseline the
// paper dismisses: on the infinite grid Z^2 the expected hitting time of a
// node is INFINITE even at distance 1 (the walk is null-recurrent), and
// experiment E7 shows exactly that blow-up empirically. Runs under the
// step-level engine with a finite cap.
#pragma once

#include <memory>
#include <string>

#include "sim/step_engine.h"

namespace ants::baselines {

class RandomWalkStrategy final : public sim::StepStrategy {
 public:
  RandomWalkStrategy() = default;

  std::string name() const override { return "random-walk"; }
  std::unique_ptr<sim::StepProgram> make_program(
      sim::AgentContext ctx) const override;
};

}  // namespace ants::baselines
