// Outward-biased correlated random walk: the synthetic stand-in for the
// Harkness-Maroudas desert-ant model [24] the paper cites (their 1985 model
// is specified only loosely; see DESIGN.md section 3.5). Two behavioral
// knobs:
//
//   outward_bias  in [0, 1): extra weight on moves that increase the
//                 distance from the nest (drift away from the origin);
//   persistence   in [0, 1): probability of repeating the previous move
//                 regardless of bias (directional correlation — "compass-
//                 directed vector flight").
//
// With both zero this degenerates to the simple random walk. The model
// produces the two-part trajectories the paper's section 6 describes
// (straight outward runs + local tortuosity) without any treasure knowledge.
#pragma once

#include <memory>
#include <string>

#include "sim/step_engine.h"

namespace ants::baselines {

class BiasedWalkStrategy final : public sim::StepStrategy {
 public:
  BiasedWalkStrategy(double outward_bias, double persistence);

  std::string name() const override;
  std::unique_ptr<sim::StepProgram> make_program(
      sim::AgentContext ctx) const override;

  double outward_bias() const noexcept { return outward_bias_; }
  double persistence() const noexcept { return persistence_; }

 private:
  double outward_bias_;
  double persistence_;
};

}  // namespace ants::baselines
