#include "baselines/spiral_single.h"

#include "util/sat.h"

namespace ants::baselines {

namespace {

class SpiralSingleProgram final : public sim::AgentProgram {
 public:
  sim::Op next(rng::Rng& /*rng*/) override {
    // One maximal spiral; its duration saturates the clock, so the engine
    // resolves the whole run from this single segment's closed form.
    return sim::SpiralFor{util::kTimeCap};
  }
};

}  // namespace

std::unique_ptr<sim::AgentProgram> SpiralSingleStrategy::make_program(
    sim::AgentContext /*ctx*/) const {
  return std::make_unique<SpiralSingleProgram>();
}

}  // namespace ants::baselines
