// Coordinated sector sweep: the "with coordination" upper baseline.
//
// The paper proves agents that KNOW k can reach O(D + D^2/k) even without
// communication (Theorem 3.1, randomized). This deterministic baseline shows
// what explicit coordination buys: agent i of k owns the angular sector
// [i/k, (i+1)/k) of every square (Chebyshev) ring and sweeps its arcs
// boustrophedon, ring by ring outward. Every node of ring r is covered by
// exactly one agent, arcs are unit-step connected (they are runs of the
// square spiral's ring traversal), and transitions between consecutive rings
// cost O(r/k + 1) short walks, so covering B(D) takes O(D^2/k + D) steps —
// the optimal order, deterministically.
//
// This is the one strategy that legitimately reads AgentContext: both the
// agent index and k (it models centralized assignment, the contrast class to
// everything in the paper).
#pragma once

#include <memory>
#include <string>

#include "sim/program.h"

namespace ants::baselines {

class SectorSweepStrategy final : public sim::Strategy {
 public:
  SectorSweepStrategy() = default;

  std::string name() const override { return "sector-sweep"; }
  std::unique_ptr<sim::AgentProgram> make_program(
      sim::AgentContext ctx) const override;
};

}  // namespace ants::baselines
