// The classical one-dimensional cow-path problem (linear search), the
// problem the paper generalizes: a single searcher on the integer line looks
// for a target at unknown signed position; the doubling ("zig-zag") strategy
// of Baeza-Yates, Culberson and Rawlins [7] is 9-competitive and optimal
// among deterministic strategies.
//
// Included as the historical root baseline: tests pin the competitive ratio
// at 9, and E8 contrasts the 1D ratio with the 2D generalization's bounds.
#pragma once

#include <cstdint>

namespace ants::baselines {

struct CowPathResult {
  std::int64_t steps = 0;        ///< total edge traversals until the target
  std::int64_t turns = 0;        ///< direction reversals made
  double competitive_ratio = 0;  ///< steps / |target|
};

/// Runs the deterministic doubling strategy from the origin: probe 1 to the
/// right, 2 to the left, 4 to the right, ... (each probe returns to the
/// origin first). `target` != 0; `first_right` selects the initial side.
CowPathResult cow_path_doubling(std::int64_t target, bool first_right = true);

/// Worst-case competitive ratio of the doubling strategy over all targets
/// with |target| <= max_distance (exhaustive; for tests and tables).
double cow_path_worst_ratio(std::int64_t max_distance);

}  // namespace ants::baselines
