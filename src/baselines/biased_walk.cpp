#include "baselines/biased_walk.h"

#include "util/format.h"

#include <stdexcept>

namespace ants::baselines {

namespace {

class BiasedWalkProgram final : public sim::StepProgram {
 public:
  BiasedWalkProgram(double outward_bias, double persistence)
      : outward_bias_(outward_bias), persistence_(persistence) {}

  grid::Point step(rng::Rng& rng, grid::Point current) override {
    if (has_last_ && rng.bernoulli(persistence_)) {
      return current + grid::kDirections[last_dir_];
    }

    // Weight each move by whether it increases or decreases the distance
    // from the nest; lateral moves keep weight 1.
    const std::int64_t here = grid::l1_norm(current);
    double weight[4];
    double total = 0;
    for (int d = 0; d < 4; ++d) {
      const std::int64_t there = grid::l1_norm(current + grid::kDirections[d]);
      weight[d] = there > here ? 1.0 + outward_bias_
                  : there < here ? 1.0 - outward_bias_
                                 : 1.0;
      total += weight[d];
    }

    double u = rng.uniform_unit() * total;
    int dir = 3;
    for (int d = 0; d < 4; ++d) {
      if (u < weight[d]) {
        dir = d;
        break;
      }
      u -= weight[d];
    }
    last_dir_ = dir;
    has_last_ = true;
    return current + grid::kDirections[dir];
  }

 private:
  double outward_bias_;
  double persistence_;
  int last_dir_ = 0;
  bool has_last_ = false;
};

}  // namespace

BiasedWalkStrategy::BiasedWalkStrategy(double outward_bias, double persistence)
    : outward_bias_(outward_bias), persistence_(persistence) {
  if (!(outward_bias >= 0.0 && outward_bias < 1.0)) {
    throw std::invalid_argument("BiasedWalk: outward_bias in [0, 1)");
  }
  if (!(persistence >= 0.0 && persistence < 1.0)) {
    throw std::invalid_argument("BiasedWalk: persistence in [0, 1)");
  }
}

std::string BiasedWalkStrategy::name() const {
  return "biased-walk(b=" + util::fmt_param(outward_bias_) +
         ",p=" + util::fmt_param(persistence_) + ")";
}

std::unique_ptr<sim::StepProgram> BiasedWalkStrategy::make_program(
    sim::AgentContext /*ctx*/) const {
  return std::make_unique<BiasedWalkProgram>(outward_bias_, persistence_);
}

}  // namespace ants::baselines
