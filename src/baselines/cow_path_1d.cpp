#include "baselines/cow_path_1d.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ants::baselines {

CowPathResult cow_path_doubling(std::int64_t target, bool first_right) {
  if (target == 0) throw std::invalid_argument("cow-path: target != 0");

  CowPathResult result;
  std::int64_t probe = 1;
  bool right = first_right;
  for (;;) {
    // Walk `probe` in the current direction, checking whether the target
    // lies within this excursion, then return to the origin.
    const bool target_right = target > 0;
    const std::int64_t dist = target_right ? target : -target;
    if (right == target_right && dist <= probe) {
      result.steps += dist;
      result.competitive_ratio =
          static_cast<double>(result.steps) / static_cast<double>(dist);
      return result;
    }
    result.steps += 2 * probe;  // out and back
    ++result.turns;
    right = !right;
    assert(probe <= (std::int64_t{1} << 61));
    probe *= 2;
  }
}

double cow_path_worst_ratio(std::int64_t max_distance) {
  if (max_distance < 1) throw std::invalid_argument("cow-path: max_distance");
  double worst = 0;
  for (std::int64_t d = 1; d <= max_distance; ++d) {
    worst = std::max(worst, cow_path_doubling(d).competitive_ratio);
    worst = std::max(worst, cow_path_doubling(-d).competitive_ratio);
  }
  return worst;
}

}  // namespace ants::baselines
