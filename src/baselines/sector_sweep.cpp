#include "baselines/sector_sweep.h"

#include <algorithm>
#include <vector>

#include "grid/spiral.h"

namespace ants::baselines {

namespace {

class SectorSweepProgram final : public sim::AgentProgram {
 public:
  explicit SectorSweepProgram(sim::AgentContext ctx)
      : index_(ctx.agent_index), k_(ctx.k) {}

  sim::Op next(rng::Rng& /*rng*/) override {
    // Alternate "walk to the arc's entry node" and "follow the arc"; rings
    // with an empty arc for this agent are skipped.
    for (;;) {
      if (pending_entry_) {
        pending_entry_ = false;
        return sim::GoTo{arc_.front()};
      }
      if (!arc_.empty()) {
        std::vector<grid::Point> steps(arc_.begin() + 1, arc_.end());
        arc_.clear();
        if (!steps.empty()) return sim::FollowPath{std::move(steps)};
        continue;  // single-node arc: the GoTo already covered it
      }
      build_next_arc();
    }
  }

 private:
  void build_next_arc() {
    // Agent `index_` owns ring-r spiral offsets [floor(8r*i/k),
    // floor(8r*(i+1)/k)); the floor partition tiles [0, 8r) exactly across
    // agents. Offsets are positions along the square spiral's ring
    // traversal, so consecutive arc nodes are grid-adjacent.
    for (;;) {
      ++ring_;
      const std::int64_t ring_nodes = 8 * ring_;
      const std::int64_t lo = ring_nodes * index_ / k_;
      const std::int64_t hi = ring_nodes * (index_ + 1) / k_;
      if (hi <= lo) continue;  // empty arc on this ring

      const std::int64_t base = (2 * ring_ - 1) * (2 * ring_ - 1);
      arc_.clear();
      arc_.reserve(static_cast<std::size_t>(hi - lo));
      for (std::int64_t m = lo; m < hi; ++m) {
        arc_.push_back(grid::spiral_point(base + m));
      }
      // Boustrophedon: sweep odd rings forward, even rings backward, so the
      // next arc's entry is near this arc's exit.
      if (ring_ % 2 == 0) std::reverse(arc_.begin(), arc_.end());
      pending_entry_ = true;
      return;
    }
  }

  int index_;
  int k_;
  std::int64_t ring_ = 0;
  bool pending_entry_ = false;
  std::vector<grid::Point> arc_;
};

}  // namespace

std::unique_ptr<sim::AgentProgram> SectorSweepStrategy::make_program(
    sim::AgentContext ctx) const {
  return std::make_unique<SectorSweepProgram>(ctx);
}

}  // namespace ants::baselines
