// Levy-flight searchers (Reynolds [46, 47]): straight ballistic flights
// whose lengths follow a power law p(l) ~ l^-mu, mu in (1, 3], in uniformly
// random directions. Reynolds argues mu -> 1 (long straight lines) is
// optimal for COOPERATIVE foragers because straightness decorrelates
// overlapping searchers; E7 compares the family against the paper's
// algorithms.
//
// Two variants:
//   free  flights chain endpoint-to-endpoint (classic Levy search);
//   loop  every flight starts and ends at the nest ("Levy loops",
//         Reynolds' central-place variant [47]).
// An optional local scan spirals for scan_time steps after each flight
// (intermittent search).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/program.h"
#include "sim/types.h"

namespace ants::baselines {

class LevyStrategy final : public sim::Strategy {
 public:
  /// mu in (1, 3]; loop selects the central-place variant; scan_time >= 0.
  LevyStrategy(double mu, bool loop, sim::Time scan_time = 0);

  std::string name() const override;
  std::unique_ptr<sim::AgentProgram> make_program(
      sim::AgentContext ctx) const override;

  double mu() const noexcept { return mu_; }
  bool loop() const noexcept { return loop_; }
  sim::Time scan_time() const noexcept { return scan_time_; }

 private:
  double mu_;
  bool loop_;
  sim::Time scan_time_;
};

}  // namespace ants::baselines
