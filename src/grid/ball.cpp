#include "grid/ball.h"

#include <cassert>

#include "grid/ring.h"
#include "util/math.h"

namespace ants::grid {

std::int64_t ball_radius_for_index(std::int64_t idx) noexcept {
  assert(idx >= 0);
  if (idx == 0) return 0;
  // Radius q owns indices [ball_size(q-1), ball_size(q)). Solve
  // 2q^2 + 2q + 1 > idx >= 2(q-1)^2 + 2(q-1) + 1 with an isqrt estimate and
  // an exact fixup (the estimate is within one either way).
  std::int64_t q = (util::isqrt(2 * idx) + 1) / 2;
  while (q > 0 && ball_size(q - 1) > idx) --q;
  while (ball_size(q) <= idx) ++q;
  return q;
}

Point ball_point([[maybe_unused]] std::int64_t r, std::int64_t idx) noexcept {
  assert(r >= 0);
  assert(idx >= 0 && idx < ball_size(r));
  const std::int64_t q = ball_radius_for_index(idx);
  const std::int64_t base = q == 0 ? 0 : ball_size(q - 1);
  return ring_point(q, idx - base);
}

std::int64_t ball_index(Point p) noexcept {
  const std::int64_t q = l1_norm(p);
  const std::int64_t base = q == 0 ? 0 : ball_size(q - 1);
  return base + ring_index(p);
}

Point uniform_ball_point(rng::Rng& rng, std::int64_t r) {
  assert(r >= 0);
  const auto idx = static_cast<std::int64_t>(
      rng.uniform_u64(static_cast<std::uint64_t>(ball_size(r))));
  return ball_point(r, idx);
}

Point uniform_ring_point(rng::Rng& rng, std::int64_t r) {
  assert(r >= 0);
  if (r == 0) return kOrigin;
  const auto m = static_cast<std::int64_t>(
      rng.uniform_u64(static_cast<std::uint64_t>(ring_size(r))));
  return ring_point(r, m);
}

}  // namespace ants::grid
