// Lattice points of the agents' world Z^2.
//
// Distances in the paper are hop (L1) distances; the spiral uses Chebyshev
// (L-infinity) rings internally. Coordinates are int64: experiments use
// |coord| <= 2^20, but the harmonic algorithm's heavy-tailed trips can
// legitimately target radii ~2^45, which still leaves headroom for every
// arithmetic operation done here.
#pragma once

#include <cstdint>
#include <functional>

#include "util/math.h"

namespace ants::grid {

struct Point {
  std::int64_t x = 0;
  std::int64_t y = 0;

  friend constexpr bool operator==(Point a, Point b) noexcept {
    return a.x == b.x && a.y == b.y;
  }
  friend constexpr bool operator!=(Point a, Point b) noexcept {
    return !(a == b);
  }
  friend constexpr Point operator+(Point a, Point b) noexcept {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Point operator-(Point a, Point b) noexcept {
    return {a.x - b.x, a.y - b.y};
  }
};

/// The origin doubles as the source node s in every simulation.
inline constexpr Point kOrigin{0, 0};

/// L1 (hop) norm — the paper's d(u).
constexpr std::int64_t l1_norm(Point p) noexcept {
  return util::iabs(p.x) + util::iabs(p.y);
}

/// L1 (hop) distance — the paper's d(u, v).
constexpr std::int64_t l1_dist(Point a, Point b) noexcept {
  return l1_norm(a - b);
}

/// Chebyshev norm: ring index of the square spiral.
constexpr std::int64_t linf_norm(Point p) noexcept {
  const std::int64_t ax = util::iabs(p.x);
  const std::int64_t ay = util::iabs(p.y);
  return ax > ay ? ax : ay;
}

/// True iff a and b are joined by a grid edge.
constexpr bool adjacent(Point a, Point b) noexcept {
  return l1_dist(a, b) == 1;
}

/// The four axis directions, indexed by Rng::direction4().
inline constexpr Point kDirections[4] = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};

/// 64-bit key for hashing; callers must keep |coords| < 2^31 (all recorded
/// visit sets do — recording is only used within bounded time horizons).
constexpr std::uint64_t pack(Point p) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.x)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.y));
}

struct PointHash {
  std::size_t operator()(Point p) const noexcept {
    std::uint64_t z = pack(p) + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

}  // namespace ants::grid
