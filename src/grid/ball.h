// The L1 ball B(r) = { u : d(s,u) <= r } centered at the origin.
//
// ball_point/ball_index give a bijection [0, ball_size(r)) <-> B(r)
// (enumerated by increasing radius, then counterclockwise within the ring),
// which yields exact O(1) uniform sampling: every "go to a node chosen
// uniformly at random in B(r)" step of Algorithms 1 and 3 draws one integer.
#pragma once

#include <cstdint>

#include "grid/point.h"
#include "rng/rng.h"

namespace ants::grid {

/// |B(r)| = 2r^2 + 2r + 1.
constexpr std::int64_t ball_size(std::int64_t r) noexcept {
  return 2 * r * r + 2 * r + 1;
}

/// idx-th node of B(r) in (radius, ring index) order; idx in [0, ball_size).
Point ball_point(std::int64_t r, std::int64_t idx) noexcept;

/// Inverse of ball_point (independent of r; the index within any ball
/// containing p).
std::int64_t ball_index(Point p) noexcept;

/// Uniform node of B(r).
Point uniform_ball_point(rng::Rng& rng, std::int64_t r);

/// Uniform node of the ring of radius exactly r.
Point uniform_ring_point(rng::Rng& rng, std::int64_t r);

/// Largest q with ball_size(q) <= idx... i.e. the radius of the idx-th node;
/// exposed for tests.
std::int64_t ball_radius_for_index(std::int64_t idx) noexcept;

}  // namespace ants::grid
