#include "grid/spiral.h"

#include <cassert>

#include "util/math.h"

namespace ants::grid {

Point spiral_point(std::int64_t n) noexcept {
  assert(n >= 0);
  if (n == 0) return kOrigin;
  // Ring r owns indices [(2r-1)^2, (2r+1)^2 - 1]; the isqrt estimate for r
  // is exact because (2r-1)^2 <= n implies isqrt(n) in [2r-1, 2r].
  const std::int64_t r = (util::isqrt(n) + 1) / 2;
  const std::int64_t offset = n - (2 * r - 1) * (2 * r - 1);
  const std::int64_t side = offset / (2 * r);
  const std::int64_t pos = offset % (2 * r);
  switch (side) {
    case 0:
      return {r, -r + 1 + pos};  // east side, going up
    case 1:
      return {r - 1 - pos, r};  // north side, going west
    case 2:
      return {-r, r - 1 - pos};  // west side, going down
    default:
      return {-r + 1 + pos, -r};  // south side, going east
  }
}

std::int64_t spiral_index(Point p) noexcept {
  const std::int64_t r = linf_norm(p);
  if (r == 0) return 0;
  if (r > kMaxSpiralRadius) return kSpiralIndexOverflow;
  const std::int64_t base = (2 * r - 1) * (2 * r - 1);
  // Side ownership mirrors spiral_point: corners belong to the side that
  // reaches them last, e.g. (r, r) ends side 0 and (r, -r) ends side 3.
  std::int64_t side = 0;
  std::int64_t pos = 0;
  if (p.x == r && p.y > -r) {
    side = 0;
    pos = p.y + r - 1;
  } else if (p.y == r) {
    side = 1;
    pos = r - 1 - p.x;
  } else if (p.x == -r) {
    side = 2;
    pos = r - 1 - p.y;
  } else {  // p.y == -r
    side = 3;
    pos = p.x + r - 1;
  }
  return base + side * 2 * r + pos;
}

std::int64_t spiral_coverage_radius(std::int64_t t) noexcept {
  assert(t >= 0);
  // Max r with (2r+1)^2 - 1 <= t.
  const std::int64_t s = util::isqrt(t + 1);
  return s >= 1 ? (s - 1) / 2 : 0;
}

}  // namespace ants::grid
