#include "grid/ring.h"

#include <cassert>

namespace ants::grid {

Point ring_point(std::int64_t r, std::int64_t m) noexcept {
  assert(r >= 0);
  assert(m >= 0 && m < ring_size(r));
  if (r == 0) return kOrigin;
  const std::int64_t q = m / r;  // quadrant
  const std::int64_t t = m % r;  // offset within quadrant
  switch (q) {
    case 0:
      return {r - t, t};  // east -> north edge
    case 1:
      return {-t, r - t};  // north -> west edge
    case 2:
      return {-(r - t), -t};  // west -> south edge
    default:
      return {t, -(r - t)};  // south -> east edge
  }
}

std::int64_t ring_index(Point p) noexcept {
  const std::int64_t r = l1_norm(p);
  if (r == 0) return 0;
  // Determine quadrant by the same boundaries ring_point uses: quadrant q
  // owns its starting corner, e.g. (r, 0) is q0/t0, (0, r) is q1/t0.
  if (p.x > 0 && p.y >= 0) return 0 * r + p.y;           // t = y
  if (p.x <= 0 && p.y > 0) return 1 * r + (-p.x);        // t = -x
  if (p.x < 0 && p.y <= 0) return 2 * r + (-p.y);        // t = -y
  return 3 * r + p.x;                                    // t = x
}

}  // namespace ants::grid
