// The L1 ring (diamond) of radius r: all nodes at hop distance exactly r
// from the origin. ring_point/ring_index are exact inverses, giving O(1)
// uniform sampling on rings (the harmonic algorithm picks a node uniformly
// on the ring of its power-law radius).
#pragma once

#include <cstdint>

#include "grid/point.h"

namespace ants::grid {

/// Number of nodes at L1 distance exactly r (1 for r = 0, else 4r).
constexpr std::int64_t ring_size(std::int64_t r) noexcept {
  return r == 0 ? 1 : 4 * r;
}

/// m-th node of the ring of radius r, m in [0, ring_size(r)).
/// Enumeration starts at (r, 0) and proceeds counterclockwise.
Point ring_point(std::int64_t r, std::int64_t m) noexcept;

/// Inverse of ring_point: the index of p on its own ring (radius l1_norm(p)).
std::int64_t ring_index(Point p) noexcept;

}  // namespace ants::grid
