#include "grid/staircase_path.h"

#include <cassert>

#include "util/math.h"

namespace ants::grid {

StaircasePath::StaircasePath(Point from, Point to) noexcept
    : from_(from), to_(to) {
  // Canonical orientation: the lexicographically smaller endpoint anchors the
  // rounding, so (a -> b) and (b -> a) traverse exactly the same cell set
  // (one forwards, one backwards). Without this the midpoint tie-break would
  // pick mirrored staircases for the two directions.
  reversed_ = (to.x < from.x) || (to.x == from.x && to.y < from.y);
  anchor_ = reversed_ ? to : from;
  const Point other = reversed_ ? from : to;
  dx_abs_ = other.x - anchor_.x;  // >= 0 by choice of anchor
  dy_abs_ = util::iabs(other.y - anchor_.y);
  sy_ = util::sign(other.y - anchor_.y);
  len_ = dx_abs_ + dy_abs_;
}

std::int64_t StaircasePath::x_moves(std::int64_t t) const noexcept {
  if (len_ == 0) return 0;
  // floor((2 t |dx| + L) / 2L); the numerator can reach ~2^92 for the
  // harmonic algorithm's far trips, so widen to 128 bits.
  const __int128_t num =
      static_cast<__int128_t>(2) * t * dx_abs_ + static_cast<__int128_t>(len_);
  return static_cast<std::int64_t>(num / (2 * static_cast<__int128_t>(len_)));
}

Point StaircasePath::at(std::int64_t t) const noexcept {
  assert(t >= 0 && t <= len_);
  const std::int64_t tc = reversed_ ? len_ - t : t;
  const std::int64_t xm = x_moves(tc);
  return {anchor_.x + xm, anchor_.y + sy_ * (tc - xm)};
}

std::optional<std::int64_t> StaircasePath::index_of(Point p) const noexcept {
  const std::int64_t du = p.x - anchor_.x;
  const std::int64_t dv = p.y - anchor_.y;
  // p must lie inside the (sign-oriented) bounding box of the move.
  if (du < 0 || du > dx_abs_) return std::nullopt;
  if (sy_ >= 0 ? (dv < 0 || dv > dy_abs_) : (dv > 0 || -dv > dy_abs_)) {
    return std::nullopt;
  }
  const std::int64_t u = du;
  const std::int64_t v = util::iabs(dv);
  const std::int64_t tc = u + v;  // the only canonical time p could be visited
  if (x_moves(tc) != u) return std::nullopt;
  return reversed_ ? len_ - tc : tc;
}

}  // namespace ants::grid
