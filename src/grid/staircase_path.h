// Digital straight line ("staircase") between two lattice points.
//
// This is the concrete realization of the paper's atomic procedure (2),
// "walk in a straight line to a prescribed distance": a monotone lattice
// path of exactly L1-distance unit steps that stays within half a cell of
// the Euclidean segment. Membership of a node on the path — the treasure-hit
// test — is O(1) closed-form arithmetic rather than an O(L) scan, which is
// what lets the engine simulate D ~ 2^13 walks in constant time.
//
// Definition: with |dx| >= 0 horizontal and |dy| >= 0 vertical budget and
// L = |dx| + |dy|, after t steps the path has made
//     X(t) = floor((2t|dx| + L) / 2L)
// horizontal moves and t - X(t) vertical ones (rounding-midpoint Bresenham).
// X is monotone with unit increments, X(0) = 0 and X(L) = |dx|, so each of
// the L+1 visited points is distinct and consecutive points are adjacent.
#pragma once

#include <cstdint>
#include <optional>

#include "grid/point.h"

namespace ants::grid {

class StaircasePath {
 public:
  StaircasePath(Point from, Point to) noexcept;

  Point from() const noexcept { return from_; }
  Point to() const noexcept { return to_; }

  /// Number of edges traversed (= L1 distance); the path visits length()+1
  /// nodes at times 0..length().
  std::int64_t length() const noexcept { return len_; }

  /// Position after t steps, t in [0, length()].
  Point at(std::int64_t t) const noexcept;

  /// If p lies on the path, the unique time at which it is visited.
  std::optional<std::int64_t> index_of(Point p) const noexcept;

 private:
  /// Horizontal moves completed after t canonical steps (from anchor_).
  std::int64_t x_moves(std::int64_t t) const noexcept;

  Point from_;
  Point to_;
  // Internal canonical form: anchored at the lexicographically smaller
  // endpoint so that (a -> b) and (b -> a) cover the same cell set.
  Point anchor_;
  bool reversed_;
  std::int64_t dx_abs_;
  std::int64_t dy_abs_;
  std::int64_t sy_;  // sign of (other - anchor).y
  std::int64_t len_;
};

}  // namespace ants::grid
