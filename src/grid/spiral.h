// The square spiral: the paper's atomic procedure (3), "perform a spiral
// search around a node".
//
// Layout (relative to the spiral's center):
//   index 0 is the center; ring r >= 1 (Chebyshev radius r) occupies indices
//   [(2r-1)^2, (2r+1)^2 - 1], entered at (r, -r+1) and traversed
//   counterclockwise: up the east side, west along the north side, down the
//   west side, east along the south side, ending at the corner (r, -r).
// Consecutive spiral points are grid-adjacent (ring-to-ring transitions
// included), so the node at spiral index m is visited exactly m time steps
// after the search begins. spiral_point and spiral_index are exact O(1)
// inverses — this turns treasure-hit detection inside a spiral of any length
// into two integer operations.
//
// Coverage guarantee (the paper assumes radius sqrt(x)/2 after x steps): a
// spiral of duration t covers the full Chebyshev — hence L1 — ball of radius
// spiral_coverage_radius(t) = floor((floor(sqrt(t+1)) - 1) / 2), which is
// sqrt(t)/2 - O(1); see DESIGN.md section 3.2.
#pragma once

#include <cstdint>
#include <limits>

#include "grid/point.h"

namespace ants::grid {

/// Indices are exact for points with Chebyshev norm up to 2^30; beyond that
/// spiral_index returns kSpiralIndexOverflow, a value larger than any
/// representable spiral duration (durations saturate at 2^62).
inline constexpr std::int64_t kMaxSpiralRadius = std::int64_t{1} << 30;
inline constexpr std::int64_t kSpiralIndexOverflow =
    std::numeric_limits<std::int64_t>::max();

/// n-th point of the spiral (relative to its center), n in [0, 2^62].
Point spiral_point(std::int64_t n) noexcept;

/// Inverse of spiral_point (kSpiralIndexOverflow for far points, see above).
std::int64_t spiral_index(Point p) noexcept;

/// Minimal duration t such that a spiral of duration t (visiting indices
/// 0..t) covers every node with Chebyshev norm <= r: (2r+1)^2 - 1.
constexpr std::int64_t spiral_length_for_radius(std::int64_t r) noexcept {
  return (2 * r + 1) * (2 * r + 1) - 1;
}

/// Largest fully covered Chebyshev radius after a spiral of duration t.
std::int64_t spiral_coverage_radius(std::int64_t t) noexcept;

}  // namespace ants::grid
