// Sparse set of visited grid nodes.
//
// Only the lower-bound experiments (visitation accounting over dyadic
// annuli, E4) and the step-level baselines materialize visits; the paper
// algorithms are simulated analytically. Points are packed into 64-bit keys,
// which requires |coords| < 2^31 — always true within the bounded horizons
// these consumers run under (asserted).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>

#include "grid/point.h"

namespace ants::grid {

class VisitedSet {
 public:
  VisitedSet() = default;

  /// Marks p visited; returns true iff p was new.
  bool insert(Point p);

  bool contains(Point p) const;

  /// Number of distinct nodes visited.
  std::size_t size() const noexcept { return set_.size(); }

  void clear() { set_.clear(); }

  /// Reserve capacity for an expected number of distinct nodes.
  void reserve(std::size_t n) { set_.reserve(n); }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const std::uint64_t key : set_) fn(unpack(key));
  }

 private:
  static Point unpack(std::uint64_t key) noexcept {
    return {static_cast<std::int32_t>(key >> 32),
            static_cast<std::int32_t>(key & 0xFFFFFFFFULL)};
  }

  struct KeyHash {
    std::size_t operator()(std::uint64_t z) const noexcept {
      z += 0x9E3779B97F4A7C15ULL;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      return static_cast<std::size_t>(z ^ (z >> 31));
    }
  };

  std::unordered_set<std::uint64_t, KeyHash> set_;
};

}  // namespace ants::grid
