#include "grid/visited_set.h"

#include <cassert>

namespace ants::grid {

namespace {

constexpr std::int64_t kPackLimit = std::int64_t{1} << 31;

}  // namespace

bool VisitedSet::insert(Point p) {
  assert(util::iabs(p.x) < kPackLimit && util::iabs(p.y) < kPackLimit);
  return set_.insert(pack(p)).second;
}

bool VisitedSet::contains(Point p) const {
  assert(util::iabs(p.x) < kPackLimit && util::iabs(p.y) < kPackLimit);
  return set_.count(pack(p)) != 0;
}

}  // namespace ants::grid
