// The shared aggregate serialization table and file-publication helpers
// behind every persisted form of a CellResult.
//
// Four formats serialize the same aggregate field set: the per-hash cache
// record (key=value lines), the packed cache journal (cache_pack.h), the
// JSONL shard artifact, and the binary columnar shard artifact
// (artifact.h). They all index THIS table — one (name, getter, setter)
// triple per aggregate, defined once in sink.cpp — so the formats can never
// drift apart field-by-field: adding an aggregate here adds it everywhere,
// and the binary column order is the table order by construction.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>

#include "scenario/sweep.h"

namespace ants::scenario::detail {

/// One serialized aggregate of a CellResult.
struct AggField {
  const char* name;
  double (*get)(const CellResult&);
  void (*set)(CellResult&, double);
};

/// The table (pointer to the first of agg_field_count() entries), in
/// serialization order. Stable within one build; cell_format_version()
/// stamps any change that would reorder or resize it.
const AggField* agg_fields() noexcept;
std::size_t agg_field_count() noexcept;

/// The table's names joined with '\n' — the self-description blob binary
/// artifacts and cache packs embed so an incompatible field set is detected
/// by content, not just by version number.
std::string agg_field_names_blob();

/// A temp-file name no other writer — thread or process — can collide on:
/// racing stores of one entry each write their own temp and the renames
/// serialize on the final path (POSIX rename replaces atomically).
std::string unique_tmp_path(const std::string& path);

/// Write-then-rename publication shared by cache entries and shard
/// artifacts (text and binary): `fill` streams the content; a short write
/// (e.g. disk full) removes the temp and throws instead of publishing.
void atomic_write(const std::string& path,
                  const std::function<void(std::ostream&)>& fill,
                  bool binary = false);

}  // namespace ants::scenario::detail
