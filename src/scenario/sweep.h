// Execute and merge layers of the sweep pipeline (the plan layer lives in
// scenario/plan.h): every trial of every cell runs through ONE
// util::parallel_for, and sharded runs reassemble into the canonical result
// vector via self-describing artifacts.
//
// Scheduling across cells matters because per-cell parallelism (the
// sim::run_trials path) serializes a sweep on one barrier per cell: a grid
// of small-trial cells leaves most cores idle at every join. Here the work
// list is all (cell, trial) pairs, so a long-running cell's trials overlap
// the next cells' instead of gating them.
//
// Every grid cell — segment- or step-level, base model or schedule/crash
// variant, one target or many — executes through the SAME call site: the
// unified sim::run_trial under a per-trial TrialEnvironment drawn from the
// cell's schedule/crash/targets specs. Only plane-level strategies run a
// different engine (the continuous plane has no environment port), with the
// placement translated to a treasure angle.
//
// Reproducibility contract (inherited from sim/runner.h and test-enforced):
// trial t of a cell uses rng seed mix(cell_seed, t), where
//
//     cell_seed = mix(spec.seed, mix(k, distance))
//
// is a pure function of the spec's master seed and the cell's (k, D) grid
// point — deliberately NOT of the strategy, the placement policy, or the
// target-set policy, so every strategy at the same (k, D) faces identical
// treasure placements (paired instances, the E7 fairness requirement) and
// placement/target policies are probed on the same trial randomness.
// Results are therefore a pure function of (spec, seed), independent of
// thread count, scheduling order, AND shard count: run_shard computes
// exactly what run_sweep would for the same cells, so merge_shards over any
// partition reproduces the single-process output byte-for-byte.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "scenario/plan.h"
#include "scenario/spec.h"
#include "sim/runner.h"

namespace ants::telemetry {
class RunTelemetry;
struct RunMetrics;
}  // namespace ants::telemetry

namespace ants::scenario {

struct CellResult {
  Cell cell;
  sim::RunStats stats;
  /// Async-run extras (zero for base-model cells): search times measured
  /// from the trial's last start, mean crashed agents per trial, and the
  /// mean of the trial's latest start delay.
  stats::Summary from_last_start;
  double mean_crashed = 0;
  double mean_last_start = 0;
  /// Mean winning-target index over FOUND trials (-1 when nothing was
  /// found); 0 for single-target cells.
  double mean_first_target = -1;
  /// Number of per-target discovery-time slots persisted per cell
  /// (collect-all specs; targets beyond the first slots still count into
  /// mean_targets_found, they just don't get an individual column).
  static constexpr std::size_t kTargetTimeSlots = 4;
  /// Target-process aggregates (-1 / inert for classic static specs):
  /// mean targets spawned and found per trial, the mean per-trial fraction
  /// of spawned targets found before they vanished (1 when a trial spawned
  /// none), and — collect-all only — the mean discovery time of target slot
  /// j over the trials where that slot was found (-1 when never found).
  double mean_targets_found = -1;
  double mean_targets_spawned = -1;
  double found_before_vanish = -1;
  double target_time_mean[kTargetTimeSlots] = {-1, -1, -1, -1};
  bool from_cache = false;
};

struct SweepOptions {
  unsigned threads = 0;   ///< scheduler thread count; 0 = hardware
  std::string cache_dir;  ///< non-empty enables the per-cell result cache
  /// Per-cell completion lines as the sweep runs. Diagnostics only: output
  /// rows are unaffected (test-enforced). Sharded runs prefix each line
  /// with "shard i/N" and count done/total local to the shard. Each line
  /// also carries elapsed wall time, the completion rate, and an ETA
  /// extrapolated from the cells finished so far.
  bool progress = false;
  std::ostream* progress_stream = nullptr;  ///< nullptr = std::cerr
  /// Observability sink (telemetry/run_telemetry.h), or nullptr for none.
  /// Strictly observational: result rows, cache keys, and seeds are
  /// untouched whether this is set or not (test-enforced against the golden
  /// CSVs), and a null pointer costs one branch per hook. The sweep calls
  /// begin_run and the per-cell hooks; finishing (run_end event, trace
  /// file, metrics JSON) stays with the owner.
  telemetry::RunTelemetry* telemetry = nullptr;
};

/// Runs the whole sweep in-process; the result vector parallels
/// flatten(spec). The 1/1 special case of the sharded pipeline. Cached
/// cells (when opt.cache_dir is set and holds a matching entry) carry
/// aggregate stats only (stats.times is empty) and from_cache = true.
std::vector<CellResult> run_sweep(const ScenarioSpec& spec,
                                  const SweepOptions& opt = {});

/// Execute layer: runs ONLY the cells of shard `shard` (1-based) of an
/// `n_shards`-way split; the result vector parallels
/// shard_cell_indices(plan, shard, n_shards). Completed cells persist to
/// opt.cache_dir as they finish, so a killed shard resumes by rerunning —
/// only cells missing from the cache recompute. Throws on an out-of-range
/// shard.
std::vector<CellResult> run_shard(const SweepPlan& plan, std::size_t shard,
                                  std::size_t n_shards,
                                  const SweepOptions& opt = {});

/// The two on-disk shard-artifact encodings: JSONL (debuggable, diff-able,
/// the historical default) and binary columnar (artifact.h — mmap-able
/// fixed-width columns for the zero-copy merge/catalog fast path). Same
/// header, same aggregate table, bit-identical doubles, same merge
/// semantics; they differ only in read/write cost. Writer-side only:
/// readers dispatch on the file's magic, never on a flag.
enum class ArtifactFormat { kJsonl, kBinary };

/// Writes a run_shard result set as a self-describing shard artifact
/// (header with format version, spec hash, canonical spec text, and shard
/// coordinates; then one aggregate record per cell) in the requested
/// encoding. Atomic: written to a temp file and renamed, so a killed
/// process never publishes a torn artifact. When `metrics` is non-null the
/// shard's RunMetrics ride along as one extra self-describing JSON line,
/// so merge_shards can aggregate campaign-level telemetry exactly; readers
/// without telemetry ignore it.
void write_shard(const std::string& path, const SweepPlan& plan,
                 std::size_t shard, std::size_t n_shards,
                 const std::vector<CellResult>& results,
                 const telemetry::RunMetrics* metrics = nullptr,
                 ArtifactFormat format = ArtifactFormat::kJsonl);

/// Merge layer: reassembles shard artifacts into the canonical CellResult
/// vector (parallel to plan.cells), ready for the sinks. Artifacts may mix
/// encodings freely (JSONL and binary shards of one spec merge together —
/// the reader dispatches per file) and are READ in parallel, one
/// mmap/parse per artifact across the pool; validation and placement then
/// run sequentially in `paths` order, so error attribution (which artifact
/// duplicated a cell) is deterministic regardless of read timing. Verifies
/// every artifact against the plan — format version, spec hash, cell
/// count — and throws std::invalid_argument on any incompatibility,
/// duplicate cell, or missing cell. Merged results carry aggregates only
/// (stats.times empty), exactly like cache hits; rendered rows are
/// identical either way.
/// `metrics_out` (if non-null) accumulates the per-shard metrics embedded
/// in the artifacts — counter sums plus an exact bin-wise sketch merge, so
/// the campaign-level record equals what one process would have counted.
std::vector<CellResult> merge_shards(const SweepPlan& plan,
                                     const std::vector<std::string>& paths,
                                     telemetry::RunMetrics* metrics_out =
                                         nullptr);

/// Self-describing merge: derives the plan from the first artifact's
/// embedded canonical spec (every other artifact must hash-match it) and
/// returns the merged results; `spec_out` (if non-null) receives the spec
/// for sink column selection.
std::vector<CellResult> merge_shards(const std::vector<std::string>& paths,
                                     ScenarioSpec* spec_out,
                                     telemetry::RunMetrics* metrics_out =
                                         nullptr);

}  // namespace ants::scenario
