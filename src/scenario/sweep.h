// Sweep scheduler: flattens a ScenarioSpec into (strategy, k, D, placement,
// targets) cells and runs every trial of every cell through ONE
// util::parallel_for.
//
// Scheduling across cells matters because per-cell parallelism (the
// sim::run_trials path) serializes a sweep on one barrier per cell: a grid
// of small-trial cells leaves most cores idle at every join. Here the work
// list is all (cell, trial) pairs, so a long-running cell's trials overlap
// the next cells' instead of gating them.
//
// Every grid cell — segment- or step-level, base model or schedule/crash
// variant, one target or many — executes through the SAME call site: the
// unified sim::run_trial under a per-trial TrialEnvironment drawn from the
// cell's schedule/crash/targets specs. Only plane-level strategies run a
// different engine (the continuous plane has no environment port), with the
// placement translated to a treasure angle.
//
// Reproducibility contract (inherited from sim/runner.h and test-enforced):
// trial t of a cell uses rng seed mix(cell_seed, t), where
//
//     cell_seed = mix(spec.seed, mix(k, distance))
//
// is a pure function of the spec's master seed and the cell's (k, D) grid
// point — deliberately NOT of the strategy, the placement policy, or the
// target-set policy, so every strategy at the same (k, D) faces identical
// treasure placements (paired instances, the E7 fairness requirement) and
// placement/target policies are probed on the same trial randomness.
// Results are therefore a pure function of (spec, seed), independent of
// thread count and scheduling order, and each cell's stats equal the
// matching sim::run_env_trials call at the cell's derived seed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "scenario/spec.h"
#include "sim/runner.h"

namespace ants::scenario {

/// One unit of the flattened sweep.
struct Cell {
  std::size_t strategy_index = 0;   ///< into spec.strategies
  std::string strategy_spec;        ///< canonical registry spec string
  std::string strategy_name;        ///< display name of the built strategy
  std::size_t placement_index = 0;  ///< into spec.placements
  std::string placement_spec;       ///< canonical placement spec string
  std::size_t targets_index = 0;    ///< into spec.targets
  std::string targets_spec;         ///< canonical target-set spec string
  std::int64_t k = 1;
  std::int64_t distance = 1;
  std::uint64_t seed = 0;  ///< derived cell seed (see header comment)
  std::uint64_t hash = 0;  ///< cache key over the cell + run parameters
};

struct CellResult {
  Cell cell;
  sim::RunStats stats;
  /// Async-run extras (zero for base-model cells): search times measured
  /// from the trial's last start, mean crashed agents per trial, and the
  /// mean of the trial's latest start delay.
  stats::Summary from_last_start;
  double mean_crashed = 0;
  double mean_last_start = 0;
  /// Mean winning-target index over FOUND trials (-1 when nothing was
  /// found); 0 for single-target cells.
  double mean_first_target = -1;
  bool from_cache = false;
};

struct SweepOptions {
  unsigned threads = 0;   ///< scheduler thread count; 0 = hardware
  std::string cache_dir;  ///< non-empty enables the per-cell result cache
  /// Per-cell completion lines as the sweep runs. Diagnostics only: output
  /// rows are unaffected (test-enforced).
  bool progress = false;
  std::ostream* progress_stream = nullptr;  ///< nullptr = std::cerr
};

/// The cells of a spec in deterministic order: strategies outermost, then
/// ks, then distances, then placements, then targets — cell
/// (si, ki, di, pi, ti) lands at index
/// (((si * ks.size() + ki) * distances.size() + di) * placements.size() +
/// pi) * targets.size() + ti. Validates the spec.
std::vector<Cell> flatten(const ScenarioSpec& spec);

/// Runs the whole sweep; the result vector parallels flatten(spec). Cached
/// cells (when opt.cache_dir is set and holds a matching entry) carry
/// aggregate stats only (stats.times is empty) and from_cache = true.
std::vector<CellResult> run_sweep(const ScenarioSpec& spec,
                                  const SweepOptions& opt = {});

}  // namespace ants::scenario
