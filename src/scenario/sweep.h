// Sweep scheduler: flattens a ScenarioSpec into (strategy, k, D, placement)
// cells and runs every trial of every cell through ONE util::parallel_for.
//
// Scheduling across cells matters because per-cell parallelism (the
// sim::run_trials path) serializes a sweep on one barrier per cell: a grid
// of small-trial cells leaves most cores idle at every join. Here the work
// list is all (cell, trial) pairs, so a long-running cell's trials overlap
// the next cells' instead of gating them.
//
// Cells route through the engine their strategy and environment need:
// segment-level strategies under the base model run sim::run_search,
// spec-level schedule/crash variants run sim::run_search_async (surfacing
// from-last-start times and crash counts), step-level strategies run the
// lock-step engine, and plane-level strategies run the continuous-plane
// engine with the placement translated to a treasure angle.
//
// Reproducibility contract (inherited from sim/runner.h and test-enforced):
// trial t of a cell uses rng seed mix(cell_seed, t), where
//
//     cell_seed = mix(spec.seed, mix(k, distance))
//
// is a pure function of the spec's master seed and the cell's (k, D) grid
// point — deliberately NOT of the strategy or the placement policy, so every
// strategy at the same (k, D) faces identical treasure placements (paired
// instances, the E7 fairness requirement) and placement policies are probed
// on the same trial randomness. Results are therefore a pure function of
// (spec, seed), independent of thread count and scheduling order, and each
// cell's stats equal the matching sim::run_trials / run_async_trials /
// run_step_trials call at the cell's derived seed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "scenario/spec.h"
#include "sim/runner.h"

namespace ants::scenario {

/// One unit of the flattened sweep.
struct Cell {
  std::size_t strategy_index = 0;   ///< into spec.strategies
  std::string strategy_spec;        ///< canonical registry spec string
  std::string strategy_name;        ///< display name of the built strategy
  std::size_t placement_index = 0;  ///< into spec.placements
  std::string placement_spec;       ///< canonical placement spec string
  std::int64_t k = 1;
  std::int64_t distance = 1;
  std::uint64_t seed = 0;  ///< derived cell seed (see header comment)
  std::uint64_t hash = 0;  ///< cache key over the cell + run parameters
};

struct CellResult {
  Cell cell;
  sim::RunStats stats;
  /// Async-run extras (zero for base-model cells): search times measured
  /// from the trial's last start, mean crashed agents per trial, and the
  /// mean of the trial's latest start delay.
  stats::Summary from_last_start;
  double mean_crashed = 0;
  double mean_last_start = 0;
  bool from_cache = false;
};

struct SweepOptions {
  unsigned threads = 0;   ///< scheduler thread count; 0 = hardware
  std::string cache_dir;  ///< non-empty enables the per-cell result cache
  /// Per-cell completion lines as the sweep runs. Diagnostics only: output
  /// rows are unaffected (test-enforced).
  bool progress = false;
  std::ostream* progress_stream = nullptr;  ///< nullptr = std::cerr
};

/// The cells of a spec in deterministic order: strategies outermost, then
/// ks, then distances, then placements — cell (si, ki, di, pi) lands at
/// index ((si * ks.size() + ki) * distances.size() + di) * placements.size()
/// + pi. Validates the spec.
std::vector<Cell> flatten(const ScenarioSpec& spec);

/// Runs the whole sweep; the result vector parallels flatten(spec). Cached
/// cells (when opt.cache_dir is set and holds a matching entry) carry
/// aggregate stats only (stats.times is empty) and from_cache = true.
std::vector<CellResult> run_sweep(const ScenarioSpec& spec,
                                  const SweepOptions& opt = {});

}  // namespace ants::scenario
