// Sweep scheduler: flattens a ScenarioSpec into (strategy, k, D) cells and
// runs every trial of every cell through ONE util::parallel_for.
//
// Scheduling across cells matters because per-cell parallelism (the
// sim::run_trials path) serializes a sweep on one barrier per cell: a grid
// of small-trial cells leaves most cores idle at every join. Here the work
// list is all (cell, trial) pairs, so a long-running cell's trials overlap
// the next cells' instead of gating them.
//
// Reproducibility contract (inherited from sim/runner.h and test-enforced):
// trial t of a cell uses rng seed mix(cell_seed, t), where
//
//     cell_seed = mix(spec.seed, mix(k, distance))
//
// is a pure function of the spec's master seed and the cell's grid point —
// deliberately NOT of the strategy, so every strategy at the same (k, D)
// faces identical treasure placements (paired instances, the E7 fairness
// requirement). Results are therefore a pure function of (spec, seed),
// independent of thread count and scheduling order, and each cell's stats
// equal sim::run_trials(strategy, k, D, placement, {trials, cell_seed,
// time_cap}) exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/spec.h"
#include "sim/runner.h"

namespace ants::scenario {

/// One unit of the flattened sweep.
struct Cell {
  std::size_t strategy_index = 0;  ///< into spec.strategies
  std::string strategy_spec;       ///< canonical registry spec string
  std::string strategy_name;       ///< display name of the built strategy
  std::int64_t k = 1;
  std::int64_t distance = 1;
  std::uint64_t seed = 0;  ///< derived cell seed (see header comment)
  std::uint64_t hash = 0;  ///< cache key over the cell + run parameters
};

struct CellResult {
  Cell cell;
  sim::RunStats stats;
  bool from_cache = false;
};

struct SweepOptions {
  unsigned threads = 0;   ///< scheduler thread count; 0 = hardware
  std::string cache_dir;  ///< non-empty enables the per-cell result cache
};

/// The cells of a spec in deterministic order: strategies outermost, then
/// ks, then distances — cell (si, ki, di) lands at index
/// (si * ks.size() + ki) * distances.size() + di. Validates the spec.
std::vector<Cell> flatten(const ScenarioSpec& spec);

/// Runs the whole sweep; the result vector parallels flatten(spec). Cached
/// cells (when opt.cache_dir is set and holds a matching entry) carry
/// aggregate stats only (stats.times is empty) and from_cache = true.
std::vector<CellResult> run_sweep(const ScenarioSpec& spec,
                                  const SweepOptions& opt = {});

}  // namespace ants::scenario
