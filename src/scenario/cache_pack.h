// Packed cell-cache index: one journal file instead of one file per cell.
//
// The per-hash cache (sink.h) costs an open+read+parse per cell on every
// warm lookup; at tens of thousands of cells the sweep's warm path is
// dominated by filesystem metadata, not arithmetic. `cache pack` compacts
// the per-hash files into a single append-only journal
// (<cache_dir>/cache.pack) and run_cells loads it once into an in-memory
// hash map — a warm sweep then pays one mmap plus hash lookups.
//
// Layout:
//
//   header:  magic "ANTSPCK\x01" (8 bytes)
//            u32 format_version       scenario::cell_format_version()
//            u32 n_fields             agg_field_count() at write time
//            u64 names_size + names blob (agg_field_names_blob())
//            u32 header_crc           CRC-32 of the bytes after the magic
//   records: u32 record magic "PCK1"
//            u64 cell hash
//            f64-bits value[n_fields] (aggregate table order)
//            u32 record_crc           CRC-32 of hash + values
//
// Every record is self-framed (magic + CRC), so concurrent appenders using
// O_APPEND stay safe: a torn or interleaved tail fails its CRC and the
// reader resynchronizes on the next record magic, counting what it skipped.
// Duplicate hashes are legal — last record wins — which is what makes the
// journal appendable without coordination. A header that does not match the
// running build (version, field count, names) reads as "no pack": lookups
// fall back to the per-hash files, and cell hashes embed the format version
// anyway, so a stale pack can never serve a wrong value — only a useless
// one.
//
// The killed-shard resume contract is unchanged: finalize_cell appends to
// the journal (when a pack exists) or writes a per-hash file, both atomic,
// so a rerun after SIGKILL reuses every completed cell.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "scenario/sweep.h"

namespace ants::scenario {

/// What pack_cache_dir did, for the CLI to report.
struct PackStats {
  std::size_t packed_cells = 0;    ///< distinct hashes in the new pack
  std::size_t folded_files = 0;    ///< per-hash .cell files absorbed+removed
  std::size_t corrupt_dropped = 0; ///< corrupt files/records discarded
};

/// Compacts `dir` in place: existing pack records (if any) plus every
/// parseable *.cell file fold into a fresh cache.pack (written atomically),
/// then the folded .cell files are removed. Corrupt .cell files and corrupt
/// journal records are dropped and counted. Safe to run on a cache_dir that
/// has neither — the result is an empty-but-valid pack.
PackStats pack_cache_dir(const std::string& dir);

/// The in-memory index over one cache.pack, loaded once per run_cells.
/// Lookups and appends are thread-safe within the process; appends from
/// concurrent shard processes are safe via O_APPEND + per-record framing.
class PackedCacheIndex {
 public:
  /// Loads <dir>/cache.pack if present and compatible. Never throws on
  /// journal content: an absent, incompatible, or unreadable pack leaves
  /// present() false, and corrupt records are skipped and counted.
  explicit PackedCacheIndex(const std::string& dir);
  ~PackedCacheIndex();

  PackedCacheIndex(const PackedCacheIndex&) = delete;
  PackedCacheIndex& operator=(const PackedCacheIndex&) = delete;

  /// True when a compatible pack was found — lookups and appends are live.
  bool present() const noexcept { return present_; }
  /// Distinct hashes in the index.
  std::size_t size() const noexcept { return index_.size(); }
  /// Torn or corrupt journal records skipped during load.
  std::size_t corrupt_records() const noexcept { return corrupt_records_; }

  /// On hit, loads the aggregates into `result` (which keeps its Cell),
  /// mirroring cache_lookup's contract.
  bool load(std::uint64_t hash, CellResult* result) const;

  /// Appends one CRC-framed record to the journal (O_APPEND) and updates
  /// the in-memory index. Throws std::runtime_error if the write fails.
  void append(std::uint64_t hash, const CellResult& result);

 private:
  bool present_ = false;
  int fd_ = -1;  ///< journal descriptor, O_APPEND, owned
  std::size_t corrupt_records_ = 0;
  std::unordered_map<std::uint64_t, std::vector<double>> index_;
  mutable std::mutex mutex_;
};

}  // namespace ants::scenario
