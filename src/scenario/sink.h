// Result sinks: where a finished sweep's numbers go.
//
// The sweep scheduler produces CellResults; this layer turns them into
// rows — an aligned stdout table, a CSV file, a JSON-lines file, or any
// combination — under a named-column model so a spec can choose exactly the
// columns its table needs. Also home of the two persistence formats the
// sharded pipeline rests on: the per-cell result cache (cell aggregates
// keyed by the cell's spec hash, so re-running a spec — or resuming a
// killed shard — recomputes only the cells whose definition changed) and
// the shard-artifact reader/writer (the JSONL interchange format between
// run_shard processes and merge_shards). Both serialize the same aggregate
// field set with exact double round-tripping, which is what makes merged
// shard output byte-identical to a single-process run.
#pragma once

#include <fstream>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "scenario/sweep.h"
#include "util/csv.h"
#include "util/table.h"

namespace ants::scenario {

/// All selectable column names, in display order.
std::vector<std::string> all_columns();

/// The columns used when a spec names none.
std::vector<std::string> default_columns();

bool is_known_column(const std::string& column);

/// Renders one cell of the output row. Throws std::invalid_argument on an
/// unknown column name.
std::string column_value(const std::string& column, const ScenarioSpec& spec,
                         const CellResult& result);

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void begin(const std::vector<std::string>& columns) = 0;
  virtual void row(const std::vector<std::string>& cells) = 0;
  virtual void end() {}
};

/// CSV file via util::CsvWriter.
class CsvSink final : public ResultSink {
 public:
  explicit CsvSink(std::string path) : path_(std::move(path)) {}
  void begin(const std::vector<std::string>& columns) override;
  void row(const std::vector<std::string>& cells) override;

 private:
  std::string path_;
  std::unique_ptr<util::CsvWriter> writer_;
};

/// JSON-lines file: one flat object per cell; numeric-looking values are
/// emitted unquoted.
class JsonlSink final : public ResultSink {
 public:
  explicit JsonlSink(std::string path) : path_(std::move(path)) {}
  void begin(const std::vector<std::string>& columns) override;
  void row(const std::vector<std::string>& cells) override;

 private:
  std::string path_;
  std::vector<std::string> columns_;
  std::unique_ptr<std::ofstream> out_;
};

/// Aligned table on an ostream, printed at end().
class TableSink final : public ResultSink {
 public:
  explicit TableSink(std::ostream& os) : os_(os) {}
  void begin(const std::vector<std::string>& columns) override;
  void row(const std::vector<std::string>& cells) override;
  void end() override;

 private:
  std::ostream& os_;
  std::unique_ptr<util::Table> table_;
};

/// Streams every result through every sink using the spec's columns (or the
/// defaults when the spec names none).
void emit_results(const ScenarioSpec& spec,
                  const std::vector<CellResult>& results,
                  const std::vector<ResultSink*>& sinks);

// --- per-cell result cache -------------------------------------------------

/// Outcome of a per-hash cache probe. kCorrupt means the entry FILE exists
/// but does not parse (garbage bytes, a torn line, a missing field) — the
/// sweep treats it exactly like a miss (recompute and overwrite, never
/// abort) but telemetry counts it separately (cache_corrupt), because a
/// corruption rate is an operational signal a plain miss is not.
enum class CacheLookup { kMiss, kHit, kCorrupt };

/// Probes the per-hash cache for a cell hash; on kHit the aggregates load
/// into `result` (which keeps its Cell). Loaded stats carry aggregates only
/// (stats.times stays empty); the environment extras (from_last_start
/// mean/median, mean_crashed, mean_last_start, mean_first_target)
/// round-trip.
CacheLookup cache_lookup(const std::string& dir, std::uint64_t hash,
                         CellResult* result);

/// cache_lookup reduced to hit-or-not (corrupt reads as a miss).
bool cache_load(const std::string& dir, std::uint64_t hash,
                CellResult* result);

/// Stores a cell's aggregates (creates `dir` if needed). Atomic against
/// concurrent writers: the record lands in a uniquely named temp file
/// (pid + per-process counter) and is renamed into place, so shard
/// processes sharing one cache_dir can never observe a torn entry and
/// racing stores of the same cell resolve to one complete record.
void cache_store(const std::string& dir, std::uint64_t hash,
                 const CellResult& result);

// --- shard artifacts -------------------------------------------------------
//
// A shard artifact is the interchange file between one run_shard process
// and merge_shards: JSON lines, first a header object identifying the run
// (format version, spec hash, the full canonical spec text, shard
// coordinates, total cell count), then one flat aggregate record per
// completed cell keyed by its index into flatten(spec). Doubles are
// serialized with util::fmt_exact so aggregates round-trip bit-for-bit —
// the byte-identity of merged vs single-process CSVs depends on it.

struct ShardHeader {
  int format_version = 0;       ///< scenario::cell_format_version() stamp
  std::uint64_t spec_hash = 0;  ///< scenario::hash_spec of the plan's spec
  std::string spec_text;        ///< canonical spec (parse_spec_text form)
  std::size_t shard = 0;        ///< 1-based shard index
  std::size_t n_shards = 0;
  std::size_t n_cells_total = 0;  ///< cells in the WHOLE plan, not the shard
};

struct ShardEntry {
  std::size_t cell_index = 0;  ///< into flatten(spec)
  /// Aggregates only — result.cell is NOT serialized; merge_shards
  /// reattaches it from the plan.
  CellResult result;
};

/// Writes header + entries as a shard artifact. Atomic (unique temp file +
/// rename), so a killed writer never publishes a partial artifact.
/// `metrics_line` (optional) is one extra self-describing JSON line —
/// telemetry::metrics_to_json output — written right after the header; it
/// carries the shard's run telemetry without touching the result records.
void write_shard_artifact(const std::string& path, const ShardHeader& header,
                          const std::vector<ShardEntry>& entries,
                          const std::string* metrics_line = nullptr);

/// Reads an artifact back; throws std::invalid_argument with the path and
/// line on any malformed content. `entries` may be null to read the header
/// alone. `metrics_line` (if non-null) receives the artifact's embedded
/// telemetry line verbatim, or "" when the artifact carries none — metrics
/// are optional by design, so artifacts from telemetry-free runs merge
/// fine.
ShardHeader read_shard_artifact(const std::string& path,
                                std::vector<ShardEntry>* entries,
                                std::string* metrics_line = nullptr);

}  // namespace ants::scenario
