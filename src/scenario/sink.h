// Result sinks: where a finished sweep's numbers go.
//
// The sweep scheduler produces CellResults; this layer turns them into
// rows — an aligned stdout table, a CSV file, a JSON-lines file, or any
// combination — under a named-column model so a spec can choose exactly the
// columns its table needs. Also home of the per-cell result cache: cell
// aggregates keyed by the cell's spec hash, so re-running a spec recomputes
// only the cells whose definition changed.
#pragma once

#include <fstream>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "scenario/sweep.h"
#include "util/csv.h"
#include "util/table.h"

namespace ants::scenario {

/// All selectable column names, in display order.
std::vector<std::string> all_columns();

/// The columns used when a spec names none.
std::vector<std::string> default_columns();

bool is_known_column(const std::string& column);

/// Renders one cell of the output row. Throws std::invalid_argument on an
/// unknown column name.
std::string column_value(const std::string& column, const ScenarioSpec& spec,
                         const CellResult& result);

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void begin(const std::vector<std::string>& columns) = 0;
  virtual void row(const std::vector<std::string>& cells) = 0;
  virtual void end() {}
};

/// CSV file via util::CsvWriter.
class CsvSink final : public ResultSink {
 public:
  explicit CsvSink(std::string path) : path_(std::move(path)) {}
  void begin(const std::vector<std::string>& columns) override;
  void row(const std::vector<std::string>& cells) override;

 private:
  std::string path_;
  std::unique_ptr<util::CsvWriter> writer_;
};

/// JSON-lines file: one flat object per cell; numeric-looking values are
/// emitted unquoted.
class JsonlSink final : public ResultSink {
 public:
  explicit JsonlSink(std::string path) : path_(std::move(path)) {}
  void begin(const std::vector<std::string>& columns) override;
  void row(const std::vector<std::string>& cells) override;

 private:
  std::string path_;
  std::vector<std::string> columns_;
  std::unique_ptr<std::ofstream> out_;
};

/// Aligned table on an ostream, printed at end().
class TableSink final : public ResultSink {
 public:
  explicit TableSink(std::ostream& os) : os_(os) {}
  void begin(const std::vector<std::string>& columns) override;
  void row(const std::vector<std::string>& cells) override;
  void end() override;

 private:
  std::ostream& os_;
  std::unique_ptr<util::Table> table_;
};

/// Streams every result through every sink using the spec's columns (or the
/// defaults when the spec names none).
void emit_results(const ScenarioSpec& spec,
                  const std::vector<CellResult>& results,
                  const std::vector<ResultSink*>& sinks);

// --- per-cell result cache -------------------------------------------------

/// Loads cached aggregates for a cell hash into `result` (which keeps its
/// Cell); false if absent or unreadable. Loaded stats carry aggregates only
/// (stats.times stays empty); the environment extras (from_last_start
/// mean/median, mean_crashed, mean_last_start, mean_first_target)
/// round-trip.
bool cache_load(const std::string& dir, std::uint64_t hash,
                CellResult* result);

/// Stores a cell's aggregates (creates `dir` if needed).
void cache_store(const std::string& dir, std::uint64_t hash,
                 const CellResult& result);

}  // namespace ants::scenario
