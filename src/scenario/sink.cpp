#include "scenario/sink.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>

#include "scenario/registry.h"
#include "sim/metrics.h"
#include "util/format.h"

namespace ants::scenario {

namespace {

std::string fmt(double v) { return util::fmt_compact(v); }

using ValueFn = std::string (*)(const ScenarioSpec&, const CellResult&);

struct Column {
  const char* name;
  ValueFn value;
};

const Column kColumns[] = {
    {"strategy",
     [](const ScenarioSpec&, const CellResult& r) {
       return r.cell.strategy_name;
     }},
    {"spec",
     [](const ScenarioSpec&, const CellResult& r) {
       return r.cell.strategy_spec;
     }},
    {"k",
     [](const ScenarioSpec&, const CellResult& r) {
       return std::to_string(r.cell.k);
     }},
    {"D",
     [](const ScenarioSpec&, const CellResult& r) {
       return std::to_string(r.cell.distance);
     }},
    {"placement",
     [](const ScenarioSpec&, const CellResult& r) {
       return r.cell.placement_spec;
     }},
    {"targets",
     [](const ScenarioSpec&, const CellResult& r) {
       return r.cell.targets_spec;
     }},
    {"schedule",
     [](const ScenarioSpec& spec, const CellResult&) {
       return parse_strategy_spec(spec.schedule).canonical();
     }},
    {"crash",
     [](const ScenarioSpec& spec, const CellResult&) {
       return parse_strategy_spec(spec.crash).canonical();
     }},
    {"trials",
     [](const ScenarioSpec& spec, const CellResult&) {
       return std::to_string(spec.trials);
     }},
    {"seed",
     [](const ScenarioSpec&, const CellResult& r) {
       return std::to_string(r.cell.seed);
     }},
    {"success",
     [](const ScenarioSpec&, const CellResult& r) {
       return util::fmt_fixed(r.stats.success_rate, 4);
     }},
    {"mean_time",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.stats.time.mean);
     }},
    {"median_time",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.stats.time.median);
     }},
    {"ci95",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.stats.time.ci95_half());
     }},
    {"stddev",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.stats.time.stddev);
     }},
    {"min_time",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.stats.time.min);
     }},
    {"max_time",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.stats.time.max);
     }},
    {"q25_time",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.stats.time.q25);
     }},
    {"q75_time",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.stats.time.q75);
     }},
    {"q95_time",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.stats.time.q95);
     }},
    {"phi_mean",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.stats.mean_competitiveness);
     }},
    {"phi_median",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.stats.median_competitiveness);
     }},
    {"optimal",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(sim::optimal_time(r.cell.distance, r.cell.k));
     }},
    {"from_last_mean",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.from_last_start.mean);
     }},
    {"from_last_median",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.from_last_start.median);
     }},
    {"mean_crashed",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.mean_crashed);
     }},
    {"survivors",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(static_cast<double>(r.cell.k) - r.mean_crashed);
     }},
    {"mean_last_start",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.mean_last_start);
     }},
    {"first_target",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.mean_first_target);
     }},
    {"cached",
     [](const ScenarioSpec&, const CellResult& r) {
       return std::string(r.from_cache ? "1" : "0");
     }},
};

const Column* find_column(const std::string& name) {
  for (const Column& column : kColumns) {
    if (name == column.name) return &column;
  }
  return nullptr;
}

using util::fmt_exact;  // cache records must round-trip every double

}  // namespace

std::vector<std::string> all_columns() {
  std::vector<std::string> out;
  for (const Column& column : kColumns) out.push_back(column.name);
  return out;
}

std::vector<std::string> default_columns() {
  return {"strategy",  "k",    "D",         "trials",   "success",
          "mean_time", "ci95", "median_time", "phi_mean", "phi_median"};
}

bool is_known_column(const std::string& column) {
  return find_column(column) != nullptr;
}

std::string column_value(const std::string& column, const ScenarioSpec& spec,
                         const CellResult& result) {
  const Column* c = find_column(column);
  if (c == nullptr) {
    throw std::invalid_argument("unknown result column '" + column + "'");
  }
  return c->value(spec, result);
}

void CsvSink::begin(const std::vector<std::string>& columns) {
  writer_ = std::make_unique<util::CsvWriter>(path_, columns);
}

void CsvSink::row(const std::vector<std::string>& cells) {
  writer_->add_row(cells);
}

void JsonlSink::begin(const std::vector<std::string>& columns) {
  columns_ = columns;
  out_ = std::make_unique<std::ofstream>(path_);
  if (!*out_) throw std::runtime_error("cannot open JSONL file: " + path_);
}

void JsonlSink::row(const std::vector<std::string>& cells) {
  std::string line = "{";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) line += ",";
    line += "\"" + columns_[i] + "\":";
    char* end = nullptr;
    std::strtod(cells[i].c_str(), &end);
    const bool numeric =
        !cells[i].empty() && end == cells[i].c_str() + cells[i].size();
    if (numeric) {
      line += cells[i];
    } else {
      line += '"';
      for (const char ch : cells[i]) {
        if (ch == '"' || ch == '\\') line += '\\';
        line += ch;
      }
      line += '"';
    }
  }
  line += "}";
  *out_ << line << "\n";
}

void TableSink::begin(const std::vector<std::string>& columns) {
  table_ = std::make_unique<util::Table>(columns);
}

void TableSink::row(const std::vector<std::string>& cells) {
  table_->add_row(cells);
}

void TableSink::end() { table_->print(os_); }

void emit_results(const ScenarioSpec& spec,
                  const std::vector<CellResult>& results,
                  const std::vector<ResultSink*>& sinks) {
  const std::vector<std::string> columns =
      spec.columns.empty() ? default_columns() : spec.columns;
  for (ResultSink* sink : sinks) sink->begin(columns);
  for (const CellResult& result : results) {
    std::vector<std::string> cells;
    cells.reserve(columns.size());
    for (const std::string& column : columns) {
      cells.push_back(column_value(column, spec, result));
    }
    for (ResultSink* sink : sinks) sink->row(cells);
  }
  for (ResultSink* sink : sinks) sink->end();
}

// --- per-cell result cache -------------------------------------------------

namespace {

std::string cache_path(const std::string& dir, std::uint64_t hash) {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.cell",
                static_cast<unsigned long long>(hash));
  return dir + "/" + name;
}

}  // namespace

bool cache_load(const std::string& dir, std::uint64_t hash,
                CellResult* result) {
  std::ifstream in(cache_path(dir, hash));
  if (!in) return false;

  std::map<std::string, std::string> fields;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return false;
    fields[line.substr(0, eq)] = line.substr(eq + 1);
  }

  const auto get = [&](const char* key, double* out) {
    const auto it = fields.find(key);
    if (it == fields.end()) return false;
    char* end = nullptr;
    *out = std::strtod(it->second.c_str(), &end);
    return !it->second.empty() && end == it->second.c_str() + it->second.size();
  };

  sim::RunStats rs;
  stats::Summary from_last;
  double n = 0, distance = 0, k = 0, mean_crashed = 0, mean_last_start = 0;
  double mean_first_target = -1;
  const bool ok =
      get("n", &n) && get("distance", &distance) && get("k", &k) &&
      get("success_rate", &rs.success_rate) && get("mean", &rs.time.mean) &&
      get("stddev", &rs.time.stddev) && get("std_error", &rs.time.std_error) &&
      get("min", &rs.time.min) && get("max", &rs.time.max) &&
      get("median", &rs.time.median) && get("q25", &rs.time.q25) &&
      get("q75", &rs.time.q75) && get("q95", &rs.time.q95) &&
      get("phi_mean", &rs.mean_competitiveness) &&
      get("phi_median", &rs.median_competitiveness) &&
      get("from_last_mean", &from_last.mean) &&
      get("from_last_median", &from_last.median) &&
      get("mean_crashed", &mean_crashed) &&
      get("mean_last_start", &mean_last_start) &&
      get("mean_first_target", &mean_first_target);
  if (!ok) return false;
  rs.time.n = static_cast<std::size_t>(n);
  rs.distance = static_cast<std::int64_t>(distance);
  rs.k = static_cast<std::int64_t>(k);
  result->stats = std::move(rs);
  result->from_last_start = from_last;
  result->mean_crashed = mean_crashed;
  result->mean_last_start = mean_last_start;
  result->mean_first_target = mean_first_target;
  return true;
}

void cache_store(const std::string& dir, std::uint64_t hash,
                 const CellResult& result) {
  const sim::RunStats& stats = result.stats;
  std::filesystem::create_directories(dir);
  const std::string path = cache_path(dir, hash);
  // Write-then-rename so a crashed run never leaves a torn entry behind.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) throw std::runtime_error("cannot write cache entry: " + tmp);
    out << "n=" << stats.time.n << "\n"
        << "distance=" << stats.distance << "\n"
        << "k=" << stats.k << "\n"
        << "success_rate=" << fmt_exact(stats.success_rate) << "\n"
        << "mean=" << fmt_exact(stats.time.mean) << "\n"
        << "stddev=" << fmt_exact(stats.time.stddev) << "\n"
        << "std_error=" << fmt_exact(stats.time.std_error) << "\n"
        << "min=" << fmt_exact(stats.time.min) << "\n"
        << "max=" << fmt_exact(stats.time.max) << "\n"
        << "median=" << fmt_exact(stats.time.median) << "\n"
        << "q25=" << fmt_exact(stats.time.q25) << "\n"
        << "q75=" << fmt_exact(stats.time.q75) << "\n"
        << "q95=" << fmt_exact(stats.time.q95) << "\n"
        << "phi_mean=" << fmt_exact(stats.mean_competitiveness) << "\n"
        << "phi_median=" << fmt_exact(stats.median_competitiveness) << "\n"
        << "from_last_mean=" << fmt_exact(result.from_last_start.mean) << "\n"
        << "from_last_median=" << fmt_exact(result.from_last_start.median)
        << "\n"
        << "mean_crashed=" << fmt_exact(result.mean_crashed) << "\n"
        << "mean_last_start=" << fmt_exact(result.mean_last_start) << "\n"
        << "mean_first_target=" << fmt_exact(result.mean_first_target)
        << "\n";
    out.flush();
    if (!out.good()) {  // e.g. disk full: a short write must never publish
      out.close();
      std::filesystem::remove(tmp);
      throw std::runtime_error("failed writing cache entry: " + tmp);
    }
  }
  std::filesystem::rename(tmp, path);
}

}  // namespace ants::scenario
