#include "scenario/sink.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <ostream>
#include <stdexcept>

#include "scenario/agg_fields.h"
#include "scenario/json.h"
#include "scenario/registry.h"
#include "sim/metrics.h"
#include "util/format.h"

namespace ants::scenario {

namespace {

std::string fmt(double v) { return util::fmt_compact(v); }

using ValueFn = std::string (*)(const ScenarioSpec&, const CellResult&);

struct Column {
  const char* name;
  ValueFn value;
};

const Column kColumns[] = {
    {"strategy",
     [](const ScenarioSpec&, const CellResult& r) {
       return r.cell.strategy_name;
     }},
    {"spec",
     [](const ScenarioSpec&, const CellResult& r) {
       return r.cell.strategy_spec;
     }},
    {"k",
     [](const ScenarioSpec&, const CellResult& r) {
       return std::to_string(r.cell.k);
     }},
    {"D",
     [](const ScenarioSpec&, const CellResult& r) {
       return std::to_string(r.cell.distance);
     }},
    {"placement",
     [](const ScenarioSpec&, const CellResult& r) {
       return r.cell.placement_spec;
     }},
    {"targets",
     [](const ScenarioSpec&, const CellResult& r) {
       return r.cell.targets_spec;
     }},
    {"schedule",
     [](const ScenarioSpec& spec, const CellResult&) {
       return parse_strategy_spec(spec.schedule).canonical();
     }},
    {"crash",
     [](const ScenarioSpec& spec, const CellResult&) {
       return parse_strategy_spec(spec.crash).canonical();
     }},
    {"trials",
     [](const ScenarioSpec& spec, const CellResult&) {
       return std::to_string(spec.trials);
     }},
    {"seed",
     [](const ScenarioSpec&, const CellResult& r) {
       return std::to_string(r.cell.seed);
     }},
    {"success",
     [](const ScenarioSpec&, const CellResult& r) {
       return util::fmt_fixed(r.stats.success_rate, 4);
     }},
    {"mean_time",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.stats.time.mean);
     }},
    {"median_time",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.stats.time.median);
     }},
    {"ci95",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.stats.time.ci95_half());
     }},
    {"stddev",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.stats.time.stddev);
     }},
    {"min_time",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.stats.time.min);
     }},
    {"max_time",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.stats.time.max);
     }},
    {"q25_time",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.stats.time.q25);
     }},
    {"q75_time",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.stats.time.q75);
     }},
    {"q95_time",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.stats.time.q95);
     }},
    {"phi_mean",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.stats.mean_competitiveness);
     }},
    {"phi_median",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.stats.median_competitiveness);
     }},
    {"optimal",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(sim::optimal_time(r.cell.distance, r.cell.k));
     }},
    {"from_last_mean",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.from_last_start.mean);
     }},
    {"from_last_median",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.from_last_start.median);
     }},
    {"mean_crashed",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.mean_crashed);
     }},
    {"survivors",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(static_cast<double>(r.cell.k) - r.mean_crashed);
     }},
    {"mean_last_start",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.mean_last_start);
     }},
    {"first_target",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.mean_first_target);
     }},
    {"capture",
     [](const ScenarioSpec& spec, const CellResult&) {
       return parse_strategy_spec(spec.capture).canonical();
     }},
    {"collect",
     [](const ScenarioSpec& spec, const CellResult&) { return spec.collect; }},
    {"targets_found",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.mean_targets_found);
     }},
    {"targets_spawned",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.mean_targets_spawned);
     }},
    {"found_before_vanish",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.found_before_vanish);
     }},
    // Under collect=all the race runs to the last find, so the cell's time
    // aggregate IS the time-to-all-found; surfacing it under its own name
    // keeps collect-all specs self-describing. -1 under collect=first.
    {"time_to_all",
     [](const ScenarioSpec& spec, const CellResult& r) {
       return spec.collect_all() ? fmt(r.stats.time.mean) : fmt(-1.0);
     }},
    {"target_time_0",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.target_time_mean[0]);
     }},
    {"target_time_1",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.target_time_mean[1]);
     }},
    {"target_time_2",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.target_time_mean[2]);
     }},
    {"target_time_3",
     [](const ScenarioSpec&, const CellResult& r) {
       return fmt(r.target_time_mean[3]);
     }},
    {"cached",
     [](const ScenarioSpec&, const CellResult& r) {
       return std::string(r.from_cache ? "1" : "0");
     }},
};

const Column* find_column(const std::string& name) {
  for (const Column& column : kColumns) {
    if (name == column.name) return &column;
  }
  return nullptr;
}

using util::fmt_exact;  // cache records must round-trip every double

}  // namespace

std::vector<std::string> all_columns() {
  std::vector<std::string> out;
  for (const Column& column : kColumns) out.push_back(column.name);
  return out;
}

std::vector<std::string> default_columns() {
  return {"strategy",  "k",    "D",         "trials",   "success",
          "mean_time", "ci95", "median_time", "phi_mean", "phi_median"};
}

bool is_known_column(const std::string& column) {
  return find_column(column) != nullptr;
}

std::string column_value(const std::string& column, const ScenarioSpec& spec,
                         const CellResult& result) {
  const Column* c = find_column(column);
  if (c == nullptr) {
    throw std::invalid_argument("unknown result column '" + column + "'");
  }
  return c->value(spec, result);
}

void CsvSink::begin(const std::vector<std::string>& columns) {
  writer_ = std::make_unique<util::CsvWriter>(path_, columns);
}

void CsvSink::row(const std::vector<std::string>& cells) {
  writer_->add_row(cells);
}

void JsonlSink::begin(const std::vector<std::string>& columns) {
  columns_ = columns;
  out_ = std::make_unique<std::ofstream>(path_);
  if (!*out_) throw std::runtime_error("cannot open JSONL file: " + path_);
}

void JsonlSink::row(const std::vector<std::string>& cells) {
  std::string line = "{";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) line += ",";
    line += "\"" + columns_[i] + "\":";
    char* end = nullptr;
    std::strtod(cells[i].c_str(), &end);
    const bool numeric =
        !cells[i].empty() && end == cells[i].c_str() + cells[i].size();
    if (numeric) {
      line += cells[i];
    } else {
      line += '"' + detail::json_escape(cells[i]) + '"';
    }
  }
  line += "}";
  *out_ << line << "\n";
}

void TableSink::begin(const std::vector<std::string>& columns) {
  table_ = std::make_unique<util::Table>(columns);
}

void TableSink::row(const std::vector<std::string>& cells) {
  table_->add_row(cells);
}

void TableSink::end() { table_->print(os_); }

void emit_results(const ScenarioSpec& spec,
                  const std::vector<CellResult>& results,
                  const std::vector<ResultSink*>& sinks) {
  const std::vector<std::string> columns =
      spec.columns.empty() ? default_columns() : spec.columns;
  for (ResultSink* sink : sinks) sink->begin(columns);
  for (const CellResult& result : results) {
    std::vector<std::string> cells;
    cells.reserve(columns.size());
    for (const std::string& column : columns) {
      cells.push_back(column_value(column, spec, result));
    }
    for (ResultSink* sink : sinks) sink->row(cells);
  }
  for (ResultSink* sink : sinks) sink->end();
}

// --- per-cell result cache + shard artifacts -------------------------------

namespace {

std::string cache_path(const std::string& dir, std::uint64_t hash) {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.cell",
                static_cast<unsigned long long>(hash));
  return dir + "/" + name;
}

/// The one definition of the shared aggregate table (agg_fields.h): the
/// cache record (key=value lines), the packed cache journal, and both
/// shard-artifact formats (JSONL and binary columnar) all index it, so the
/// formats can never drift apart field-by-field.
using detail::AggField;

constexpr AggField kAggFields[] = {
    {"n",
     [](const CellResult& r) { return static_cast<double>(r.stats.time.n); },
     [](CellResult& r, double v) {
       r.stats.time.n = static_cast<std::size_t>(v);
     }},
    {"distance",
     [](const CellResult& r) {
       return static_cast<double>(r.stats.distance);
     },
     [](CellResult& r, double v) {
       r.stats.distance = static_cast<std::int64_t>(v);
     }},
    {"k",
     [](const CellResult& r) { return static_cast<double>(r.stats.k); },
     [](CellResult& r, double v) {
       r.stats.k = static_cast<std::int64_t>(v);
     }},
    {"success_rate",
     [](const CellResult& r) { return r.stats.success_rate; },
     [](CellResult& r, double v) { r.stats.success_rate = v; }},
    {"mean", [](const CellResult& r) { return r.stats.time.mean; },
     [](CellResult& r, double v) { r.stats.time.mean = v; }},
    {"stddev", [](const CellResult& r) { return r.stats.time.stddev; },
     [](CellResult& r, double v) { r.stats.time.stddev = v; }},
    {"std_error", [](const CellResult& r) { return r.stats.time.std_error; },
     [](CellResult& r, double v) { r.stats.time.std_error = v; }},
    {"min", [](const CellResult& r) { return r.stats.time.min; },
     [](CellResult& r, double v) { r.stats.time.min = v; }},
    {"max", [](const CellResult& r) { return r.stats.time.max; },
     [](CellResult& r, double v) { r.stats.time.max = v; }},
    {"median", [](const CellResult& r) { return r.stats.time.median; },
     [](CellResult& r, double v) { r.stats.time.median = v; }},
    {"q25", [](const CellResult& r) { return r.stats.time.q25; },
     [](CellResult& r, double v) { r.stats.time.q25 = v; }},
    {"q75", [](const CellResult& r) { return r.stats.time.q75; },
     [](CellResult& r, double v) { r.stats.time.q75 = v; }},
    {"q95", [](const CellResult& r) { return r.stats.time.q95; },
     [](CellResult& r, double v) { r.stats.time.q95 = v; }},
    {"phi_mean",
     [](const CellResult& r) { return r.stats.mean_competitiveness; },
     [](CellResult& r, double v) { r.stats.mean_competitiveness = v; }},
    {"phi_median",
     [](const CellResult& r) { return r.stats.median_competitiveness; },
     [](CellResult& r, double v) { r.stats.median_competitiveness = v; }},
    {"from_last_mean",
     [](const CellResult& r) { return r.from_last_start.mean; },
     [](CellResult& r, double v) { r.from_last_start.mean = v; }},
    {"from_last_median",
     [](const CellResult& r) { return r.from_last_start.median; },
     [](CellResult& r, double v) { r.from_last_start.median = v; }},
    {"mean_crashed", [](const CellResult& r) { return r.mean_crashed; },
     [](CellResult& r, double v) { r.mean_crashed = v; }},
    {"mean_last_start",
     [](const CellResult& r) { return r.mean_last_start; },
     [](CellResult& r, double v) { r.mean_last_start = v; }},
    {"mean_first_target",
     [](const CellResult& r) { return r.mean_first_target; },
     [](CellResult& r, double v) { r.mean_first_target = v; }},
    // Target-process aggregates (v6). New fields append at the END: the
    // binary artifact's column order is this table's order.
    {"mean_targets_found",
     [](const CellResult& r) { return r.mean_targets_found; },
     [](CellResult& r, double v) { r.mean_targets_found = v; }},
    {"mean_targets_spawned",
     [](const CellResult& r) { return r.mean_targets_spawned; },
     [](CellResult& r, double v) { r.mean_targets_spawned = v; }},
    {"found_before_vanish",
     [](const CellResult& r) { return r.found_before_vanish; },
     [](CellResult& r, double v) { r.found_before_vanish = v; }},
    {"target_time_0",
     [](const CellResult& r) { return r.target_time_mean[0]; },
     [](CellResult& r, double v) { r.target_time_mean[0] = v; }},
    {"target_time_1",
     [](const CellResult& r) { return r.target_time_mean[1]; },
     [](CellResult& r, double v) { r.target_time_mean[1] = v; }},
    {"target_time_2",
     [](const CellResult& r) { return r.target_time_mean[2]; },
     [](CellResult& r, double v) { r.target_time_mean[2] = v; }},
    {"target_time_3",
     [](const CellResult& r) { return r.target_time_mean[3]; },
     [](CellResult& r, double v) { r.target_time_mean[3] = v; }},
};

bool parse_double_exact(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return !text.empty() && end == text.c_str() + text.size();
}

}  // namespace

namespace detail {

const AggField* agg_fields() noexcept { return kAggFields; }

std::size_t agg_field_count() noexcept {
  return sizeof(kAggFields) / sizeof(kAggFields[0]);
}

std::string agg_field_names_blob() {
  std::string out;
  for (const AggField& field : kAggFields) {
    if (!out.empty()) out += '\n';
    out += field.name;
  }
  return out;
}

std::string unique_tmp_path(const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
  return path + ".tmp." + std::to_string(static_cast<long long>(::getpid())) +
         "." + std::to_string(counter.fetch_add(1));
}

void atomic_write(const std::string& path,
                  const std::function<void(std::ostream&)>& fill,
                  bool binary) {
  const std::string tmp = unique_tmp_path(path);
  {
    std::ofstream out(tmp, binary ? std::ios::binary | std::ios::out
                                  : std::ios::out);
    if (!out) throw std::runtime_error("cannot write file: " + tmp);
    fill(out);
    out.flush();
    if (!out.good()) {
      out.close();
      std::filesystem::remove(tmp);
      throw std::runtime_error("failed writing file: " + tmp);
    }
  }
  std::filesystem::rename(tmp, path);
}

}  // namespace detail

CacheLookup cache_lookup(const std::string& dir, std::uint64_t hash,
                         CellResult* result) {
  std::ifstream in(cache_path(dir, hash));
  if (!in) return CacheLookup::kMiss;

  std::map<std::string, std::string> fields;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return CacheLookup::kCorrupt;
    fields[line.substr(0, eq)] = line.substr(eq + 1);
  }

  CellResult loaded;
  for (const AggField& field : kAggFields) {
    const auto it = fields.find(field.name);
    double value = 0;
    if (it == fields.end() || !parse_double_exact(it->second, &value)) {
      return CacheLookup::kCorrupt;
    }
    field.set(loaded, value);
  }
  loaded.cell = std::move(result->cell);
  *result = std::move(loaded);
  return CacheLookup::kHit;
}

bool cache_load(const std::string& dir, std::uint64_t hash,
                CellResult* result) {
  return cache_lookup(dir, hash, result) == CacheLookup::kHit;
}

void cache_store(const std::string& dir, std::uint64_t hash,
                 const CellResult& result) {
  std::filesystem::create_directories(dir);
  detail::atomic_write(cache_path(dir, hash), [&](std::ostream& out) {
    for (const AggField& field : kAggFields) {
      out << field.name << "=" << fmt_exact(field.get(result)) << "\n";
    }
  });
}

// --- shard artifacts -------------------------------------------------------

namespace {

constexpr const char* kArtifactKind = "ants-shard-artifact";

[[noreturn]] void bad_artifact(const std::string& path,
                               const std::string& what) {
  throw std::invalid_argument("shard artifact " + path + ": " + what);
}

/// The parsed fields of one artifact line as name -> raw scalar text.
std::map<std::string, std::string> object_fields(const std::string& path,
                                                 const std::string& line) {
  std::map<std::string, std::string> out;
  detail::JsonLineParser parser(line);
  std::vector<std::pair<std::string, detail::JsonValue>> parsed;
  try {
    parsed = parser.parse_object();
  } catch (const std::invalid_argument& e) {
    bad_artifact(path, e.what());
  }
  for (auto& [key, value] : parsed) {
    if (value.kind == detail::JsonValue::Kind::kArray ||
        value.kind == detail::JsonValue::Kind::kObject) {
      bad_artifact(path, "unexpected non-scalar value for '" + key + "'");
    }
    out[key] = value.kind == detail::JsonValue::Kind::kBool
                   ? (value.boolean ? "1" : "0")
                   : value.string;
  }
  return out;
}

std::string field_text(const std::string& path,
                       const std::map<std::string, std::string>& fields,
                       const char* key) {
  const auto it = fields.find(key);
  if (it == fields.end()) bad_artifact(path, "missing field '" + std::string(key) + "'");
  return it->second;
}

double field_number(const std::string& path,
                    const std::map<std::string, std::string>& fields,
                    const char* key) {
  double value = 0;
  if (!parse_double_exact(field_text(path, fields, key), &value)) {
    bad_artifact(path, "field '" + std::string(key) + "' is not a number");
  }
  return value;
}

}  // namespace

namespace {

/// The fixed prefix every embedded telemetry line starts with — how the
/// reader recognizes it without a full parse (its cell_hist array would
/// trip the scalar-only object_fields used for result records).
constexpr const char* kMetricsLinePrefix = "{\"kind\":\"ants-run-metrics\"";

bool is_metrics_line(const std::string& line) {
  return line.rfind(kMetricsLinePrefix, 0) == 0;
}

}  // namespace

void write_shard_artifact(const std::string& path, const ShardHeader& header,
                          const std::vector<ShardEntry>& entries,
                          const std::string* metrics_line) {
  if (metrics_line != nullptr && !is_metrics_line(*metrics_line)) {
    bad_artifact(path, "metrics line does not start with " +
                           std::string(kMetricsLinePrefix));
  }
  detail::atomic_write(path, [&](std::ostream& out) {
    out << "{\"kind\":\"" << kArtifactKind << "\""
        << ",\"format_version\":" << header.format_version
        << ",\"spec_hash\":\"" << std::hex << header.spec_hash << std::dec
        << "\",\"shard\":" << header.shard
        << ",\"n_shards\":" << header.n_shards
        << ",\"n_cells_total\":" << header.n_cells_total
        << ",\"n_cells_shard\":" << entries.size() << ",\"spec\":\""
        << detail::json_escape(header.spec_text) << "\"}\n";
    if (metrics_line != nullptr) out << *metrics_line << "\n";
    for (const ShardEntry& entry : entries) {
      out << "{\"cell_index\":" << entry.cell_index;
      for (const AggField& field : kAggFields) {
        out << ",\"" << field.name
            << "\":" << fmt_exact(field.get(entry.result));
      }
      out << ",\"from_cache\":" << (entry.result.from_cache ? 1 : 0) << "}\n";
    }
  });
}

ShardHeader read_shard_artifact(const std::string& path,
                                std::vector<ShardEntry>* entries,
                                std::string* metrics_line) {
  std::ifstream in(path);
  if (!in) bad_artifact(path, "cannot open");
  if (metrics_line != nullptr) metrics_line->clear();

  std::string line;
  if (!std::getline(in, line)) bad_artifact(path, "empty file");
  const auto head = object_fields(path, line);
  if (field_text(path, head, "kind") != kArtifactKind) {
    bad_artifact(path, "not a shard artifact (kind mismatch)");
  }

  ShardHeader header;
  header.format_version =
      static_cast<int>(field_number(path, head, "format_version"));
  {
    const std::string hex = field_text(path, head, "spec_hash");
    char* end = nullptr;
    header.spec_hash = std::strtoull(hex.c_str(), &end, 16);
    if (hex.empty() || end != hex.c_str() + hex.size()) {
      bad_artifact(path, "malformed spec_hash");
    }
  }
  header.spec_text = field_text(path, head, "spec");
  header.shard = static_cast<std::size_t>(field_number(path, head, "shard"));
  header.n_shards =
      static_cast<std::size_t>(field_number(path, head, "n_shards"));
  header.n_cells_total =
      static_cast<std::size_t>(field_number(path, head, "n_cells_total"));
  const auto n_cells_shard =
      static_cast<std::size_t>(field_number(path, head, "n_cells_shard"));

  if (entries == nullptr && metrics_line == nullptr) return header;
  if (entries != nullptr) entries->clear();
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (is_metrics_line(line)) {
      // The embedded telemetry record. Passed through verbatim — parsing
      // (and version validation) is telemetry::metrics_from_json's job, and
      // a reader that did not ask for it skips it entirely.
      if (metrics_line != nullptr) *metrics_line = line;
      continue;
    }
    if (entries == nullptr) continue;
    // Errors in a record name the line: a torn or hand-mangled artifact of
    // thousands of cells must not need manual bisection.
    const std::string where = path + ", line " + std::to_string(line_no);
    const auto fields = object_fields(where, line);
    ShardEntry entry;
    entry.cell_index =
        static_cast<std::size_t>(field_number(where, fields, "cell_index"));
    for (const AggField& field : kAggFields) {
      field.set(entry.result, field_number(where, fields, field.name));
    }
    entry.result.from_cache =
        field_number(where, fields, "from_cache") != 0;
    entries->push_back(std::move(entry));
  }
  if (entries != nullptr && entries->size() != n_cells_shard) {
    bad_artifact(path, "truncated: header promises " +
                           std::to_string(n_cells_shard) + " cells, found " +
                           std::to_string(entries->size()));
  }
  return header;
}

}  // namespace ants::scenario
