// Declarative environment axes: placement, start schedule, crash model,
// target set.
//
// The scenario layer describes strategies as "name(key=value, ...)" spec
// strings; this module extends the same grammar to the four environment
// knobs an experiment can turn:
//
//   placement   where the adversary puts each target — a sweepable axis
//               ("ring", "axis", "ring-fraction(f=0.25)", ...), so angular
//               soft-spot hunts are a grid like k and D;
//   schedule    per-agent start delays ("sync", "staggered(gap=4)",
//               "uniform-start(max=256)", "fixed(delays=0;5;10)") — the
//               paper's section 2 asynchrony remark as a spec field;
//   crash       per-agent fail-stop lifetimes ("none", "doa(p=0.25)",
//               "exp-life(mean=1000)", "fixed-life(t=500)") — the
//               robustness axis of experiment E9;
//   targets     how many treasures the trial races for and where —
//               a sweepable axis ("single", "pair(near=0.5)",
//               "ring-set(n=3)") composing WITH the placement policy, so
//               the paper's foraging motivation (find nearby food first)
//               is an ordinary sweep with a `first_target` column.
//
// Each axis has a small registry (name + typed params + factory) mirroring
// the strategy registry, so `search_lab list` can print every sweepable
// parameter and spec validation fails loudly on typos.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "scenario/registry.h"
#include "sim/async_engine.h"
#include "sim/placement.h"
#include "sim/trial.h"

namespace ants::scenario {

/// One registered environment policy: name, one-line doc, typed params.
struct EnvEntry {
  std::string name;
  std::string summary;
  std::vector<ParamSpec> params;
  /// Engine-family applicability; empty = every engine family. Printed per
  /// entry by `search_lab list` and enforced by spec validation.
  std::string applies;
};

const std::vector<EnvEntry>& placement_entries();
const std::vector<EnvEntry>& schedule_entries();
const std::vector<EnvEntry>& crash_entries();
const std::vector<EnvEntry>& target_entries();
const std::vector<EnvEntry>& capture_entries();

/// Parse + validate against the axis registry + re-serialize stably (sorted
/// params, no spaces). Throws std::invalid_argument on unknown names,
/// unknown/malformed parameters, or out-of-range values. The canonical
/// string is what cells carry and what cache keys hash.
std::string canonical_placement_spec(const std::string& text);
std::string canonical_schedule_spec(const std::string& text);
std::string canonical_crash_spec(const std::string& text);
std::string canonical_targets_spec(const std::string& text);
std::string canonical_capture_spec(const std::string& text);

/// Factories. Accept raw or canonical spec text.
sim::Placement make_placement(const std::string& text);
std::unique_ptr<sim::StartSchedule> make_schedule(const std::string& text);
std::unique_ptr<sim::CrashModel> make_crash(const std::string& text);

/// Compiles a target-process spec against a placement policy: the policy
/// picks each target's direction, the target spec picks how many targets,
/// at which distances, and over which live windows. "single" is exactly one
/// placement draw — byte-identical to the classic single-treasure path —
/// while "poisson(rate=;life=)" and "drift(v=;angle=)" realize dynamic
/// processes from the dedicated target stream (sim::kTargetStream).
sim::TargetProcess make_targets(const std::string& text,
                                const sim::Placement& placement);

/// The continuous-plane twin of make_targets: compiles the SAME
/// target-process grammar against a plane angle policy (see
/// make_plane_angle). Distances mirror the grid semantics exactly —
/// "pair(near=f)" puts the near patch at max(1, round(f*D)) — so a paired
/// grid-vs-plane sweep races targets at the same radii. "single" is exactly
/// one angle draw, byte-identical to the classic plane path. "drift" is
/// grid/step-level only and throws here.
sim::TargetProcess make_plane_targets(
    const std::string& text, const std::function<double(rng::Rng&)>& angle);

/// Dwell ticks compiled from a capture spec: 0 for "instant", t for
/// "dwell(t=)" (validated t >= 1). The sweep wires this into
/// sim::TrialEnvironment::capture_dwell.
sim::Time capture_dwell_ticks(const std::string& text);

/// For a "fixed" schedule, the number of per-agent delays it carries
/// (validation must match it against every k in the sweep grid); 0 for
/// every other schedule.
std::size_t fixed_schedule_delay_count(const std::string& text);

/// Treasure direction for continuous-plane cells, compiled once per
/// placement: the returned callable yields the angle (radians) for one
/// trial. "ring" draws uniformly from the trial rng; the deterministic
/// policies ("axis", "diagonal", "ring-fraction") ignore it.
std::function<double(rng::Rng&)> make_plane_angle(const std::string& text);

/// True when the schedule/crash/targets field is the paper's base model
/// (synchronous starts, immortal agents, one treasure). Every cell — grid
/// or plane — runs the same unified executor either way; these predicates
/// only gate which aggregate columns are meaningful.
bool is_sync_schedule(const std::string& text);
bool is_no_crash(const std::string& text);
bool is_single_targets(const std::string& text);

/// True when the target-set spec realizes a DYNAMIC process (poisson or
/// drift) — these need a finite time_cap horizon.
bool is_dynamic_targets(const std::string& text);

/// True when the target-set spec applies to step-level strategies only
/// (drift: segment/plane backends have no per-tick target position).
bool is_step_only_targets(const std::string& text);

}  // namespace ants::scenario
