// Declarative environment axes: placement, start schedule, crash model.
//
// The scenario layer describes strategies as "name(key=value, ...)" spec
// strings; this module extends the same grammar to the three environment
// knobs an experiment can turn:
//
//   placement   where the adversary puts the treasure — a sweepable axis
//               ("ring", "axis", "ring-fraction(f=0.25)", ...), so angular
//               soft-spot hunts are a grid like k and D;
//   schedule    per-agent start delays ("sync", "staggered(gap=4)",
//               "uniform-start(max=256)") — the paper's section 2
//               asynchrony remark as a spec field;
//   crash       per-agent fail-stop lifetimes ("none", "doa(p=0.25)",
//               "exp-life(mean=1000)", "fixed-life(t=500)") — the
//               robustness axis of experiment E9.
//
// Each axis has a small registry (name + typed params + factory) mirroring
// the strategy registry, so `search_lab list` can print every sweepable
// parameter and spec validation fails loudly on typos.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "scenario/registry.h"
#include "sim/async_engine.h"
#include "sim/placement.h"

namespace ants::scenario {

/// One registered environment policy: name, one-line doc, typed params.
struct EnvEntry {
  std::string name;
  std::string summary;
  std::vector<ParamSpec> params;
};

const std::vector<EnvEntry>& placement_entries();
const std::vector<EnvEntry>& schedule_entries();
const std::vector<EnvEntry>& crash_entries();

/// Parse + validate against the axis registry + re-serialize stably (sorted
/// params, no spaces). Throws std::invalid_argument on unknown names,
/// unknown/malformed parameters, or out-of-range values. The canonical
/// string is what cells carry and what cache keys hash.
std::string canonical_placement_spec(const std::string& text);
std::string canonical_schedule_spec(const std::string& text);
std::string canonical_crash_spec(const std::string& text);

/// Factories. Accept raw or canonical spec text.
sim::Placement make_placement(const std::string& text);
std::unique_ptr<sim::StartSchedule> make_schedule(const std::string& text);
std::unique_ptr<sim::CrashModel> make_crash(const std::string& text);

/// Treasure direction for continuous-plane cells, compiled once per
/// placement: the returned callable yields the angle (radians) for one
/// trial. "ring" draws uniformly from the trial rng; the deterministic
/// policies ("axis", "diagonal", "ring-fraction") ignore it.
std::function<double(rng::Rng&)> make_plane_angle(const std::string& text);

/// True when the canonical schedule/crash pair is the paper's base model
/// (synchronous starts, immortal agents) — such cells run the plain engine;
/// anything else routes through sim::run_search_async.
bool is_sync_schedule(const std::string& text);
bool is_no_crash(const std::string& text);

}  // namespace ants::scenario
