// Internal minimal JSON utilities shared by the scenario parsers, the
// shard-artifact reader/writer (spec.cpp, sink.cpp), and the telemetry
// serializers. One object per line; values may be strings, numbers,
// booleans, arrays, or nested objects (nesting exists for the Chrome trace
// format's args blocks — scenario and artifact records stay flat). No
// external dependency, fails loudly. Not part of the subsystem's public
// surface.
#pragma once

#include <cctype>
#include <string>
#include <utility>
#include <vector>

#include "scenario/text.h"

namespace ants::scenario::detail {

struct JsonValue {
  enum class Kind {
    kString,
    kNumber,
    kBool,
    kArray,
    kObject
  } kind = Kind::kString;
  std::string string;  ///< kString: text; kNumber: raw token
  bool boolean = false;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;
};

class JsonLineParser {
 public:
  explicit JsonLineParser(const std::string& text) : s_(text) {}

  std::vector<std::pair<std::string, JsonValue>> parse_object() {
    std::vector<std::pair<std::string, JsonValue>> out = parse_object_body();
    finish();
    return out;
  }

 private:
  std::vector<std::pair<std::string, JsonValue>> parse_object_body() {
    std::vector<std::pair<std::string, JsonValue>> out;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char ch = next();
      if (ch == '}') break;
      if (ch != ',') bad(where() + ": expected ',' or '}'");
    }
    return out;
  }

  JsonValue parse_value() {
    skip_ws();
    JsonValue v;
    const char ch = peek();
    if (ch == '"') {
      v.kind = JsonValue::Kind::kString;
      v.string = parse_string();
    } else if (ch == '{') {
      v.kind = JsonValue::Kind::kObject;
      v.object = parse_object_body();
    } else if (ch == '[') {
      ++pos_;
      v.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      for (;;) {
        v.array.push_back(parse_value());
        skip_ws();
        const char c = next();
        if (c == ']') break;
        if (c != ',') bad(where() + ": expected ',' or ']'");
      }
    } else if (ch == 't' || ch == 'f') {
      v.kind = JsonValue::Kind::kBool;
      const std::string word = ch == 't' ? "true" : "false";
      if (s_.compare(pos_, word.size(), word) != 0) {
        bad(where() + ": bad literal");
      }
      pos_ += word.size();
      v.boolean = ch == 't';
    } else if (ch == '-' || std::isdigit(static_cast<unsigned char>(ch))) {
      v.kind = JsonValue::Kind::kNumber;
      const std::size_t start = pos_;
      while (pos_ < s_.size() &&
             (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
              s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
              s_[pos_] == 'e' || s_[pos_] == 'E')) {
        ++pos_;
      }
      v.string = s_.substr(start, pos_ - start);
    } else {
      bad(where() + ": unsupported JSON value");
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char ch = s_[pos_++];
      if (ch == '\\') {
        if (pos_ >= s_.size()) bad(where() + ": dangling escape");
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': ch = '"'; break;
          case '\\': ch = '\\'; break;
          case '/': ch = '/'; break;
          case 'n': ch = '\n'; break;
          case 't': ch = '\t'; break;
          default: bad(where() + ": unsupported escape \\" + esc);
        }
      }
      out += ch;
    }
    expect('"');
    return out;
  }

  void finish() {
    skip_ws();
    if (pos_ != s_.size()) bad(where() + ": trailing characters");
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= s_.size()) bad(where() + ": unexpected end of line");
    return s_[pos_];
  }
  char next() {
    const char ch = peek();
    ++pos_;
    return ch;
  }
  void expect(char want) {
    skip_ws();
    if (next() != want) {
      bad(where() + ": expected '" + std::string(1, want) + "'");
    }
  }
  std::string where() const {
    return "JSON line, column " + std::to_string(pos_ + 1);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// The body of a JSON string literal for `text` (quotes not included). The
/// escape set mirrors what JsonLineParser::parse_string accepts.
inline std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch;
    }
  }
  return out;
}

}  // namespace ants::scenario::detail
