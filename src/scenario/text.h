// Internal text utilities shared by the scenario parsers (registry.cpp,
// spec.cpp). Not part of the subsystem's public surface.
#pragma once

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

namespace ants::scenario::detail {

[[noreturn]] inline void bad(const std::string& what) {
  throw std::invalid_argument(what);
}

inline std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// [A-Za-z0-9_-]+ — strategy names, parameter keys.
inline bool valid_name(const std::string& s) {
  if (s.empty()) return false;
  for (const char ch : s) {
    if (!std::isalnum(static_cast<unsigned char>(ch)) && ch != '-' &&
        ch != '_') {
      return false;
    }
  }
  return true;
}

/// Full-consumption integer parse; rejects trailing junk AND out-of-range
/// values ('99999999999999999999' is an error, not a silent clamp).
inline std::int64_t parse_int64(const std::string& context,
                                const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size()) {
    bad(context + ": '" + value + "' is not an integer");
  }
  if (errno == ERANGE) bad(context + ": '" + value + "' is out of range");
  return v;
}

inline std::uint64_t parse_uint64(const std::string& context,
                                  const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || value[0] == '-' ||
      end != value.c_str() + value.size()) {
    bad(context + ": '" + value + "' is not an unsigned integer");
  }
  if (errno == ERANGE) bad(context + ": '" + value + "' is out of range");
  return v;
}

inline double parse_double(const std::string& context,
                           const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size()) {
    bad(context + ": '" + value + "' is not a number");
  }
  if (errno == ERANGE) bad(context + ": '" + value + "' is out of range");
  return v;
}

/// Splits on `sep` at parenthesis depth 0, so strategy spec strings with
/// embedded commas — "levy(mu=2, loop=true)" — survive list syntax.
inline std::vector<std::string> split_top_level(const std::string& s,
                                                char sep) {
  std::vector<std::string> out;
  std::string current;
  int depth = 0;
  for (const char ch : s) {
    if (ch == '(') ++depth;
    if (ch == ')') --depth;
    if (ch == sep && depth == 0) {
      const std::string piece = trim(current);
      if (!piece.empty()) out.push_back(piece);
      current.clear();
    } else {
      current += ch;
    }
  }
  const std::string piece = trim(current);
  if (!piece.empty()) out.push_back(piece);
  return out;
}

}  // namespace ants::scenario::detail
