// Strategy registry: every search algorithm in the repository, constructible
// by string name.
//
// The registry is the glue between the declarative scenario layer and the
// concrete strategy classes in src/core and src/baselines. Each entry pairs
// a stable string name ("uniform", "known-k", "levy", ...) with a typed
// parameter spec and a factory, so an experiment can say
//
//     uniform(eps=0.3)
//     known-k(k_belief=16)
//     levy(mu=2, loop=true, scan=32)
//
// and get back a ready-to-run strategy. All three strategy families are
// covered: segment-level sim::Strategy (the paper algorithms and coordinated
// baselines), step-level sim::StepStrategy (the random-walk family), and
// plane::PlaneStrategy (the continuous-plane ports behind experiment E11).
//
// Parameter defaults may be the literal "$k", which resolves to the cell's
// true agent count at build time — the natural default for known-k and its
// relatives, whose belief equals the truth unless an experiment says
// otherwise.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "plane/engine.h"
#include "sim/program.h"
#include "sim/step_engine.h"

namespace ants::scenario {

enum class ParamType { kInt, kDouble, kBool, kString };

/// One declared strategy parameter: name, type, default (as written in a
/// spec string; "$k" = the cell's agent count), one-line doc.
struct ParamSpec {
  std::string name;
  ParamType type = ParamType::kDouble;
  std::string default_value;
  std::string doc;
};

/// Raw key=value pairs as parsed from a strategy spec string.
using ParamMap = std::map<std::string, std::string>;

/// Cell-level facts a factory may consult (today: the true agent count,
/// needed to resolve "$k" defaults).
struct BuildContext {
  int k = 1;
};

/// A constructed strategy: exactly one of the three pointers is set.
/// `segment` and `step` run on the grid engines; `plane` runs on the
/// continuous-plane engine (the section 2 substrate the grid discretizes),
/// so grid-vs-plane comparisons (experiment E11) are one sweep.
struct BuiltStrategy {
  std::unique_ptr<sim::Strategy> segment;
  std::unique_ptr<sim::StepStrategy> step;
  std::unique_ptr<plane::PlaneStrategy> plane;

  bool is_step() const noexcept { return step != nullptr; }
  bool is_plane() const noexcept { return plane != nullptr; }
  /// Display name of whichever strategy is held.
  std::string display_name() const;
};

/// Validated, default-filled parameter values handed to a factory. Typed
/// getters throw std::invalid_argument on malformed values, naming the
/// offending parameter.
class Params {
 public:
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

 private:
  friend class Registry;
  std::map<std::string, std::string> values_;
};

struct StrategyEntry {
  std::string name;     ///< registry key, e.g. "uniform"
  std::string summary;  ///< one line for `search_lab list`
  std::vector<ParamSpec> params;
  std::function<BuiltStrategy(const Params&, const BuildContext&)> factory;
};

/// Parsed form of a strategy spec string "name(key=value, ...)".
struct StrategySpec {
  std::string name;
  ParamMap params;

  /// Stable re-serialization: name(key=value,...) with keys sorted. Used
  /// for cache keys and spec canonicalization.
  std::string canonical() const;
};

/// Parses "name" or "name(key=value, key=value)". Throws
/// std::invalid_argument on grammar errors. Does NOT validate the name or
/// keys against the registry — Registry::make does.
StrategySpec parse_strategy_spec(const std::string& text);

class Registry {
 public:
  /// The process-wide registry; built-in strategies are registered on first
  /// access (see builtin.cpp).
  static Registry& instance();

  /// Registers an entry; throws std::invalid_argument on a duplicate name.
  void add(StrategyEntry entry);

  /// Entry by name, or nullptr.
  const StrategyEntry* find(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> names() const;

  /// Parses `spec_text`, validates every given key against the entry's
  /// parameter spec, fills defaults (resolving "$k" from `ctx`), and
  /// invokes the factory. Throws std::invalid_argument on unknown
  /// strategies, unknown or malformed parameters.
  BuiltStrategy make(const std::string& spec_text,
                     const BuildContext& ctx) const;
  BuiltStrategy make(const StrategySpec& spec, const BuildContext& ctx) const;

 private:
  Registry() = default;
  std::map<std::string, StrategyEntry> entries_;
};

/// Human-readable type name ("int" | "double" | "bool" | "string").
const char* param_type_name(ParamType type) noexcept;

}  // namespace ants::scenario
