#include "scenario/registry.h"

#include <stdexcept>

#include "scenario/text.h"

namespace ants::scenario {

namespace {

using detail::bad;
using detail::trim;
using detail::valid_name;

std::int64_t parse_int(const std::string& name, const std::string& value) {
  return detail::parse_int64("parameter '" + name + "'", value);
}

double parse_double(const std::string& name, const std::string& value) {
  return detail::parse_double("parameter '" + name + "'", value);
}

bool parse_bool(const std::string& name, const std::string& value) {
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  bad("parameter '" + name + "': '" + value + "' is not a boolean");
}

/// Type-checks a raw value so errors surface at spec-validation time, not
/// inside a factory mid-sweep.
void check_type(const ParamSpec& spec, const std::string& value) {
  switch (spec.type) {
    case ParamType::kInt:
      parse_int(spec.name, value);
      break;
    case ParamType::kDouble:
      parse_double(spec.name, value);
      break;
    case ParamType::kBool:
      parse_bool(spec.name, value);
      break;
    case ParamType::kString:
      break;
  }
}

}  // namespace

const char* param_type_name(ParamType type) noexcept {
  switch (type) {
    case ParamType::kInt: return "int";
    case ParamType::kDouble: return "double";
    case ParamType::kBool: return "bool";
    case ParamType::kString: return "string";
  }
  return "?";
}

std::string BuiltStrategy::display_name() const {
  if (segment) return segment->name();
  if (step) return step->name();
  if (plane) return plane->name();
  return "<empty>";
}

std::int64_t Params::get_int(const std::string& name) const {
  return parse_int(name, get_string(name));
}

double Params::get_double(const std::string& name) const {
  return parse_double(name, get_string(name));
}

bool Params::get_bool(const std::string& name) const {
  return parse_bool(name, get_string(name));
}

const std::string& Params::get_string(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    bad("parameter '" + name + "' was never declared in the entry's spec");
  }
  return it->second;
}

std::string StrategySpec::canonical() const {
  if (params.empty()) return name;
  std::string out = name + "(";
  bool first = true;
  for (const auto& [key, value] : params) {  // std::map: keys already sorted
    if (!first) out += ",";
    first = false;
    out += key + "=" + value;
  }
  out += ")";
  return out;
}

StrategySpec parse_strategy_spec(const std::string& text) {
  const std::string s = trim(text);
  StrategySpec spec;
  const std::size_t paren = s.find('(');
  if (paren == std::string::npos) {
    spec.name = s;
    if (!valid_name(spec.name)) bad("bad strategy spec: '" + text + "'");
    return spec;
  }
  spec.name = trim(s.substr(0, paren));
  if (!valid_name(spec.name)) bad("bad strategy spec: '" + text + "'");
  if (s.back() != ')') {
    bad("strategy spec '" + text + "': missing closing ')'");
  }
  const std::string body = s.substr(paren + 1, s.size() - paren - 2);
  if (trim(body).empty()) return spec;

  std::size_t start = 0;
  while (start <= body.size()) {
    std::size_t comma = body.find(',', start);
    if (comma == std::string::npos) comma = body.size();
    const std::string pair = trim(body.substr(start, comma - start));
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      bad("strategy spec '" + text + "': expected key=value, got '" + pair +
          "'");
    }
    const std::string key = trim(pair.substr(0, eq));
    const std::string value = trim(pair.substr(eq + 1));
    if (!valid_name(key)) {
      bad("strategy spec '" + text + "': bad parameter name '" + key + "'");
    }
    if (value.empty()) {
      bad("strategy spec '" + text + "': empty value for '" + key + "'");
    }
    if (!spec.params.emplace(key, value).second) {
      bad("strategy spec '" + text + "': duplicate parameter '" + key + "'");
    }
    start = comma + 1;
  }
  return spec;
}

// Defined in builtin.cpp; registers every strategy shipped with the repo.
void register_builtin_strategies(Registry& registry);

Registry& Registry::instance() {
  static Registry* registry = [] {
    auto* r = new Registry();
    register_builtin_strategies(*r);
    return r;
  }();
  return *registry;
}

void Registry::add(StrategyEntry entry) {
  if (!valid_name(entry.name)) {
    bad("registry: bad strategy name '" + entry.name + "'");
  }
  if (!entry.factory) bad("registry: '" + entry.name + "' has no factory");
  const std::string name = entry.name;
  if (!entries_.emplace(name, std::move(entry)).second) {
    bad("registry: duplicate strategy '" + name + "'");
  }
}

const StrategyEntry* Registry::find(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

BuiltStrategy Registry::make(const std::string& spec_text,
                             const BuildContext& ctx) const {
  return make(parse_strategy_spec(spec_text), ctx);
}

BuiltStrategy Registry::make(const StrategySpec& spec,
                             const BuildContext& ctx) const {
  const StrategyEntry* entry = find(spec.name);
  if (entry == nullptr) {
    std::string known;
    for (const auto& name : names()) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    bad("unknown strategy '" + spec.name + "' (registered: " + known + ")");
  }

  Params params;
  for (const ParamSpec& ps : entry->params) {
    std::string value;
    const auto given = spec.params.find(ps.name);
    if (given != spec.params.end()) {
      value = given->second;
    } else if (ps.default_value == "$k") {
      value = std::to_string(ctx.k);
    } else {
      value = ps.default_value;
    }
    check_type(ps, value);
    params.values_.emplace(ps.name, std::move(value));
  }
  for (const auto& [key, value] : spec.params) {
    if (params.values_.find(key) == params.values_.end()) {
      bad("strategy '" + spec.name + "' has no parameter '" + key + "'");
    }
  }

  BuiltStrategy built = entry->factory(params, ctx);
  const int set = (built.segment != nullptr) + (built.step != nullptr) +
                  (built.plane != nullptr);
  if (set != 1) {
    throw std::logic_error("registry: factory for '" + spec.name +
                           "' must set exactly one of segment/step/plane");
  }
  return built;
}

}  // namespace ants::scenario
