// Binary columnar shard artifacts: the zero-copy interchange format.
//
// The JSONL artifact (sink.h) is the debuggable, diff-able interchange
// format; this is its fast twin. A binary artifact stores the same header
// and the same per-cell aggregates, but as fixed-width column arrays — one
// u64 cell_index column, one f64 column per entry of the shared aggregate
// table (agg_fields.h), one u8 from_cache column — so a reader can mmap the
// file and load any value with pointer arithmetic instead of parsing text.
// Doubles are stored as raw IEEE-754 bit patterns, which makes the
// round-trip exact by construction (the JSONL path gets the same guarantee
// from util::fmt_exact); merged CSVs are byte-identical across formats.
//
// Layout (all integers little-endian; offsets 8-byte aligned):
//
//   [0]   magic            8 bytes  "ANTSHRD\x01"
//   [8]   meta section:
//           u32 format_version      scenario::cell_format_version() stamp
//           u32 n_fields            agg_field_count() at write time
//           u64 spec_hash
//           u64 shard               1-based
//           u64 n_shards
//           u64 n_cells_total       cells in the whole plan
//           u64 n_cells_shard       rows in this artifact
//           u64 spec_text_size
//           u64 metrics_size        0 = no telemetry line
//           u64 names_size          agg_field_names_blob() size
//           spec_text, metrics line, names blob (raw bytes, no terminators)
//           u32 meta_crc            CRC-32 of every meta byte above
//           zero padding to the next 8-byte boundary
//   [..]  columns section:
//           u64 cell_index[n_cells_shard]
//           f64-bits agg[field][n_cells_shard]   one array per table entry,
//                                                table order
//           u8  from_cache[n_cells_shard]
//           u32 columns_crc         CRC-32 of the whole columns section
//
// The two CRCs split corruption from incompatibility: a meta CRC or magic
// failure means the file is damaged or not ours; a names-blob mismatch
// against the running build's table means the artifact was written by an
// incompatible build and must be regenerated. Truncation always lands in
// the columns CRC (or an out-of-bounds section size), never in silently
// short reads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "scenario/sink.h"
#include "util/mmap.h"

namespace ants::scenario {

// (ArtifactFormat, the writer-side format selector, lives in sweep.h next
// to write_shard — readers never need it, the magic sniff decides.)

/// True when the file starts with the binary artifact magic. A short or
/// unreadable file is simply "not binary" (the JSONL reader will produce
/// the real error).
bool is_binary_artifact(const std::string& path);

/// Writes header + entries in the binary columnar layout. Atomic
/// (unique temp + rename) like its JSONL counterpart, so a killed writer
/// never publishes a partial artifact. `metrics_line` mirrors
/// write_shard_artifact's.
void write_binary_artifact(const std::string& path, const ShardHeader& header,
                           const std::vector<ShardEntry>& entries,
                           const std::string* metrics_line = nullptr);

/// Zero-copy reader over one mmap'ed binary artifact. Construction
/// validates magic, both CRCs, section bounds, and the embedded aggregate
/// field names against the running build's table, throwing
/// std::invalid_argument ("shard artifact <path>: <what>") on any failure —
/// after that, every accessor is a plain aligned-or-memcpy load.
class BinaryArtifactReader {
 public:
  explicit BinaryArtifactReader(const std::string& path);

  const ShardHeader& header() const noexcept { return header_; }
  const std::string& metrics_line() const noexcept { return metrics_line_; }
  std::size_t n_cells() const noexcept { return n_cells_; }

  std::uint64_t cell_index(std::size_t i) const noexcept;
  /// Value of aggregate-table column `field` (0-based, table order) for
  /// row i, bit-exact as written.
  double value(std::size_t field, std::size_t i) const noexcept;
  bool from_cache(std::size_t i) const noexcept;

  /// Materializes row i as a ShardEntry (result.cell left default; the
  /// merge reattaches it from the plan, same as the JSONL path).
  ShardEntry entry(std::size_t i) const;

 private:
  util::MappedFile map_;
  ShardHeader header_;
  std::string metrics_line_;
  std::size_t n_cells_ = 0;
  std::size_t n_fields_ = 0;
  std::size_t columns_off_ = 0;  ///< byte offset of cell_index[0]
};

/// Reads either artifact format, dispatching on the magic sniff: the format
/// is a property of the file, not a flag the caller must thread through.
/// Same contract as read_shard_artifact (null `entries` reads the header
/// alone; `metrics_line` gets "" when absent).
ShardHeader read_any_artifact(const std::string& path,
                              std::vector<ShardEntry>* entries,
                              std::string* metrics_line = nullptr);

namespace detail {

/// CRC-32 (IEEE 802.3, reflected) over a byte range. Shared by the binary
/// artifact sections and the cache-pack journal records.
std::uint32_t crc32(const void* data, std::size_t size) noexcept;

}  // namespace detail

}  // namespace ants::scenario
