#include "scenario/spec.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "scenario/environment.h"
#include "scenario/json.h"
#include "scenario/registry.h"
#include "scenario/sink.h"
#include "scenario/text.h"

namespace ants::scenario {

namespace {

using detail::bad;
using detail::JsonLineParser;
using detail::JsonValue;
using detail::split_top_level;
using detail::trim;

std::int64_t to_int(const std::string& context, const std::string& value) {
  return detail::parse_int64(context, value);
}

std::uint64_t to_uint(const std::string& context, const std::string& value) {
  return detail::parse_uint64(context, value);
}

// ---------------------------------------------------------------------------
// JSON-line scenarios: the shared minimal parser (scenario/json.h) feeds the
// same field-assignment funnel as the text form.

std::string json_scalar_to_text(const std::string& context,
                                const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kString:
    case JsonValue::Kind::kNumber:
      return v.string;
    case JsonValue::Kind::kBool:
      return v.boolean ? "true" : "false";
    case JsonValue::Kind::kArray:
    case JsonValue::Kind::kObject:
      break;
  }
  bad(context + ": expected a scalar");
}

// ---------------------------------------------------------------------------
// Shared field assignment: both on-disk forms funnel into key/value(s).

void assign_field(ScenarioSpec& spec, const std::string& key,
                  const std::string& value,
                  const std::vector<std::string>& list) {
  if (key == "name") {
    spec.name = value;
  } else if (key == "strategies") {
    spec.strategies = list;
  } else if (key == "ks") {
    spec.ks.clear();
    for (const auto& piece : list) spec.ks.push_back(to_int("ks", piece));
  } else if (key == "distances" || key == "ds") {
    spec.distances.clear();
    for (const auto& piece : list)
      spec.distances.push_back(to_int("distances", piece));
  } else if (key == "placement" || key == "placements") {
    spec.placements = list;
  } else if (key == "targets") {
    spec.targets = list;
  } else if (key == "schedule") {
    spec.schedule = value;
  } else if (key == "crash") {
    spec.crash = value;
  } else if (key == "capture") {
    spec.capture = value;
  } else if (key == "collect") {
    spec.collect = value;
  } else if (key == "trials") {
    spec.trials = to_int("trials", value);
  } else if (key == "seed") {
    spec.seed = to_uint("seed", value);
  } else if (key == "time_cap") {
    spec.time_cap = to_int("time_cap", value);
  } else if (key == "columns") {
    spec.columns = list;
  } else {
    bad("unknown scenario key '" + key + "'");
  }
}

ScenarioSpec spec_from_json_line(const std::string& line) {
  ScenarioSpec spec;
  JsonLineParser parser(line);
  for (const auto& [key, value] : parser.parse_object()) {
    std::vector<std::string> list;
    std::string scalar;
    if (value.kind == JsonValue::Kind::kArray) {
      for (const JsonValue& item : value.array)
        list.push_back(json_scalar_to_text(key, item));
    } else {
      scalar = json_scalar_to_text(key, value);
      list = {scalar};
    }
    assign_field(spec, key, scalar, list);
  }
  return spec;
}

}  // namespace

std::uint64_t hash_text(const std::string& text) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (const char ch : text) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

void ScenarioSpec::validate() const {
  if (strategies.empty()) bad("scenario '" + name + "': no strategies");
  if (ks.empty()) bad("scenario '" + name + "': empty k grid");
  if (distances.empty()) bad("scenario '" + name + "': empty distance grid");
  if (trials < 1) bad("scenario '" + name + "': trials must be >= 1");
  if (time_cap < 0) bad("scenario '" + name + "': time_cap must be >= 0");
  for (const std::int64_t k : ks) {
    // The engines take k as int; reject rather than silently truncate.
    if (k < 1 || k > std::numeric_limits<int>::max()) {
      bad("scenario '" + name + "': k must be in [1, " +
          std::to_string(std::numeric_limits<int>::max()) + "]");
    }
  }
  for (const std::int64_t d : distances) {
    if (d < 1) bad("scenario '" + name + "': distance must be >= 1");
  }
  if (placements.empty()) bad("scenario '" + name + "': empty placement grid");
  if (targets.empty()) bad("scenario '" + name + "': empty targets grid");
  // Canonicalizing surfaces unknown names, unknown/malformed parameters,
  // and range errors up front rather than mid-sweep.
  for (const std::string& p : placements) (void)canonical_placement_spec(p);
  for (const std::string& t : targets) (void)canonical_targets_spec(t);
  (void)canonical_schedule_spec(schedule);
  (void)canonical_crash_spec(crash);
  (void)canonical_capture_spec(capture);
  if (collect != "first" && collect != "all") {
    bad("scenario '" + name + "': collect must be 'first' or 'all'");
  }
  // Dynamic target processes, dwell capture, and collect-all all need the
  // trial horizon: arrivals are realized over (0, time_cap] and unfound
  // targets censor at the cap.
  if (is_dynamic() && time_cap == 0) {
    bad("scenario '" + name +
        "': dynamic targets / dwell capture / collect=all require a finite "
        "time_cap");
  }
  const bool step_only_targets = [&] {
    for (const std::string& t : targets) {
      if (is_step_only_targets(t)) return true;
    }
    return false;
  }();
  // A fixed schedule carries one delay per agent; every k in the grid must
  // match it, or FixedStart would throw mid-sweep.
  if (const std::size_t delays = fixed_schedule_delay_count(schedule);
      delays > 0) {
    for (const std::int64_t k : ks) {
      if (static_cast<std::size_t>(k) != delays) {
        bad("scenario '" + name + "': fixed schedule has " +
            std::to_string(delays) + " delays but the grid contains k=" +
            std::to_string(k));
      }
    }
  }
  // Building each strategy (at the grid's first k) surfaces unknown names,
  // unknown/malformed parameters, and constructor range errors up front
  // rather than mid-sweep. The unified executor gives EVERY strategy family
  // — segment-, step-, and plane-level — the full environment (schedule,
  // crash, targets), so no per-family axis rejections remain; only the
  // finite-cap requirements below.
  const BuildContext ctx{static_cast<int>(ks.front())};
  for (const std::string& s : strategies) {
    const BuiltStrategy built = Registry::instance().make(s, ctx);
    if (built.is_step() && time_cap == 0) {
      bad("scenario '" + name + "': step-level strategy '" + s +
          "' requires a finite time_cap");
    }
    if (built.is_plane() && time_cap == 0) {
      bad("scenario '" + name + "': plane-level strategy '" + s +
          "' requires a finite time_cap");
    }
    // Per-tick target positions / contact dwell only exist on the lock-step
    // backend, so these axes restrict the whole strategy list.
    if (!built.is_step() && step_only_targets) {
      bad("scenario '" + name + "': targets 'drift' requires step-level "
          "strategies, but '" + s + "' is not");
    }
    if (!built.is_step() && capture_dwell() > 0) {
      bad("scenario '" + name + "': capture 'dwell' requires step-level "
          "strategies, but '" + s + "' is not");
    }
  }
  for (const std::string& column : columns) {
    if (!is_known_column(column)) {
      bad("scenario '" + name + "': unknown column '" + column + "'");
    }
  }
}

std::string ScenarioSpec::canonical() const {
  const auto join = [](const std::vector<std::string>& items) {
    std::string out;
    for (const auto& item : items) {
      if (!out.empty()) out += ", ";
      out += item;
    }
    return out;
  };
  std::vector<std::string> strategy_texts, k_texts, d_texts, p_texts, t_texts;
  for (const auto& s : strategies)
    strategy_texts.push_back(parse_strategy_spec(s).canonical());
  for (const auto k : ks) k_texts.push_back(std::to_string(k));
  for (const auto d : distances) d_texts.push_back(std::to_string(d));
  for (const auto& p : placements)
    p_texts.push_back(parse_strategy_spec(p).canonical());
  for (const auto& t : targets)
    t_texts.push_back(parse_strategy_spec(t).canonical());

  std::ostringstream out;
  out << "name = " << name << "\n"
      << "strategies = " << join(strategy_texts) << "\n"
      << "ks = " << join(k_texts) << "\n"
      << "distances = " << join(d_texts) << "\n"
      << "placements = " << join(p_texts) << "\n"
      << "targets = " << join(t_texts) << "\n"
      << "schedule = " << parse_strategy_spec(schedule).canonical() << "\n"
      << "crash = " << parse_strategy_spec(crash).canonical() << "\n"
      << "capture = " << parse_strategy_spec(capture).canonical() << "\n"
      << "collect = " << collect << "\n"
      << "trials = " << trials << "\n"
      << "seed = " << seed << "\n"
      << "time_cap = " << time_cap << "\n";
  if (!columns.empty()) out << "columns = " << join(columns) << "\n";
  return out.str();
}

bool ScenarioSpec::is_async() const {
  return !is_sync_schedule(schedule) || !is_no_crash(crash);
}

bool ScenarioSpec::is_multi_target() const {
  for (const std::string& t : targets) {
    if (!is_single_targets(t)) return true;
  }
  return false;
}

bool ScenarioSpec::is_dynamic() const {
  if (capture_dwell() > 0 || collect_all()) return true;
  for (const std::string& t : targets) {
    if (is_dynamic_targets(t)) return true;
  }
  return false;
}

sim::Time ScenarioSpec::capture_dwell() const {
  return capture_dwell_ticks(capture);
}

std::vector<ScenarioSpec> parse_spec_text(const std::string& text) {
  std::vector<ScenarioSpec> out;
  ScenarioSpec current;
  bool in_block = false;
  int line_number = 0;

  const auto flush = [&] {
    if (in_block) out.push_back(current);
    current = ScenarioSpec{};
    in_block = false;
  };

  std::istringstream lines(text);
  std::string raw;
  while (std::getline(lines, raw)) {
    ++line_number;
    const std::string line = trim(raw);
    try {
      if (line.empty()) {
        flush();
        continue;
      }
      if (line[0] == '#') continue;
      if (line[0] == '{') {
        flush();
        out.push_back(spec_from_json_line(line));
        continue;
      }
      const std::size_t eq = line.find('=');
      if (eq == std::string::npos) {
        bad("expected 'key = value' or a JSON object");
      }
      const std::string key = trim(line.substr(0, eq));
      const std::string value = trim(line.substr(eq + 1));
      assign_field(current, key, value, split_top_level(value, ','));
      in_block = true;
    } catch (const std::invalid_argument& e) {
      bad("scenario spec line " + std::to_string(line_number) + ": " +
          e.what());
    }
  }
  flush();
  return out;
}

std::vector<ScenarioSpec> parse_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) bad("cannot open scenario spec file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_spec_text(buffer.str());
}

ScenarioSpec spec_from_cli(util::Cli& cli) {
  ScenarioSpec spec;
  spec.name = cli.get_string("scenario-name", spec.name);
  const std::string strategies = cli.get_string("strategies", "");
  if (!strategies.empty()) {
    // ';' separation never collides with parameter lists; plain ',' works
    // too because the split respects parentheses.
    spec.strategies = split_top_level(
        strategies, strategies.find(';') != std::string::npos ? ';' : ',');
  }
  spec.ks = cli.get_int_list("ks", spec.ks);
  spec.distances = cli.get_int_list("ds", spec.distances);
  const std::string placements = cli.get_string("placement", "");
  if (!placements.empty()) {
    spec.placements = split_top_level(placements, ',');
  }
  const std::string targets = cli.get_string("targets", "");
  if (!targets.empty()) {
    spec.targets = split_top_level(targets, ',');
  }
  spec.schedule = cli.get_string("schedule", spec.schedule);
  spec.crash = cli.get_string("crash", spec.crash);
  spec.capture = cli.get_string("capture", spec.capture);
  spec.collect = cli.get_string("collect", spec.collect);
  spec.trials = cli.get_int("trials", spec.trials);
  // Parsed as uint64 like the spec-file forms — get_int would reject the
  // upper half of the seed space.
  spec.seed = detail::parse_uint64(
      "seed", cli.get_string("seed", std::to_string(spec.seed)));
  spec.time_cap = cli.get_int("time-cap", spec.time_cap);
  const std::string columns = cli.get_string("columns", "");
  if (!columns.empty()) spec.columns = split_top_level(columns, ',');
  return spec;
}

}  // namespace ants::scenario
