// Registration of every strategy shipped in src/core and src/baselines.
//
// Static-initializer self-registration is fragile under static linking (the
// linker may drop a translation unit whose only effect is a global ctor), so
// the registry pulls this function in lazily from Registry::instance()
// instead — same one-name-one-entry contract, no --whole-archive tricks.
// tests/scenario_registry_test.cpp asserts this list stays complete.
#include "baselines/ablation_variants.h"
#include "baselines/biased_walk.h"
#include "baselines/levy.h"
#include "baselines/random_walk.h"
#include "baselines/sector_sweep.h"
#include "baselines/spiral_single.h"
#include "core/approx_k.h"
#include "core/harmonic.h"
#include "core/hedged.h"
#include "core/known_k.h"
#include "core/lowmem.h"
#include "core/single_shot.h"
#include "core/uniform.h"
#include "plane/strategies.h"
#include "scenario/registry.h"

#include <stdexcept>

namespace ants::scenario {

namespace {

BuiltStrategy segment(std::unique_ptr<sim::Strategy> s) {
  BuiltStrategy b;
  b.segment = std::move(s);
  return b;
}

BuiltStrategy step(std::unique_ptr<sim::StepStrategy> s) {
  BuiltStrategy b;
  b.step = std::move(s);
  return b;
}

BuiltStrategy plane_built(std::unique_ptr<plane::PlaneStrategy> s) {
  BuiltStrategy b;
  b.plane = std::move(s);
  return b;
}

core::ApproxMode approx_mode(const std::string& mode) {
  if (mode == "under") return core::ApproxMode::kUnder;
  if (mode == "over") return core::ApproxMode::kOver;
  if (mode == "log-uniform") return core::ApproxMode::kLogUniform;
  throw std::invalid_argument(
      "approx-k: mode must be under|over|log-uniform, got '" + mode + "'");
}

}  // namespace

void register_builtin_strategies(Registry& r) {
  // --- paper algorithms (src/core) ---
  r.add({"known-k",
         "Algorithm A_k (Theorem 3.1): optimal O(D + D^2/k) with k known",
         {{"k_belief", ParamType::kInt, "$k", "agent count each agent assumes"}},
         [](const Params& p, const BuildContext&) {
           return segment(
               std::make_unique<core::KnownKStrategy>(p.get_int("k_belief")));
         }});
  r.add({"uniform",
         "Algorithm A_uniform (Theorem 3.3): O(log^(1+eps) k)-competitive, "
         "no knowledge of k",
         {{"eps", ParamType::kDouble, "0.5", "schedule exponent, eps >= 0"}},
         [](const Params& p, const BuildContext&) {
           return segment(
               std::make_unique<core::UniformStrategy>(p.get_double("eps")));
         }});
  r.add({"harmonic",
         "Algorithm 2 (Theorem 5.1): heavy-tailed trip lengths, "
         "O(D + D^(2+delta)/k) whp",
         {{"delta", ParamType::kDouble, "0.5", "tail exponent, delta > 0"}},
         [](const Params& p, const BuildContext&) {
           return segment(std::make_unique<core::HarmonicStrategy>(
               p.get_double("delta")));
         }});
  r.add({"approx-k",
         "Corollary 3.2: A_k under a rho-approximation of k",
         {{"k_true", ParamType::kInt, "$k", "real agent count the estimates bracket"},
          {"rho", ParamType::kDouble, "2", "approximation factor, rho >= 1"},
          {"mode", ParamType::kString, "log-uniform",
           "estimate model: under|over|log-uniform"}},
         [](const Params& p, const BuildContext&) {
           return segment(std::make_unique<core::ApproxKStrategy>(
               p.get_int("k_true"), p.get_double("rho"),
               approx_mode(p.get_string("mode"))));
         }});
  r.add({"hedged",
         "Hedged search under one-sided k^eps-approximate knowledge "
         "(Theorem 4.2 companion)",
         {{"k_estimate", ParamType::kDouble, "$k", "one-sided estimate k~"},
          {"eps", ParamType::kDouble, "0.5", "estimate looseness, in [0, 1]"}},
         [](const Params& p, const BuildContext&) {
           return segment(std::make_unique<core::HedgedApproxStrategy>(
               p.get_double("k_estimate"), p.get_double("eps")));
         }});
  r.add({"lowmem-uniform",
         "Algorithm 1 on coin-flip arithmetic (section 6 memory remark)",
         {{"eps", ParamType::kDouble, "0.5", "schedule exponent, eps >= 0"}},
         [](const Params& p, const BuildContext&) {
           return segment(std::make_unique<core::LowMemUniformStrategy>(
               p.get_double("eps")));
         }});
  r.add({"lowmem-harmonic",
         "Algorithm 2 on coin-flip arithmetic (section 6 memory remark)",
         {{"delta", ParamType::kDouble, "0.5", "tail exponent, delta > 0"}},
         [](const Params& p, const BuildContext&) {
           return segment(std::make_unique<core::LowMemHarmonicStrategy>(
               p.get_double("delta")));
         }});
  r.add({"sweep-known-k",
         "Single-sweep A_k (section 5 remark): constant success probability, "
         "divergent expectation",
         {{"k_belief", ParamType::kInt, "$k", "agent count each agent assumes"}},
         [](const Params& p, const BuildContext&) {
           return segment(std::make_unique<core::SingleSweepKnownK>(
               p.get_int("k_belief")));
         }});
  r.add({"sweep-uniform",
         "Single-sweep A_uniform (section 5 remark)",
         {{"eps", ParamType::kDouble, "0.5", "schedule exponent, eps >= 0"}},
         [](const Params& p, const BuildContext&) {
           return segment(std::make_unique<core::SingleSweepUniform>(
               p.get_double("eps")));
         }});

  // --- baselines (src/baselines) ---
  r.add({"sector-sweep",
         "Coordinated deterministic sector sweep: the with-coordination "
         "reference",
         {},
         [](const Params&, const BuildContext&) {
           return segment(std::make_unique<baselines::SectorSweepStrategy>());
         }});
  r.add({"spiral",
         "Single-agent square spiral (Baeza-Yates cow-path in 2D); "
         "speed-up 1 for any k",
         {},
         [](const Params&, const BuildContext&) {
           return segment(std::make_unique<baselines::SpiralSingleStrategy>());
         }});
  r.add({"levy",
         "Levy-flight searchers (Reynolds): power-law ballistic flights",
         {{"mu", ParamType::kDouble, "1.5", "tail exponent, mu in (1, 3]"},
          {"loop", ParamType::kBool, "false", "central-place variant"},
          {"scan", ParamType::kInt, "0", "spiral scan time after each flight"}},
         [](const Params& p, const BuildContext&) {
           return segment(std::make_unique<baselines::LevyStrategy>(
               p.get_double("mu"), p.get_bool("loop"),
               static_cast<sim::Time>(p.get_int("scan"))));
         }});
  r.add({"random-walk",
         "k independent simple random walkers (step-level; needs a finite "
         "time cap)",
         {},
         [](const Params&, const BuildContext&) {
           return step(std::make_unique<baselines::RandomWalkStrategy>());
         }});
  r.add({"biased-walk",
         "Outward-biased correlated walk (Harkness-Maroudas stand-in; "
         "step-level, needs a finite time cap)",
         {{"bias", ParamType::kDouble, "0.3", "outward bias, in [0, 1)"},
          {"persistence", ParamType::kDouble, "0.8",
           "repeat-previous-move probability, in [0, 1)"}},
         [](const Params& p, const BuildContext&) {
           return step(std::make_unique<baselines::BiasedWalkStrategy>(
               p.get_double("bias"), p.get_double("persistence")));
         }});

  // --- continuous-plane ports (src/plane, experiment E11) ---
  r.add({"plane-known-k",
         "A_k on the continuous plane (unit speed, sight radius 1); needs a "
         "finite time cap",
         {{"k_belief", ParamType::kInt, "$k", "agent count each agent assumes"}},
         [](const Params& p, const BuildContext&) {
           return plane_built(std::make_unique<plane::PlaneKnownKStrategy>(
               p.get_int("k_belief")));
         }});
  r.add({"plane-uniform",
         "Algorithm 1 on the continuous plane; needs a finite time cap",
         {{"eps", ParamType::kDouble, "0.5", "schedule exponent, eps >= 0"}},
         [](const Params& p, const BuildContext&) {
           return plane_built(std::make_unique<plane::PlaneUniformStrategy>(
               p.get_double("eps")));
         }});
  r.add({"plane-harmonic",
         "Algorithm 2 on the continuous plane; needs a finite time cap",
         {{"delta", ParamType::kDouble, "0.5", "tail exponent, delta > 0"}},
         [](const Params& p, const BuildContext&) {
           return plane_built(std::make_unique<plane::PlaneHarmonicStrategy>(
               p.get_double("delta")));
         }});

  // --- ablation variants ---
  r.add({"known-k-rw-local",
         "A_k with random-walk local search of equal budget (ablation)",
         {{"k_belief", ParamType::kInt, "$k", "agent count each agent assumes"}},
         [](const Params& p, const BuildContext&) {
           return segment(
               std::make_unique<baselines::KnownKRandomLocalStrategy>(
                   p.get_int("k_belief")));
         }});
  r.add({"known-k-no-return",
         "A_k without the return-to-source leg (ablation)",
         {{"k_belief", ParamType::kInt, "$k", "agent count each agent assumes"}},
         [](const Params& p, const BuildContext&) {
           return segment(std::make_unique<baselines::KnownKNoReturnStrategy>(
               p.get_int("k_belief")));
         }});
}

}  // namespace ants::scenario
