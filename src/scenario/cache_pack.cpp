#include "scenario/cache_pack.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "scenario/agg_fields.h"
#include "scenario/artifact.h"
#include "scenario/plan.h"
#include "scenario/sink.h"
#include "util/mmap.h"

namespace ants::scenario {

namespace {

constexpr char kPackMagic[8] = {'A', 'N', 'T', 'S', 'P', 'C', 'K', '\x01'};
constexpr char kRecordMagic[4] = {'P', 'C', 'K', '1'};

std::string pack_path(const std::string& dir) { return dir + "/cache.pack"; }

void append_bytes(std::string* out, const void* data, std::size_t size) {
  out->append(static_cast<const char*>(data), size);
}

void append_u32(std::string* out, std::uint32_t v) {
  append_bytes(out, &v, sizeof v);
}

void append_u64(std::string* out, std::uint64_t v) {
  append_bytes(out, &v, sizeof v);
}

std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

/// One journal record: magic + hash + f64-bits values + CRC of the
/// hash-and-values payload.
std::size_t record_size(std::size_t n_fields) {
  return sizeof kRecordMagic + 8 + 8 * n_fields + 4;
}

std::string serialize_record(std::uint64_t hash,
                             const std::vector<double>& values) {
  std::string buf;
  buf.reserve(record_size(values.size()));
  append_bytes(&buf, kRecordMagic, sizeof kRecordMagic);
  const std::size_t payload_begin = buf.size();
  append_u64(&buf, hash);
  for (double v : values) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    append_u64(&buf, bits);
  }
  append_u32(&buf, detail::crc32(buf.data() + payload_begin,
                                 buf.size() - payload_begin));
  return buf;
}

std::string serialize_header(std::size_t n_fields, const std::string& names) {
  std::string buf;
  append_bytes(&buf, kPackMagic, sizeof kPackMagic);
  const std::size_t crc_begin = buf.size();
  append_u32(&buf, static_cast<std::uint32_t>(cell_format_version()));
  append_u32(&buf, static_cast<std::uint32_t>(n_fields));
  append_u64(&buf, names.size());
  buf += names;
  append_u32(&buf,
             detail::crc32(buf.data() + crc_begin, buf.size() - crc_begin));
  return buf;
}

/// Parses a pack file into `out` (last record wins per hash). Returns false
/// when the file is absent, unreadable, or its header does not describe the
/// running build — callers treat all three as "no pack". Corrupt records
/// are skipped, resynchronizing on the next record magic; `corrupt` counts
/// one per damaged stretch (a torn tail, an interleaved write, a flipped
/// byte each count once, however many bytes they cost).
template <typename Map>
bool parse_pack(const std::string& path, Map* out, std::size_t* corrupt) {
  const std::size_t n_fields = detail::agg_field_count();
  const std::string names = detail::agg_field_names_blob();

  std::unique_ptr<util::MappedFile> map;
  try {
    map = std::make_unique<util::MappedFile>(path);
  } catch (const std::runtime_error&) {
    return false;
  }
  const std::uint8_t* base = map->data();
  const std::size_t size = map->size();

  const std::size_t header_size =
      sizeof kPackMagic + 4 + 4 + 8 + names.size() + 4;
  if (size < header_size) return false;
  if (std::memcmp(base, kPackMagic, sizeof kPackMagic) != 0) return false;
  const std::uint8_t* p = base + sizeof kPackMagic;
  if (load_u32(p) != static_cast<std::uint32_t>(cell_format_version())) {
    return false;
  }
  if (load_u32(p + 4) != n_fields) return false;
  if (load_u64(p + 8) != names.size()) return false;
  if (std::memcmp(p + 16, names.data(), names.size()) != 0) return false;
  const std::uint32_t want_crc = load_u32(base + header_size - 4);
  if (want_crc != detail::crc32(base + sizeof kPackMagic,
                                header_size - sizeof kPackMagic - 4)) {
    return false;
  }

  const std::size_t rec = record_size(n_fields);
  std::size_t off = header_size;
  bool in_garbage = false;
  while (off < size) {
    if (size - off < rec ||
        std::memcmp(base + off, kRecordMagic, sizeof kRecordMagic) != 0) {
      if (!in_garbage && corrupt != nullptr) ++*corrupt;
      in_garbage = true;
      ++off;
      continue;
    }
    const std::uint8_t* payload = base + off + sizeof kRecordMagic;
    const std::size_t payload_size = 8 + 8 * n_fields;
    const std::uint32_t rec_crc = load_u32(payload + payload_size);
    if (rec_crc != detail::crc32(payload, payload_size)) {
      if (!in_garbage && corrupt != nullptr) ++*corrupt;
      in_garbage = true;
      ++off;
      continue;
    }
    in_garbage = false;
    const std::uint64_t hash = load_u64(payload);
    std::vector<double> values(n_fields);
    for (std::size_t f = 0; f < n_fields; ++f) {
      const std::uint64_t bits = load_u64(payload + 8 + 8 * f);
      std::memcpy(&values[f], &bits, sizeof(double));
    }
    (*out)[hash] = std::move(values);
    off += rec;
  }
  return true;
}

std::vector<double> result_values(const CellResult& result) {
  const detail::AggField* fields = detail::agg_fields();
  const std::size_t n_fields = detail::agg_field_count();
  std::vector<double> values(n_fields);
  for (std::size_t f = 0; f < n_fields; ++f) {
    values[f] = fields[f].get(result);
  }
  return values;
}

/// Hash of a per-hash cache file name ("%016llx.cell"), or false.
bool parse_cell_filename(const std::string& name, std::uint64_t* hash) {
  if (name.size() != 16 + 5 || name.substr(16) != ".cell") return false;
  std::uint64_t value = 0;
  for (char c : name.substr(0, 16)) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    value = value << 4 | static_cast<std::uint64_t>(digit);
  }
  *hash = value;
  return true;
}

}  // namespace

PackStats pack_cache_dir(const std::string& dir) {
  std::filesystem::create_directories(dir);
  PackStats stats;

  // Deterministic pack contents: records sorted by hash, existing journal
  // entries folded in first so a fresher .cell file (if both exist) wins.
  std::map<std::uint64_t, std::vector<double>> records;
  parse_pack(pack_path(dir), &records, &stats.corrupt_dropped);

  std::vector<std::string> folded;
  std::vector<std::string> corrupt;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::uint64_t hash = 0;
    if (!parse_cell_filename(entry.path().filename().string(), &hash)) {
      continue;
    }
    CellResult result;
    switch (cache_lookup(dir, hash, &result)) {
      case CacheLookup::kHit:
        records[hash] = result_values(result);
        folded.push_back(entry.path().string());
        break;
      case CacheLookup::kCorrupt:
        ++stats.corrupt_dropped;
        corrupt.push_back(entry.path().string());
        break;
      case CacheLookup::kMiss:
        break;  // raced with a concurrent remove; nothing to fold
    }
  }

  const std::string names = detail::agg_field_names_blob();
  detail::atomic_write(
      pack_path(dir),
      [&](std::ostream& out) {
        const std::string header =
            serialize_header(detail::agg_field_count(), names);
        out.write(header.data(),
                  static_cast<std::streamsize>(header.size()));
        for (const auto& [hash, values] : records) {
          const std::string rec = serialize_record(hash, values);
          out.write(rec.data(), static_cast<std::streamsize>(rec.size()));
        }
      },
      /*binary=*/true);

  for (const std::string& path : folded) std::filesystem::remove(path);
  for (const std::string& path : corrupt) std::filesystem::remove(path);
  stats.packed_cells = records.size();
  stats.folded_files = folded.size();
  return stats;
}

PackedCacheIndex::PackedCacheIndex(const std::string& dir) {
  if (!parse_pack(pack_path(dir), &index_, &corrupt_records_)) {
    index_.clear();
    return;
  }
  fd_ = ::open(pack_path(dir).c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) {
    // Readable but not appendable — fall back to per-hash files entirely
    // rather than serve lookups we could not keep coherent on store.
    index_.clear();
    corrupt_records_ = 0;
    return;
  }
  present_ = true;
}

PackedCacheIndex::~PackedCacheIndex() {
  if (fd_ >= 0) ::close(fd_);
}

bool PackedCacheIndex::load(std::uint64_t hash, CellResult* result) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(hash);
  if (it == index_.end()) return false;
  const detail::AggField* fields = detail::agg_fields();
  CellResult loaded;
  for (std::size_t f = 0; f < it->second.size(); ++f) {
    fields[f].set(loaded, it->second[f]);
  }
  loaded.cell = std::move(result->cell);
  *result = std::move(loaded);
  return true;
}

void PackedCacheIndex::append(std::uint64_t hash, const CellResult& result) {
  std::vector<double> values = result_values(result);
  const std::string rec = serialize_record(hash, values);
  std::lock_guard<std::mutex> lock(mutex_);
  // One write() under O_APPEND: concurrent shard processes interleave at
  // record granularity; a torn tail (crash mid-write) is caught by the
  // record CRC on the next load and skipped.
  const ssize_t written = ::write(fd_, rec.data(), rec.size());
  if (written != static_cast<ssize_t>(rec.size())) {
    throw std::runtime_error("cache pack: append failed");
  }
  index_[hash] = std::move(values);
}

}  // namespace ants::scenario
