#include "scenario/artifact.h"

#include <cstring>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "scenario/agg_fields.h"

namespace ants::scenario {

namespace detail {

namespace {

// Table-driven CRC-32 (polynomial 0xEDB88320, the reflected IEEE form).
// Built once at first use; the table is 1 KiB and the loop is fast enough
// for per-section checksums — the artifacts are read via mmap, so the CRC
// pass is the only full scan a reader ever does.
struct Crc32Table {
  std::uint32_t entries[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) noexcept {
  static const Crc32Table table;
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table.entries[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace detail

namespace {

constexpr char kMagic[8] = {'A', 'N', 'T', 'S', 'H', 'R', 'D', '\x01'};

// The in-memory integer widths below are fixed by the format, not by the
// host: every multi-byte value is written and read as little-endian bytes.
// The build targets little-endian x86 (the SIMD batch executor already
// assumes it), so the append/load helpers are plain memcpy.

void append_bytes(std::string* out, const void* data, std::size_t size) {
  out->append(static_cast<const char*>(data), size);
}

void append_u32(std::string* out, std::uint32_t v) {
  append_bytes(out, &v, sizeof v);
}

void append_u64(std::string* out, std::uint64_t v) {
  append_bytes(out, &v, sizeof v);
}

std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

[[noreturn]] void bad_artifact(const std::string& path,
                               const std::string& what) {
  throw std::invalid_argument("shard artifact " + path + ": " + what);
}

}  // namespace

bool is_binary_artifact(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[sizeof kMagic];
  if (!in.read(magic, sizeof magic)) return false;
  return std::memcmp(magic, kMagic, sizeof kMagic) == 0;
}

void write_binary_artifact(const std::string& path, const ShardHeader& header,
                           const std::vector<ShardEntry>& entries,
                           const std::string* metrics_line) {
  const detail::AggField* fields = detail::agg_fields();
  const std::size_t n_fields = detail::agg_field_count();
  const std::string names = detail::agg_field_names_blob();
  const std::string metrics = metrics_line != nullptr ? *metrics_line : "";
  const std::size_t n = entries.size();

  std::string buf;
  buf.reserve(sizeof kMagic + 128 + header.spec_text.size() +
              metrics.size() + names.size() + n * (8 * (n_fields + 1) + 1) +
              16);
  append_bytes(&buf, kMagic, sizeof kMagic);

  // Meta section (CRC'd from just past the magic).
  const std::size_t meta_begin = buf.size();
  append_u32(&buf, static_cast<std::uint32_t>(header.format_version));
  append_u32(&buf, static_cast<std::uint32_t>(n_fields));
  append_u64(&buf, header.spec_hash);
  append_u64(&buf, header.shard);
  append_u64(&buf, header.n_shards);
  append_u64(&buf, header.n_cells_total);
  append_u64(&buf, n);
  append_u64(&buf, header.spec_text.size());
  append_u64(&buf, metrics.size());
  append_u64(&buf, names.size());
  buf += header.spec_text;
  buf += metrics;
  buf += names;
  append_u32(&buf, detail::crc32(buf.data() + meta_begin,
                                 buf.size() - meta_begin));
  buf.append((8 - buf.size() % 8) % 8, '\0');

  // Columns section: cell_index, one f64-bits array per aggregate field
  // in table order, from_cache flags, then the section CRC.
  const std::size_t columns_begin = buf.size();
  for (const ShardEntry& entry : entries) {
    append_u64(&buf, entry.cell_index);
  }
  for (std::size_t f = 0; f < n_fields; ++f) {
    for (const ShardEntry& entry : entries) {
      const double v = fields[f].get(entry.result);
      std::uint64_t bits;
      std::memcpy(&bits, &v, sizeof bits);
      append_u64(&buf, bits);
    }
  }
  for (const ShardEntry& entry : entries) {
    buf += static_cast<char>(entry.result.from_cache ? 1 : 0);
  }
  append_u32(&buf, detail::crc32(buf.data() + columns_begin,
                                 buf.size() - columns_begin));

  detail::atomic_write(
      path, [&](std::ostream& out) { out.write(buf.data(), buf.size()); },
      /*binary=*/true);
}

BinaryArtifactReader::BinaryArtifactReader(const std::string& path)
    : map_(path) {
  const std::uint8_t* base = map_.data();
  const std::size_t size = map_.size();

  // Fixed-width meta prelude: magic + 2 u32 + 8 u64.
  constexpr std::size_t kPrelude = sizeof kMagic + 2 * 4 + 8 * 8;
  if (size < kPrelude) bad_artifact(path, "truncated (no header)");
  if (std::memcmp(base, kMagic, sizeof kMagic) != 0) {
    bad_artifact(path, "bad magic (not a binary shard artifact)");
  }

  const std::uint8_t* p = base + sizeof kMagic;
  header_.format_version = static_cast<int>(load_u32(p));
  n_fields_ = load_u32(p + 4);
  header_.spec_hash = load_u64(p + 8);
  header_.shard = static_cast<std::size_t>(load_u64(p + 16));
  header_.n_shards = static_cast<std::size_t>(load_u64(p + 24));
  header_.n_cells_total = static_cast<std::size_t>(load_u64(p + 32));
  n_cells_ = static_cast<std::size_t>(load_u64(p + 40));
  const std::uint64_t spec_size = load_u64(p + 48);
  const std::uint64_t metrics_size = load_u64(p + 56);
  const std::uint64_t names_size = load_u64(p + 64);

  // Bounds before CRC: the sizes come from the (not yet verified) header,
  // so clamp against the file before touching the bytes they describe.
  const std::size_t meta_end_unpadded =
      kPrelude + spec_size + metrics_size + names_size + 4;
  if (meta_end_unpadded < kPrelude /* overflow */ ||
      meta_end_unpadded > size) {
    bad_artifact(path, "truncated (meta section exceeds file)");
  }
  const std::size_t meta_crc_off = meta_end_unpadded - 4;
  const std::uint32_t want_meta_crc = load_u32(base + meta_crc_off);
  const std::uint32_t got_meta_crc = detail::crc32(
      base + sizeof kMagic, meta_crc_off - sizeof kMagic);
  if (want_meta_crc != got_meta_crc) {
    bad_artifact(path, "meta section CRC mismatch");
  }

  const std::uint8_t* text = base + kPrelude;
  header_.spec_text.assign(reinterpret_cast<const char*>(text), spec_size);
  metrics_line_.assign(reinterpret_cast<const char*>(text + spec_size),
                       metrics_size);
  const std::string names(
      reinterpret_cast<const char*>(text + spec_size + metrics_size),
      names_size);
  if (n_fields_ != detail::agg_field_count() ||
      names != detail::agg_field_names_blob()) {
    bad_artifact(path,
                 "aggregate field set mismatch — artifact written by an "
                 "incompatible build, regenerate it");
  }

  columns_off_ = (meta_end_unpadded + 7) / 8 * 8;
  const std::size_t columns_size =
      n_cells_ * 8 * (1 + n_fields_) + n_cells_ + 4;
  if (columns_off_ + columns_size != size) {
    bad_artifact(path, "truncated (columns section size mismatch)");
  }
  const std::uint32_t want_cols_crc =
      load_u32(base + size - 4);
  const std::uint32_t got_cols_crc =
      detail::crc32(base + columns_off_, columns_size - 4);
  if (want_cols_crc != got_cols_crc) {
    bad_artifact(path, "columns section CRC mismatch (corrupt or truncated)");
  }
}

std::uint64_t BinaryArtifactReader::cell_index(std::size_t i) const noexcept {
  return load_u64(map_.data() + columns_off_ + i * 8);
}

double BinaryArtifactReader::value(std::size_t field,
                                   std::size_t i) const noexcept {
  const std::uint64_t bits =
      load_u64(map_.data() + columns_off_ + (field + 1) * n_cells_ * 8 +
               i * 8);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

bool BinaryArtifactReader::from_cache(std::size_t i) const noexcept {
  return map_.data()[columns_off_ + (1 + n_fields_) * n_cells_ * 8 + i] != 0;
}

ShardEntry BinaryArtifactReader::entry(std::size_t i) const {
  const detail::AggField* fields = detail::agg_fields();
  ShardEntry out;
  out.cell_index = static_cast<std::size_t>(cell_index(i));
  for (std::size_t f = 0; f < n_fields_; ++f) {
    fields[f].set(out.result, value(f, i));
  }
  out.result.from_cache = from_cache(i);
  return out;
}

ShardHeader read_any_artifact(const std::string& path,
                              std::vector<ShardEntry>* entries,
                              std::string* metrics_line) {
  if (!is_binary_artifact(path)) {
    return read_shard_artifact(path, entries, metrics_line);
  }
  BinaryArtifactReader reader(path);
  if (entries != nullptr) {
    entries->clear();
    entries->reserve(reader.n_cells());
    for (std::size_t i = 0; i < reader.n_cells(); ++i) {
      entries->push_back(reader.entry(i));
    }
  }
  if (metrics_line != nullptr) *metrics_line = reader.metrics_line();
  return reader.header();
}

}  // namespace ants::scenario
