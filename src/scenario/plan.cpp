#include "scenario/plan.h"

#include <sstream>
#include <utility>

#include "rng/splitmix64.h"
#include "scenario/environment.h"
#include "scenario/registry.h"
#include "scenario/text.h"

namespace ants::scenario {

namespace {

/// v6: targets became a per-trial PROCESS (poisson/drift windows, dwell
/// capture, collect-all) — capture/collect joined the cell key and the
/// target-process aggregates joined the cache record. v5:
/// cache_store/artifact records gained the shard pipeline's exact double
/// serialization and per-cell mid-run persistence. v4: plane-level
/// strategies run under the full environment (schedule/crash/targets)
/// through the unified executor. v3: the target set became a per-cell axis
/// and mean_first_target joined the cache record.
constexpr int kCellFormatVersion = 6;

std::uint64_t cell_hash(const ScenarioSpec& spec, const std::string& strategy,
                        std::int64_t k, std::int64_t distance,
                        const std::string& placement,
                        const std::string& targets,
                        const std::string& schedule,
                        const std::string& crash,
                        const std::string& capture) {
  std::ostringstream key;
  key << "v" << kCellFormatVersion << "|" << strategy << "|k=" << k
      << "|d=" << distance << "|placement=" << placement
      << "|targets=" << targets << "|schedule=" << schedule
      << "|crash=" << crash << "|capture=" << capture
      << "|collect=" << spec.collect << "|trials=" << spec.trials
      << "|seed=" << spec.seed << "|cap=" << spec.time_cap;
  return hash_text(key.str());
}

}  // namespace

int cell_format_version() noexcept { return kCellFormatVersion; }

std::vector<Cell> flatten(const ScenarioSpec& spec) {
  spec.validate();
  const std::string schedule = canonical_schedule_spec(spec.schedule);
  const std::string crash = canonical_crash_spec(spec.crash);
  const std::string capture = canonical_capture_spec(spec.capture);
  std::vector<std::string> placements;
  for (const std::string& p : spec.placements) {
    placements.push_back(canonical_placement_spec(p));
  }
  std::vector<std::string> targets;
  for (const std::string& t : spec.targets) {
    targets.push_back(canonical_targets_spec(t));
  }

  std::vector<Cell> cells;
  cells.reserve(spec.strategies.size() * spec.ks.size() *
                spec.distances.size() * placements.size() * targets.size());
  for (std::size_t si = 0; si < spec.strategies.size(); ++si) {
    const StrategySpec parsed = parse_strategy_spec(spec.strategies[si]);
    const std::string canonical = parsed.canonical();
    for (const std::int64_t k : spec.ks) {
      // The display name can depend on k ("$k" defaults), the distance,
      // placement, and targets cannot — build once per (strategy, k).
      const BuildContext ctx{static_cast<int>(k)};
      const std::string display =
          Registry::instance().make(parsed, ctx).display_name();
      for (const std::int64_t d : spec.distances) {
        for (std::size_t pi = 0; pi < placements.size(); ++pi) {
          for (std::size_t ti = 0; ti < targets.size(); ++ti) {
            Cell cell;
            cell.strategy_index = si;
            cell.strategy_spec = canonical;
            cell.strategy_name = display;
            cell.placement_index = pi;
            cell.placement_spec = placements[pi];
            cell.targets_index = ti;
            cell.targets_spec = targets[ti];
            cell.k = k;
            cell.distance = d;
            cell.seed = rng::mix_seed(
                spec.seed, rng::mix_seed(static_cast<std::uint64_t>(k),
                                         static_cast<std::uint64_t>(d)));
            cell.hash = cell_hash(spec, canonical, k, d, placements[pi],
                                  targets[ti], schedule, crash, capture);
            cells.push_back(std::move(cell));
          }
        }
      }
    }
  }
  return cells;
}

std::uint64_t hash_spec(const ScenarioSpec& spec) {
  return hash_text("v" + std::to_string(kCellFormatVersion) + "|" +
                   spec.canonical());
}

SweepPlan make_plan(const ScenarioSpec& spec) {
  SweepPlan plan;
  plan.spec = spec;
  plan.cells = flatten(spec);
  plan.spec_hash = hash_spec(spec);
  return plan;
}

std::size_t shard_of_cell(std::size_t cell_index,
                          std::size_t n_shards) noexcept {
  return n_shards == 0 ? 0 : cell_index % n_shards + 1;
}

std::vector<std::size_t> shard_cell_indices(const SweepPlan& plan,
                                            std::size_t shard,
                                            std::size_t n_shards) {
  if (n_shards == 0) detail::bad("shard split: n_shards must be >= 1");
  if (shard < 1 || shard > n_shards) {
    detail::bad("shard split: shard " + std::to_string(shard) +
                " outside [1, " + std::to_string(n_shards) + "]");
  }
  std::vector<std::size_t> indices;
  indices.reserve(plan.cells.size() / n_shards + 1);
  for (std::size_t i = shard - 1; i < plan.cells.size(); i += n_shards) {
    indices.push_back(i);
  }
  return indices;
}

}  // namespace ants::scenario
