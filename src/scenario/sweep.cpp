#include "scenario/sweep.h"

#include <atomic>
#include <map>
#include <sstream>
#include <utility>

#include "rng/splitmix64.h"
#include "scenario/registry.h"
#include "scenario/sink.h"
#include "sim/engine.h"
#include "sim/placement.h"
#include "sim/step_engine.h"
#include "util/thread_pool.h"

namespace ants::scenario {

namespace {

/// Bump when the cell execution or cache format changes in any way that
/// invalidates previously cached aggregates.
constexpr int kCellFormatVersion = 1;

std::uint64_t cell_hash(const ScenarioSpec& spec, const std::string& strategy,
                        std::int64_t k, std::int64_t distance) {
  std::ostringstream key;
  key << "v" << kCellFormatVersion << "|" << strategy << "|k=" << k
      << "|d=" << distance << "|placement=" << spec.placement
      << "|trials=" << spec.trials << "|seed=" << spec.seed
      << "|cap=" << spec.time_cap;
  return hash_text(key.str());
}

}  // namespace

std::vector<Cell> flatten(const ScenarioSpec& spec) {
  spec.validate();
  std::vector<Cell> cells;
  cells.reserve(spec.strategies.size() * spec.ks.size() *
                spec.distances.size());
  for (std::size_t si = 0; si < spec.strategies.size(); ++si) {
    const StrategySpec parsed = parse_strategy_spec(spec.strategies[si]);
    const std::string canonical = parsed.canonical();
    for (const std::int64_t k : spec.ks) {
      // The display name can depend on k ("$k" defaults), the distance
      // cannot — build once per (strategy, k).
      const BuildContext ctx{static_cast<int>(k)};
      const std::string display =
          Registry::instance().make(parsed, ctx).display_name();
      for (const std::int64_t d : spec.distances) {
        Cell cell;
        cell.strategy_index = si;
        cell.strategy_spec = canonical;
        cell.strategy_name = display;
        cell.k = k;
        cell.distance = d;
        cell.seed = rng::mix_seed(
            spec.seed, rng::mix_seed(static_cast<std::uint64_t>(k),
                                     static_cast<std::uint64_t>(d)));
        cell.hash = cell_hash(spec, canonical, k, d);
        cells.push_back(std::move(cell));
      }
    }
  }
  return cells;
}

std::vector<CellResult> run_sweep(const ScenarioSpec& spec,
                                  const SweepOptions& opt) {
  const std::vector<Cell> cells = flatten(spec);
  const auto n_cells = cells.size();
  const auto trials = static_cast<std::size_t>(spec.trials);

  std::vector<CellResult> results(n_cells);
  for (std::size_t i = 0; i < n_cells; ++i) results[i].cell = cells[i];

  // Cache pass: cells whose aggregates are already on disk never re-run.
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < n_cells; ++i) {
    if (!opt.cache_dir.empty() &&
        cache_load(opt.cache_dir, cells[i].hash, &results[i].stats)) {
      results[i].from_cache = true;
    } else {
      pending.push_back(i);
    }
  }
  if (pending.empty()) return results;

  // Strategies are built once per (strategy, k) — cells along the distance
  // grid share the object — and read-only shared across scheduler threads,
  // same as sim::run_trials shares its strategy.
  std::map<std::pair<std::size_t, std::int64_t>, BuiltStrategy> by_sk;
  std::vector<const BuiltStrategy*> built(n_cells, nullptr);
  for (const std::size_t i : pending) {
    const auto key = std::make_pair(cells[i].strategy_index, cells[i].k);
    auto it = by_sk.find(key);
    if (it == by_sk.end()) {
      it = by_sk
               .emplace(key, Registry::instance().make(
                                 cells[i].strategy_spec,
                                 BuildContext{static_cast<int>(cells[i].k)}))
               .first;
    }
    built[i] = &it->second;
  }

  const sim::Placement placement = sim::placement_by_name(spec.placement);
  sim::EngineConfig engine_config;
  engine_config.time_cap = spec.effective_time_cap();

  std::vector<std::vector<double>> times(n_cells);
  for (const std::size_t i : pending) times[i].resize(trials);
  std::vector<std::atomic<std::int64_t>> found(n_cells);

  // The flat work list is every trial of every pending cell — cells overlap
  // instead of serializing on per-cell barriers. The (cell, trial) mapping
  // is index arithmetic, not a materialized pair vector: huge sweeps must
  // not pay O(cells * trials) memory before any work runs.
  util::parallel_for(
      pending.size() * trials,
      [&](std::size_t item) {
        const std::size_t ci = pending[item / trials];
        const std::size_t trial = item % trials;
        const Cell& cell = cells[ci];
        rng::Rng trial_rng(rng::mix_seed(cell.seed, trial));
        const grid::Point treasure = placement(trial_rng, cell.distance);
        sim::SearchResult r;
        if (built[ci]->is_step()) {
          r = sim::run_step_search(*built[ci]->step,
                                   static_cast<int>(cell.k), treasure,
                                   trial_rng, engine_config.time_cap);
        } else {
          r = sim::run_search(*built[ci]->segment, static_cast<int>(cell.k),
                              treasure, trial_rng, engine_config);
        }
        times[ci][trial] = static_cast<double>(r.time);
        if (r.found) found[ci].fetch_add(1, std::memory_order_relaxed);
      },
      opt.threads);

  for (const std::size_t i : pending) {
    results[i].stats =
        sim::make_run_stats(std::move(times[i]), found[i].load(),
                            cells[i].distance, static_cast<int>(cells[i].k));
    if (!opt.cache_dir.empty()) {
      cache_store(opt.cache_dir, cells[i].hash, results[i].stats);
    }
  }
  return results;
}

}  // namespace ants::scenario
