#include "scenario/sweep.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "rng/splitmix64.h"
#include "scenario/artifact.h"
#include "scenario/cache_pack.h"
#include "scenario/environment.h"
#include "scenario/registry.h"
#include "scenario/sink.h"
#include "scenario/text.h"
#include "sim/batch/batch.h"
#include "sim/trial.h"
#include "telemetry/run_telemetry.h"
#include "util/format.h"
#include "util/thread_pool.h"

namespace ants::scenario {

namespace {

/// Executes `cells` (any subset of a plan, in any order) and returns the
/// parallel CellResult vector. The shared core of run_sweep (all cells) and
/// run_shard (one shard's cells). `progress_prefix` is prepended to every
/// progress line ("shard i/N " for sharded runs, empty otherwise); done/total
/// counts are local to `cells`.
std::vector<CellResult> run_cells(const ScenarioSpec& spec,
                                  const std::vector<Cell>& cells,
                                  const SweepOptions& opt,
                                  const std::string& progress_prefix) {
  const auto n_cells = cells.size();
  const auto trials = static_cast<std::size_t>(spec.trials);
  const bool async = spec.is_async();
  telemetry::RunTelemetry* tel = opt.telemetry;

  std::mutex progress_mutex;
  std::size_t completed = 0;
  const std::int64_t run_t0_us = telemetry::now_us();
  std::ostream* progress_out =
      opt.progress_stream != nullptr ? opt.progress_stream : &std::cerr;
  const auto report_cell = [&](const Cell& cell, const char* how) {
    if (!opt.progress) return;
    // Count under the print lock so the [n/N] indices are monotone in the
    // output even when cells finish simultaneously.
    const std::lock_guard<std::mutex> lock(progress_mutex);
    ++completed;
    // Elapsed / rate / ETA ride at the END of the line: the prefix through
    // the done|cached token is a stable contract (tests parse it), the tail
    // is advisory. The ETA extrapolates the observed completion rate, which
    // assumes the remaining cells cost like the finished ones.
    const double elapsed_s =
        static_cast<double>(telemetry::now_us() - run_t0_us) / 1e6;
    const double rate =
        static_cast<double>(completed) / std::max(elapsed_s, 1e-9);
    const double eta_s = static_cast<double>(n_cells - completed) / rate;
    char tail[96];
    std::snprintf(tail, sizeof(tail),
                  " elapsed=%.1fs rate=%.1f/s eta=%.1fs", elapsed_s, rate,
                  eta_s);
    *progress_out << "progress: " << progress_prefix << "[" << completed
                  << "/" << n_cells << "] " << spec.name << " "
                  << cell.strategy_name << " k=" << cell.k
                  << " D=" << cell.distance
                  << " placement=" << cell.placement_spec << " " << how
                  << tail << "\n";
  };

  std::vector<CellResult> results(n_cells);
  for (std::size_t i = 0; i < n_cells; ++i) results[i].cell = cells[i];

  // Cells finished so far (cached or computed) — drives the telemetry
  // heartbeat's done/total, which must not share the progress counter (that
  // one only advances when progress printing is on).
  std::atomic<std::uint64_t> cells_done{0};

  // Packed-index cache front end: when the cache_dir has been compacted
  // (`search_lab cache pack`), warm lookups hit an in-memory map loaded
  // once from the mmap'ed journal instead of an open+parse per cell. The
  // per-hash files remain the fallback on index misses, so a packed and an
  // unpacked cache_dir serve byte-identical results. Torn journal records
  // skipped during the load surface as cache_corrupt telemetry — same
  // signal as a corrupt per-hash file.
  std::unique_ptr<PackedCacheIndex> pack;
  if (!opt.cache_dir.empty()) {
    pack = std::make_unique<PackedCacheIndex>(opt.cache_dir);
    if (!pack->present()) pack.reset();
    if (pack != nullptr && tel != nullptr && pack->corrupt_records() > 0) {
      tel->record_cache_corrupt(pack->corrupt_records());
    }
  }

  // Cache pass: cells whose aggregates are already on disk never re-run —
  // also how a killed shard resumes, since finished cells persist as the
  // sweep runs (see finalize_cell below). A corrupt per-hash entry (torn
  // bytes, missing field) reads as a miss — the cell recomputes and the
  // overwrite heals the cache — but is counted separately: a corruption
  // rate is an operational signal a plain miss is not.
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < n_cells; ++i) {
    bool hit = false;
    if (!opt.cache_dir.empty()) {
      if (pack != nullptr && pack->load(cells[i].hash, &results[i])) {
        hit = true;
      } else {
        const CacheLookup lookup =
            cache_lookup(opt.cache_dir, cells[i].hash, &results[i]);
        hit = lookup == CacheLookup::kHit;
        if (lookup == CacheLookup::kCorrupt && tel != nullptr) {
          tel->record_cache_corrupt();
        }
      }
    }
    if (hit) {
      results[i].from_cache = true;
      report_cell(cells[i], "cached");
      if (tel != nullptr) {
        tel->record_cache_hit();
        tel->cell_end(i, cells[i].strategy_name, cells[i].k,
                      cells[i].distance, /*cached=*/true, /*duration_us=*/0,
                      /*trials=*/0, cells_done.fetch_add(1) + 1, n_cells);
      }
    } else {
      if (tel != nullptr && !opt.cache_dir.empty()) tel->record_cache_miss();
      pending.push_back(i);
    }
  }
  if (pending.empty()) return results;

  // Strategies are built once per (strategy, k) — cells along the distance
  // and placement grids share the object — and read-only shared across
  // scheduler threads, same as sim::run_trials shares its strategy.
  std::map<std::pair<std::size_t, std::int64_t>, BuiltStrategy> by_sk;
  std::vector<const BuiltStrategy*> built(n_cells, nullptr);
  for (const std::size_t i : pending) {
    const auto key = std::make_pair(cells[i].strategy_index, cells[i].k);
    auto it = by_sk.find(key);
    if (it == by_sk.end()) {
      it = by_sk
               .emplace(key, Registry::instance().make(
                                 cells[i].strategy_spec,
                                 BuildContext{static_cast<int>(cells[i].k)}))
               .first;
    }
    built[i] = &it->second;
  }

  // Placement policies, target processes, schedule, and crash model are
  // stateless draws from the trial rng — one shared instance per spec is
  // thread-safe. Target processes compose the placement policy (grid points
  // or plane angles) with the cell's target-process spec, so they are
  // compiled per (placement, targets) pair and per substrate — a paired
  // grid-vs-plane spec fills both sides of the same TargetProcess slot.
  const std::size_t n_targets = spec.targets.size();
  std::vector<sim::Placement> placements(spec.placements.size());
  std::vector<sim::TargetProcess> target_processes(spec.placements.size() *
                                                   n_targets);
  std::vector<std::function<double(rng::Rng&)>> plane_angles(
      spec.placements.size());
  for (const std::size_t i : pending) {
    const Cell& cell = cells[i];
    const std::size_t di = cell.placement_index * n_targets +
                           cell.targets_index;
    if (built[i]->is_plane()) {
      if (!plane_angles[cell.placement_index]) {
        plane_angles[cell.placement_index] =
            make_plane_angle(cell.placement_spec);
      }
      if (!target_processes[di].plane) {
        target_processes[di].plane =
            make_plane_targets(cell.targets_spec,
                               plane_angles[cell.placement_index])
                .plane;
      }
      continue;
    }
    if (!placements[cell.placement_index]) {
      placements[cell.placement_index] = make_placement(cell.placement_spec);
    }
    if (!target_processes[di].grid) {
      target_processes[di].grid =
          make_targets(cell.targets_spec, placements[cell.placement_index])
              .grid;
    }
  }
  const std::unique_ptr<sim::StartSchedule> schedule =
      make_schedule(spec.schedule);
  const std::unique_ptr<sim::CrashModel> crashes = make_crash(spec.crash);

  sim::EngineConfig engine_config;
  engine_config.time_cap = spec.effective_time_cap();

  // Target-process aggregates accumulate per trial into trial-indexed slots
  // and are reduced in trial order in finalize_cell — atomic double sums
  // would make the means depend on scheduling and break the thread-count
  // byte-identity contract.
  const bool dynamic = spec.is_dynamic();
  const bool collect_all = spec.collect_all();
  const sim::Time capture_dwell = spec.capture_dwell();
  constexpr std::size_t kSlots = CellResult::kTargetTimeSlots;

  std::vector<std::vector<double>> times(n_cells);
  std::vector<std::vector<double>> from_last(async ? n_cells : 0);
  std::vector<std::vector<double>> crashed(async ? n_cells : 0);
  std::vector<std::vector<double>> last_starts(async ? n_cells : 0);
  std::vector<std::vector<double>> spawned(dynamic ? n_cells : 0);
  std::vector<std::vector<double>> found_count(dynamic ? n_cells : 0);
  std::vector<std::vector<double>> fbv(dynamic ? n_cells : 0);
  std::vector<std::vector<double>> slot_times(collect_all ? n_cells : 0);
  for (const std::size_t i : pending) {
    times[i].resize(trials);
    if (async) {
      from_last[i].resize(trials);
      crashed[i].resize(trials);
      last_starts[i].resize(trials);
    }
    if (dynamic) {
      spawned[i].resize(trials);
      found_count[i].resize(trials);
      fbv[i].resize(trials);
    }
    if (collect_all) slot_times[i].assign(trials * kSlots, -1.0);
  }
  std::vector<std::atomic<std::int64_t>> found(n_cells);
  std::vector<std::atomic<std::int64_t>> first_target_sum(n_cells);
  std::vector<std::atomic<std::int64_t>> remaining(n_cells);
  for (const std::size_t i : pending) {
    remaining[i].store(static_cast<std::int64_t>(trials));
  }
  // Per-cell wall clock (telemetry only): the worker that runs a cell's
  // FIRST trial CASes its start timestamp in (and emits cell_start); the
  // worker that finishes its LAST trial reads it back for the duration.
  // Cells overlap arbitrarily under the flat (cell, trial) schedule, so a
  // cell's wall time spans concurrent work on other cells — it measures
  // latency, not exclusive CPU.
  std::vector<std::atomic<std::int64_t>> cell_start_us(tel != nullptr
                                                           ? n_cells
                                                           : 0);

  // Runs on the scheduler thread that completes a cell's LAST trial: the
  // cell's aggregates are final, so they publish to the result slot and the
  // cache immediately. Persisting per cell mid-run (instead of once at the
  // end) is what makes a killed shard resumable — every finished cell
  // survives the kill, and the rerun's cache pass skips it.
  const auto finalize_cell = [&](std::size_t i) {
    results[i].stats =
        sim::make_run_stats(std::move(times[i]), found[i].load(),
                            cells[i].distance, static_cast<int>(cells[i].k));
    if (async) {
      results[i].from_last_start = stats::Summary::from(from_last[i]);
      results[i].mean_crashed = stats::Summary::from(crashed[i]).mean;
      results[i].mean_last_start = stats::Summary::from(last_starts[i]).mean;
    }
    results[i].mean_first_target =
        found[i].load() > 0
            ? static_cast<double>(first_target_sum[i].load()) /
                  static_cast<double>(found[i].load())
            : -1.0;
    if (dynamic) {
      const auto mean_of = [](const std::vector<double>& v) {
        double sum = 0;
        for (const double x : v) sum += x;
        return v.empty() ? -1.0 : sum / static_cast<double>(v.size());
      };
      results[i].mean_targets_spawned = mean_of(spawned[i]);
      results[i].mean_targets_found = mean_of(found_count[i]);
      results[i].found_before_vanish = mean_of(fbv[i]);
    }
    if (collect_all) {
      for (std::size_t j = 0; j < kSlots; ++j) {
        double sum = 0;
        std::size_t n_found = 0;
        for (std::size_t t = 0; t < trials; ++t) {
          const double v = slot_times[i][t * kSlots + j];
          if (v >= 0) {
            sum += v;
            ++n_found;
          }
        }
        results[i].target_time_mean[j] =
            n_found > 0 ? sum / static_cast<double>(n_found) : -1.0;
      }
    }
    if (!opt.cache_dir.empty()) {
      // Packed cache_dirs take the append-journal path (one O_APPEND write,
      // CRC-framed, safe against concurrent shard processes); unpacked ones
      // keep the per-hash temp+rename discipline. Either way the cell
      // persists the moment it completes — the killed-shard resume
      // contract.
      if (pack != nullptr) {
        pack->append(cells[i].hash, results[i]);
      } else {
        cache_store(opt.cache_dir, cells[i].hash, results[i]);
      }
    }
    report_cell(cells[i], "done");
    if (tel != nullptr) {
      const std::int64_t duration_us =
          telemetry::now_us() -
          cell_start_us[i].load(std::memory_order_relaxed);
      tel->cell_end(i, cells[i].strategy_name, cells[i].k, cells[i].distance,
                    /*cached=*/false, duration_us, trials,
                    cells_done.fetch_add(1) + 1, n_cells);
    }
  };

  // Trace hookup: one track per scheduler worker, labelled spans named
  // after the cell. Labels are prebuilt so the per-trial record is just a
  // push/extend on the worker's own buffer.
  // Work items are (cell, trial-block) pairs: kTrialBlock consecutive
  // trials of one cell per item, so a worker amortizes one batch runner
  // (SoA workspaces, SIMD kernels — sim/batch/) across the block while the
  // scheduler stays granular enough for cells to overlap. The mapping is
  // index arithmetic, not a materialized pair vector: huge sweeps must not
  // pay O(cells * blocks) memory before any work runs.
  const std::size_t blocks_per_cell =
      (trials + sim::batch::kTrialBlock - 1) / sim::batch::kTrialBlock;
  const std::size_t n_items = pending.size() * blocks_per_cell;
  const unsigned n_workers = util::parallel_workers(n_items, opt.threads);

  telemetry::TraceCollector* trace = tel != nullptr ? tel->trace() : nullptr;
  if (trace != nullptr) {
    std::vector<std::string> labels(n_cells);
    for (const std::size_t i : pending) {
      labels[i] = cells[i].strategy_name + " k=" +
                  std::to_string(cells[i].k) + " D=" +
                  std::to_string(cells[i].distance);
    }
    trace->begin_workers(n_workers, std::move(labels));
  }
  telemetry::RunTelemetry::PhaseScope execute_scope(
      tel, telemetry::Phase::kExecute);

  // Each worker keeps ONE batch runner, rebuilt only when it crosses to a
  // cell with a different (strategy, k) pair; consecutive blocks of the
  // same cell reuse its workspaces wholesale.
  struct WorkerCache {
    const void* strategy = nullptr;
    std::int64_t k = -1;
    std::unique_ptr<sim::batch::BatchRunner> runner;
  };
  std::vector<WorkerCache> runner_cache(n_workers);

  util::parallel_for(
      n_items,
      [&](std::size_t item, unsigned worker) {
        const std::size_t ci = pending[item / blocks_per_cell];
        const std::size_t block = item % blocks_per_cell;
        const std::size_t trial_begin = block * sim::batch::kTrialBlock;
        const std::size_t trial_end =
            std::min(trials, trial_begin + sim::batch::kTrialBlock);
        const Cell& cell = cells[ci];
        if (tel != nullptr &&
            cell_start_us[ci].load(std::memory_order_relaxed) == 0) {
          std::int64_t expected = 0;
          if (cell_start_us[ci].compare_exchange_strong(
                  expected, telemetry::now_us(),
                  std::memory_order_relaxed)) {
            tel->cell_start(ci, cell.strategy_name, cell.k, cell.distance);
          }
        }

        WorkerCache& cache = runner_cache[worker];
        if (cache.strategy != built[ci] || cache.k != cell.k) {
          sim::TrialStrategy strategy;
          strategy.segment = built[ci]->segment.get();
          strategy.step = built[ci]->step.get();
          strategy.plane = built[ci]->plane.get();
          cache.runner = std::make_unique<sim::batch::BatchRunner>(
              strategy, static_cast<int>(cell.k), engine_config);
          cache.strategy = built[ci];
          cache.k = cell.k;
        }

        const sim::TargetProcess& process =
            target_processes[cell.placement_index * n_targets +
                             cell.targets_index];
        for (std::size_t trial = trial_begin; trial < trial_end; ++trial) {
          const std::int64_t trial_t0 =
              trace != nullptr ? telemetry::now_us() : 0;
          rng::Rng trial_rng(rng::mix_seed(cell.seed, trial));
          // THE executor call site: every cell — any strategy family (grid
          // segment/step or continuous plane), any schedule/crash/targets
          // combination — runs through the batch executor, which is
          // byte-identical to sim::run_trial per trial (seed derivation is
          // untouched; batching is an execution detail). Base-model specs
          // take the executor's empty-starts/lifetimes fast path instead
          // of drawing all-zero/immortal vectors every trial: the sync hot
          // path must not pay for axes it does not use.
          sim::TrialEnvironment env;
          if (built[ci]->is_plane()) {
            process.plane(trial_rng, cell.distance, engine_config.time_cap,
                          &env);
          } else {
            process.grid(trial_rng, cell.distance, engine_config.time_cap,
                         &env);
          }
          if (async) {
            env = sim::draw_environment(static_cast<int>(cell.k),
                                        std::move(env), *schedule, *crashes,
                                        trial_rng);
          }
          env.capture_dwell = capture_dwell;
          env.collect_all = collect_all;
          const sim::TrialResult r = cache.runner->run_one(env, trial_rng);
          times[ci][trial] = r.time;
          if (async) {
            from_last[ci][trial] = r.from_last_start;
            crashed[ci][trial] = static_cast<double>(r.crashed);
            last_starts[ci][trial] = r.last_start;
          }
          if (r.found) {
            found[ci].fetch_add(1, std::memory_order_relaxed);
            first_target_sum[ci].fetch_add(r.first_target,
                                           std::memory_order_relaxed);
          }
          if (dynamic) {
            const double nt = static_cast<double>(
                built[ci]->is_plane() ? env.plane_targets.size()
                                      : env.targets.size());
            double nf = r.found ? 1.0 : 0.0;
            if (collect_all) {
              nf = 0;
              for (const double tt : r.target_times) nf += tt >= 0 ? 1 : 0;
              const std::size_t ns =
                  std::min(kSlots, r.target_times.size());
              for (std::size_t j = 0; j < ns; ++j) {
                slot_times[ci][trial * kSlots + j] = r.target_times[j];
              }
            }
            spawned[ci][trial] = nt;
            found_count[ci][trial] = nf;
            fbv[ci][trial] = nt > 0 ? nf / nt : 1.0;
          }
          if (trace != nullptr) {
            trace->record_trial(worker, ci, trial_t0, telemetry::now_us());
          }
        }

        // Drain the runner's delegation count once per block (plane dynamic
        // cells are the only source — grid dynamic environments batch).
        const std::uint64_t fallbacks = cache.runner->take_scalar_fallbacks();
        if (tel != nullptr && fallbacks > 0) {
          tel->record_batch_scalar_fallback(fallbacks);
        }

        const auto done =
            static_cast<std::int64_t>(trial_end - trial_begin);
        if (remaining[ci].fetch_sub(done, std::memory_order_acq_rel) ==
            done) {
          finalize_cell(ci);
        }
      },
      opt.threads);

  if (trace != nullptr) trace->end_workers();
  return results;
}

std::string shard_prefix(std::size_t shard, std::size_t n_shards) {
  if (n_shards <= 1) return "";
  return "shard " + std::to_string(shard) + "/" + std::to_string(n_shards) +
         " ";
}

}  // namespace

std::vector<CellResult> run_sweep(const ScenarioSpec& spec,
                                  const SweepOptions& opt) {
  std::vector<Cell> cells;
  {
    const telemetry::RunTelemetry::PhaseScope plan_scope(
        opt.telemetry, telemetry::Phase::kPlan);
    cells = flatten(spec);
  }
  if (opt.telemetry != nullptr) {
    opt.telemetry->begin_run(spec.name, cells.size(),
                             static_cast<std::uint64_t>(spec.trials));
  }
  // The 1/1 special case of the sharded pipeline: all cells, no prefix.
  return run_cells(spec, cells, opt, "");
}

std::vector<CellResult> run_shard(const SweepPlan& plan, std::size_t shard,
                                  std::size_t n_shards,
                                  const SweepOptions& opt) {
  std::vector<Cell> cells;
  {
    const telemetry::RunTelemetry::PhaseScope plan_scope(
        opt.telemetry, telemetry::Phase::kPlan);
    const std::vector<std::size_t> indices =
        shard_cell_indices(plan, shard, n_shards);
    cells.reserve(indices.size());
    for (const std::size_t i : indices) cells.push_back(plan.cells[i]);
  }
  if (opt.telemetry != nullptr) {
    opt.telemetry->begin_run(plan.spec.name, cells.size(),
                             static_cast<std::uint64_t>(plan.spec.trials),
                             shard, n_shards);
  }
  return run_cells(plan.spec, cells, opt, shard_prefix(shard, n_shards));
}

void write_shard(const std::string& path, const SweepPlan& plan,
                 std::size_t shard, std::size_t n_shards,
                 const std::vector<CellResult>& results,
                 const telemetry::RunMetrics* metrics,
                 ArtifactFormat format) {
  const std::vector<std::size_t> indices =
      shard_cell_indices(plan, shard, n_shards);
  if (results.size() != indices.size()) {
    detail::bad("write_shard: " + std::to_string(results.size()) +
                " results for a " + std::to_string(indices.size()) +
                "-cell shard");
  }
  ShardHeader header;
  header.format_version = cell_format_version();
  header.spec_hash = plan.spec_hash;
  header.spec_text = plan.spec.canonical();
  header.shard = shard;
  header.n_shards = n_shards;
  header.n_cells_total = plan.cells.size();
  std::vector<ShardEntry> entries(indices.size());
  for (std::size_t j = 0; j < indices.size(); ++j) {
    entries[j].cell_index = indices[j];
    // Aggregates only: neither the raw per-trial times (a fresh cell
    // carries trials doubles — copying them just to drop them would spike
    // memory on big shards) nor the Cell (merge reattaches it from the
    // plan) go to disk.
    CellResult& slim = entries[j].result;
    const CellResult& full = results[j];
    slim.stats.time = full.stats.time;
    slim.stats.success_rate = full.stats.success_rate;
    slim.stats.mean_competitiveness = full.stats.mean_competitiveness;
    slim.stats.median_competitiveness = full.stats.median_competitiveness;
    slim.stats.distance = full.stats.distance;
    slim.stats.k = full.stats.k;
    slim.from_last_start = full.from_last_start;
    slim.mean_crashed = full.mean_crashed;
    slim.mean_last_start = full.mean_last_start;
    slim.mean_first_target = full.mean_first_target;
    slim.mean_targets_found = full.mean_targets_found;
    slim.mean_targets_spawned = full.mean_targets_spawned;
    slim.found_before_vanish = full.found_before_vanish;
    for (std::size_t j = 0; j < CellResult::kTargetTimeSlots; ++j) {
      slim.target_time_mean[j] = full.target_time_mean[j];
    }
    slim.from_cache = full.from_cache;
  }
  std::string line;
  const std::string* metrics_line = nullptr;
  if (metrics != nullptr) {
    line = telemetry::metrics_to_json(*metrics, plan.spec.name, shard,
                                      n_shards);
    metrics_line = &line;
  }
  if (format == ArtifactFormat::kBinary) {
    write_binary_artifact(path, header, entries, metrics_line);
  } else {
    write_shard_artifact(path, header, entries, metrics_line);
  }
}

std::vector<CellResult> merge_shards(const SweepPlan& plan,
                                     const std::vector<std::string>& paths,
                                     telemetry::RunMetrics* metrics_out) {
  if (paths.empty()) detail::bad("merge_shards: no artifacts given");
  const std::size_t n = plan.cells.size();
  std::vector<CellResult> merged(n);
  std::vector<bool> seen(n, false);

  // Read phase runs one artifact per pool slot — I/O and parsing dominate a
  // merge, and the artifacts are independent files. read_any_artifact
  // dispatches per file on the magic sniff, so JSONL and binary shards mix
  // freely in one merge. parallel_for propagates the first reader's
  // exception, so a bad artifact still fails the merge with its own
  // message.
  struct LoadedShard {
    ShardHeader header;
    std::vector<ShardEntry> entries;
    std::string metrics_line;
  };
  std::vector<LoadedShard> shards(paths.size());
  util::parallel_for(paths.size(), [&](std::size_t i) {
    shards[i].header = read_any_artifact(paths[i], &shards[i].entries,
                                         &shards[i].metrics_line);
  });

  // Validation and placement stay sequential in `paths` order: duplicate
  // detection attributes the SECOND artifact to touch a cell, which must
  // not depend on read-completion timing.
  for (std::size_t pi = 0; pi < paths.size(); ++pi) {
    const std::string& path = paths[pi];
    const ShardHeader& header = shards[pi].header;
    std::vector<ShardEntry>& entries = shards[pi].entries;
    const std::string& metrics_line = shards[pi].metrics_line;
    if (metrics_out != nullptr && !metrics_line.empty()) {
      // Exact re-aggregation: counter sums plus a bin-wise sketch merge, so
      // the campaign-level quantiles equal a single process's. An artifact
      // without a metrics line contributes nothing (telemetry-free shard).
      metrics_out->merge(telemetry::metrics_from_json(metrics_line, nullptr,
                                                      nullptr, nullptr));
    }
    if (header.format_version != cell_format_version()) {
      detail::bad("shard artifact " + path + ": format version " +
                  std::to_string(header.format_version) +
                  " does not match this build's " +
                  std::to_string(cell_format_version()) +
                  " — regenerate the shard");
    }
    if (header.spec_hash != plan.spec_hash) {
      detail::bad("shard artifact " + path +
                  ": produced from a different spec (spec hash mismatch) — "
                  "a merge may only combine shards of one identical spec");
    }
    if (header.n_cells_total != n) {
      detail::bad("shard artifact " + path + ": plan has " +
                  std::to_string(n) + " cells, artifact claims " +
                  std::to_string(header.n_cells_total));
    }
    for (ShardEntry& entry : entries) {
      if (entry.cell_index >= n) {
        detail::bad("shard artifact " + path + ": cell index " +
                    std::to_string(entry.cell_index) + " out of range");
      }
      if (seen[entry.cell_index]) {
        detail::bad("merge_shards: duplicate cell " +
                    std::to_string(entry.cell_index) + " (artifact " + path +
                    " overlaps an earlier shard — was a shard merged "
                    "twice?)");
      }
      seen[entry.cell_index] = true;
      merged[entry.cell_index] = std::move(entry.result);
      merged[entry.cell_index].cell = plan.cells[entry.cell_index];
    }
  }

  std::size_t missing = 0;
  std::size_t first_missing = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!seen[i]) {
      if (missing == 0) first_missing = i;
      ++missing;
    }
  }
  if (missing > 0) {
    detail::bad("merge_shards: " + std::to_string(missing) + " of " +
                std::to_string(n) + " cells missing (first: cell " +
                std::to_string(first_missing) +
                ") — were all shards run and listed?");
  }
  return merged;
}

std::vector<CellResult> merge_shards(const std::vector<std::string>& paths,
                                     ScenarioSpec* spec_out,
                                     telemetry::RunMetrics* metrics_out) {
  if (paths.empty()) detail::bad("merge_shards: no artifacts given");
  const ShardHeader header = read_any_artifact(paths.front(), nullptr);
  const std::vector<ScenarioSpec> specs = parse_spec_text(header.spec_text);
  if (specs.size() != 1) {
    detail::bad("shard artifact " + paths.front() +
                ": embedded spec does not parse to exactly one scenario");
  }
  const SweepPlan plan = make_plan(specs.front());
  if (plan.spec_hash != header.spec_hash) {
    detail::bad("shard artifact " + paths.front() +
                ": embedded spec re-hashes differently — artifact written "
                "by an incompatible build");
  }
  if (spec_out != nullptr) *spec_out = specs.front();
  return merge_shards(plan, paths, metrics_out);
}

}  // namespace ants::scenario
