#include "scenario/sweep.h"

#include <atomic>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "rng/splitmix64.h"
#include "scenario/environment.h"
#include "scenario/registry.h"
#include "scenario/sink.h"
#include "sim/trial.h"
#include "util/thread_pool.h"

namespace ants::scenario {

namespace {

/// Bump when the cell execution or cache format changes in any way that
/// invalidates previously cached aggregates. v4: plane-level strategies run
/// under the full environment (schedule/crash/targets) through the unified
/// executor, so plane cells now hash and store the async/multi-target
/// aggregates. v3: the target set became a per-cell axis and
/// mean_first_target joined the cache record.
constexpr int kCellFormatVersion = 4;

std::uint64_t cell_hash(const ScenarioSpec& spec, const std::string& strategy,
                        std::int64_t k, std::int64_t distance,
                        const std::string& placement,
                        const std::string& targets,
                        const std::string& schedule,
                        const std::string& crash) {
  std::ostringstream key;
  key << "v" << kCellFormatVersion << "|" << strategy << "|k=" << k
      << "|d=" << distance << "|placement=" << placement
      << "|targets=" << targets << "|schedule=" << schedule
      << "|crash=" << crash << "|trials=" << spec.trials
      << "|seed=" << spec.seed << "|cap=" << spec.time_cap;
  return hash_text(key.str());
}

}  // namespace

std::vector<Cell> flatten(const ScenarioSpec& spec) {
  spec.validate();
  const std::string schedule = canonical_schedule_spec(spec.schedule);
  const std::string crash = canonical_crash_spec(spec.crash);
  std::vector<std::string> placements;
  for (const std::string& p : spec.placements) {
    placements.push_back(canonical_placement_spec(p));
  }
  std::vector<std::string> targets;
  for (const std::string& t : spec.targets) {
    targets.push_back(canonical_targets_spec(t));
  }

  std::vector<Cell> cells;
  cells.reserve(spec.strategies.size() * spec.ks.size() *
                spec.distances.size() * placements.size() * targets.size());
  for (std::size_t si = 0; si < spec.strategies.size(); ++si) {
    const StrategySpec parsed = parse_strategy_spec(spec.strategies[si]);
    const std::string canonical = parsed.canonical();
    for (const std::int64_t k : spec.ks) {
      // The display name can depend on k ("$k" defaults), the distance,
      // placement, and targets cannot — build once per (strategy, k).
      const BuildContext ctx{static_cast<int>(k)};
      const std::string display =
          Registry::instance().make(parsed, ctx).display_name();
      for (const std::int64_t d : spec.distances) {
        for (std::size_t pi = 0; pi < placements.size(); ++pi) {
          for (std::size_t ti = 0; ti < targets.size(); ++ti) {
            Cell cell;
            cell.strategy_index = si;
            cell.strategy_spec = canonical;
            cell.strategy_name = display;
            cell.placement_index = pi;
            cell.placement_spec = placements[pi];
            cell.targets_index = ti;
            cell.targets_spec = targets[ti];
            cell.k = k;
            cell.distance = d;
            cell.seed = rng::mix_seed(
                spec.seed, rng::mix_seed(static_cast<std::uint64_t>(k),
                                         static_cast<std::uint64_t>(d)));
            cell.hash = cell_hash(spec, canonical, k, d, placements[pi],
                                  targets[ti], schedule, crash);
            cells.push_back(std::move(cell));
          }
        }
      }
    }
  }
  return cells;
}

std::vector<CellResult> run_sweep(const ScenarioSpec& spec,
                                  const SweepOptions& opt) {
  const std::vector<Cell> cells = flatten(spec);
  const auto n_cells = cells.size();
  const auto trials = static_cast<std::size_t>(spec.trials);
  const bool async = spec.is_async();

  std::mutex progress_mutex;
  std::size_t completed = 0;
  std::ostream* progress_out =
      opt.progress_stream != nullptr ? opt.progress_stream : &std::cerr;
  const auto report_cell = [&](const Cell& cell, const char* how) {
    if (!opt.progress) return;
    // Count under the print lock so the [n/N] indices are monotone in the
    // output even when cells finish simultaneously.
    const std::lock_guard<std::mutex> lock(progress_mutex);
    *progress_out << "progress: [" << ++completed << "/" << n_cells << "] "
                  << spec.name << " " << cell.strategy_name
                  << " k=" << cell.k << " D=" << cell.distance
                  << " placement=" << cell.placement_spec << " " << how
                  << "\n";
  };

  std::vector<CellResult> results(n_cells);
  for (std::size_t i = 0; i < n_cells; ++i) results[i].cell = cells[i];

  // Cache pass: cells whose aggregates are already on disk never re-run.
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < n_cells; ++i) {
    if (!opt.cache_dir.empty() &&
        cache_load(opt.cache_dir, cells[i].hash, &results[i])) {
      results[i].from_cache = true;
      report_cell(cells[i], "cached");
    } else {
      pending.push_back(i);
    }
  }
  if (pending.empty()) return results;

  // Strategies are built once per (strategy, k) — cells along the distance
  // and placement grids share the object — and read-only shared across
  // scheduler threads, same as sim::run_trials shares its strategy.
  std::map<std::pair<std::size_t, std::int64_t>, BuiltStrategy> by_sk;
  std::vector<const BuiltStrategy*> built(n_cells, nullptr);
  for (const std::size_t i : pending) {
    const auto key = std::make_pair(cells[i].strategy_index, cells[i].k);
    auto it = by_sk.find(key);
    if (it == by_sk.end()) {
      it = by_sk
               .emplace(key, Registry::instance().make(
                                 cells[i].strategy_spec,
                                 BuildContext{static_cast<int>(cells[i].k)}))
               .first;
    }
    built[i] = &it->second;
  }

  // Placement policies, target-set draws, schedule, and crash model are
  // stateless draws from the trial rng — one shared instance per spec is
  // thread-safe. Target draws compose the placement policy (grid points or
  // plane angles) with the cell's target-set spec, so they are compiled per
  // (placement, targets) pair and per substrate — a paired grid-vs-plane
  // spec fills both sides of the same TargetDraw slot.
  const std::size_t n_targets = spec.targets.size();
  std::vector<sim::Placement> placements(spec.placements.size());
  std::vector<sim::TargetDraw> target_draws(spec.placements.size() *
                                            n_targets);
  std::vector<std::function<double(rng::Rng&)>> plane_angles(
      spec.placements.size());
  for (const std::size_t i : pending) {
    const Cell& cell = cells[i];
    const std::size_t di = cell.placement_index * n_targets +
                           cell.targets_index;
    if (built[i]->is_plane()) {
      if (!plane_angles[cell.placement_index]) {
        plane_angles[cell.placement_index] =
            make_plane_angle(cell.placement_spec);
      }
      if (!target_draws[di].plane) {
        target_draws[di].plane =
            make_plane_targets(cell.targets_spec,
                               plane_angles[cell.placement_index])
                .plane;
      }
      continue;
    }
    if (!placements[cell.placement_index]) {
      placements[cell.placement_index] = make_placement(cell.placement_spec);
    }
    if (!target_draws[di].grid) {
      target_draws[di].grid =
          make_targets(cell.targets_spec, placements[cell.placement_index])
              .grid;
    }
  }
  const std::unique_ptr<sim::StartSchedule> schedule =
      make_schedule(spec.schedule);
  const std::unique_ptr<sim::CrashModel> crashes = make_crash(spec.crash);

  sim::EngineConfig engine_config;
  engine_config.time_cap = spec.effective_time_cap();

  std::vector<std::vector<double>> times(n_cells);
  std::vector<std::vector<double>> from_last(async ? n_cells : 0);
  std::vector<std::vector<double>> crashed(async ? n_cells : 0);
  std::vector<std::vector<double>> last_starts(async ? n_cells : 0);
  for (const std::size_t i : pending) {
    times[i].resize(trials);
    if (async) {
      from_last[i].resize(trials);
      crashed[i].resize(trials);
      last_starts[i].resize(trials);
    }
  }
  std::vector<std::atomic<std::int64_t>> found(n_cells);
  std::vector<std::atomic<std::int64_t>> first_target_sum(n_cells);
  std::vector<std::atomic<std::int64_t>> remaining(n_cells);
  for (const std::size_t i : pending) {
    remaining[i].store(static_cast<std::int64_t>(trials));
  }

  // The flat work list is every trial of every pending cell — cells overlap
  // instead of serializing on per-cell barriers. The (cell, trial) mapping
  // is index arithmetic, not a materialized pair vector: huge sweeps must
  // not pay O(cells * trials) memory before any work runs.
  util::parallel_for(
      pending.size() * trials,
      [&](std::size_t item) {
        const std::size_t ci = pending[item / trials];
        const std::size_t trial = item % trials;
        const Cell& cell = cells[ci];
        rng::Rng trial_rng(rng::mix_seed(cell.seed, trial));
        // THE executor call site: every cell — any strategy family (grid
        // segment/step or continuous plane), any schedule/crash/targets
        // combination — runs the unified sim::run_trial under its
        // per-trial environment. Base-model specs take the executor's
        // empty-starts/lifetimes fast path instead of drawing
        // all-zero/immortal vectors every trial: the sync hot path must
        // not pay for axes it does not use.
        const sim::TargetDraw& draw =
            target_draws[cell.placement_index * n_targets +
                         cell.targets_index];
        sim::TrialEnvironment env;
        if (built[ci]->is_plane()) {
          env.plane_targets = draw.plane(trial_rng, cell.distance);
        } else {
          env.targets = draw.grid(trial_rng, cell.distance);
        }
        if (async) {
          env = sim::draw_environment(static_cast<int>(cell.k),
                                      std::move(env), *schedule, *crashes,
                                      trial_rng);
        }
        sim::TrialStrategy strategy;
        strategy.segment = built[ci]->segment.get();
        strategy.step = built[ci]->step.get();
        strategy.plane = built[ci]->plane.get();
        const sim::TrialResult r =
            sim::run_trial(strategy, static_cast<int>(cell.k), env,
                           trial_rng, engine_config);
        times[ci][trial] = r.time;
        if (async) {
          from_last[ci][trial] = r.from_last_start;
          crashed[ci][trial] = static_cast<double>(r.crashed);
          last_starts[ci][trial] = r.last_start;
        }
        if (r.found) {
          found[ci].fetch_add(1, std::memory_order_relaxed);
          first_target_sum[ci].fetch_add(r.first_target,
                                         std::memory_order_relaxed);
        }
        if (remaining[ci].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          report_cell(cell, "done");
        }
      },
      opt.threads);

  for (const std::size_t i : pending) {
    results[i].stats =
        sim::make_run_stats(std::move(times[i]), found[i].load(),
                            cells[i].distance, static_cast<int>(cells[i].k));
    if (async) {
      results[i].from_last_start = stats::Summary::from(from_last[i]);
      results[i].mean_crashed = stats::Summary::from(crashed[i]).mean;
      results[i].mean_last_start = stats::Summary::from(last_starts[i]).mean;
    }
    results[i].mean_first_target =
        found[i].load() > 0
            ? static_cast<double>(first_target_sum[i].load()) /
                  static_cast<double>(found[i].load())
            : -1.0;
    if (!opt.cache_dir.empty()) {
      cache_store(opt.cache_dir, cells[i].hash, results[i]);
    }
  }
  return results;
}

}  // namespace ants::scenario
