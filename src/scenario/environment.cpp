#include "scenario/environment.h"

#include <algorithm>
#include <cmath>

#include "scenario/text.h"

namespace ants::scenario {

namespace {

using detail::bad;

constexpr double kPi = 3.14159265358979323846;

/// Validates `spec` against `entries` (axis registry), fills defaults, and
/// returns the declared parameter values in declaration order. Shared
/// front-end of every factory and canonicalizer below.
struct ResolvedEnv {
  const EnvEntry* entry = nullptr;
  std::vector<std::string> values;  ///< parallels entry->params
};

ResolvedEnv resolve(const char* axis, const std::vector<EnvEntry>& entries,
                    const StrategySpec& spec) {
  ResolvedEnv out;
  for (const EnvEntry& entry : entries) {
    if (entry.name == spec.name) {
      out.entry = &entry;
      break;
    }
  }
  if (out.entry == nullptr) {
    std::string known;
    for (const EnvEntry& entry : entries) {
      if (!known.empty()) known += ", ";
      known += entry.name;
    }
    bad(std::string("unknown ") + axis + " '" + spec.name +
        "' (known: " + known + ")");
  }
  for (const auto& [key, value] : spec.params) {
    bool declared = false;
    for (const ParamSpec& ps : out.entry->params) declared |= ps.name == key;
    if (!declared) {
      bad(std::string(axis) + " '" + spec.name + "' has no parameter '" +
          key + "'");
    }
  }
  for (const ParamSpec& ps : out.entry->params) {
    const auto given = spec.params.find(ps.name);
    const std::string value =
        given != spec.params.end() ? given->second : ps.default_value;
    // Type-check now so errors surface at validation time, not mid-sweep.
    const std::string context =
        std::string(axis) + " '" + spec.name + "' parameter '" + ps.name + "'";
    switch (ps.type) {
      case ParamType::kInt:
        detail::parse_int64(context, value);
        break;
      case ParamType::kDouble:
        detail::parse_double(context, value);
        break;
      case ParamType::kBool:
      case ParamType::kString:
        break;
    }
    out.values.push_back(value);
  }
  return out;
}

ResolvedEnv resolve(const char* axis, const std::vector<EnvEntry>& entries,
                    const std::string& text) {
  return resolve(axis, entries, parse_strategy_spec(text));
}

std::string canonical(const char* axis, const std::vector<EnvEntry>& entries,
                      const std::string& text) {
  const StrategySpec spec = parse_strategy_spec(text);
  (void)resolve(axis, entries, spec);  // validate; construction checks ranges
  return spec.canonical();
}

double as_double(const ResolvedEnv& env, std::size_t i) {
  return detail::parse_double(env.entry->params[i].name, env.values[i]);
}

std::int64_t as_int(const ResolvedEnv& env, std::size_t i) {
  return detail::parse_int64(env.entry->params[i].name, env.values[i]);
}

}  // namespace

const std::vector<EnvEntry>& placement_entries() {
  static const std::vector<EnvEntry> entries = {
      {"ring",
       "treasure drawn uniformly from the L1 ring of radius D each trial",
       {}},
      {"axis", "treasure pinned on the +x axis: (D, 0)", {}},
      {"diagonal", "treasure pinned on the diagonal: (ceil(D/2), floor(D/2))",
       {}},
      {"ring-fraction",
       "treasure pinned at fraction f around the ring (f=0 is (D,0), "
       "f=0.25 is (0,D))",
       {{"f", ParamType::kDouble, "0", "ring fraction, in [0, 1)"}}},
  };
  return entries;
}

const std::vector<EnvEntry>& schedule_entries() {
  static const std::vector<EnvEntry> entries = {
      {"sync", "everybody starts at t = 0 (the paper's base model)", {}},
      {"staggered",
       "agent a starts at a*gap: the adversarial drip release",
       {{"gap", ParamType::kInt, "1", "delay between consecutive starts, "
                                      ">= 0"}}},
      {"uniform-start",
       "each agent independently starts at Uniform{0, ..., max}",
       {{"max", ParamType::kInt, "0", "largest possible delay, >= 0"}}},
      {"fixed",
       "explicit per-agent start delays (the adversarial schedules used in "
       "tests); the delay count must equal every k in the sweep grid",
       {{"delays", ParamType::kString, "0",
         "';'-separated non-negative delays, one per agent"}}},
  };
  return entries;
}

const std::vector<EnvEntry>& crash_entries() {
  static const std::vector<EnvEntry> entries = {
      {"none", "immortal agents (the paper's base model)", {}},
      {"doa",
       "dead on arrival with probability p per agent: survivors are a "
       "Binomial(k, 1-p) party",
       {{"p", ParamType::kDouble, "0", "death probability, in [0, 1]"}}},
      {"exp-life",
       "independent Exponential(mean) active-time lifetimes: memoryless "
       "attrition",
       {{"mean", ParamType::kDouble, "1", "mean lifetime, > 0"}}},
      {"fixed-life",
       "every agent halts after exactly t active time units",
       {{"t", ParamType::kInt, "0", "lifetime, >= 0"}}},
  };
  return entries;
}

const std::vector<EnvEntry>& target_entries() {
  static const std::vector<EnvEntry> entries = {
      {"single",
       "one treasure at distance D from the placement policy (the paper's "
       "base model)",
       {}},
      {"pair",
       "two treasures: a near patch at max(1, round(near*D)) and a far one "
       "at D, both placed by the placement policy — the foraging race of "
       "the paper's introduction",
       {{"near", ParamType::kDouble, "0.5",
         "near-patch distance as a fraction of D, in (0, 1]"}}},
      {"ring-set",
       "n independent placement draws at distance D (patchy food on the "
       "ring)",
       {{"n", ParamType::kInt, "2", "number of targets, >= 1"}}},
      {"poisson",
       "targets appear at Poisson(rate) arrival times over (0, time_cap], "
       "each an independent placement draw at distance D, and vanish after "
       "an Exponential(life) lifetime (life=0 = immortal); requires a "
       "finite time_cap",
       {{"rate", ParamType::kDouble, "0.001", "arrival rate per tick, > 0"},
        {"life", ParamType::kDouble, "0",
         "mean target lifetime in ticks, >= 0 (0 = immortal)"}}},
      {"drift",
       "one mobile target: base position is a placement draw at distance D, "
       "drifting at v cells/tick in the fixed heading angle (fraction of a "
       "full turn)",
       {{"v", ParamType::kDouble, "0.5", "drift speed in cells/tick, > 0"},
        {"angle", ParamType::kDouble, "0",
         "drift heading as a fraction of a full turn, in [0, 1)"}},
       "grid step-level strategies only"},
  };
  return entries;
}

const std::vector<EnvEntry>& capture_entries() {
  static const std::vector<EnvEntry> entries = {
      {"instant",
       "a find confirms the moment an agent reaches / sights a target (the "
       "classic model)",
       {}},
      {"dwell",
       "an agent must hold contact for t extra consecutive ticks before a "
       "find confirms; grid contact is the L1-radius-1 disc around the "
       "target, and leaving it (or the target vanishing) resets progress",
       {{"t", ParamType::kInt, "1", "extra contact ticks required, >= 1"}},
       "step-level strategies only"},
  };
  return entries;
}

std::string canonical_placement_spec(const std::string& text) {
  const std::string out = canonical("placement", placement_entries(), text);
  (void)make_placement(out);  // surfaces range errors (f outside [0,1))
  return out;
}

std::string canonical_schedule_spec(const std::string& text) {
  const std::string out = canonical("schedule", schedule_entries(), text);
  (void)make_schedule(out);
  return out;
}

std::string canonical_crash_spec(const std::string& text) {
  const std::string out = canonical("crash", crash_entries(), text);
  (void)make_crash(out);
  return out;
}

std::string canonical_targets_spec(const std::string& text) {
  const std::string out = canonical("targets", target_entries(), text);
  (void)make_targets(out, sim::axis_placement());  // surfaces range errors
  return out;
}

std::string canonical_capture_spec(const std::string& text) {
  const std::string out = canonical("capture", capture_entries(), text);
  (void)capture_dwell_ticks(out);  // surfaces range errors (t < 1)
  return out;
}

sim::Placement make_placement(const std::string& text) {
  const ResolvedEnv env = resolve("placement", placement_entries(), text);
  const std::string& name = env.entry->name;
  if (name == "ring") return sim::uniform_ring_placement();
  if (name == "axis") return sim::axis_placement();
  if (name == "diagonal") return sim::diagonal_placement();
  return sim::ring_fraction_placement(as_double(env, 0));
}

namespace {

/// Parses the "fixed" schedule's ';'-separated delay list.
std::vector<sim::Time> parse_delay_list(const std::string& value) {
  std::vector<sim::Time> delays;
  for (const std::string& piece : detail::split_top_level(value, ';')) {
    delays.push_back(detail::parse_int64("schedule 'fixed' delays", piece));
  }
  if (delays.empty()) bad("schedule 'fixed': delays list is empty");
  return delays;
}

}  // namespace

std::unique_ptr<sim::StartSchedule> make_schedule(const std::string& text) {
  const ResolvedEnv env = resolve("schedule", schedule_entries(), text);
  const std::string& name = env.entry->name;
  if (name == "sync") return std::make_unique<sim::SyncStart>();
  if (name == "staggered") {
    return std::make_unique<sim::StaggeredStart>(as_int(env, 0));
  }
  if (name == "fixed") {
    return std::make_unique<sim::FixedStart>(parse_delay_list(env.values[0]));
  }
  return std::make_unique<sim::UniformRandomStart>(as_int(env, 0));
}

std::size_t fixed_schedule_delay_count(const std::string& text) {
  const ResolvedEnv env = resolve("schedule", schedule_entries(), text);
  if (env.entry->name != "fixed") return 0;
  return parse_delay_list(env.values[0]).size();
}

std::unique_ptr<sim::CrashModel> make_crash(const std::string& text) {
  const ResolvedEnv env = resolve("crash", crash_entries(), text);
  const std::string& name = env.entry->name;
  if (name == "none") return std::make_unique<sim::NoCrash>();
  if (name == "doa") return std::make_unique<sim::DoaCrash>(as_double(env, 0));
  if (name == "exp-life") {
    return std::make_unique<sim::ExponentialLifetime>(as_double(env, 0));
  }
  return std::make_unique<sim::FixedLifetime>(as_int(env, 0));
}

namespace {

/// Which TrialEnvironment vector a substrate's static draws land in.
template <typename Point>
std::vector<Point>& target_vec(sim::TrialEnvironment& env);
template <>
std::vector<grid::Point>& target_vec<grid::Point>(sim::TrialEnvironment& env) {
  return env.targets;
}
template <>
std::vector<plane::Vec2>& target_vec<plane::Vec2>(sim::TrialEnvironment& env) {
  return env.plane_targets;
}

/// Validates the shared poisson parameters and returns {rate, mean_life}.
std::pair<double, double> poisson_params(const ResolvedEnv& env) {
  const double rate = as_double(env, 0);
  const double life = as_double(env, 1);
  if (!(rate > 0)) bad("targets 'poisson': rate must be > 0");
  if (life < 0) bad("targets 'poisson': life must be >= 0");
  return {rate, life};
}

/// The STATIC arms of the target-process grammar (single / pair /
/// ring-set), compiled once over a substrate-specific point draw: grid and
/// plane sweeps share ONE copy of the pair/ring-set validation and radii,
/// so the two substrates cannot drift apart — with "pair", both race a NEAR
/// patch (target 0, the foraging preference) at max(1, round(near*D))
/// against a far one at D. Static draws consume the trial rng's MAIN stream
/// exactly as the historical one-shot draws did (byte-compat); the dynamic
/// arms (poisson / drift) are dispatched in make_targets /
/// make_plane_targets to the sim target-process factories instead.
template <typename Point>
std::function<void(rng::Rng&, std::int64_t, sim::Time,
                   sim::TrialEnvironment*)>
compile_static_targets(const ResolvedEnv& env,
                       std::function<Point(rng::Rng&, std::int64_t)> place) {
  const std::string& name = env.entry->name;
  if (name == "single") {
    return [place = std::move(place)](rng::Rng& rng, std::int64_t distance,
                                      sim::Time, sim::TrialEnvironment* out) {
      target_vec<Point>(*out).push_back(place(rng, distance));
    };
  }
  if (name == "pair") {
    const double near = as_double(env, 0);
    if (!(near > 0) || near > 1) {
      bad("targets 'pair': near must be in (0, 1]");
    }
    return [near, place = std::move(place)](rng::Rng& rng,
                                            std::int64_t distance, sim::Time,
                                            sim::TrialEnvironment* out) {
      const auto near_d = std::max<std::int64_t>(
          1, std::llround(near * static_cast<double>(distance)));
      std::vector<Point>& targets = target_vec<Point>(*out);
      targets.push_back(place(rng, near_d));
      targets.push_back(place(rng, distance));
    };
  }
  const std::int64_t n = as_int(env, 0);
  if (n < 1) bad("targets 'ring-set': n must be >= 1");
  return [n, place = std::move(place)](rng::Rng& rng, std::int64_t distance,
                                       sim::Time,
                                       sim::TrialEnvironment* out) {
    std::vector<Point>& targets = target_vec<Point>(*out);
    targets.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      targets.push_back(place(rng, distance));
    }
  };
}

/// Validates drift's parameters and returns {speed, angle_turns}.
std::pair<double, double> drift_params(const ResolvedEnv& env) {
  const double v = as_double(env, 0);
  const double angle = as_double(env, 1);
  if (!(v > 0)) bad("targets 'drift': v must be > 0");
  if (angle < 0 || angle >= 1) {
    bad("targets 'drift': angle must be in [0, 1)");
  }
  return {v, angle};
}

}  // namespace

sim::TargetProcess make_targets(const std::string& text,
                                const sim::Placement& placement) {
  const ResolvedEnv env = resolve("targets", target_entries(), text);
  const std::string& name = env.entry->name;
  if (name == "poisson") {
    const auto [rate, life] = poisson_params(env);
    return sim::poisson_targets(rate, life, placement);
  }
  if (name == "drift") {
    const auto [v, angle] = drift_params(env);
    return sim::drifting_target(v, angle, placement);
  }
  sim::TargetProcess process;
  process.grid = compile_static_targets<grid::Point>(
      env, [placement](rng::Rng& rng, std::int64_t d) {
        return placement(rng, d);
      });
  return process;
}

sim::TargetProcess make_plane_targets(
    const std::string& text, const std::function<double(rng::Rng&)>& angle) {
  const ResolvedEnv env = resolve("targets", target_entries(), text);
  const std::string& name = env.entry->name;
  if (name == "poisson") {
    const auto [rate, life] = poisson_params(env);
    return sim::poisson_plane_targets(rate, life, angle);
  }
  if (name == "drift") {
    bad("targets 'drift' requires grid step-level strategies (the plane "
        "backend has no per-tick target position)");
  }
  sim::TargetProcess process;
  process.plane = compile_static_targets<plane::Vec2>(
      env, [angle](rng::Rng& rng, std::int64_t d) {
        return plane::unit(angle(rng)) * static_cast<double>(d);
      });
  return process;
}

sim::Time capture_dwell_ticks(const std::string& text) {
  const ResolvedEnv env = resolve("capture", capture_entries(), text);
  if (env.entry->name == "instant") return 0;
  const std::int64_t t = as_int(env, 0);
  if (t < 1) bad("capture 'dwell': t must be >= 1");
  return t;
}

std::function<double(rng::Rng&)> make_plane_angle(const std::string& text) {
  const ResolvedEnv env = resolve("placement", placement_entries(), text);
  const std::string& name = env.entry->name;
  if (name == "ring") return [](rng::Rng& rng) { return rng.angle(); };
  double angle = 0.0;
  if (name == "diagonal") {
    angle = kPi / 4.0;
  } else if (name == "ring-fraction") {
    const double f = as_double(env, 0);
    if (f < 0 || f >= 1) {
      bad("placement 'ring-fraction': f must be in [0, 1)");
    }
    angle = 2.0 * kPi * f;
  }
  return [angle](rng::Rng&) { return angle; };
}

bool is_sync_schedule(const std::string& text) {
  return parse_strategy_spec(text).name == "sync";
}

bool is_no_crash(const std::string& text) {
  return parse_strategy_spec(text).name == "none";
}

bool is_single_targets(const std::string& text) {
  return parse_strategy_spec(text).name == "single";
}

bool is_dynamic_targets(const std::string& text) {
  const std::string name = parse_strategy_spec(text).name;
  return name == "poisson" || name == "drift";
}

bool is_step_only_targets(const std::string& text) {
  return parse_strategy_spec(text).name == "drift";
}

}  // namespace ants::scenario
