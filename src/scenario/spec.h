// Declarative scenario specs: an experiment as data instead of a main().
//
// A spec names the strategies to run (registry spec strings), the k-, D-,
// placement, and target-set grids, the start schedule and crash model
// (async/crash variants of the paper's model), trial count, master seed,
// optional time cap, and the output columns. Flattened by the sweep
// scheduler into (strategy, k, D, placement, targets) cells, it fully
// determines every number in the output: results are a pure function of
// (spec, seed), independent of thread count.
//
// Two on-disk forms, mixable in one file:
//
//   text blocks — "key = value" lines, '#' comments, blank-line separated:
//
//       name       = quick-look
//       strategies = uniform(eps=0.5), known-k
//       ks         = 1, 4, 16
//       distances  = 16, 32, 64
//       trials     = 100
//
//   JSON lines — any line whose first character is '{' is parsed as one
//   flat JSON object per scenario:
//
//       {"name": "quick", "strategies": ["uniform(eps=0.5)"], "ks": [1, 4]}
//
// Unknown keys are an error in both forms (typos fail loudly, matching the
// util::Cli philosophy).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"
#include "util/cli.h"

namespace ants::scenario {

struct ScenarioSpec {
  std::string name = "sweep";
  std::vector<std::string> strategies;  ///< registry spec strings
  std::vector<std::int64_t> ks = {1, 4, 16};
  std::vector<std::int64_t> distances = {16, 32, 64};
  /// Placement policy specs (environment.h) — a sweep axis like ks and
  /// distances, so e.g. a ring-fraction grid probes angular soft spots.
  std::vector<std::string> placements = {"ring"};
  /// Target-set specs ("single", "pair(near=0.5)", "ring-set(n=3)") — a
  /// sweep axis composing with the placement policy; non-single sets race
  /// first-of-set and surface the `first_target` column.
  std::vector<std::string> targets = {"single"};
  /// Start-schedule spec ("sync", "staggered(gap=4)",
  /// "fixed(delays=0;5;10)", ...). Applies to segment- AND step-level
  /// strategies through the unified executor.
  std::string schedule = "sync";
  /// Crash-model spec ("none", "doa(p=0.25)", ...). Applies to segment-
  /// and step-level strategies through the unified executor.
  std::string crash = "none";
  /// Capture-policy spec ("instant", "dwell(t=2)"). Dwell capture requires
  /// every strategy in the spec to be step-level.
  std::string capture = "instant";
  /// Collect mode: "first" (the race ends at the first find — classic) or
  /// "all" (run until every spawned target is found or the cap; surfaces
  /// the time_to_all and per-target discovery-time columns).
  std::string collect = "first";
  std::int64_t trials = 100;
  std::uint64_t seed = 0xA27553ACULL;
  /// Per-trial cap; 0 = uncapped (sim::kNeverTime). Step-level strategies
  /// require a finite cap.
  sim::Time time_cap = 0;
  /// Output columns (see sink.h); empty = the sink's default set.
  std::vector<std::string> columns;

  /// The cap as the simulator wants it.
  sim::Time effective_time_cap() const noexcept {
    return time_cap == 0 ? sim::kNeverTime : time_cap;
  }

  /// True when schedule/crash leave the paper's base model — such specs
  /// surface the async aggregate columns (from_last_*, mean_crashed, ...).
  bool is_async() const;

  /// True when any target-set spec is not "single" — such specs surface the
  /// first_target column meaningfully.
  bool is_multi_target() const;

  /// True when the spec engages any target-process feature beyond the
  /// classic static model: a dynamic targets axis entry (poisson/drift),
  /// dwell capture, or collect-all — such specs surface the
  /// targets_found/targets_spawned/found_before_vanish columns.
  bool is_dynamic() const;

  /// Dwell ticks compiled from `capture` (0 = instant).
  sim::Time capture_dwell() const;

  /// True when collect == "all".
  bool collect_all() const { return collect == "all"; }

  /// Throws std::invalid_argument on an unrunnable spec (empty strategy
  /// list, non-positive grids or trials, unknown placement or strategy,
  /// malformed strategy spec, unknown column).
  void validate() const;

  /// Stable text-form serialization (round-trips through parse_spec_text);
  /// also the basis of cell cache keys.
  std::string canonical() const;
};

/// Parses a spec file / text buffer into one spec per scenario block.
/// Throws std::invalid_argument with a line-numbered message on errors.
std::vector<ScenarioSpec> parse_spec_text(const std::string& text);
std::vector<ScenarioSpec> parse_spec_file(const std::string& path);

/// Builds one spec from CLI flags: --strategies (';'- or top-level-','
/// separated), --ks, --ds, --trials, --seed, --placement (list), --targets
/// (list), --schedule, --crash, --capture, --collect, --time-cap,
/// --columns, --scenario-name. Flags not given keep the defaults above.
ScenarioSpec spec_from_cli(util::Cli& cli);

/// FNV-1a over `text` — the stable string hash the cell cache keys use.
std::uint64_t hash_text(const std::string& text) noexcept;

}  // namespace ants::scenario
