// Plan layer of the sweep pipeline: a ScenarioSpec flattened into its
// deterministic cell list, plus the sharding arithmetic that partitions
// those cells across processes.
//
// The three-layer contract (plan -> execute -> merge):
//
//   plan     make_plan(spec) flattens the spec into cells in a pinned order
//            and stamps the plan with a spec hash. Shard membership is a
//            pure function of (cell index, n_shards) — never of timing,
//            thread count, or which host runs the shard — so every process
//            that parses the same spec derives the identical partition.
//   execute  run_shard (sweep.h) runs exactly one shard's cells through the
//            unified executor and writes a self-describing JSONL artifact.
//   merge    merge_shards (sweep.h) reassembles artifacts into the
//            canonical CellResult vector, which feeds the sinks unchanged.
//
// The headline invariant (test-enforced at library and search_lab-binary
// level): merging the artifacts of ANY shard count reproduces the
// single-process run_sweep output byte-for-byte, because cell seeds and
// trial RNG streams depend only on the spec — sharding changes where a cell
// runs, never what it computes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "scenario/spec.h"

namespace ants::scenario {

/// One unit of the flattened sweep.
struct Cell {
  std::size_t strategy_index = 0;   ///< into spec.strategies
  std::string strategy_spec;        ///< canonical registry spec string
  std::string strategy_name;        ///< display name of the built strategy
  std::size_t placement_index = 0;  ///< into spec.placements
  std::string placement_spec;       ///< canonical placement spec string
  std::size_t targets_index = 0;    ///< into spec.targets
  std::string targets_spec;         ///< canonical target-set spec string
  std::int64_t k = 1;
  std::int64_t distance = 1;
  std::uint64_t seed = 0;  ///< derived cell seed (see sweep.h)
  std::uint64_t hash = 0;  ///< cache key over the cell + run parameters
};

/// The cell execution / cache / shard-artifact format version. Bump when
/// cell execution or the serialized aggregate record changes in any way
/// that invalidates previously stored entries; cache keys and shard
/// artifacts both carry it, so stale artifacts are rejected at merge time
/// instead of silently mixing incompatible numbers.
int cell_format_version() noexcept;

/// The cells of a spec in deterministic order: strategies outermost, then
/// ks, then distances, then placements, then targets — cell
/// (si, ki, di, pi, ti) lands at index
/// (((si * ks.size() + ki) * distances.size() + di) * placements.size() +
/// pi) * targets.size() + ti. Validates the spec.
std::vector<Cell> flatten(const ScenarioSpec& spec);

/// Hash over the canonical spec text and the cell format version — the
/// compatibility stamp shard artifacts carry. Two processes agree on it iff
/// they parsed equivalent specs AND serialize cells the same way.
std::uint64_t hash_spec(const ScenarioSpec& spec);

/// A flattened spec ready for sharded execution.
struct SweepPlan {
  ScenarioSpec spec;
  std::vector<Cell> cells;  ///< flatten(spec), in canonical cell order
  std::uint64_t spec_hash = 0;  ///< hash_spec(spec)
};

SweepPlan make_plan(const ScenarioSpec& spec);

/// The 1-based shard that owns cell `cell_index` under an `n_shards`-way
/// split: round-robin by cell index, so adjacent (and similarly sized)
/// cells spread across shards instead of one shard drawing a contiguous
/// block of the most expensive strategy.
std::size_t shard_of_cell(std::size_t cell_index,
                          std::size_t n_shards) noexcept;

/// The plan's cell indices owned by shard `shard` (1-based, <= n_shards),
/// in ascending order. Throws std::invalid_argument on a shard outside
/// [1, n_shards] or n_shards == 0. A shard may own zero cells when
/// n_shards exceeds the cell count.
std::vector<std::size_t> shard_cell_indices(const SweepPlan& plan,
                                            std::size_t shard,
                                            std::size_t n_shards);

}  // namespace ants::scenario
