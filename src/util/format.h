// Small numeric formatting helpers for table/CSV output.
#pragma once

#include <cstdio>
#include <string>

namespace ants::util {

/// Fixed-point with `prec` decimals.
inline std::string fmt_fixed(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

/// Shortest faithful rendering for algorithm parameters in names/labels
/// ("%g": 0.5 stays "0.5", not "0.500000").
inline std::string fmt_param(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// Exact round-trip rendering ("%.17g"): parsing the result recovers the
/// identical double. For embedding parameters in spec strings and for cache
/// records, where any truncation would silently change the computation.
inline std::string fmt_exact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Engineering-friendly: integers below 10^6 verbatim, otherwise 3 significant
/// digits with scientific notation.
inline std::string fmt_compact(double v) {
  char buf[64];
  if (v == static_cast<long long>(v) && v > -1e6 && v < 1e6) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else if (v >= 1e6 || v <= -1e6) {
    std::snprintf(buf, sizeof(buf), "%.3g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

}  // namespace ants::util
