#include "util/csv.h"

#include <stdexcept>

#include "util/format.h"

namespace ants::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), cols_(header.size()) {
  if (!out_) throw std::runtime_error("cannot open CSV file: " + path);
  if (header.empty()) throw std::invalid_argument("CSV needs >= 1 column");
  std::string line;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) line += ",";
    line += escape(header[i]);
  }
  out_ << line << "\n";
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != cols_) throw std::invalid_argument("CSV row width");
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) line += ",";
    line += escape(cells[i]);
  }
  out_ << line << "\n";
  ++rows_;
}

void CsvWriter::add_row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (const double v : cells) row.push_back(fmt_compact(v));
  add_row(row);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace ants::util
