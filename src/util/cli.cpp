#include "util/cli.h"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace ants::util {

namespace {

bool looks_like_flag(const std::string& s) {
  return s.size() > 2 && s[0] == '-' && s[1] == '-';
}

// "-5" / "-0.3" are values for the preceding flag, not flags themselves.
bool looks_like_negative_number(const std::string& s) {
  return s.size() >= 2 && s[0] == '-' &&
         (std::isdigit(static_cast<unsigned char>(s[1])) != 0 || s[1] == '.');
}

}  // namespace

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!looks_like_flag(arg)) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !looks_like_flag(argv[i + 1]) &&
               (argv[i + 1][0] != '-' ||
                looks_like_negative_number(argv[i + 1]))) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";
    }
  }
}

std::string Cli::get_string(const std::string& name, const std::string& def) {
  recognized_.insert(name);
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) {
  recognized_.insert(name);
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double def) {
  recognized_.insert(name);
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool def) {
  recognized_.insert(name);
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second != "false" && it->second != "0";
}

std::vector<std::int64_t> Cli::get_int_list(const std::string& name,
                                            std::vector<std::int64_t> def) {
  recognized_.insert(name);
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  std::vector<std::int64_t> out;
  std::stringstream ss(it->second);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::strtoll(tok.c_str(), nullptr, 10));
  }
  return out;
}

std::vector<double> Cli::get_double_list(const std::string& name,
                                         std::vector<double> def) {
  recognized_.insert(name);
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  std::vector<double> out;
  std::stringstream ss(it->second);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::strtod(tok.c_str(), nullptr));
  }
  return out;
}

bool Cli::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

void Cli::finish() const {
  std::string unknown;
  for (const auto& [name, value] : flags_) {
    if (recognized_.count(name) == 0) {
      if (!unknown.empty()) unknown += ", ";
      unknown += "--" + name;
    }
  }
  if (!unknown.empty()) {
    throw std::invalid_argument("unknown flag(s): " + unknown);
  }
}

}  // namespace ants::util
