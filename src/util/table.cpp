#include "util/table.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "util/format.h"

namespace ants::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("table needs >= 1 column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (const double v : cells) row.push_back(fmt_compact(v));
  add_row(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c] << std::string(width[c] - cells[c].size(), ' ');
      os << (c + 1 == cells.size() ? "\n" : "  ");
    }
  };
  emit(headers_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

void Table::print_markdown(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (const auto& cell : cells) os << " " << cell << " |";
    os << "\n";
  };
  emit(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << "\n";
  for (const auto& row : rows_) emit(row);
}

}  // namespace ants::util
