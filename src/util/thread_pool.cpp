#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace ants::util {

unsigned default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

unsigned parallel_workers(std::size_t n, unsigned threads) {
  if (n <= 1) return 1;
  if (threads == 0) threads = default_thread_count();
  return static_cast<unsigned>(std::max<std::size_t>(
      std::min<std::size_t>(threads, n), 1));
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, unsigned)>& body,
                  unsigned threads) {
  // Trivial work runs inline before anything else is even computed: no
  // hardware_concurrency query, no thread spawn/join. Sweep schedulers call
  // this per cell, so the n <= 1 path must stay free.
  if (n == 0) return;
  if (n == 1) {
    body(0, 0);
    return;
  }
  if (threads == 0) threads = default_thread_count();
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, n));

  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i, 0);
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;
  // Dynamic chunking via a shared counter: trials have wildly uneven cost
  // (heavy-tailed search times), so static partitioning would leave threads
  // idle behind one unlucky chunk.
  std::atomic<std::size_t> next{0};
  // Cooperative cancellation: once any item throws, the run is failing and
  // the rethrow below is inevitable — workers checking this flag in the
  // claim loop stop promptly instead of draining every remaining item
  // first (a failing multi-hour sweep must not run to completion before
  // reporting the error). In-flight items still finish; only new claims
  // stop.
  std::atomic<bool> abort{false};

  const auto worker = [&](unsigned id) {
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i, id);
      } catch (...) {
        abort.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  // The calling thread takes worker id 0; spawned workers take 1..threads-1.
  for (unsigned t = 1; t < threads; ++t) pool.emplace_back(worker, t);
  worker(0);
  for (auto& th : pool) th.join();

  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  unsigned threads) {
  parallel_for(
      n, [&body](std::size_t i, unsigned) { body(i); }, threads);
}

}  // namespace ants::util
