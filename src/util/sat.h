// Saturating 64-bit arithmetic.
//
// Simulation clocks and durations are int64 "steps". A few algorithm
// parameters (notably the harmonic algorithm's spiral budget d^(2+delta))
// have heavy-tailed distributions whose rare samples exceed 2^62 steps.
// Rather than widen every clock to 128 bits, durations saturate at kTimeCap;
// any value at the cap is far beyond every experiment's time bound, so
// saturation never changes which agent finds the treasure first.
#pragma once

#include <cmath>
#include <cstdint>

namespace ants::util {

/// All saturating results are clamped to this cap (2^62). Chosen below
/// INT64_MAX so that adding two capped values cannot overflow.
inline constexpr std::int64_t kTimeCap = std::int64_t{1} << 62;

constexpr std::int64_t sat_add(std::int64_t a, std::int64_t b) noexcept {
  if (a >= kTimeCap || b >= kTimeCap) return kTimeCap;
  const std::int64_t s = a + b;  // |a|,|b| < 2^62 so no signed overflow
  return s > kTimeCap ? kTimeCap : s;
}

constexpr std::int64_t sat_mul(std::int64_t a, std::int64_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  if (a >= kTimeCap || b >= kTimeCap) return kTimeCap;
  if (a > kTimeCap / b) return kTimeCap;
  return a * b;
}

/// Saturating conversion from double (used for fractional powers like
/// d^(2+delta)). NaN maps to the cap: a nonsensical duration must never
/// masquerade as "instant".
inline std::int64_t sat_from_double(double v) noexcept {
  if (std::isnan(v)) return kTimeCap;
  if (v <= 0) return 0;
  if (v >= static_cast<double>(kTimeCap)) return kTimeCap;
  return static_cast<std::int64_t>(v);
}

}  // namespace ants::util
