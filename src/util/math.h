// Exact integer math helpers shared by all modules.
//
// Everything here is constexpr and total: callers never need to worry about
// UB from overflow in the hot simulation paths (saturating variants are
// provided in sat.h for quantities that can explode, e.g. harmonic trip
// durations d^(2+delta)).
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

namespace ants::util {

/// Exact floor(sqrt(n)) for n >= 0. std::sqrt on int64 can be off by one
/// unit in the last place for n > 2^52, so the float estimate is fixed up.
constexpr std::int64_t isqrt(std::int64_t n) noexcept {
  assert(n >= 0);
  if (n < 2) return n;
  // floor(sqrt(2^63 - 1)); (r+1)^2 overflows past this, so clamp the estimate.
  constexpr std::int64_t kMaxRoot = 3037000499;
  auto r = static_cast<std::int64_t>(std::sqrt(static_cast<double>(n)));
  if (r > kMaxRoot) r = kMaxRoot;
  // The estimate is within +-1 of the truth after the fixup loop below.
  while (r > 0 && r * r > n) --r;
  while (r < kMaxRoot && (r + 1) * (r + 1) <= n) ++r;
  return r;
}

/// Exact ceil(sqrt(n)) for n >= 0.
constexpr std::int64_t isqrt_ceil(std::int64_t n) noexcept {
  const std::int64_t r = isqrt(n);
  return r * r == n ? r : r + 1;
}

/// floor(log2(n)) for n >= 1.
constexpr int log2_floor(std::int64_t n) noexcept {
  assert(n >= 1);
  int l = 0;
  while (n > 1) {
    n >>= 1;
    ++l;
  }
  return l;
}

/// ceil(log2(n)) for n >= 1.
constexpr int log2_ceil(std::int64_t n) noexcept {
  assert(n >= 1);
  const int l = log2_floor(n);
  return (std::int64_t{1} << l) == n ? l : l + 1;
}

/// 2^e as int64; e must fit (0 <= e <= 62).
constexpr std::int64_t pow2(int e) noexcept {
  assert(e >= 0 && e <= 62);
  return std::int64_t{1} << e;
}

/// Integer power with overflow assertion in debug builds.
constexpr std::int64_t ipow(std::int64_t base, int exp) noexcept {
  assert(exp >= 0);
  std::int64_t r = 1;
  for (int i = 0; i < exp; ++i) {
    assert(base == 0 || r <= std::numeric_limits<std::int64_t>::max() / base);
    r *= base;
  }
  return r;
}

/// Division rounding up, for positive divisors.
constexpr std::int64_t div_ceil(std::int64_t a, std::int64_t b) noexcept {
  assert(b > 0);
  return a >= 0 ? (a + b - 1) / b : -((-a) / b);
}

constexpr std::int64_t iabs(std::int64_t v) noexcept { return v < 0 ? -v : v; }

constexpr std::int64_t sign(std::int64_t v) noexcept {
  return (v > 0) - (v < 0);
}

}  // namespace ants::util
