// Minimal command-line flag parser for the experiment harnesses and examples.
//
// Flags take the forms --name=value, --name value, or bare --name (boolean
// true). Anything not starting with "--" is collected as a positional
// argument. Unknown flags are an error by default so typos in experiment
// sweeps fail loudly instead of silently running the default configuration.
//
// Usage:
//   ants::util::Cli cli(argc, argv);
//   const int trials   = cli.get_int("trials", 200);
//   const bool quick   = cli.get_bool("quick", false);
//   cli.finish();  // rejects unrecognized flags
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace ants::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// Typed accessors. Each call marks the flag as recognized; finish() then
  /// rejects any flag the program never asked about.
  std::string get_string(const std::string& name, const std::string& def);
  std::int64_t get_int(const std::string& name, std::int64_t def);
  double get_double(const std::string& name, double def);
  bool get_bool(const std::string& name, bool def);

  /// Comma-separated list of integers, e.g. --ks=1,4,16,64.
  std::vector<std::int64_t> get_int_list(const std::string& name,
                                         std::vector<std::int64_t> def);
  /// Comma-separated list of doubles, e.g. --eps=0.1,0.3,1.0.
  std::vector<double> get_double_list(const std::string& name,
                                      std::vector<double> def);

  bool has(const std::string& name) const;
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

  /// Throws std::invalid_argument listing every flag that was supplied but
  /// never queried. Call after all get_* calls.
  void finish() const;

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  mutable std::set<std::string> recognized_;
};

}  // namespace ants::util
