// CSV writer for experiment results (optional --csv=path output of benches),
// so series can be re-plotted without re-running sweeps.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace ants::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row immediately.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& cells);
  void add_row_numeric(const std::vector<double>& cells);

  /// Number of data rows written so far (excluding the header).
  std::size_t rows() const { return rows_; }

 private:
  static std::string escape(const std::string& cell);

  std::ofstream out_;
  std::size_t cols_ = 0;
  std::size_t rows_ = 0;
};

}  // namespace ants::util
