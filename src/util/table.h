// Aligned plain-text / markdown table printer used by every experiment
// harness, so the bench binaries print the rows EXPERIMENTS.md records.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ants::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; the row must have exactly as many cells as headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with fmt_compact.
  void add_row_numeric(const std::vector<double>& cells);

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return headers_.size(); }
  const std::vector<std::string>& header() const { return headers_; }
  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }

  /// Space-aligned rendering with a rule under the header.
  void print(std::ostream& os) const;
  /// GitHub-flavored markdown rendering (for EXPERIMENTS.md).
  void print_markdown(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ants::util
