// Read-only memory-mapped files for the zero-copy artifact readers.
//
// The binary shard-artifact and cache-pack readers (scenario/artifact.h,
// scenario/cache_pack.h) want the whole file addressable without a
// read-and-copy pass: a merge or catalog over millions of cells should pay
// one mmap per artifact plus per-value loads, not a line parser. This is
// the thin RAII wrapper they share — map on construction, unmap on
// destruction, nothing else.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ants::util {

/// A file mapped read-only into the address space for its lifetime.
/// Move-only; the moved-from object owns nothing. An empty file maps to a
/// valid object with size() == 0 and data() == nullptr (mmap of zero bytes
/// is undefined, so it is never attempted).
class MappedFile {
 public:
  /// Maps `path` read-only. Throws std::runtime_error (with the path and
  /// errno text) when the file cannot be opened, stat'ed, or mapped.
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::uint8_t* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace ants::util
