// Dynamic-chunk parallel_for used by the Monte-Carlo runner.
//
// Trials are embarrassingly parallel and individually cheap-to-medium; a
// work-stealing queue would be over-engineering. Each invocation spawns
// (threads-1) workers plus the calling thread; workers claim indices from a
// shared atomic counter (trial costs are heavy-tailed, so static chunks
// would idle threads behind one unlucky slice) and everything joins before
// return. Determinism: the mapping from trial index to RNG seed is fixed by
// the caller, so results are identical for any thread count.
#pragma once

#include <cstddef>
#include <functional>

namespace ants::util {

/// Runs body(i) for every i in [0, n), using up to `threads` OS threads
/// (0 = hardware concurrency). n <= 1 or an effective thread count of 1
/// runs inline and spawns nothing. Exceptions thrown by `body` propagate to
/// the caller (the first one captured wins). A throw cancels cooperatively:
/// workers stop claiming new items, in-flight items finish, and all threads
/// are joined before the exception is rethrown — a failing multi-hour sweep
/// surfaces its error promptly instead of draining the whole range.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  unsigned threads = 0);

/// As above, but the body also receives the index of the worker running it
/// (a dense id in [0, parallel_workers(n, threads))). The id identifies the
/// OS thread for the duration of the call — telemetry uses it to attribute
/// items to trace tracks without thread-local state. Inline execution
/// (n <= 1 or one effective thread) reports worker 0.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, unsigned)>& body,
                  unsigned threads = 0);

/// The number of workers a parallel_for(n, ..., threads) call will use —
/// for pre-sizing per-worker buffers.
unsigned parallel_workers(std::size_t n, unsigned threads = 0);

/// Hardware concurrency with a sane floor of 1.
unsigned default_thread_count();

}  // namespace ants::util
