#include "util/mmap.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace ants::util {

namespace {

[[noreturn]] void fail(const std::string& path, const char* what) {
  throw std::runtime_error("mmap " + path + ": " + what + " (" +
                           std::strerror(errno) + ")");
}

}  // namespace

MappedFile::MappedFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail(path, "cannot open");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail(path, "cannot stat");
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      size_ = 0;
      fail(path, "cannot map");
    }
    data_ = static_cast<const std::uint8_t*>(map);
  }
  // The mapping keeps the pages alive; the descriptor is not needed past
  // mmap.
  ::close(fd);
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<std::uint8_t*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

}  // namespace ants::util
