#include "telemetry/trace.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "scenario/json.h"
#include "telemetry/metrics.h"

namespace ants::telemetry {

TraceCollector::TraceCollector() : t0_us_(now_us()) {}

void TraceCollector::begin_workers(unsigned n_workers,
                                   std::vector<std::string> cell_labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  fold_workers_locked();
  worker_runs_.assign(n_workers, {});
  cell_labels_ = std::move(cell_labels);
  max_workers_seen_ = std::max(max_workers_seen_, n_workers);
}

void TraceCollector::record_trial(unsigned worker, std::size_t cell,
                                  std::int64_t start_us, std::int64_t end_us) {
  // No lock: `worker` indexes a slot only that worker touches, and the
  // outer vector is sized before the workers start.
  auto& runs = worker_runs_[worker];
  if (!runs.empty() && runs.back().cell == cell) {
    runs.back().end_us = end_us;
    runs.back().trials += 1;
    return;
  }
  runs.push_back(Run{cell, start_us, end_us, 1});
}

void TraceCollector::end_workers() {
  const std::lock_guard<std::mutex> lock(mutex_);
  fold_workers_locked();
}

void TraceCollector::fold_workers_locked() {
  for (std::size_t w = 0; w < worker_runs_.size(); ++w) {
    for (const Run& run : worker_runs_[w]) {
      const std::string name = run.cell < cell_labels_.size()
                                   ? cell_labels_[run.cell]
                                   : "cell " + std::to_string(run.cell);
      spans_.push_back(Span{name, static_cast<int>(w) + 1,
                            run.start_us - t0_us_, run.end_us - t0_us_,
                            run.trials});
    }
  }
  worker_runs_.clear();
  cell_labels_.clear();
}

void TraceCollector::add_phase_span(const std::string& name,
                                    std::int64_t start_us,
                                    std::int64_t end_us) {
  const std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(Span{name, 0, start_us - t0_us_, end_us - t0_us_, 0});
}

std::string TraceCollector::render() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& piece) {
    if (!first) out += ",";
    first = false;
    out += piece;
  };

  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
       "\"args\":{\"name\":\"search_lab\"}}");
  emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
       "\"args\":{\"name\":\"phases\"}}");
  for (unsigned w = 0; w < max_workers_seen_; ++w) {
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" +
         std::to_string(w + 1) + ",\"args\":{\"name\":\"worker " +
         std::to_string(w) + "\"}}");
  }

  for (const Span& span : spans_) {
    const std::int64_t dur = std::max<std::int64_t>(
        span.end_us - span.start_us, 1);  // zero-width slices vanish in UIs
    std::string piece =
        "{\"name\":\"" + scenario::detail::json_escape(span.name) +
        "\",\"ph\":\"X\",\"ts\":" + std::to_string(span.start_us) +
        ",\"dur\":" + std::to_string(dur) +
        ",\"pid\":0,\"tid\":" + std::to_string(span.tid);
    if (span.trials > 0) {
      piece += ",\"args\":{\"trials\":" + std::to_string(span.trials) + "}";
    }
    piece += "}";
    emit(piece);
  }

  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

void TraceCollector::write(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open trace file: " + path);
  os << render() << "\n";
  if (!os) throw std::runtime_error("failed writing trace file: " + path);
}

}  // namespace ants::telemetry
