// RunTelemetry: the one object a sweep carries when observability is on.
// It owns the run's counters/timers/sketch (metrics.h), the optional JSONL
// event log (events.h), and the optional Chrome trace (trace.h), and turns
// the executor's hook calls into all three at once.
//
// The sweep core never constructs one — SweepOptions carries a nullable
// pointer, and every call site guards on it, so a run without telemetry
// pays one branch per hook. See metrics.h for the strict-observation
// contract (no effect on results, cache keys, or seeds).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>

#include "telemetry/events.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace ants::telemetry {

struct TelemetryConfig {
  std::string events_path;  ///< JSONL event log ("" = off)
  std::string trace_path;   ///< Chrome trace JSON ("" = off)
  /// Minimum wall time between heartbeat events. Heartbeats piggyback on
  /// cell completions (no dedicated thread), so a single very long cell
  /// emits none — the cell_start before it is the liveness signal there.
  std::int64_t heartbeat_interval_ms = 1000;
};

enum class Phase { kPlan, kExecute, kMerge };

class RunTelemetry {
 public:
  /// Opens the configured sinks eagerly; throws std::runtime_error when an
  /// events/trace path cannot be created.
  explicit RunTelemetry(TelemetryConfig config = {});
  /// Test constructor: the event log writes to `events_os` (which must
  /// outlive this object) and the trace collector is always on.
  RunTelemetry(TelemetryConfig config, std::ostream& events_os);

  RunTelemetry(const RunTelemetry&) = delete;
  RunTelemetry& operator=(const RunTelemetry&) = delete;

  /// Declares the run and emits run_start. `shard`/`n_shards` are the
  /// 1-based shard coordinates of a sharded run; shard = 0 with
  /// n_shards = 0 means an unsharded run (reported as shard 0 of 1).
  void begin_run(const std::string& scenario, std::uint64_t cells,
                 std::uint64_t trials_per_cell, std::size_t shard = 0,
                 std::size_t n_shards = 0);

  void record_cache_hit() { metrics_.cache_hits.add(); }
  void record_cache_miss() { metrics_.cache_misses.add(); }
  /// A cache entry existed but failed to parse/verify (treated as a miss by
  /// the sweep; counted separately as an operational signal). `n` > 1
  /// reports a batch — e.g. torn journal records skipped in one pack load.
  void record_cache_corrupt(std::uint64_t n = 1) {
    metrics_.cache_corrupt.add(n);
  }
  /// The batch executor delegated `n` trials to the scalar run_trial path
  /// (plane strategies under a dynamic target process — the one remaining
  /// fallback; grid cells never delegate). Drained per trial block by the
  /// sweep from BatchRunner::take_scalar_fallbacks.
  void record_batch_scalar_fallback(std::uint64_t n) {
    metrics_.batch_scalar_fallback.add(n);
  }

  /// First trial of a cell has started executing.
  void cell_start(std::size_t cell, const std::string& name, std::int64_t k,
                  std::int64_t distance);

  /// A cell finished — either computed (duration/trials real) or served
  /// from cache (cached = true, duration_us = 0, trials = 0). `done`/`total`
  /// drive the piggybacked heartbeat.
  void cell_end(std::size_t cell, const std::string& name, std::int64_t k,
                std::int64_t distance, bool cached, std::int64_t duration_us,
                std::uint64_t trials, std::uint64_t done, std::uint64_t total);

  /// Adds `us` to a phase timer directly (for phases timed by the caller).
  void add_phase_us(Phase phase, std::int64_t us);

  /// RAII phase section: accumulates the phase timer and, when tracing,
  /// drops a span on the phases track. Null telemetry = no-op.
  class PhaseScope {
   public:
    PhaseScope(RunTelemetry* telemetry, Phase phase) noexcept
        : telemetry_(telemetry), phase_(phase),
          start_us_(telemetry ? now_us() : 0) {}
    ~PhaseScope();
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

   private:
    RunTelemetry* telemetry_;
    Phase phase_;
    std::int64_t start_us_;
  };

  /// The trace collector, or nullptr when tracing is off. The executor
  /// calls begin_workers/record_trial/end_workers on it directly.
  TraceCollector* trace() { return trace_.get(); }

  /// Emits run_end and, when tracing, writes the trace file. Idempotent.
  void finish();

  /// Snapshot of everything counted so far as the serializable record.
  RunMetrics snapshot() const;

  /// metrics_to_json(snapshot(), ...) with the identity begin_run declared.
  std::string metrics_json() const;

  const std::string& scenario() const { return scenario_; }
  std::size_t shard() const { return shard_; }
  std::size_t n_shards() const { return n_shards_; }

 private:
  struct LiveMetrics {
    Counter cells_computed;
    Counter cells_cached;
    Counter trials_executed;
    Counter cache_hits;
    Counter cache_misses;
    Counter cache_corrupt;
    Counter batch_scalar_fallback;
    Timer plan;
    Timer execute;
    Timer merge;
    DurationSketch cell_duration;
  };

  void add_phase_span(Phase phase, std::int64_t start_us, std::int64_t end_us);
  static const char* phase_name(Phase phase);

  TelemetryConfig config_;
  std::unique_ptr<EventLog> events_;
  std::unique_ptr<TraceCollector> trace_;
  LiveMetrics metrics_;

  std::string scenario_;
  std::uint64_t cells_total_ = 0;
  std::size_t shard_ = 0;
  std::size_t n_shards_ = 1;
  std::int64_t run_start_us_ = 0;
  std::atomic<std::int64_t> last_heartbeat_ms_{0};
  bool finished_ = false;
};

}  // namespace ants::telemetry
