#include "telemetry/events.h"

#include <stdexcept>

#include "scenario/json.h"
#include "telemetry/metrics.h"
#include "util/format.h"

namespace ants::telemetry {

Event& Event::num(const std::string& name, std::int64_t value) {
  fields_.emplace_back(name, std::to_string(value));
  return *this;
}

Event& Event::num(const std::string& name, std::uint64_t value) {
  fields_.emplace_back(name, std::to_string(value));
  return *this;
}

Event& Event::num_ms(const std::string& name, double ms) {
  fields_.emplace_back(name, util::fmt_exact(ms));
  return *this;
}

Event& Event::str(const std::string& name, const std::string& value) {
  fields_.emplace_back(
      name, "\"" + scenario::detail::json_escape(value) + "\"");
  return *this;
}

std::string Event::render(std::int64_t ts_ms) const {
  std::string line = "{\"event\":\"" + scenario::detail::json_escape(kind_) +
                     "\",\"ts_ms\":" + std::to_string(ts_ms);
  for (const auto& [name, raw] : fields_) {
    line += ",\"" + scenario::detail::json_escape(name) + "\":" + raw;
  }
  line += "}";
  return line;
}

EventLog::EventLog(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)), out_(owned_.get()) {
  if (!*owned_) {
    throw std::runtime_error("cannot open event log: " + path);
  }
}

EventLog::EventLog(std::ostream& os) : out_(&os) {}

void EventLog::write(const Event& event) {
  const std::string line = event.render(wall_ms());
  const std::lock_guard<std::mutex> lock(mutex_);
  *out_ << line << "\n";
  // Per-line flush: the log's whole point is that a monitor reads it WHILE
  // the run is alive; buffered heartbeats would defeat it.
  out_->flush();
}

}  // namespace ants::telemetry
