#include "telemetry/metrics.h"

#include <chrono>
#include <cmath>

#include "scenario/json.h"
#include "util/format.h"

namespace ants::telemetry {

std::int64_t now_us() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::int64_t wall_ms() noexcept {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// --- DurationSketch --------------------------------------------------------

DurationSketch::DurationSketch(const DurationSketch& other)
    : hist_(kLog2Lo, kLog2Hi, kBins) {
  const std::lock_guard<std::mutex> lock(other.mutex_);
  hist_ = other.hist_;
}

DurationSketch& DurationSketch::operator=(const DurationSketch& other) {
  if (this == &other) return *this;
  stats::Histogram copy(kLog2Lo, kLog2Hi, kBins);
  {
    const std::lock_guard<std::mutex> lock(other.mutex_);
    copy = other.hist_;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  hist_ = copy;
  return *this;
}

void DurationSketch::add_us(double us) {
  // log2 of anything below 1 us would go negative; saturate at the first
  // bin instead (the histogram's underflow handling does exactly that).
  const double x = us < 1.0 ? kLog2Lo - 1.0 : std::log2(us);
  const std::lock_guard<std::mutex> lock(mutex_);
  hist_.add(x);
}

double DurationSketch::quantile_us(double p) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const double log2_q = hist_.quantile(p);
  return std::isnan(log2_q) ? log2_q : std::exp2(log2_q);
}

std::uint64_t DurationSketch::total() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hist_.total();
}

void DurationSketch::merge(const DurationSketch& other) {
  // Snapshot first so self-merge and lock order are non-issues.
  const stats::Histogram theirs = other.log2_histogram();
  const std::lock_guard<std::mutex> lock(mutex_);
  hist_.merge(theirs);
}

std::vector<std::pair<std::size_t, std::uint64_t>>
DurationSketch::sparse_bins() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::size_t, std::uint64_t>> out;
  for (std::size_t b = 0; b < hist_.bins(); ++b) {
    if (hist_.count(b) > 0) out.emplace_back(b, hist_.count(b));
  }
  return out;
}

void DurationSketch::add_sparse_bins(
    const std::vector<std::pair<std::size_t, std::uint64_t>>& bins) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [bin, count] : bins) hist_.add_count(bin, count);
}

std::pair<std::uint64_t, std::uint64_t> DurationSketch::saturation() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {hist_.underflow(), hist_.overflow()};
}

void DurationSketch::add_saturation(std::uint64_t under, std::uint64_t over) {
  const std::lock_guard<std::mutex> lock(mutex_);
  hist_.add_saturation(under, over);
}

stats::Histogram DurationSketch::log2_histogram() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hist_;
}

// --- RunMetrics ------------------------------------------------------------

double RunMetrics::trials_per_sec() const noexcept {
  if (trials_executed == 0 || execute_us <= 0) return 0.0;
  return static_cast<double>(trials_executed) /
         (static_cast<double>(execute_us) / 1e6);
}

void RunMetrics::merge(const RunMetrics& other) {
  cells_total += other.cells_total;
  cells_computed += other.cells_computed;
  cells_cached += other.cells_cached;
  trials_executed += other.trials_executed;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  cache_corrupt += other.cache_corrupt;
  batch_scalar_fallback += other.batch_scalar_fallback;
  plan_us += other.plan_us;
  execute_us += other.execute_us;
  merge_us += other.merge_us;
  cell_duration.merge(other.cell_duration);
}

// --- JSON (de)serialization ------------------------------------------------

namespace {

constexpr const char* kMetricsKind = "ants-run-metrics";
constexpr int kMetricsFormatVersion = 1;

/// Milliseconds with microsecond math kept exact until the final render.
std::string fmt_ms(std::int64_t us) {
  return util::fmt_exact(static_cast<double>(us) / 1000.0);
}

/// NaN (empty sketch) must not leak into the JSON — emit 0 instead.
std::string fmt_quantile_ms(const DurationSketch& sketch, double p) {
  const double us = sketch.quantile_us(p);
  return util::fmt_exact(std::isnan(us) ? 0.0 : us / 1000.0);
}

}  // namespace

std::string metrics_to_json(const RunMetrics& metrics,
                            const std::string& scenario, std::size_t shard,
                            std::size_t n_shards) {
  std::string out = "{";
  out += "\"kind\":\"" + std::string(kMetricsKind) + "\"";
  out += ",\"format_version\":" + std::to_string(kMetricsFormatVersion);
  out += ",\"scenario\":\"" + scenario::detail::json_escape(scenario) + "\"";
  out += ",\"shard\":" + std::to_string(shard);
  out += ",\"n_shards\":" + std::to_string(n_shards);
  out += ",\"cells_total\":" + std::to_string(metrics.cells_total);
  out += ",\"cells_computed\":" + std::to_string(metrics.cells_computed);
  out += ",\"cells_cached\":" + std::to_string(metrics.cells_cached);
  out += ",\"trials_executed\":" + std::to_string(metrics.trials_executed);
  out += ",\"cache_hits\":" + std::to_string(metrics.cache_hits);
  out += ",\"cache_misses\":" + std::to_string(metrics.cache_misses);
  out += ",\"cache_corrupt\":" + std::to_string(metrics.cache_corrupt);
  out += ",\"batch_scalar_fallback\":" +
         std::to_string(metrics.batch_scalar_fallback);
  out += ",\"plan_ms\":" + fmt_ms(metrics.plan_us);
  out += ",\"execute_ms\":" + fmt_ms(metrics.execute_us);
  out += ",\"merge_ms\":" + fmt_ms(metrics.merge_us);
  out += ",\"trials_per_sec\":" + util::fmt_exact(metrics.trials_per_sec());
  out += ",\"cell_p50_ms\":" + fmt_quantile_ms(metrics.cell_duration, 0.50);
  out += ",\"cell_p90_ms\":" + fmt_quantile_ms(metrics.cell_duration, 0.90);
  out += ",\"cell_p99_ms\":" + fmt_quantile_ms(metrics.cell_duration, 0.99);
  // The sketch itself travels as flat (bin, count) pairs so a reader (or
  // merge_shards) can re-aggregate exactly; the _ms quantiles above are
  // derived convenience values.
  out += ",\"cell_hist_bins\":" + std::to_string(DurationSketch::kBins);
  // Saturation counters travel separately: the sparse bins land clipped
  // samples in the edge bins, but a reader cannot tell in-range edge-bin
  // samples from clipped ones without these.
  const auto [hist_under, hist_over] = metrics.cell_duration.saturation();
  out += ",\"cell_hist_under\":" + std::to_string(hist_under);
  out += ",\"cell_hist_over\":" + std::to_string(hist_over);
  out += ",\"cell_hist\":[";
  bool first = true;
  for (const auto& [bin, count] : metrics.cell_duration.sparse_bins()) {
    if (!first) out += ",";
    first = false;
    out += std::to_string(bin) + "," + std::to_string(count);
  }
  out += "]}";
  return out;
}

RunMetrics metrics_from_json(const std::string& line, std::string* scenario,
                             std::size_t* shard, std::size_t* n_shards) {
  namespace det = scenario::detail;
  det::JsonLineParser parser(line);
  const auto fields = parser.parse_object();
  const auto find = [&](const char* key) -> const det::JsonValue* {
    for (const auto& [name, value] : fields) {
      if (name == key) return &value;
    }
    return nullptr;
  };
  const auto number = [&](const char* key) -> double {
    const det::JsonValue* v = find(key);
    if (v == nullptr || v->kind != det::JsonValue::Kind::kNumber) {
      det::bad("run metrics: missing numeric field '" + std::string(key) +
               "'");
    }
    return det::parse_double("run metrics", v->string);
  };

  const det::JsonValue* kind = find("kind");
  if (kind == nullptr || kind->string != kMetricsKind) {
    det::bad("run metrics: not a " + std::string(kMetricsKind) + " record");
  }
  if (static_cast<int>(number("format_version")) != kMetricsFormatVersion) {
    det::bad("run metrics: unsupported format version");
  }

  RunMetrics m;
  m.cells_total = static_cast<std::uint64_t>(number("cells_total"));
  m.cells_computed = static_cast<std::uint64_t>(number("cells_computed"));
  m.cells_cached = static_cast<std::uint64_t>(number("cells_cached"));
  m.trials_executed = static_cast<std::uint64_t>(number("trials_executed"));
  m.cache_hits = static_cast<std::uint64_t>(number("cache_hits"));
  m.cache_misses = static_cast<std::uint64_t>(number("cache_misses"));
  // llround, not truncation: us -> ms -> us crosses two float roundings, and
  // truncating x.99999... would silently lose a microsecond.
  m.plan_us = std::llround(number("plan_ms") * 1000.0);
  m.execute_us = std::llround(number("execute_ms") * 1000.0);
  m.merge_us = std::llround(number("merge_ms") * 1000.0);

  if (static_cast<std::size_t>(number("cell_hist_bins")) !=
      DurationSketch::kBins) {
    det::bad("run metrics: incompatible sketch binning");
  }
  const det::JsonValue* hist = find("cell_hist");
  if (hist == nullptr || hist->kind != det::JsonValue::Kind::kArray ||
      hist->array.size() % 2 != 0) {
    det::bad("run metrics: malformed cell_hist (expects bin,count pairs)");
  }
  std::vector<std::pair<std::size_t, std::uint64_t>> bins;
  for (std::size_t i = 0; i + 1 < hist->array.size(); i += 2) {
    bins.emplace_back(
        static_cast<std::size_t>(
            det::parse_double("cell_hist bin", hist->array[i].string)),
        static_cast<std::uint64_t>(
            det::parse_double("cell_hist count", hist->array[i + 1].string)));
  }
  m.cell_duration.add_sparse_bins(bins);
  // Lenient read (default 0): records written before the saturation
  // counters were serialized simply restore none — exactly the old
  // behavior for old data.
  const auto optional_count = [&](const char* key) -> std::uint64_t {
    const det::JsonValue* v = find(key);
    if (v == nullptr || v->kind != det::JsonValue::Kind::kNumber) return 0;
    return static_cast<std::uint64_t>(det::parse_double("run metrics",
                                                        v->string));
  };
  m.cell_duration.add_saturation(optional_count("cell_hist_under"),
                                 optional_count("cell_hist_over"));
  // Same lenient treatment: cache_corrupt and batch_scalar_fallback
  // postdate the first metrics records, so their absence reads as zero.
  m.cache_corrupt = optional_count("cache_corrupt");
  m.batch_scalar_fallback = optional_count("batch_scalar_fallback");

  if (scenario != nullptr) {
    const det::JsonValue* name = find("scenario");
    *scenario = name != nullptr ? name->string : "";
  }
  if (shard != nullptr) *shard = static_cast<std::size_t>(number("shard"));
  if (n_shards != nullptr) {
    *n_shards = static_cast<std::size_t>(number("n_shards"));
  }
  return m;
}

}  // namespace ants::telemetry
