// Low-overhead run metrics: monotonic counters, wall-time phase timers, and
// stats::Histogram-backed duration sketches.
//
// Contract: telemetry is strictly observational. Nothing here may feed a
// cache key, a cell seed, or a sink column — result rows must stay
// byte-identical with telemetry on or off (test-enforced against the golden
// CSVs). And it must cost nothing when off: every instrumented call site
// guards on a null telemetry pointer, so a disabled run pays one branch per
// hook, not a clock read (the gating benchmark job pins this).
//
// Counters and timers are thread-safe (relaxed atomics — they are
// monotonic tallies, not synchronization). DurationSketch serializes adds
// under its own mutex; samples are per-cell completions and phase ends, so
// contention is negligible next to trial execution.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "stats/histogram.h"

namespace ants::telemetry {

/// Monotonic microseconds from the steady clock — for durations and trace
/// timestamps, never wall-calendar time.
std::int64_t now_us() noexcept;

/// Wall-clock milliseconds since the Unix epoch — for event-log timestamps
/// a human or a campaign daemon can correlate across machines.
std::int64_t wall_ms() noexcept;

/// A monotonic tally. Copyable snapshot via value().
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Accumulates wall time across (possibly concurrent) timed sections.
class Timer {
 public:
  /// RAII section: adds the elapsed microseconds to the timer on scope
  /// exit. A null timer is a no-op — call sites stay unconditional.
  class Scope {
   public:
    explicit Scope(Timer* timer) noexcept
        : timer_(timer), start_us_(timer ? now_us() : 0) {}
    ~Scope() {
      if (timer_ != nullptr) timer_->add_us(now_us() - start_us_);
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Timer* timer_;
    std::int64_t start_us_;
  };

  void add_us(std::int64_t us) noexcept {
    us_.fetch_add(us, std::memory_order_relaxed);
  }
  std::int64_t value_us() const noexcept {
    return us_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> us_{0};
};

/// Bounded-memory duration distribution: a fixed-bin stats::Histogram over
/// log2(microseconds), giving ~5% relative resolution from 1 us to ~2 weeks
/// out of kBins * 8 bytes. The fixed binning is what makes shard
/// aggregation exact — merging is a bin-wise sum, so quantiles of a merged
/// sketch equal quantiles of the sketch a single process would have built.
class DurationSketch {
 public:
  /// log2-domain extent: [2^0, 2^40) us. Out-of-range samples saturate
  /// into the edge bins (sub-microsecond cells read as ~1 us).
  static constexpr double kLog2Lo = 0.0;
  static constexpr double kLog2Hi = 40.0;
  static constexpr std::size_t kBins = 512;

  DurationSketch() : hist_(kLog2Lo, kLog2Hi, kBins) {}
  DurationSketch(const DurationSketch& other);
  DurationSketch& operator=(const DurationSketch& other);

  void add_us(double us);

  /// p-quantile in microseconds (NaN when empty).
  double quantile_us(double p) const;

  std::uint64_t total() const;

  /// Exact bin-wise aggregation (see class comment).
  void merge(const DurationSketch& other);

  /// Occupied bins as (bin, count) pairs — the sparse serialization the
  /// shard artifacts and metrics JSON embed.
  std::vector<std::pair<std::size_t, std::uint64_t>> sparse_bins() const;

  /// Rebuilds a serialized sketch. Throws std::out_of_range on a bin index
  /// from an incompatible producer.
  void add_sparse_bins(
      const std::vector<std::pair<std::size_t, std::uint64_t>>& bins);

  /// (underflow, overflow) saturation counters: samples clipped into the
  /// edge bins. The sparse bins alone cannot reconstruct these — a reader
  /// must carry them separately (metrics JSON: cell_hist_under/_over) and
  /// restore them with add_saturation, or the rebuilt sketch silently
  /// misreads clipped samples as in-range values.
  std::pair<std::uint64_t, std::uint64_t> saturation() const;
  void add_saturation(std::uint64_t under, std::uint64_t over);

  /// A copy of the underlying log2-domain histogram (for rendering).
  stats::Histogram log2_histogram() const;

 private:
  mutable std::mutex mutex_;
  stats::Histogram hist_;
};

/// The serializable per-run (or per-shard) metrics record: what
/// `--metrics-out` writes, what shard artifacts embed, and what
/// merge_shards re-aggregates. Plain data — collection lives in
/// RunTelemetry (run_telemetry.h).
struct RunMetrics {
  std::uint64_t cells_total = 0;     ///< cells this run was asked for
  std::uint64_t cells_computed = 0;  ///< cells that actually ran trials
  std::uint64_t cells_cached = 0;    ///< cells served from the result cache
  std::uint64_t trials_executed = 0; ///< trials run (cached cells run none)
  std::uint64_t cache_hits = 0;      ///< cache lookups that hit
  std::uint64_t cache_misses = 0;    ///< cache lookups that missed
  /// Cache entries that existed but failed to parse or verify (torn
  /// per-hash file, journal record with a bad CRC). Each also counts as a
  /// miss — the cell recomputes and the store heals the cache — but a
  /// corruption rate is an operational signal a plain miss is not.
  std::uint64_t cache_corrupt = 0;
  /// Trials the batch executor delegated to the scalar run_trial path.
  /// Since the batch dynamic SoA paths landed, only plane strategies under
  /// a dynamic target process (windows/collect) delegate; grid cells never
  /// do. Nonzero outside that case means a routing regression.
  std::uint64_t batch_scalar_fallback = 0;
  std::int64_t plan_us = 0;          ///< plan phase (flatten/make_plan) wall
  std::int64_t execute_us = 0;       ///< execute phase (trial loop) wall
  std::int64_t merge_us = 0;         ///< merge phase (merge_shards) wall
  DurationSketch cell_duration;      ///< computed-cell wall times

  /// Trials per wall-second of the execute phase (0 when nothing ran).
  double trials_per_sec() const noexcept;

  /// Counter sums + phase-time sums + exact sketch merge — how
  /// merge_shards folds per-shard metrics into a campaign-level record.
  void merge(const RunMetrics& other);
};

/// One line of flat JSON (no trailing newline) carrying every RunMetrics
/// field, the derived trials/sec and p50/p90/p99 cell durations, and the
/// sparse sketch bins. `scenario`/`shard`/`n_shards` identify the run
/// (shard = 0 means unsharded).
std::string metrics_to_json(const RunMetrics& metrics,
                            const std::string& scenario, std::size_t shard,
                            std::size_t n_shards);

/// Parses metrics_to_json output (e.g. for `search_lab report`). Throws
/// std::invalid_argument on malformed input; `scenario`/`shard`/`n_shards`
/// receive the identity fields when non-null.
RunMetrics metrics_from_json(const std::string& line, std::string* scenario,
                             std::size_t* shard, std::size_t* n_shards);

}  // namespace ants::telemetry
