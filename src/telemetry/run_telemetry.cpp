#include "telemetry/run_telemetry.h"

#include <utility>

#include "util/format.h"

namespace ants::telemetry {

RunTelemetry::RunTelemetry(TelemetryConfig config)
    : config_(std::move(config)) {
  if (!config_.events_path.empty()) {
    events_ = std::make_unique<EventLog>(config_.events_path);
  }
  if (!config_.trace_path.empty()) {
    trace_ = std::make_unique<TraceCollector>();
  }
}

RunTelemetry::RunTelemetry(TelemetryConfig config, std::ostream& events_os)
    : config_(std::move(config)),
      events_(std::make_unique<EventLog>(events_os)),
      trace_(std::make_unique<TraceCollector>()) {}

void RunTelemetry::begin_run(const std::string& scenario, std::uint64_t cells,
                             std::uint64_t trials_per_cell, std::size_t shard,
                             std::size_t n_shards) {
  scenario_ = scenario;
  cells_total_ = cells;
  shard_ = shard;
  n_shards_ = n_shards == 0 ? 1 : n_shards;
  run_start_us_ = now_us();
  last_heartbeat_ms_.store(wall_ms(), std::memory_order_relaxed);
  if (events_) {
    events_->write(Event("run_start")
                       .str("scenario", scenario_)
                       .num("cells", cells)
                       .num("trials_per_cell", trials_per_cell)
                       .num("shard", static_cast<std::uint64_t>(shard_))
                       .num("n_shards", static_cast<std::uint64_t>(n_shards_)));
  }
}

void RunTelemetry::cell_start(std::size_t cell, const std::string& name,
                              std::int64_t k, std::int64_t distance) {
  if (events_) {
    events_->write(Event("cell_start")
                       .num("cell", static_cast<std::uint64_t>(cell))
                       .str("name", name)
                       .num("k", k)
                       .num("D", distance));
  }
}

void RunTelemetry::cell_end(std::size_t cell, const std::string& name,
                            std::int64_t k, std::int64_t distance, bool cached,
                            std::int64_t duration_us, std::uint64_t trials,
                            std::uint64_t done, std::uint64_t total) {
  if (cached) {
    metrics_.cells_cached.add();
  } else {
    metrics_.cells_computed.add();
    metrics_.trials_executed.add(trials);
    metrics_.cell_duration.add_us(static_cast<double>(duration_us));
  }
  if (!events_) return;
  events_->write(Event("cell_end")
                     .num("cell", static_cast<std::uint64_t>(cell))
                     .str("name", name)
                     .num("k", k)
                     .num("D", distance)
                     .str("status", cached ? "cached" : "computed")
                     .num_ms("duration_ms",
                             static_cast<double>(duration_us) / 1000.0)
                     .num("trials", trials));

  // Heartbeat, rate-limited by wall time. compare_exchange keeps exactly
  // one of several concurrently finishing cells as the emitter.
  const std::int64_t now = wall_ms();
  std::int64_t last = last_heartbeat_ms_.load(std::memory_order_relaxed);
  if (now - last < config_.heartbeat_interval_ms) return;
  if (!last_heartbeat_ms_.compare_exchange_strong(last, now,
                                                  std::memory_order_relaxed)) {
    return;
  }
  events_->write(Event("heartbeat")
                     .num("done", done)
                     .num("total", total)
                     .num("trials_executed", metrics_.trials_executed.value()));
}

void RunTelemetry::add_phase_us(Phase phase, std::int64_t us) {
  switch (phase) {
    case Phase::kPlan: metrics_.plan.add_us(us); break;
    case Phase::kExecute: metrics_.execute.add_us(us); break;
    case Phase::kMerge: metrics_.merge.add_us(us); break;
  }
}

const char* RunTelemetry::phase_name(Phase phase) {
  switch (phase) {
    case Phase::kPlan: return "plan";
    case Phase::kExecute: return "execute";
    case Phase::kMerge: return "merge";
  }
  return "?";
}

void RunTelemetry::add_phase_span(Phase phase, std::int64_t start_us,
                                  std::int64_t end_us) {
  if (trace_) trace_->add_phase_span(phase_name(phase), start_us, end_us);
}

RunTelemetry::PhaseScope::~PhaseScope() {
  if (telemetry_ == nullptr) return;
  const std::int64_t end = now_us();
  telemetry_->add_phase_us(phase_, end - start_us_);
  telemetry_->add_phase_span(phase_, start_us_, end);
}

void RunTelemetry::finish() {
  if (finished_) return;
  finished_ = true;
  if (events_) {
    const double duration_ms =
        static_cast<double>(now_us() - run_start_us_) / 1000.0;
    events_->write(
        Event("run_end")
            .num("cells_computed", metrics_.cells_computed.value())
            .num("cells_cached", metrics_.cells_cached.value())
            .num("trials_executed", metrics_.trials_executed.value())
            .num_ms("duration_ms", duration_ms));
  }
  if (trace_ && !config_.trace_path.empty()) {
    trace_->write(config_.trace_path);
  }
}

RunMetrics RunTelemetry::snapshot() const {
  RunMetrics m;
  m.cells_total = cells_total_;
  m.cells_computed = metrics_.cells_computed.value();
  m.cells_cached = metrics_.cells_cached.value();
  m.trials_executed = metrics_.trials_executed.value();
  m.cache_hits = metrics_.cache_hits.value();
  m.cache_misses = metrics_.cache_misses.value();
  m.cache_corrupt = metrics_.cache_corrupt.value();
  m.batch_scalar_fallback = metrics_.batch_scalar_fallback.value();
  m.plan_us = metrics_.plan.value_us();
  m.execute_us = metrics_.execute.value_us();
  m.merge_us = metrics_.merge.value_us();
  m.cell_duration = metrics_.cell_duration;
  return m;
}

std::string RunTelemetry::metrics_json() const {
  return metrics_to_json(snapshot(), scenario_, shard_, n_shards_);
}

}  // namespace ants::telemetry
