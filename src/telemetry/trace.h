// Chrome trace-event collector: records where each worker thread's wall
// time went during a sweep and exports the Trace Event Format JSON that
// chrome://tracing and Perfetto load directly.
//
// Track layout: tid 0 is the "phases" track (plan / execute / merge
// spans); tid 1..N are one track per scheduler worker, showing which cell
// that worker was executing when. Per-trial events would be absurdly
// voluminous (millions of slices), so consecutive trials of the SAME cell
// on the same worker coalesce into one span as they are recorded — the
// trace grows with the number of times a worker switches cells, not with
// the trial count.
//
// Timestamps are microseconds relative to the collector's construction
// (the Trace Event Format's native unit), taken from the steady clock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ants::telemetry {

class TraceCollector {
 public:
  TraceCollector();

  /// Microsecond origin of the trace — spans are stored relative to it.
  std::int64_t t0_us() const noexcept { return t0_us_; }

  /// Declares the worker tracks of an upcoming execute phase and the
  /// display labels of the cells they will run (index-parallel to the
  /// `cell` argument of record_trial). Must be called before record_trial;
  /// folds any previous execute phase's runs first.
  void begin_workers(unsigned n_workers, std::vector<std::string> cell_labels);

  /// Records one trial of `cell` on `worker`. Lock-free across workers:
  /// each worker index owns its buffer slot, so the per-trial cost is a
  /// branch and (rarely) a vector push. Call only between begin_workers
  /// and end_workers, with worker < n_workers.
  void record_trial(unsigned worker, std::size_t cell, std::int64_t start_us,
                    std::int64_t end_us);

  /// Folds the per-worker run buffers into finished spans. Called by the
  /// executor after its parallel_for joins.
  void end_workers();

  /// A span on the phases track (tid 0): plan / execute / merge.
  void add_phase_span(const std::string& name, std::int64_t start_us,
                      std::int64_t end_us);

  /// Writes the collected trace as Trace Event Format JSON (single line:
  /// {"traceEvents":[...],"displayTimeUnit":"ms"}). Throws
  /// std::runtime_error when the file cannot be written.
  void write(const std::string& path) const;

  /// The serialized trace (what write() puts in the file) — for tests.
  std::string render() const;

 private:
  struct Span {
    std::string name;
    int tid = 0;
    std::int64_t start_us = 0;  ///< relative to t0_us_
    std::int64_t end_us = 0;
    std::uint64_t trials = 0;  ///< 0 = not a cell span
  };
  /// A coalesced stretch of same-cell trials on one worker.
  struct Run {
    std::size_t cell = 0;
    std::int64_t start_us = 0;
    std::int64_t end_us = 0;
    std::uint64_t trials = 0;
  };

  void fold_workers_locked();

  std::int64_t t0_us_;
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
  std::vector<std::vector<Run>> worker_runs_;
  std::vector<std::string> cell_labels_;
  unsigned max_workers_seen_ = 0;
};

}  // namespace ants::telemetry
