// Structured JSONL event log: one flat JSON object per line, appended and
// flushed as the run progresses so a tail -f (or the future campaign
// daemon) watches a live run.
//
// Event kinds and their fields (every event also carries "event" and
// "ts_ms", wall milliseconds since the Unix epoch):
//
//   run_start   scenario, cells, trials_per_cell, shard, n_shards
//   cell_start  cell (plan index), name (strategy), k, D
//   cell_end    cell, name, k, D, status ("computed"|"cached"),
//               duration_ms (0 for cached), trials
//   heartbeat   done, total, trials_executed — emitted at most once per
//               heartbeat interval as cells finish, so a silent shard can
//               be told apart from a stuck one by log mtime alone
//   run_end     cells_computed, cells_cached, trials_executed, duration_ms
//
// The schema is append-only: consumers must ignore unknown fields and
// unknown kinds (CI validates exactly this contract with a python
// one-liner). Writing is mutex-serialized — events come from cell
// completions, not trials, so the lock is cold.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace ants::telemetry {

/// Builder for one event line. Field order is preserved as written.
class Event {
 public:
  explicit Event(std::string kind) : kind_(std::move(kind)) {}

  Event& num(const std::string& name, std::int64_t value);
  Event& num(const std::string& name, std::uint64_t value);
  Event& num_ms(const std::string& name, double ms);  ///< fractional ms
  Event& str(const std::string& name, const std::string& value);

  /// The serialized line (no trailing newline); `ts_ms` is stamped by the
  /// log at write time, so one Event can only be written once.
  std::string render(std::int64_t ts_ms) const;

  const std::string& kind() const { return kind_; }

 private:
  std::string kind_;
  std::vector<std::pair<std::string, std::string>> fields_;  ///< raw JSON
};

/// Thread-safe JSONL writer. Opens the file eagerly (throws
/// std::runtime_error on failure — a telemetry path that cannot be written
/// is a configuration error, not something to drop silently) and flushes
/// every line.
class EventLog {
 public:
  explicit EventLog(const std::string& path);
  /// Test/embedding constructor: events go to `os`, which must outlive the
  /// log.
  explicit EventLog(std::ostream& os);

  void write(const Event& event);

 private:
  std::mutex mutex_;
  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_;
};

}  // namespace ants::telemetry
