// The sharded sweep pipeline: plan-layer partitioning, shard execution,
// artifact round-trips, merge verification, and resumability.
//
// Headline invariant (the acceptance bar of the sharded runner): for every
// pinned golden spec, merging the artifacts of ANY shard count reproduces
// the single-process run_sweep CSV byte-for-byte. Sharding changes where a
// cell runs, never what it computes — cell seeds depend only on the spec.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "scenario/artifact.h"
#include "scenario/plan.h"
#include "scenario/sink.h"
#include "scenario/spec.h"
#include "scenario/sweep.h"

#ifndef ANTS_SOURCE_DIR
#error "ANTS_SOURCE_DIR must point at the repository root"
#endif

namespace ants::scenario {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

ScenarioSpec golden_spec(const std::string& stem) {
  const std::string dir = std::string(ANTS_SOURCE_DIR) + "/tests/golden/";
  const std::vector<ScenarioSpec> specs = parse_spec_file(dir + stem +
                                                          ".spec");
  EXPECT_EQ(specs.size(), 1u);
  return specs.front();
}

std::string golden_csv(const std::string& stem) {
  return read_file(std::string(ANTS_SOURCE_DIR) + "/tests/golden/" + stem +
                   ".golden.csv");
}

/// A scratch directory under the test temp dir, wiped on entry so stale
/// artifacts from a previous run never leak into assertions.
std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ants_shard_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Renders results to CSV bytes through the same CsvSink path search_lab
/// uses.
std::string render_csv(const ScenarioSpec& spec,
                       const std::vector<CellResult>& results,
                       const std::string& path) {
  {
    CsvSink csv(path);
    std::vector<ResultSink*> sinks = {&csv};
    emit_results(spec, results, sinks);
  }
  return read_file(path);
}

/// Runs every shard of an N-way split, writes the artifacts, returns their
/// paths.
std::vector<std::string> run_all_shards(const SweepPlan& plan,
                                        std::size_t n_shards,
                                        const std::string& dir,
                                        const SweepOptions& opt = {}) {
  std::vector<std::string> paths;
  for (std::size_t shard = 1; shard <= n_shards; ++shard) {
    const std::vector<CellResult> results =
        run_shard(plan, shard, n_shards, opt);
    const std::string path =
        dir + "/shard_" + std::to_string(shard) + ".jsonl";
    write_shard(path, plan, shard, n_shards, results);
    paths.push_back(path);
  }
  return paths;
}

// --- plan layer ------------------------------------------------------------

TEST(SweepPlan, ShardPartitionIsDisjointAndComplete) {
  const SweepPlan plan = make_plan(golden_spec("step_async"));
  ASSERT_GT(plan.cells.size(), 0u);
  for (const std::size_t n_shards : {1u, 3u, 5u, 7u, 100u}) {
    std::vector<bool> owned(plan.cells.size(), false);
    for (std::size_t shard = 1; shard <= n_shards; ++shard) {
      for (const std::size_t i : shard_cell_indices(plan, shard, n_shards)) {
        EXPECT_FALSE(owned[i]) << "cell " << i << " in two shards";
        owned[i] = true;
        EXPECT_EQ(shard_of_cell(i, n_shards), shard);
      }
    }
    for (std::size_t i = 0; i < owned.size(); ++i) {
      EXPECT_TRUE(owned[i]) << "cell " << i << " unowned at N=" << n_shards;
    }
  }
}

TEST(SweepPlan, ShardAssignmentIsAPureFunctionOfTheSpec) {
  // Two independently built plans from the same parsed spec agree on every
  // cell and every shard — the property that lets N processes partition
  // without coordinating.
  const SweepPlan a = make_plan(golden_spec("plane_base"));
  const SweepPlan b = make_plan(golden_spec("plane_base"));
  ASSERT_EQ(a.cells.size(), b.cells.size());
  EXPECT_EQ(a.spec_hash, b.spec_hash);
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].hash, b.cells[i].hash);
    EXPECT_EQ(a.cells[i].seed, b.cells[i].seed);
  }
  EXPECT_EQ(shard_cell_indices(a, 2, 3), shard_cell_indices(b, 2, 3));
}

TEST(SweepPlan, SpecHashSeparatesSpecs) {
  ScenarioSpec spec = golden_spec("step_async");
  const std::uint64_t base = hash_spec(spec);
  ScenarioSpec reparsed = parse_spec_text(spec.canonical()).front();
  EXPECT_EQ(hash_spec(reparsed), base) << "canonical form must hash stably";
  spec.seed += 1;
  EXPECT_NE(hash_spec(spec), base);
  spec.seed -= 1;
  spec.trials += 1;
  EXPECT_NE(hash_spec(spec), base);
}

TEST(SweepPlan, ShardIndicesRejectOutOfRangeShards) {
  const SweepPlan plan = make_plan(golden_spec("step_async"));
  EXPECT_THROW(shard_cell_indices(plan, 0, 3), std::invalid_argument);
  EXPECT_THROW(shard_cell_indices(plan, 4, 3), std::invalid_argument);
  EXPECT_THROW(shard_cell_indices(plan, 1, 0), std::invalid_argument);
}

// --- the headline invariant ------------------------------------------------

void check_shard_union_identity(const std::string& stem) {
  const ScenarioSpec spec = golden_spec(stem);
  const std::string golden = golden_csv(stem);
  const SweepPlan plan = make_plan(spec);

  for (const std::size_t n_shards : {1u, 3u, 5u}) {
    const std::string dir =
        scratch_dir(stem + "_n" + std::to_string(n_shards));
    const std::vector<std::string> paths =
        run_all_shards(plan, n_shards, dir);
    const std::vector<CellResult> merged = merge_shards(plan, paths);
    EXPECT_EQ(render_csv(spec, merged, dir + "/merged.csv"), golden)
        << stem << " diverged from its golden CSV at N=" << n_shards;
  }
}

TEST(ShardMerge, StepAsyncShardUnionIsByteIdenticalToGolden) {
  check_shard_union_identity("step_async");
}

TEST(ShardMerge, PlaneBaseShardUnionIsByteIdenticalToGolden) {
  check_shard_union_identity("plane_base");
}

// And the remaining pinned specs — EVERY golden must survive sharding at
// every tested shard count, not just the two headline ones.
TEST(ShardMerge, AllOtherGoldenShardUnionsAreByteIdentical) {
  for (const char* stem :
       {"sync", "async_crash", "placement_sweep", "multi_target",
        "plane_async"}) {
    check_shard_union_identity(stem);
  }
}

TEST(ShardMerge, SelfDescribingMergeRecoversTheSpec) {
  const ScenarioSpec spec = golden_spec("step_async");
  const SweepPlan plan = make_plan(spec);
  const std::string dir = scratch_dir("selfdesc");
  const std::vector<std::string> paths = run_all_shards(plan, 3, dir);

  // No plan passed in: the merge reconstructs it from the embedded
  // canonical spec and must render the same golden bytes.
  ScenarioSpec recovered;
  const std::vector<CellResult> merged = merge_shards(paths, &recovered);
  EXPECT_EQ(recovered.canonical(), spec.canonical());
  EXPECT_EQ(render_csv(recovered, merged, dir + "/merged.csv"),
            golden_csv("step_async"));
}

TEST(ShardExec, RunShardMatchesTheMatchingRunSweepCells) {
  const ScenarioSpec spec = golden_spec("step_async");
  const SweepPlan plan = make_plan(spec);
  const std::vector<CellResult> full = run_sweep(spec);

  const std::vector<std::size_t> indices = shard_cell_indices(plan, 2, 3);
  const std::vector<CellResult> shard = run_shard(plan, 2, 3);
  ASSERT_EQ(shard.size(), indices.size());
  for (std::size_t j = 0; j < indices.size(); ++j) {
    const CellResult& a = full[indices[j]];
    const CellResult& b = shard[j];
    EXPECT_EQ(a.cell.hash, b.cell.hash);
    EXPECT_EQ(a.stats.times, b.stats.times);
    EXPECT_DOUBLE_EQ(a.stats.time.mean, b.stats.time.mean);
    EXPECT_DOUBLE_EQ(a.from_last_start.mean, b.from_last_start.mean);
    EXPECT_DOUBLE_EQ(a.mean_crashed, b.mean_crashed);
  }
}

// --- artifact round-trip ---------------------------------------------------

TEST(ShardArtifact, AggregatesRoundTripBitForBit) {
  const ScenarioSpec spec = golden_spec("step_async");
  const SweepPlan plan = make_plan(spec);
  const std::string dir = scratch_dir("roundtrip");
  const std::vector<CellResult> results = run_shard(plan, 1, 2);
  const std::string path = dir + "/shard.jsonl";
  write_shard(path, plan, 1, 2, results);

  std::vector<ShardEntry> entries;
  const ShardHeader header = read_shard_artifact(path, &entries);
  EXPECT_EQ(header.format_version, cell_format_version());
  EXPECT_EQ(header.spec_hash, plan.spec_hash);
  EXPECT_EQ(header.shard, 1u);
  EXPECT_EQ(header.n_shards, 2u);
  EXPECT_EQ(header.n_cells_total, plan.cells.size());
  ASSERT_EQ(entries.size(), results.size());
  for (std::size_t j = 0; j < entries.size(); ++j) {
    const CellResult& in = results[j];
    const CellResult& out = entries[j].result;
    // EXPECT_EQ, not EXPECT_DOUBLE_EQ: fmt_exact serialization must
    // reproduce the identical bits, or merged CSVs could drift from the
    // in-process run in the last printed digit.
    EXPECT_EQ(in.stats.time.mean, out.stats.time.mean);
    EXPECT_EQ(in.stats.time.std_error, out.stats.time.std_error);
    EXPECT_EQ(in.stats.time.q95, out.stats.time.q95);
    EXPECT_EQ(in.stats.success_rate, out.stats.success_rate);
    EXPECT_EQ(in.stats.mean_competitiveness, out.stats.mean_competitiveness);
    EXPECT_EQ(in.from_last_start.mean, out.from_last_start.mean);
    EXPECT_EQ(in.mean_crashed, out.mean_crashed);
    EXPECT_EQ(in.mean_last_start, out.mean_last_start);
    EXPECT_EQ(in.mean_first_target, out.mean_first_target);
    EXPECT_EQ(in.stats.time.n, out.stats.time.n);
    EXPECT_TRUE(out.stats.times.empty()) << "per-trial times must not ship";
  }
}

// --- merge verification ----------------------------------------------------

TEST(ShardMerge, RejectsArtifactsFromADifferentSpec) {
  ScenarioSpec spec = golden_spec("step_async");
  const SweepPlan plan = make_plan(spec);
  const std::string dir = scratch_dir("wrongspec");

  ScenarioSpec other = spec;
  other.seed += 1;  // same shape, different numbers — must not merge
  const SweepPlan other_plan = make_plan(other);
  const std::vector<std::string> paths = run_all_shards(other_plan, 3, dir);

  EXPECT_THROW(merge_shards(plan, paths), std::invalid_argument);
}

TEST(ShardMerge, RejectsDuplicateCells) {
  const SweepPlan plan = make_plan(golden_spec("step_async"));
  const std::string dir = scratch_dir("dup");
  const std::vector<std::string> paths = run_all_shards(plan, 3, dir);

  std::vector<std::string> doubled = paths;
  doubled.push_back(paths.front());  // shard 1 listed twice
  EXPECT_THROW(merge_shards(plan, doubled), std::invalid_argument);
}

TEST(ShardMerge, RejectsMissingCells) {
  const SweepPlan plan = make_plan(golden_spec("step_async"));
  const std::string dir = scratch_dir("missing");
  const std::vector<std::string> paths = run_all_shards(plan, 3, dir);

  const std::vector<std::string> partial(paths.begin(), paths.end() - 1);
  EXPECT_THROW(merge_shards(plan, partial), std::invalid_argument);
}

TEST(ShardMerge, RejectsTamperedFormatVersion) {
  const SweepPlan plan = make_plan(golden_spec("step_async"));
  const std::string dir = scratch_dir("stale");
  const std::vector<std::string> paths = run_all_shards(plan, 1, dir);

  // Simulate an artifact from an older build: patch the header version.
  std::string content = read_file(paths.front());
  const std::string want = "\"format_version\":" +
                           std::to_string(cell_format_version());
  const std::size_t at = content.find(want);
  ASSERT_NE(at, std::string::npos);
  content.replace(at, want.size(), "\"format_version\":1");
  {
    std::ofstream out(paths.front(), std::ios::binary | std::ios::trunc);
    out << content;
  }
  EXPECT_THROW(merge_shards(plan, paths), std::invalid_argument);
}

TEST(ShardMerge, RejectsTruncatedArtifact) {
  const SweepPlan plan = make_plan(golden_spec("step_async"));
  const std::string dir = scratch_dir("truncated");
  const std::vector<std::string> paths = run_all_shards(plan, 1, dir);

  // Drop the last line: the header's n_cells_shard no longer matches, the
  // torn file must be rejected, not half-merged.
  const std::string content = read_file(paths.front());
  const std::size_t cut = content.rfind('{');
  ASSERT_NE(cut, std::string::npos);
  {
    std::ofstream out(paths.front(), std::ios::binary | std::ios::trunc);
    out << content.substr(0, cut);
  }
  EXPECT_THROW(merge_shards(plan, paths), std::invalid_argument);
}

// --- merge verification across artifact encodings --------------------------
//
// The binary columnar format must be held to exactly the rejection rules
// the JSONL format established, with messages distinct enough to act on.
// Each test mixes encodings, because a real campaign can: old shards on
// disk as JSONL, a rerun shard written binary.

/// Runs one shard and writes it in the requested encoding.
std::string write_one_shard(const SweepPlan& plan, std::size_t shard,
                            std::size_t n_shards, const std::string& dir,
                            ArtifactFormat format) {
  const std::vector<CellResult> results = run_shard(plan, shard, n_shards);
  const std::string path =
      dir + "/shard_" + std::to_string(shard) +
      (format == ArtifactFormat::kBinary ? ".bin" : ".jsonl");
  write_shard(path, plan, shard, n_shards, results, nullptr, format);
  return path;
}

/// The invalid_argument message `fn` must raise.
template <typename Fn>
std::string merge_error(Fn&& fn) {
  try {
    fn();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected std::invalid_argument";
  return "";
}

TEST(ShardMergeCrossFormat, RejectsBinaryShardOfADifferentSpec) {
  ScenarioSpec spec = golden_spec("step_async");
  const SweepPlan plan = make_plan(spec);
  const std::string dir = scratch_dir("xf_wrongspec");

  ScenarioSpec other = spec;
  other.seed += 1;
  const SweepPlan other_plan = make_plan(other);
  std::vector<std::string> paths = {
      write_one_shard(plan, 1, 3, dir, ArtifactFormat::kJsonl),
      write_one_shard(plan, 2, 3, dir, ArtifactFormat::kJsonl),
      write_one_shard(other_plan, 3, 3, dir, ArtifactFormat::kBinary),
  };
  const std::string what =
      merge_error([&] { merge_shards(plan, paths); });
  EXPECT_NE(what.find("spec hash mismatch"), std::string::npos) << what;
}

TEST(ShardMergeCrossFormat, RejectsStaleBinaryFormatVersion) {
  const SweepPlan plan = make_plan(golden_spec("step_async"));
  const std::string dir = scratch_dir("xf_stale");

  // An artifact from an older build, crafted through the public writer so
  // its CRCs are valid — only the version stamp is stale.
  const std::vector<CellResult> results = run_shard(plan, 1, 1);
  std::vector<ShardEntry> entries(results.size());
  const std::vector<std::size_t> indices = shard_cell_indices(plan, 1, 1);
  for (std::size_t j = 0; j < results.size(); ++j) {
    entries[j].cell_index = indices[j];
    entries[j].result = results[j];
  }
  ShardHeader header;
  header.format_version = 1;  // predates every current cache/artifact key
  header.spec_hash = plan.spec_hash;
  header.spec_text = plan.spec.canonical();
  header.shard = 1;
  header.n_shards = 1;
  header.n_cells_total = plan.cells.size();
  const std::string path = dir + "/stale.bin";
  write_binary_artifact(path, header, entries);

  const std::string what =
      merge_error([&] { merge_shards(plan, {path}); });
  EXPECT_NE(what.find("format version 1"), std::string::npos) << what;
  EXPECT_NE(what.find("regenerate"), std::string::npos) << what;
}

TEST(ShardMergeCrossFormat, RejectsDuplicateCellsAcrossEncodings) {
  const SweepPlan plan = make_plan(golden_spec("step_async"));
  const std::string dir = scratch_dir("xf_dup");
  // Shard 1 appears twice: once JSONL, once binary — same cells, different
  // bytes, so only cell-level bookkeeping can catch it.
  const std::vector<std::string> paths = {
      write_one_shard(plan, 1, 3, dir, ArtifactFormat::kJsonl),
      write_one_shard(plan, 2, 3, dir, ArtifactFormat::kBinary),
      write_one_shard(plan, 3, 3, dir, ArtifactFormat::kBinary),
      write_one_shard(plan, 1, 3, dir, ArtifactFormat::kBinary),
  };
  const std::string what =
      merge_error([&] { merge_shards(plan, paths); });
  EXPECT_NE(what.find("duplicate cell"), std::string::npos) << what;
}

TEST(ShardMergeCrossFormat, RejectsMissingCellsWithBinaryShards) {
  const SweepPlan plan = make_plan(golden_spec("step_async"));
  const std::string dir = scratch_dir("xf_missing");
  const std::vector<std::string> paths = {
      write_one_shard(plan, 1, 3, dir, ArtifactFormat::kBinary),
      write_one_shard(plan, 2, 3, dir, ArtifactFormat::kJsonl),
      // shard 3 never ran
  };
  const std::string what =
      merge_error([&] { merge_shards(plan, paths); });
  EXPECT_NE(what.find("cells missing"), std::string::npos) << what;
}

TEST(ShardMergeCrossFormat, RejectsCorruptBinaryArtifactWithCrcMessage) {
  const SweepPlan plan = make_plan(golden_spec("step_async"));
  const std::string dir = scratch_dir("xf_crc");
  const std::string path =
      write_one_shard(plan, 1, 1, dir, ArtifactFormat::kBinary);

  // Bit rot in the column data: the CRC must fail the merge with a message
  // naming the damage, not silently merge a wrong double.
  std::string content = read_file(path);
  ASSERT_GT(content.size(), 32u);
  content[content.size() - 24] ^= 0x01;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
  }
  const std::string what =
      merge_error([&] { merge_shards(plan, {path}); });
  EXPECT_NE(what.find("CRC mismatch"), std::string::npos) << what;

  // A truncated binary artifact is likewise rejected up front.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content.substr(0, content.size() / 2);
  }
  EXPECT_THROW(merge_shards(plan, {path}), std::invalid_argument);
}

// --- resumability ----------------------------------------------------------

TEST(ShardResume, KilledShardRerunRecomputesOnlyMissingCells) {
  const ScenarioSpec spec = golden_spec("step_async");
  const SweepPlan plan = make_plan(spec);
  const std::string dir = scratch_dir("resume");
  SweepOptions opt;
  opt.cache_dir = dir + "/cache";

  // Full shard pass populates the per-cell cache as cells complete.
  const std::vector<std::size_t> indices = shard_cell_indices(plan, 1, 3);
  const std::vector<CellResult> first = run_shard(plan, 1, 3, opt);
  ASSERT_GE(indices.size(), 2u);

  // Simulate a mid-shard kill: one cell's cache entry never landed.
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.cell",
                static_cast<unsigned long long>(
                    plan.cells[indices[1]].hash));
  ASSERT_TRUE(std::filesystem::remove(opt.cache_dir + "/" + name));

  // The rerun serves every surviving cell from cache and recomputes only
  // the lost one — with identical aggregates either way.
  const std::vector<CellResult> second = run_shard(plan, 1, 3, opt);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t j = 0; j < second.size(); ++j) {
    EXPECT_EQ(second[j].from_cache, j != 1);
    EXPECT_EQ(second[j].stats.time.mean, first[j].stats.time.mean);
    EXPECT_EQ(second[j].stats.success_rate, first[j].stats.success_rate);
  }

  // And the artifact written by the resumed shard still merges to golden.
  const std::string resumed = dir + "/resumed.jsonl";
  write_shard(resumed, plan, 1, 3, second);
  std::vector<std::string> paths = {resumed};
  for (std::size_t shard = 2; shard <= 3; ++shard) {
    const std::string path = dir + "/shard_" + std::to_string(shard) +
                             ".jsonl";
    write_shard(path, plan, shard, 3, run_shard(plan, shard, 3));
    paths.push_back(path);
  }
  EXPECT_EQ(render_csv(spec, merge_shards(plan, paths), dir + "/merged.csv"),
            golden_csv("step_async"));
}

// --- shard-aware progress --------------------------------------------------

TEST(ShardProgress, LinesArePrefixedAndCountsAreShardLocal) {
  const SweepPlan plan = make_plan(golden_spec("step_async"));
  std::ostringstream progress;
  SweepOptions opt;
  opt.progress = true;
  opt.progress_stream = &progress;

  const std::vector<CellResult> with = run_shard(plan, 2, 3, opt);
  const std::vector<CellResult> without = run_shard(plan, 2, 3);

  const std::size_t shard_cells = shard_cell_indices(plan, 2, 3).size();
  std::istringstream lines(progress.str());
  std::string line;
  std::size_t n_lines = 0;
  while (std::getline(lines, line)) {
    ++n_lines;
    EXPECT_EQ(line.rfind("progress: shard 2/3 [", 0), 0u)
        << "unprefixed progress line: " << line;
  }
  EXPECT_EQ(n_lines, shard_cells);
  const std::string last = "[" + std::to_string(shard_cells) + "/" +
                           std::to_string(shard_cells) + "]";
  EXPECT_NE(progress.str().find(last), std::string::npos)
      << "done/total must count the shard's cells, not the whole plan";

  // Progress is diagnostics only: results identical with and without.
  ASSERT_EQ(with.size(), without.size());
  for (std::size_t j = 0; j < with.size(); ++j) {
    EXPECT_EQ(with[j].stats.time.mean, without[j].stats.time.mean);
  }
}

// --- cache atomicity -------------------------------------------------------

TEST(CacheAtomicity, ConcurrentStoresOfOneCellNeverTear) {
  // Shard processes sharing a cache_dir can race on a cell (e.g. the same
  // spec launched twice). Writers use unique temp names + rename, so every
  // load observes a complete record; a torn or interleaved file would fail
  // cache_load's full-field parse.
  const ScenarioSpec spec = golden_spec("step_async");
  const std::vector<CellResult> seed_results = run_sweep(spec);
  ASSERT_FALSE(seed_results.empty());
  const CellResult& sample = seed_results.front();

  const std::string dir = scratch_dir("atomic") + "/cache";
  constexpr std::uint64_t kHash = 0xDEADBEEFCAFEF00DULL;
  constexpr int kIterations = 200;

  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w]() {
      CellResult mine = sample;
      // Distinguishable-but-valid payloads per writer: a reader must see
      // one of them in full, never a mix.
      mine.mean_last_start = w;
      for (int i = 0; i < kIterations; ++i) cache_store(dir, kHash, mine);
    });
  }
  // Wait for the first publication (the writers have just been spawned),
  // then hammer loads concurrently with the ongoing stores.
  {
    CellResult first;
    while (!cache_load(dir, kHash, &first)) std::this_thread::yield();
  }
  std::size_t loads = 0;
  for (int i = 0; i < kIterations; ++i) {
    CellResult loaded;
    if (cache_load(dir, kHash, &loaded)) {
      ++loads;
      EXPECT_EQ(loaded.stats.time.mean, sample.stats.time.mean);
      EXPECT_GE(loaded.mean_last_start, 0.0);
      EXPECT_LT(loaded.mean_last_start, 4.0);
    }
  }
  for (std::thread& t : writers) t.join();
  EXPECT_GT(loads, 0u) << "reader never saw a published entry";

  // No temp droppings left behind.
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++files;
    EXPECT_EQ(entry.path().extension(), ".cell")
        << "stray file: " << entry.path();
  }
  EXPECT_EQ(files, 1u);
}

}  // namespace
}  // namespace ants::scenario
