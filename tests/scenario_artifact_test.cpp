// Binary columnar shard artifacts (scenario/artifact.h): bit-exact
// round-trips, format sniffing, CRC/truncation detection, and the headline
// invariant extended across encodings — a merge over binary or mixed
// binary+JSONL shards renders the SAME golden CSV bytes as the
// single-process run, because both formats serialize the same aggregate
// table with exact doubles.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/agg_fields.h"
#include "scenario/artifact.h"
#include "scenario/plan.h"
#include "scenario/sink.h"
#include "scenario/spec.h"
#include "scenario/sweep.h"
#include "telemetry/metrics.h"

#ifndef ANTS_SOURCE_DIR
#error "ANTS_SOURCE_DIR must point at the repository root"
#endif

namespace ants::scenario {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

ScenarioSpec golden_spec(const std::string& stem) {
  const std::string dir = std::string(ANTS_SOURCE_DIR) + "/tests/golden/";
  const std::vector<ScenarioSpec> specs = parse_spec_file(dir + stem +
                                                          ".spec");
  EXPECT_EQ(specs.size(), 1u);
  return specs.front();
}

std::string golden_csv(const std::string& stem) {
  return read_file(std::string(ANTS_SOURCE_DIR) + "/tests/golden/" + stem +
                   ".golden.csv");
}

std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ants_artifact_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string render_csv(const ScenarioSpec& spec,
                       const std::vector<CellResult>& results,
                       const std::string& path) {
  {
    CsvSink csv(path);
    std::vector<ResultSink*> sinks = {&csv};
    emit_results(spec, results, sinks);
  }
  return read_file(path);
}

/// Runs every shard of an N-way split and writes each artifact in the
/// format `formats[shard-1]` selects — the mixed-encoding generalization
/// of the shard test's helper.
std::vector<std::string> run_all_shards(
    const SweepPlan& plan, const std::vector<ArtifactFormat>& formats,
    const std::string& dir) {
  const std::size_t n_shards = formats.size();
  std::vector<std::string> paths;
  for (std::size_t shard = 1; shard <= n_shards; ++shard) {
    const std::vector<CellResult> results = run_shard(plan, shard, n_shards);
    const bool binary = formats[shard - 1] == ArtifactFormat::kBinary;
    const std::string path = dir + "/shard_" + std::to_string(shard) +
                             (binary ? ".bin" : ".jsonl");
    write_shard(path, plan, shard, n_shards, results, nullptr,
                formats[shard - 1]);
    paths.push_back(path);
  }
  return paths;
}

/// The message of the std::invalid_argument `fn` must throw.
template <typename Fn>
std::string error_message(Fn&& fn) {
  try {
    fn();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected std::invalid_argument";
  return "";
}

// --- round-trip ------------------------------------------------------------

TEST(BinaryArtifact, AggregatesRoundTripBitForBit) {
  const ScenarioSpec spec = golden_spec("step_async");
  const SweepPlan plan = make_plan(spec);
  const std::string dir = scratch_dir("roundtrip");
  const std::vector<CellResult> results = run_shard(plan, 1, 2);
  const std::string path = dir + "/shard.bin";
  write_shard(path, plan, 1, 2, results, nullptr, ArtifactFormat::kBinary);
  ASSERT_TRUE(is_binary_artifact(path));

  // Once through the zero-copy reader directly...
  BinaryArtifactReader reader(path);
  EXPECT_EQ(reader.header().format_version, cell_format_version());
  EXPECT_EQ(reader.header().spec_hash, plan.spec_hash);
  EXPECT_EQ(reader.header().spec_text, plan.spec.canonical());
  EXPECT_EQ(reader.header().shard, 1u);
  EXPECT_EQ(reader.header().n_shards, 2u);
  EXPECT_EQ(reader.header().n_cells_total, plan.cells.size());
  ASSERT_EQ(reader.n_cells(), results.size());

  // ...and once through the sniffing dispatcher: identical entries. The
  // comparison walks the shared aggregate table, so every serialized field
  // is checked with EXPECT_EQ — the IEEE bit patterns are stored raw, the
  // round-trip must be exact, not merely close.
  std::vector<ShardEntry> entries;
  read_any_artifact(path, &entries);
  ASSERT_EQ(entries.size(), results.size());
  const detail::AggField* fields = detail::agg_fields();
  const std::size_t n_fields = detail::agg_field_count();
  const std::vector<std::size_t> indices = shard_cell_indices(plan, 1, 2);
  for (std::size_t j = 0; j < entries.size(); ++j) {
    EXPECT_EQ(entries[j].cell_index, indices[j]);
    for (std::size_t f = 0; f < n_fields; ++f) {
      EXPECT_EQ(fields[f].get(entries[j].result), fields[f].get(results[j]))
          << "field " << fields[f].name << " of cell " << j;
      EXPECT_EQ(reader.value(f, j), fields[f].get(results[j]))
          << "reader column " << fields[f].name << " of cell " << j;
    }
    EXPECT_EQ(reader.cell_index(j), indices[j]);
  }
}

TEST(BinaryArtifact, MetricsLineRidesAlong) {
  const SweepPlan plan = make_plan(golden_spec("sync"));
  const std::string dir = scratch_dir("metrics");
  const std::vector<CellResult> results = run_shard(plan, 1, 1);

  telemetry::RunMetrics metrics;
  metrics.cells_total = results.size();
  metrics.trials_executed = 1234;
  metrics.cache_corrupt = 3;
  const std::string path = dir + "/shard.bin";
  write_shard(path, plan, 1, 1, results, &metrics, ArtifactFormat::kBinary);

  std::string metrics_line;
  read_any_artifact(path, nullptr, &metrics_line);
  ASSERT_FALSE(metrics_line.empty());
  const telemetry::RunMetrics back =
      telemetry::metrics_from_json(metrics_line, nullptr, nullptr, nullptr);
  EXPECT_EQ(back.cells_total, results.size());
  EXPECT_EQ(back.trials_executed, 1234u);
  EXPECT_EQ(back.cache_corrupt, 3u);

  // An artifact without telemetry reads back an empty metrics line.
  const std::string bare = dir + "/bare.bin";
  write_shard(bare, plan, 1, 1, results, nullptr, ArtifactFormat::kBinary);
  std::string none = "sentinel";
  read_any_artifact(bare, nullptr, &none);
  EXPECT_EQ(none, "");
}

TEST(BinaryArtifact, SniffDistinguishesFormats) {
  const SweepPlan plan = make_plan(golden_spec("sync"));
  const std::string dir = scratch_dir("sniff");
  const std::vector<CellResult> results = run_shard(plan, 1, 1);
  write_shard(dir + "/a.bin", plan, 1, 1, results, nullptr,
              ArtifactFormat::kBinary);
  write_shard(dir + "/a.jsonl", plan, 1, 1, results);

  EXPECT_TRUE(is_binary_artifact(dir + "/a.bin"));
  EXPECT_FALSE(is_binary_artifact(dir + "/a.jsonl"));
  EXPECT_FALSE(is_binary_artifact(dir + "/does_not_exist"));
  write_file(dir + "/short", "ANT");  // shorter than the magic
  EXPECT_FALSE(is_binary_artifact(dir + "/short"));
}

// --- corruption and incompatibility ----------------------------------------

TEST(BinaryArtifact, DetectsCorruptionWithDistinctMessages) {
  const SweepPlan plan = make_plan(golden_spec("sync"));
  const std::string dir = scratch_dir("corrupt");
  const std::vector<CellResult> results = run_shard(plan, 1, 1);
  const std::string path = dir + "/shard.bin";
  write_shard(path, plan, 1, 1, results, nullptr, ArtifactFormat::kBinary);
  const std::string pristine = read_file(path);
  ASSERT_GT(pristine.size(), 64u);

  // A flipped byte in the columns section: columns CRC.
  std::string flipped = pristine;
  flipped[pristine.size() - 16] ^= 0x40;
  write_file(path, flipped);
  EXPECT_NE(error_message([&] { BinaryArtifactReader r(path); })
                .find("columns section CRC mismatch"),
            std::string::npos);

  // A flipped byte in the meta section (n_cells_total, which leaves the
  // section sizes intact so only the checksum can catch it): meta CRC.
  std::string meta_flipped = pristine;
  meta_flipped[40] ^= 0x40;
  write_file(path, meta_flipped);
  EXPECT_NE(error_message([&] { BinaryArtifactReader r(path); })
                .find("meta section CRC mismatch"),
            std::string::npos);

  // A truncated file: the columns section no longer fits.
  write_file(path, pristine.substr(0, pristine.size() - 9));
  EXPECT_NE(error_message([&] { BinaryArtifactReader r(path); })
                .find("truncated"),
            std::string::npos);

  // Not a binary artifact at all (long enough to pass the prelude-size
  // check, so the magic comparison is what rejects it).
  write_file(path, "{\"kind\":\"ants-shard-artifact\"}" + std::string(96, ' '));
  EXPECT_NE(error_message([&] { BinaryArtifactReader r(path); })
                .find("bad magic"),
            std::string::npos);

  // Shorter than the fixed prelude: reported as truncation, not magic.
  write_file(path, "junk");
  EXPECT_NE(error_message([&] { BinaryArtifactReader r(path); })
                .find("truncated (no header)"),
            std::string::npos);
}

// --- the headline invariant, across encodings ------------------------------

void check_binary_and_mixed_identity(const std::string& stem) {
  const ScenarioSpec spec = golden_spec(stem);
  const std::string golden = golden_csv(stem);
  const SweepPlan plan = make_plan(spec);

  // All-binary shards.
  {
    const std::string dir = scratch_dir(stem + "_allbin");
    const std::vector<std::string> paths = run_all_shards(
        plan,
        {ArtifactFormat::kBinary, ArtifactFormat::kBinary,
         ArtifactFormat::kBinary},
        dir);
    EXPECT_EQ(render_csv(spec, merge_shards(plan, paths), dir + "/m.csv"),
              golden)
        << stem << " all-binary merge diverged from golden";
  }

  // Mixed encodings in one merge: binary, JSONL, binary.
  {
    const std::string dir = scratch_dir(stem + "_mixed");
    const std::vector<std::string> paths = run_all_shards(
        plan,
        {ArtifactFormat::kBinary, ArtifactFormat::kJsonl,
         ArtifactFormat::kBinary},
        dir);
    EXPECT_EQ(render_csv(spec, merge_shards(plan, paths), dir + "/m.csv"),
              golden)
        << stem << " mixed-format merge diverged from golden";
  }
}

TEST(BinaryArtifact, StepAsyncBinaryAndMixedMergesAreByteIdentical) {
  check_binary_and_mixed_identity("step_async");
}

TEST(BinaryArtifact, PlaneBaseBinaryAndMixedMergesAreByteIdentical) {
  check_binary_and_mixed_identity("plane_base");
}

TEST(BinaryArtifact, AllOtherGoldenBinaryAndMixedMergesAreByteIdentical) {
  for (const char* stem :
       {"sync", "async_crash", "placement_sweep", "multi_target",
        "plane_async"}) {
    check_binary_and_mixed_identity(stem);
  }
}

TEST(BinaryArtifact, SelfDescribingMergeWorksFromABinaryFirstArtifact) {
  const ScenarioSpec spec = golden_spec("step_async");
  const SweepPlan plan = make_plan(spec);
  const std::string dir = scratch_dir("selfdesc_bin");
  const std::vector<std::string> paths = run_all_shards(
      plan,
      {ArtifactFormat::kBinary, ArtifactFormat::kJsonl,
       ArtifactFormat::kJsonl},
      dir);

  // The plan is reconstructed from the BINARY artifact's embedded spec.
  ScenarioSpec recovered;
  const std::vector<CellResult> merged = merge_shards(paths, &recovered);
  EXPECT_EQ(recovered.canonical(), spec.canonical());
  EXPECT_EQ(render_csv(recovered, merged, dir + "/m.csv"),
            golden_csv("step_async"));
}

}  // namespace
}  // namespace ants::scenario
