#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <variant>

#include "core/approx_k.h"
#include "core/competitive.h"
#include "core/hedged.h"
#include "sim/runner.h"
#include "util/math.h"
#include "util/sat.h"

namespace ants::core {
namespace {

using sim::GoTo;
using sim::Op;
using sim::SpiralFor;

TEST(ApproxK, Validation) {
  EXPECT_THROW(ApproxKStrategy(0, 2.0, ApproxMode::kUnder),
               std::invalid_argument);
  EXPECT_THROW(ApproxKStrategy(4, 0.5, ApproxMode::kUnder),
               std::invalid_argument);
  EXPECT_NO_THROW(ApproxKStrategy(4, 1.0, ApproxMode::kOver));
}

TEST(ApproxK, ParameterMapping) {
  const ApproxKStrategy s(64, 2.0, ApproxMode::kUnder);
  // Estimate k/rho = 32 -> parameter 16; estimate k*rho = 128 -> 64.
  EXPECT_EQ(s.parameter_for_estimate(32.0), 16);
  EXPECT_EQ(s.parameter_for_estimate(128.0), 64);
  EXPECT_EQ(s.parameter_for_estimate(0.5), 1);  // clamps to 1
}

TEST(ApproxK, EstimatesRespectMode) {
  rng::Rng rng(1);
  const ApproxKStrategy under(100, 4.0, ApproxMode::kUnder);
  EXPECT_DOUBLE_EQ(under.draw_estimate(rng), 25.0);
  const ApproxKStrategy over(100, 4.0, ApproxMode::kOver);
  EXPECT_DOUBLE_EQ(over.draw_estimate(rng), 400.0);
  const ApproxKStrategy lu(100, 4.0, ApproxMode::kLogUniform);
  for (int i = 0; i < 2000; ++i) {
    const double e = lu.draw_estimate(rng);
    EXPECT_GE(e, 25.0 - 1e-9);
    EXPECT_LE(e, 400.0 + 1e-9);
  }
}

TEST(ApproxK, BehavesLikeKnownKWithScaledParameter) {
  // Under-mode with rho=1 is exactly KnownK(k): spiral budgets match.
  const ApproxKStrategy approx(16, 1.0, ApproxMode::kUnder);
  const auto program = approx.make_program(sim::AgentContext{});
  rng::Rng rng(2);
  (void)program->next(rng);
  const Op sp = program->next(rng);
  // First phase (i=1): t_1 = 2^4/16 = 1.
  EXPECT_EQ(std::get<SpiralFor>(sp).duration, 1);
}

TEST(ApproxK, StillFindsTreasure) {
  const ApproxKStrategy strategy(8, 2.0, ApproxMode::kLogUniform);
  sim::RunConfig config;
  config.trials = 60;
  config.seed = 3;
  const sim::RunStats rs =
      sim::run_trials(strategy, 8, 6, sim::uniform_ring_placement(), config);
  EXPECT_EQ(rs.success_rate, 1.0);
  EXPECT_LT(rs.mean_competitiveness, 80.0);
}

TEST(Hedged, Validation) {
  EXPECT_THROW(HedgedApproxStrategy(0.5, 0.5), std::invalid_argument);
  EXPECT_THROW(HedgedApproxStrategy(16, -0.1), std::invalid_argument);
  EXPECT_THROW(HedgedApproxStrategy(16, 1.5), std::invalid_argument);
}

TEST(Hedged, CandidateWindowMatchesEps) {
  // k~ = 2^12, eps = 0.5: candidates cover j in [6, 12] — 7 octaves.
  const HedgedApproxStrategy s(4096.0, 0.5);
  const auto& cands = s.candidate_exponents();
  ASSERT_EQ(cands.size(), 7u);
  EXPECT_EQ(cands.front(), 6);
  EXPECT_EQ(cands.back(), 12);
}

TEST(Hedged, EpsZeroHasSingleishCandidate) {
  // eps = 0: perfect knowledge; window collapses to the k~ octave.
  const HedgedApproxStrategy s(1024.0, 0.0);
  EXPECT_LE(s.candidate_exponents().size(), 2u);
}

TEST(Hedged, EpsOneCoversAllOctaves) {
  const HedgedApproxStrategy s(1024.0, 1.0);
  EXPECT_EQ(s.candidate_exponents().front(), 0);
  EXPECT_EQ(s.candidate_exponents().back(), 10);
}

TEST(Hedged, SpiralBudgetPerCandidate) {
  const HedgedApproxStrategy s(256.0, 0.5);
  // t = 2^(2i+2-j).
  EXPECT_EQ(s.spiral_budget(3, 4), util::pow2(4));
  EXPECT_EQ(s.spiral_budget(3, 8), 1);   // exponent 0 -> clamp
  EXPECT_EQ(s.spiral_budget(2, 8), 1);   // negative exponent -> clamp
  EXPECT_EQ(s.spiral_budget(31, 0), util::kTimeCap);  // saturate
}

TEST(Hedged, CyclesThroughCandidatesWithinPhase) {
  const HedgedApproxStrategy s(16.0, 1.0);  // candidates j = 0..4
  const auto program = s.make_program(sim::AgentContext{});
  rng::Rng rng(4);
  // First 5 trips are phase i=1 with candidates 0..4: budgets 2^4-j.
  for (const int j : s.candidate_exponents()) {
    (void)program->next(rng);
    const Op sp = program->next(rng);
    EXPECT_EQ(std::get<SpiralFor>(sp).duration, s.spiral_budget(1, j));
    (void)program->next(rng);
  }
}

TEST(Hedged, FindsTreasure) {
  const HedgedApproxStrategy strategy(64.0, 0.5);
  sim::RunConfig config;
  config.trials = 50;
  config.seed = 5;
  const sim::RunStats rs =
      sim::run_trials(strategy, 8, 6, sim::uniform_ring_placement(), config);
  EXPECT_EQ(rs.success_rate, 1.0);
}

TEST(Competitive, FitRecoversExponent) {
  // phi(k) = 3 * (log2 k)^1.5 exactly.
  std::vector<CompetitivePoint> curve;
  for (std::int64_t k = 4; k <= 4096; k *= 2) {
    curve.push_back({k, 3.0 * std::pow(std::log2(double(k)), 1.5)});
  }
  const auto fit = fit_log_exponent(curve);
  EXPECT_NEAR(fit.slope, 1.5, 1e-9);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(Competitive, FitRejectsDegenerateInput) {
  EXPECT_THROW(fit_log_exponent({{2, 1.0}}), std::invalid_argument);
  EXPECT_THROW(fit_log_exponent({{4, 1.0}, {2, 2.0}}), std::invalid_argument);
}

TEST(Competitive, RatioColumns) {
  EXPECT_DOUBLE_EQ(ratio_to_log_power(8.0, 16, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(ratio_to_log_power(8.0, 16, 2.0), 0.5);
}

}  // namespace
}  // namespace ants::core
