#include "scenario/sweep.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/known_k.h"
#include "scenario/sink.h"
#include "sim/placement.h"
#include "sim/runner.h"

namespace ants::scenario {
namespace {

/// Captures emitted rows in memory, rendered as CSV-ish lines.
class StringSink final : public ResultSink {
 public:
  void begin(const std::vector<std::string>& columns) override {
    lines_.push_back(join(columns));
  }
  void row(const std::vector<std::string>& cells) override {
    lines_.push_back(join(cells));
  }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  static std::string join(const std::vector<std::string>& cells) {
    std::string out;
    for (const auto& cell : cells) {
      if (!out.empty()) out += ",";
      out += cell;
    }
    return out;
  }
  std::vector<std::string> lines_;
};

ScenarioSpec small_spec() {
  ScenarioSpec spec;
  spec.name = "sweep-test";
  // One segment-level and one step-level strategy, so both engine paths are
  // under the determinism contract.
  spec.strategies = {"known-k", "random-walk"};
  spec.ks = {1, 4};
  spec.distances = {2, 4};
  spec.trials = 16;
  spec.seed = 0xC0FFEE;
  spec.time_cap = 50000;
  return spec;
}

std::vector<std::string> rendered_rows(const ScenarioSpec& spec,
                                       const SweepOptions& opt) {
  StringSink sink;
  std::vector<ResultSink*> sinks = {&sink};
  emit_results(spec, run_sweep(spec, opt), sinks);
  return sink.lines();
}

TEST(Sweep, FlattenOrderAndCellCount) {
  const ScenarioSpec spec = small_spec();
  const std::vector<Cell> cells = flatten(spec);
  ASSERT_EQ(cells.size(), 2u * 2u * 2u);
  // strategy-major, then k, then D.
  EXPECT_EQ(cells[0].strategy_name, "known-k(k=1)");
  EXPECT_EQ(cells[0].k, 1);
  EXPECT_EQ(cells[0].distance, 2);
  EXPECT_EQ(cells[1].distance, 4);
  EXPECT_EQ(cells[2].k, 4);
  EXPECT_EQ(cells[2].strategy_name, "known-k(k=4)");
  EXPECT_EQ(cells[4].strategy_name, "random-walk");
}

TEST(Sweep, CellSeedsPairInstancesAcrossStrategies) {
  const ScenarioSpec spec = small_spec();
  const std::vector<Cell> cells = flatten(spec);
  // Same (k, D) -> same seed regardless of strategy (the E7 fairness
  // requirement); different (k, D) -> different seeds and hashes.
  EXPECT_EQ(cells[0].seed, cells[4].seed);
  EXPECT_NE(cells[0].seed, cells[1].seed);
  EXPECT_NE(cells[0].hash, cells[4].hash);
  EXPECT_NE(cells[0].hash, cells[1].hash);
}

// The headline reproducibility contract: identical output for any scheduler
// thread count.
TEST(Sweep, OutputIdenticalForOneAndManyThreads) {
  ScenarioSpec spec = small_spec();
  spec.columns = {"strategy", "k",         "D",       "success", "mean_time",
                  "stddev",   "min_time",  "max_time", "median_time",
                  "q95_time", "phi_mean",  "phi_median"};

  SweepOptions one_thread;
  one_thread.threads = 1;
  SweepOptions many_threads;
  many_threads.threads = 7;

  EXPECT_EQ(rendered_rows(spec, one_thread), rendered_rows(spec, many_threads));
}

// Each cell must equal a standalone sim::run_trials at the cell's derived
// seed — the sweep scheduler changes scheduling, never results.
TEST(Sweep, CellMatchesRunTrials) {
  ScenarioSpec spec;
  spec.strategies = {"known-k(k_belief=4)"};
  spec.ks = {4};
  spec.distances = {8};
  spec.trials = 25;
  spec.seed = 1234;

  const std::vector<CellResult> results = run_sweep(spec);
  ASSERT_EQ(results.size(), 1u);

  const core::KnownKStrategy strategy(4);
  sim::RunConfig config;
  config.trials = spec.trials;
  config.seed = results[0].cell.seed;
  const sim::RunStats direct = sim::run_trials(
      strategy, 4, 8, sim::uniform_ring_placement(), config);

  EXPECT_EQ(results[0].stats.times, direct.times);
  EXPECT_DOUBLE_EQ(results[0].stats.time.mean, direct.time.mean);
  EXPECT_DOUBLE_EQ(results[0].stats.success_rate, direct.success_rate);
}

TEST(Sweep, CacheRoundTripsAndSkipsRecomputation) {
  ScenarioSpec spec = small_spec();
  SweepOptions opt;
  opt.threads = 2;
  opt.cache_dir = ::testing::TempDir() + "ants_sweep_cache_test";
  std::filesystem::remove_all(opt.cache_dir);  // stale dirs survive reruns

  const std::vector<CellResult> first = run_sweep(spec, opt);
  for (const CellResult& r : first) EXPECT_FALSE(r.from_cache);

  const std::vector<CellResult> second = run_sweep(spec, opt);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(second[i].from_cache);
    EXPECT_DOUBLE_EQ(second[i].stats.time.mean, first[i].stats.time.mean);
    EXPECT_DOUBLE_EQ(second[i].stats.time.median, first[i].stats.time.median);
    EXPECT_DOUBLE_EQ(second[i].stats.time.std_error,
                     first[i].stats.time.std_error);
    EXPECT_DOUBLE_EQ(second[i].stats.success_rate,
                     first[i].stats.success_rate);
    EXPECT_DOUBLE_EQ(second[i].stats.mean_competitiveness,
                     first[i].stats.mean_competitiveness);
    EXPECT_EQ(second[i].stats.time.n, first[i].stats.time.n);
  }

  // A changed spec (different trials) misses the cache.
  spec.trials += 1;
  const std::vector<CellResult> third = run_sweep(spec, opt);
  for (const CellResult& r : third) EXPECT_FALSE(r.from_cache);
}

TEST(Sweep, CachedAndFreshRowsRenderIdentically) {
  const ScenarioSpec spec = small_spec();
  SweepOptions cached;
  cached.cache_dir = ::testing::TempDir() + "ants_sweep_render_cache";
  std::filesystem::remove_all(cached.cache_dir);

  const auto fresh_rows = rendered_rows(spec, SweepOptions{});
  (void)run_sweep(spec, cached);  // populate
  EXPECT_EQ(rendered_rows(spec, cached), fresh_rows);
}

}  // namespace
}  // namespace ants::scenario
